"""TYCOS reproduction: multi-scale time delay correlation search.

Reproduction of Ho, Pedersen, Ho & Vu, "Efficient Search for Multi-Scale
Time Delay Correlations in Big Time Series Data" (EDBT 2020).

Quickstart::

    import numpy as np
    from repro import Tycos, TycosConfig

    x = np.random.default_rng(0).normal(size=2000)
    y = np.roll(x, 25) + 0.1 * np.random.default_rng(1).normal(size=2000)

    config = TycosConfig(sigma=0.3, s_min=8, s_max=200, td_max=40)
    result = Tycos(config).search(x, y)
    for r in result.windows:
        print(r.window, f"nmi={r.nmi:.2f}")

See :mod:`repro.core` for the search machinery, :mod:`repro.mi` for the
mutual-information substrate, :mod:`repro.baselines` for PCC / MASS /
MatrixProfile / AMIC, :mod:`repro.data` for the synthetic workloads, and
:mod:`repro.experiments` for the paper's tables and figures.
"""

from repro.core import (
    ENERGY_CONFIG,
    SMARTCITY_CONFIG,
    PairView,
    SearchStats,
    TimeDelayWindow,
    Tycos,
    TycosConfig,
    TycosResult,
    WindowResult,
    brute_force_search,
    tycos_l,
    tycos_lm,
    tycos_lmn,
    tycos_ln,
)
from repro.mi import KSGEstimator, SlidingKSG, ksg_mi, normalized_mi

__version__ = "1.0.0"

__all__ = [
    "Tycos",
    "TycosConfig",
    "TycosResult",
    "SearchStats",
    "TimeDelayWindow",
    "PairView",
    "WindowResult",
    "brute_force_search",
    "tycos_l",
    "tycos_ln",
    "tycos_lm",
    "tycos_lmn",
    "ENERGY_CONFIG",
    "SMARTCITY_CONFIG",
    "KSGEstimator",
    "SlidingKSG",
    "ksg_mi",
    "normalized_mi",
    "__version__",
]

"""Matrix Profile via STOMP (paper Section 8.1, [31]).

The matrix profile of a pair of series (the *AB-join*) stores, for every
subsequence of A, the z-normalized Euclidean distance to its best match
anywhere in B.  Low profile values mean a shape in A recurs in B -- at any
offset, which is why (per Table 1) MatrixProfile detects *linear* relations
even under time delay while missing every non-linear one: z-normalization
absorbs affine transforms and nothing else.

The implementation is STOMP: the first distance profile comes from a MASS
pass; each subsequent one is an O(1)-per-entry update of the sliding dot
products, giving O(n^2) total instead of O(n^2 log n).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

__all__ = ["matrix_profile_ab", "MatrixProfileMatch", "matrix_profile_scan"]


def _rolling_stats(series: np.ndarray, m: int) -> Tuple[np.ndarray, np.ndarray]:
    cumsum = np.concatenate([[0.0], np.cumsum(series)])
    cumsum2 = np.concatenate([[0.0], np.cumsum(series * series)])
    seg_sum = cumsum[m:] - cumsum[:-m]
    seg_sum2 = cumsum2[m:] - cumsum2[:-m]
    mu = seg_sum / m
    var = np.maximum(seg_sum2 / m - mu * mu, 0.0)
    return mu, np.sqrt(var)


def matrix_profile_ab(
    a: np.ndarray,
    b: np.ndarray,
    m: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """STOMP AB-join: best-match distance in ``b`` for every window of ``a``.

    Args:
        a: query-side series.
        b: target-side series.
        m: subsequence length (>= 2).

    Returns:
        ``(profile, index)`` -- for each of the ``len(a) - m + 1`` windows
        of ``a``, the minimum z-normalized distance to any window of ``b``
        and the position of that best match.
    """
    a = np.asarray(a, dtype=np.float64).ravel()
    b = np.asarray(b, dtype=np.float64).ravel()
    if m < 2:
        raise ValueError(f"m must be >= 2, got {m}")
    if a.size < m or b.size < m:
        raise ValueError(f"both series must be at least m={m} long")
    n_a = a.size - m + 1
    n_b = b.size - m + 1
    mu_a, sigma_a = _rolling_stats(a, m)
    mu_b, sigma_b = _rolling_stats(b, m)

    # Initial sliding dot products between a's first window and all of b,
    # then updated in O(1) per step as a's window slides (STOMP recurrence).
    first = a[:m]
    size = 1
    while size < b.size + m:
        size <<= 1
    qt = np.fft.irfft(np.fft.rfft(b, size) * np.fft.rfft(first[::-1], size), size)[m - 1 : b.size]
    qt = qt[:n_b].copy()

    profile = np.empty(n_a)
    index = np.empty(n_a, dtype=np.int64)
    for i in range(n_a):
        if i > 0:
            # d(i, j) = d(i-1, j-1) - a[i-1]*b[j-1] + a[i+m-1]*b[j+m-1]
            qt[1:] = (
                qt_first_prev[:-1] - a[i - 1] * b[: n_b - 1] + a[i + m - 1] * b[m : m + n_b - 1]
            )
            qt[0] = np.dot(a[i : i + m], b[:m])
        qt_first_prev = qt.copy()
        dist_sq = np.full(n_b, 2.0 * m)
        ok = (sigma_a[i] > 1e-12) & (sigma_b > 1e-12)
        if sigma_a[i] > 1e-12:
            normalized = (qt[ok] - m * mu_a[i] * mu_b[ok]) / (m * sigma_a[i] * sigma_b[ok])
            dist_sq[ok] = 2.0 * m * (1.0 - normalized)
        dist = np.sqrt(np.maximum(dist_sq, 0.0))
        j = int(np.argmin(dist))
        profile[i] = dist[j]
        index[i] = j
    return profile, index


@dataclass(frozen=True)
class MatrixProfileMatch:
    """One cross-series match found by the matrix profile scan."""

    start_a: int
    start_b: int
    length: int
    distance: float

    @property
    def delay(self) -> int:
        """Implied delay of the matched shape in B relative to A."""
        return self.start_b - self.start_a


def matrix_profile_scan(
    a: np.ndarray,
    b: np.ndarray,
    lengths: Sequence[int],
    threshold_factor: float = 0.1,
) -> List[MatrixProfileMatch]:
    """Multi-length matrix profile scan (how the paper runs MatrixProfile).

    MatrixProfile needs the subsequence length fixed in advance; to search
    at multiple temporal scales the paper sweeps a set of lengths.  A
    window counts as a match when its profile distance is below
    ``threshold_factor * sqrt(2 m)`` -- i.e. within a small fraction of the
    uncorrelated distance.

    Returns:
        Matches across all lengths, best (relative) distance first.
    """
    out: List[MatrixProfileMatch] = []
    for m in lengths:
        profile, index = matrix_profile_ab(a, b, m)
        cutoff = threshold_factor * np.sqrt(2.0 * m)
        for i in np.nonzero(profile <= cutoff)[0]:
            out.append(
                MatrixProfileMatch(
                    start_a=int(i),
                    start_b=int(index[i]),
                    length=int(m),
                    distance=float(profile[i]),
                )
            )
    out.sort(key=lambda t: t.distance / np.sqrt(2.0 * t.length))
    return out

"""Baselines of the paper's evaluation (Section 8.1).

* :mod:`repro.baselines.pearson` -- Pearson Correlation Coefficient scan.
* :mod:`repro.baselines.mass` -- MASS subsequence similarity search.
* :mod:`repro.baselines.matrix_profile` -- STOMP matrix profile AB-join.
* :mod:`repro.baselines.amic` -- the authors' earlier top-down MI search.
"""

from repro.baselines.amic import amic_search
from repro.baselines.mass import MassMatch, mass_distance_profile, mass_top_matches
from repro.baselines.matrix_profile import (
    MatrixProfileMatch,
    matrix_profile_ab,
    matrix_profile_scan,
)
from repro.baselines.pearson import PccWindow, pcc, pcc_scan, sliding_pcc

__all__ = [
    "amic_search",
    "mass_distance_profile",
    "mass_top_matches",
    "MassMatch",
    "matrix_profile_ab",
    "matrix_profile_scan",
    "MatrixProfileMatch",
    "pcc",
    "sliding_pcc",
    "pcc_scan",
    "PccWindow",
]

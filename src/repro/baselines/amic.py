"""AMIC: Adaptive Mutual Information-based Correlation (paper [16, 17]).

AMIC is the authors' earlier *top-down* multi-scale correlation search and
the strongest baseline in the effectiveness study.  Starting from the whole
observation period it checks the (normalized) MI of the current window;
windows above the threshold are reported, windows below it are split in
half and the halves examined recursively, down to a minimum size.  Being
MI-based it detects every relation type -- but it has **no delay
dimension**: both series are always read over the *same* interval, so any
correlation shifted in time evaporates (Table 1, td = 150 column; Table 3,
the delay ranges AMIC misses).
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.config import TycosConfig
from repro.core.results import ResultSet, WindowResult
from repro.core.thresholds import BatchScorer
from repro.core.tycos import SearchStats, TycosResult
from repro.core.window import PairView, TimeDelayWindow

__all__ = ["amic_search"]


def amic_search(
    x: np.ndarray,
    y: np.ndarray,
    config: TycosConfig,
) -> TycosResult:
    """Top-down multi-scale correlation search without time delay.

    Args:
        x: first time series.
        y: second time series (same length).
        config: reuses the TYCOS parameter object; ``td_max`` is ignored
            (AMIC has no delay concept), ``sigma``/``s_min``/``s_max``
            carry their usual meaning.

    Returns:
        A :class:`TycosResult` whose windows all have ``delay == 0``.
    """
    started = time.perf_counter()
    pair = PairView(x, y, jitter=config.jitter, seed=config.seed)
    scorer = BatchScorer(pair, config)
    accepted = ResultSet()
    stats = SearchStats()

    def descend(start: int, end: int) -> None:
        size = end - start + 1
        if size < config.s_min:
            return
        window = TimeDelayWindow(start=start, end=end, delay=0)
        if size <= config.s_max:
            value = scorer.value(window)
            if value >= config.sigma:
                score = scorer.score(window)
                accepted.insert(WindowResult(window=window, mi=score.mi, nmi=score.nmi))
                return
        mid = start + size // 2 - 1
        descend(start, mid)
        descend(mid + 1, end)

    descend(0, pair.n - 1)
    stats.windows_evaluated = scorer.evaluations
    stats.cache_hits = scorer.cache_hits
    stats.runtime_seconds = time.perf_counter() - started
    return TycosResult(windows=accepted.results(), stats=stats)

"""Pearson Correlation Coefficient baseline (paper Section 8.1).

PCC is the traditional linear-correlation metric the paper compares
against.  It has no window-search mechanism of its own, so -- like the
paper -- we evaluate it as a sliding scan: the coefficient of every
fixed-size window at a given delay.  Detection succeeds when some window
reaches the threshold in absolute value; only linear (and, loosely,
monotonic) relations can do so.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

__all__ = [
    "pcc",
    "sliding_pcc",
    "sliding_pcc_band",
    "roll_sum_rows",
    "PccWindow",
    "pcc_scan",
]


def roll_sum_rows(block: np.ndarray, window: int) -> np.ndarray:
    """Row-wise rolling window sums of a 2-D block, via cumulative sums.

    The band kernel's one batched primitive, exposed so the cascade's
    collection-level screen state (:mod:`repro.analysis.screen_state`)
    computes its per-series and per-pair moments with the *same* recipe:
    ``cumsum(axis=1)`` accumulates each row in exactly the order of the
    1-D path, so every valid prefix carries floats bit-identical to
    ``sliding_pcc``'s ``roll_sum`` on that row alone.

    Args:
        block: ``(rows, width)`` float64 block.
        window: rolling window size ``m``.

    Returns:
        ``(rows, width - m + 1)`` rolling sums.
    """
    rows = block.shape[0]
    c = np.concatenate([np.zeros((rows, 1)), np.cumsum(block, axis=1)], axis=1)
    return c[:, window:] - c[:, :-window]


def pcc(x: np.ndarray, y: np.ndarray) -> float:
    """Pearson correlation coefficient of a paired sample.

    Returns 0.0 for degenerate (zero-variance) inputs instead of NaN,
    matching how a correlation scan must treat flat sensor stretches.
    """
    x = np.asarray(x, dtype=np.float64).ravel()
    y = np.asarray(y, dtype=np.float64).ravel()
    if x.size != y.size:
        raise ValueError("x and y must have equal length")
    if x.size < 2:
        raise ValueError("need at least 2 samples")
    sx = x.std()
    sy = y.std()
    if sx == 0.0 or sy == 0.0:
        return 0.0
    return float(np.mean((x - x.mean()) * (y - y.mean())) / (sx * sy))


def sliding_pcc(x: np.ndarray, y: np.ndarray, window: int, delay: int = 0) -> np.ndarray:
    """PCC of every length-``window`` window of (x, y_delayed), vectorized.

    Args:
        x: first series.
        y: second series (same length).
        window: window size ``m >= 2``.
        delay: pairing shift; ``y[i + delay]`` is matched with ``x[i]``.

    Returns:
        Array of coefficients; entry ``s`` covers ``x[s : s + m]`` paired
        with ``y[s + delay : s + delay + m]``.  Empty when nothing fits.
    """
    x = np.asarray(x, dtype=np.float64).ravel()
    y = np.asarray(y, dtype=np.float64).ravel()
    if x.size != y.size:
        raise ValueError("x and y must have equal length")
    if window < 2:
        raise ValueError(f"window must be >= 2, got {window}")
    n = x.size
    lo = max(0, -delay)
    hi = min(n, n - delay)  # exclusive bound on x index
    xs = x[lo:hi]
    ys = y[lo + delay : hi + delay]
    m = window
    if xs.size < m:
        return np.empty(0)
    # Rolling sums via cumulative sums: O(n) regardless of window size.
    def roll_sum(a: np.ndarray) -> np.ndarray:
        c = np.concatenate([[0.0], np.cumsum(a)])
        return c[m:] - c[:-m]

    sx = roll_sum(xs)
    sy = roll_sum(ys)
    sxx = roll_sum(xs * xs)
    syy = roll_sum(ys * ys)
    sxy = roll_sum(xs * ys)
    cov = sxy - sx * sy / m
    varx = sxx - sx * sx / m
    vary = syy - sy * sy / m
    denom = np.sqrt(np.maximum(varx, 0.0) * np.maximum(vary, 0.0))
    out = np.zeros_like(cov)
    ok = denom > 1e-12
    out[ok] = cov[ok] / denom[ok]
    return np.clip(out, -1.0, 1.0)


def sliding_pcc_band(
    x: np.ndarray, y: np.ndarray, window: int, delays: Sequence[int]
) -> List[np.ndarray]:
    """:func:`sliding_pcc` for a whole delay band in one batched pass.

    The per-delay path runs five O(n) rolling sums per delay from Python;
    this kernel stacks every delay's aligned slices into one zero-padded
    ``(len(delays), n)`` block and performs the identical cumulative-sum
    arithmetic across the whole band in single numpy calls.  Because the
    accumulation order within each row is exactly the per-delay order and
    the trailing zero padding never enters a valid prefix, every returned
    coefficient is **bit-identical** to ``sliding_pcc(x, y, window, d)``
    -- asserted by the tier-1 suite, so the cascade's stage-1 screen and
    :func:`pcc_scan` can use whichever path is convenient without the
    results depending on it.

    Args:
        x: first series.
        y: second series (same length).
        window: window size ``m >= 2``.
        delays: pairing shifts to evaluate (any order, duplicates kept).

    Returns:
        One coefficient array per entry of ``delays``, each bit-identical
        to the corresponding :func:`sliding_pcc` call (empty when nothing
        fits at that delay).
    """
    x = np.asarray(x, dtype=np.float64).ravel()
    y = np.asarray(y, dtype=np.float64).ravel()
    if x.size != y.size:
        raise ValueError("x and y must have equal length")
    if window < 2:
        raise ValueError(f"window must be >= 2, got {window}")
    n = x.size
    m = window
    band = [int(d) for d in delays]
    if not band:
        return []
    lengths = [max(0, min(n, n - d) - max(0, -d)) for d in band]
    out_lengths = [max(0, length - m + 1) for length in lengths]
    width = max(lengths)
    if width < m:
        return [np.empty(0) for _ in band]
    rows = len(band)
    xs = np.zeros((rows, width))
    ys = np.zeros((rows, width))
    for j, d in enumerate(band):
        lo = max(0, -d)
        length = lengths[j]
        if length:
            xs[j, :length] = x[lo : lo + length]
            ys[j, :length] = y[lo + d : lo + d + length]

    # Batched rolling sums: one cumsum over the whole band per moment.
    sx = roll_sum_rows(xs, m)
    sy = roll_sum_rows(ys, m)
    sxx = roll_sum_rows(xs * xs, m)
    syy = roll_sum_rows(ys * ys, m)
    sxy = roll_sum_rows(xs * ys, m)
    cov = sxy - sx * sy / m
    varx = sxx - sx * sx / m
    vary = syy - sy * sy / m
    denom = np.sqrt(np.maximum(varx, 0.0) * np.maximum(vary, 0.0))
    out = np.zeros_like(cov)
    ok = denom > 1e-12
    out[ok] = cov[ok] / denom[ok]
    out = np.clip(out, -1.0, 1.0)
    return [out[j, : out_lengths[j]].copy() for j in range(rows)]


@dataclass(frozen=True)
class PccWindow:
    """A window located by the PCC scan."""

    start: int
    end: int
    delay: int
    coefficient: float


def pcc_scan(
    x: np.ndarray,
    y: np.ndarray,
    window: int,
    td_max: int = 0,
    threshold: float = 0.8,
    delays: Optional[List[int]] = None,
) -> List[PccWindow]:
    """Scan for windows whose |PCC| reaches a threshold, across delays.

    This gives PCC the fairest possible shot in the Table-1 comparison: a
    full sweep over all delays in ``[-td_max, td_max]`` (or an explicit
    delay list), not just the synchronous alignment.

    Returns:
        Non-overlapping detected windows (greedy by |coefficient|).
    """
    if delays is None:
        delays = list(range(-td_max, td_max + 1))
    candidates: List[PccWindow] = []
    for delay, coeffs in zip(delays, sliding_pcc_band(x, y, window, delays)):
        offset = max(0, -delay)
        for s in np.nonzero(np.abs(coeffs) >= threshold)[0]:
            candidates.append(
                PccWindow(
                    start=int(s) + offset,
                    end=int(s) + offset + window - 1,
                    delay=delay,
                    coefficient=float(coeffs[s]),
                )
            )
    candidates.sort(key=lambda w: -abs(w.coefficient))
    picked: List[PccWindow] = []
    for cand in candidates:
        if all(cand.end < p.start or cand.start > p.end for p in picked):
            picked.append(cand)
    picked.sort(key=lambda w: w.start)
    return picked

"""MASS: Mueen's Algorithm for Similarity Search (paper Section 8.1, [25]).

MASS computes the z-normalized Euclidean distance between a query
subsequence and *every* subsequence of a longer series in O(n log n) using
FFT convolution.  It is the state of the art for subsequence matching, but
-- as the paper stresses -- it measures *similarity*, not statistical
dependence: it needs a user-provided query, and non-linear/non-functional
relations produce no shape similarity for it to find.

The z-normalized distance relates to PCC as ``d^2 = 2m(1 - r)``, so MASS
inherits PCC's blindness to everything except (shifted/scaled) shape
matches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

__all__ = ["mass_fft_size", "mass_distance_profile", "MassMatch", "mass_top_matches"]


def mass_fft_size(n: int, m: int) -> int:
    """The padded power-of-two FFT size of a MASS convolution.

    The linear convolution of a length-``n`` series with a length-``m``
    query needs at least ``n + m`` samples of padding to avoid circular
    wrap-around; MASS rounds up to a power of two.  Exposed so callers
    that precompute spectra (the cascade's collection-level screen
    state) agree with :func:`mass_distance_profile` about the padded
    size -- a mismatched size changes every float of the profile.
    """
    size = 1
    while size < n + m:
        size <<= 1
    return size


def mass_distance_profile(query: np.ndarray, series: np.ndarray) -> np.ndarray:
    """Z-normalized Euclidean distance from ``query`` to every subsequence.

    Args:
        query: pattern of length ``m``.
        series: series of length ``n >= m``.

    Returns:
        Distance profile of length ``n - m + 1``; entry i is the distance
        between the query and ``series[i : i + m]``.  Flat subsequences
        (zero variance) get distance ``sqrt(2m)`` (the uncorrelated value).
    """
    query = np.asarray(query, dtype=np.float64).ravel()
    series = np.asarray(series, dtype=np.float64).ravel()
    m = query.size
    n = series.size
    if m < 2:
        raise ValueError(f"query must have at least 2 samples, got {m}")
    if n < m:
        raise ValueError(f"series ({n}) must be at least as long as query ({m})")

    sigma_q = query.std()
    if sigma_q == 0.0:
        return np.full(n - m + 1, np.sqrt(2.0 * m))
    q_norm = (query - query.mean()) / sigma_q

    # Sliding dot products via FFT: conv(series, reversed(query)).
    size = mass_fft_size(n, m)
    fft_series = np.fft.rfft(series, size)
    fft_query = np.fft.rfft(q_norm[::-1], size)
    qt = np.fft.irfft(fft_series * fft_query, size)[m - 1 : n]

    # Rolling mean / std of the series subsequences.
    cumsum = np.concatenate([[0.0], np.cumsum(series)])
    cumsum2 = np.concatenate([[0.0], np.cumsum(series * series)])
    seg_sum = cumsum[m:] - cumsum[:-m]
    seg_sum2 = cumsum2[m:] - cumsum2[:-m]
    mu = seg_sum / m
    var = np.maximum(seg_sum2 / m - mu * mu, 0.0)
    sigma = np.sqrt(var)

    # For z-normalized q (mean 0), dot(q_norm, (s - mu)/sigma) = qt / sigma.
    dist_sq = np.full(n - m + 1, 2.0 * m)
    ok = sigma > 1e-12
    dist_sq[ok] = 2.0 * m * (1.0 - (qt[ok]) / (m * sigma[ok]))
    return np.sqrt(np.maximum(dist_sq, 0.0))


@dataclass(frozen=True)
class MassMatch:
    """One subsequence match found by MASS."""

    position: int
    distance: float


def mass_top_matches(
    query: np.ndarray,
    series: np.ndarray,
    top: int = 1,
    exclusion: int | None = None,
) -> List[MassMatch]:
    """The ``top`` best non-trivially-overlapping matches of a query.

    Args:
        query: pattern to search for.
        series: series to search in.
        top: number of matches to return.
        exclusion: minimum spacing between reported matches (defaults to
            half the query length, the usual trivial-match exclusion zone).

    Returns:
        Matches ordered by ascending distance.
    """
    profile = mass_distance_profile(query, series)
    if exclusion is None:
        exclusion = max(1, query.size // 2)
    profile = profile.copy()
    out: List[MassMatch] = []
    for _ in range(top):
        pos = int(np.argmin(profile))
        if not np.isfinite(profile[pos]):
            break
        out.append(MassMatch(position=pos, distance=float(profile[pos])))
        lo = max(0, pos - exclusion)
        hi = min(profile.size, pos + exclusion + 1)
        profile[lo:hi] = np.inf
    return out

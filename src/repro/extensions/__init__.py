"""Extensions: the paper's stated future-work directions, implemented.

* :mod:`repro.extensions.spatial` -- correlations across spatial
  dimensions (sensor networks, propagation-velocity recovery).
* :mod:`repro.extensions.causality` -- lead-lag / transfer-entropy
  direction analysis on extracted windows.
* :mod:`repro.extensions.recurrence` -- mining recurring correlation
  patterns (time-of-day bands) from search output.
* :mod:`repro.extensions.streaming` -- online correlation monitoring
  built on the Section-7 sliding engine.
"""

from repro.extensions.causality import (
    CausalityReport,
    WindowDirection,
    analyze_directions,
)
from repro.extensions.recurrence import RecurrenceReport, RecurringPattern, mine_recurrence
from repro.extensions.spatial import (
    SpatialFinding,
    SpatialReport,
    estimate_propagation,
    spatial_scan,
)
from repro.extensions.streaming import CorrelationEvent, StreamingMonitor

__all__ = [
    "analyze_directions",
    "CausalityReport",
    "WindowDirection",
    "spatial_scan",
    "estimate_propagation",
    "SpatialReport",
    "SpatialFinding",
    "mine_recurrence",
    "RecurrenceReport",
    "RecurringPattern",
    "StreamingMonitor",
    "CorrelationEvent",
]

"""Online correlation monitoring over streaming pairs.

TYCOS as shipped is a batch search; IoT deployments, however, watch
sensors *live*.  This monitor turns the Section-7 sliding engine into an
online detector: samples arrive one pair at a time, a bank of trailing
windows at several scales is maintained incrementally (one
:class:`repro.mi.SlidingKSG` per (scale, delay) lane, each updated in
O(window) per sample instead of recomputed), and an event is emitted
whenever a lane's normalized MI crosses the threshold -- with hysteresis,
so one sustained correlation episode yields one event, not hundreds.

A lane with delay ``d`` pairs ``x[t - d]`` with ``y[t]``: the correlation
"y lags x by d" completes each pairing the moment the lagging y sample
arrives, so detection latency is exactly the lag plus the window fill.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Sequence

import numpy as np

from repro.mi.entropy import binned_joint_entropy
from repro.mi.incremental import SlidingKSG
from repro.mi.normalized import normalize_value

__all__ = ["CorrelationEvent", "StreamingMonitor"]


@dataclass(frozen=True)
class CorrelationEvent:
    """One detected correlation episode.

    Attributes:
        time: sample index at which the episode was confirmed.
        scale: trailing window size of the detecting lane.
        delay: the lane's delay (y lags x by this many samples).
        nmi: normalized MI at detection.
    """

    time: int
    scale: int
    delay: int
    nmi: float


@dataclass
class _Lane:
    scale: int
    delay: int
    engine: SlidingKSG
    xs: Deque[float]
    ys: Deque[float]
    oldest: int = 0  # smallest live point id in the engine
    active: bool = False


class StreamingMonitor:
    """Multi-scale online detector of lagged correlations.

    Args:
        scales: trailing window sizes to monitor.
        delays: delays to monitor (0 = synchronous; positive = y lags x).
        sigma: normalized-MI threshold that opens an episode.
        release: threshold that closes it (hysteresis; default
            ``0.8 * sigma``).
        k: KSG neighbor count.
        jitter: magnitude of deterministic de-tying noise added to every
            pushed sample (integer-valued feeds otherwise break the kNN).

    Usage::

        monitor = StreamingMonitor(scales=(64,), delays=(0, 5), sigma=0.5)
        for xv, yv in zip(x_feed, y_feed):
            for event in monitor.push(xv, yv):
                print("correlated!", event)
    """

    def __init__(
        self,
        scales: Sequence[int] = (64, 128),
        delays: Sequence[int] = (0,),
        sigma: float = 0.5,
        release: Optional[float] = None,
        k: int = 4,
        jitter: float = 0.0,
    ):
        if not scales:
            raise ValueError("need at least one scale")
        if not delays:
            raise ValueError("need at least one delay")
        if sigma <= 0:
            raise ValueError(f"sigma must be > 0, got {sigma}")
        if any(s < k + 2 for s in scales):
            raise ValueError(f"every scale must be >= k+2={k + 2}")
        if any(d < 0 for d in delays):
            raise ValueError("delays must be >= 0 (y lagging x)")
        self.sigma = sigma
        self.release = release if release is not None else 0.8 * sigma
        self.k = k
        self.jitter = jitter
        self._rng = np.random.default_rng(0)
        self._time = -1
        self._x_history: Deque[float] = deque(maxlen=max(delays) + 1)
        self._lanes: List[_Lane] = [
            _Lane(
                scale=s,
                delay=d,
                engine=SlidingKSG(k=k),
                xs=deque(maxlen=s),
                ys=deque(maxlen=s),
            )
            for s in scales
            for d in delays
        ]
        self.events: List[CorrelationEvent] = []

    @property
    def time(self) -> int:
        """Index of the last pushed sample (-1 before the first)."""
        return self._time

    def push(self, x_value: float, y_value: float) -> List[CorrelationEvent]:
        """Feed one sample pair; returns the events confirmed at this step."""
        self._time += 1
        x_value = float(x_value)
        y_value = float(y_value)
        if self.jitter > 0.0:
            x_value += self.jitter * float(self._rng.normal())
            y_value += self.jitter * float(self._rng.normal())
        self._x_history.append(x_value)
        emitted: List[CorrelationEvent] = []
        for lane in self._lanes:
            if self._time < lane.delay:
                continue  # the pairing x[t-d] does not exist yet
            x_paired = self._x_history[-1 - lane.delay]
            lane.xs.append(x_paired)
            lane.ys.append(y_value)
            lane.engine.add(self._time, x_paired, y_value)
            if len(lane.engine) == 1:
                lane.oldest = self._time
            while len(lane.engine) > lane.scale:
                lane.engine.remove(lane.oldest)
                lane.oldest += 1
            event = self._lane_check(lane)
            if event is not None:
                emitted.append(event)
        self.events.extend(emitted)
        return emitted

    def _lane_check(self, lane: _Lane) -> Optional[CorrelationEvent]:
        if len(lane.engine) < lane.scale:
            return None
        mi = lane.engine.mi()
        xs = np.asarray(lane.xs)
        ys = np.asarray(lane.ys)
        nmi = normalize_value(mi, binned_joint_entropy(xs, ys))
        if not lane.active and nmi >= self.sigma:
            lane.active = True
            return CorrelationEvent(
                time=self._time, scale=lane.scale, delay=lane.delay, nmi=nmi
            )
        if lane.active and nmi < self.release:
            lane.active = False
        return None

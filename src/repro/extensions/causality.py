"""Causal-direction analysis on extracted correlation windows.

The paper's conclusion: "the result of this work can also provide a
foundation for deeper data analysis, such as ... infer[ring] causal
effects from the extracted correlations."  This module takes that step
for each window TYCOS extracts:

* **Delay evidence** -- a window extracted at delay ``tau > 0`` already
  says the X-side events precede their Y-side echo.
* **Transfer-entropy evidence** -- within the window, compare
  ``TE(X -> Y)`` against ``TE(Y -> X)`` (conditional-MI based, see
  :mod:`repro.mi.cmi`); a positive gap supports X driving Y beyond what
  the delay alone shows (it controls for Y's own history).

The verdicts are deliberately conservative: correlation plus lead-lag
structure is *evidence of direction*, not proof of causation, and the
report says so in its labels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.tycos import TycosResult
from repro.core.window import PairView, TimeDelayWindow
from repro.experiments.reporting import format_table, title
from repro.mi.cmi import transfer_entropy

__all__ = ["DirectionVerdict", "WindowDirection", "CausalityReport", "analyze_directions"]

#: Verdict labels, deliberately modest in their claims.
DirectionVerdict = str
X_LEADS = "x-leads-y"
Y_LEADS = "y-leads-x"
UNDECIDED = "undecided"


@dataclass(frozen=True)
class WindowDirection:
    """Direction evidence for one extracted window.

    Attributes:
        window: the extracted window.
        te_forward: transfer entropy X -> Y inside the window (nats).
        te_backward: transfer entropy Y -> X inside the window (nats).
        verdict: combined lead-lag verdict.
    """

    window: TimeDelayWindow
    te_forward: float
    te_backward: float
    verdict: DirectionVerdict

    @property
    def te_gap(self) -> float:
        """Positive when the X -> Y direction carries more information."""
        return self.te_forward - self.te_backward


@dataclass
class CausalityReport:
    """Direction analysis over a search result."""

    directions: List[WindowDirection] = field(default_factory=list)

    def consensus(self) -> DirectionVerdict:
        """Majority verdict across windows (ties -> undecided)."""
        votes = {X_LEADS: 0, Y_LEADS: 0, UNDECIDED: 0}
        for d in self.directions:
            votes[d.verdict] += 1
        if votes[X_LEADS] > votes[Y_LEADS]:
            return X_LEADS
        if votes[Y_LEADS] > votes[X_LEADS]:
            return Y_LEADS
        return UNDECIDED

    def to_text(self) -> str:
        """Render per-window evidence plus the consensus."""
        headers = ["window", "delay", "TE(x->y)", "TE(y->x)", "verdict"]
        rows = [
            [
                f"[{d.window.start}, {d.window.end}]",
                d.window.delay,
                f"{d.te_forward:.3f}",
                f"{d.te_backward:.3f}",
                d.verdict,
            ]
            for d in self.directions
        ]
        body = format_table(headers, rows)
        return (
            title("Lead-lag direction analysis")
            + "\n"
            + body
            + f"\nconsensus: {self.consensus()}"
            + "\n(correlation + lead-lag structure, not proof of causation)"
        )


def _window_verdict(delay: int, te_gap: float, te_threshold: float) -> DirectionVerdict:
    delay_vote = np.sign(delay)
    te_vote = np.sign(te_gap) if abs(te_gap) >= te_threshold else 0
    score = delay_vote + te_vote
    if score > 0:
        return X_LEADS
    if score < 0:
        return Y_LEADS
    return UNDECIDED


def analyze_directions(
    x: np.ndarray,
    y: np.ndarray,
    result: TycosResult,
    te_lag: Optional[int] = None,
    te_threshold: float = 0.05,
    k: int = 4,
    min_window: int = 30,
) -> CausalityReport:
    """Judge the lead-lag direction of every extracted window.

    Args:
        x: the original X series the search ran on.
        y: the original Y series.
        result: the search result whose windows are analyzed.
        te_lag: history offset for the transfer entropies (default: the
            window's own |delay|, clamped to >= 1).
        te_threshold: minimum |TE gap| (nats) counted as directional
            evidence; below it only the window's delay sign votes.
        k: KSG neighbor count for the conditional MI.
        min_window: windows smaller than this are marked undecided (the
            conditional estimator needs more samples than plain KSG).

    Returns:
        A :class:`CausalityReport`.
    """
    pair = PairView(x, y)
    report = CausalityReport()
    for r in result.windows:
        w = r.window
        if w.size < min_window:
            report.directions.append(
                WindowDirection(window=w, te_forward=0.0, te_backward=0.0, verdict=UNDECIDED)
            )
            continue
        # The aligned spans covering both the window and its echo.
        lo = max(0, min(w.start, w.y_start))
        hi = min(pair.n - 1, max(w.end, w.y_end))
        xs = pair.x[lo : hi + 1]
        ys = pair.y[lo : hi + 1]
        lag = te_lag if te_lag is not None else max(1, abs(w.delay))
        if xs.size <= lag + k + 2:
            report.directions.append(
                WindowDirection(window=w, te_forward=0.0, te_backward=0.0, verdict=UNDECIDED)
            )
            continue
        forward = transfer_entropy(xs, ys, lag=lag, k=k)
        backward = transfer_entropy(ys, xs, lag=lag, k=k)
        verdict = _window_verdict(w.delay, forward - backward, te_threshold)
        report.directions.append(
            WindowDirection(window=w, te_forward=forward, te_backward=backward, verdict=verdict)
        )
    return report

"""Mining recurring patterns from extracted correlation windows.

The paper's interpretation of its Table-3 findings is all about
recurrence: "the correlation occurs frequently from 6.00 to 7.00",
"frequent activities of kitchen from 16.00 to 19.00".  This module turns
that reading into code: given the windows TYCOS extracted from a long
recording, group them by their phase within a period (a day, a week) and
report the recurring time-of-day bands, their support, and their typical
delay -- the "pattern mining on extracted correlations" the paper lists
as follow-up work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.results import WindowResult
from repro.experiments.reporting import format_table, title

__all__ = ["RecurringPattern", "RecurrenceReport", "mine_recurrence"]


@dataclass(frozen=True)
class RecurringPattern:
    """A recurring correlation band within the period.

    Attributes:
        phase_start: band start as a phase offset within the period
            (samples into the period).
        phase_end: band end (samples into the period, inclusive).
        support: number of distinct periods contributing a window.
        occurrences: total windows in the band.
        median_delay: median delay of the contributing windows.
        mean_nmi: mean normalized MI of the contributing windows.
    """

    phase_start: int
    phase_end: int
    support: int
    occurrences: int
    median_delay: float
    mean_nmi: float


@dataclass
class RecurrenceReport:
    """Recurring patterns mined from a window set."""

    period: int
    patterns: List[RecurringPattern] = field(default_factory=list)

    def to_text(self, samples_per_hour: float = 0.0) -> str:
        """Render the mined bands; with ``samples_per_hour`` given, the
        phases are also printed as clock times."""
        headers = ["phase band", "support", "windows", "median delay", "mean nmi"]
        rows = []
        for p in self.patterns:
            band = f"[{p.phase_start}, {p.phase_end}]"
            if samples_per_hour > 0:
                h0 = p.phase_start / samples_per_hour
                h1 = p.phase_end / samples_per_hour
                band += f" ({h0:04.1f}h-{h1:04.1f}h)"
            rows.append(
                [band, p.support, p.occurrences, f"{p.median_delay:+.0f}", f"{p.mean_nmi:.2f}"]
            )
        return title(f"Recurring correlations (period = {self.period})") + "\n" + format_table(
            headers, rows
        )


def mine_recurrence(
    windows: Sequence[WindowResult],
    period: int,
    min_support: int = 2,
    gap_tolerance: int | None = None,
) -> RecurrenceReport:
    """Group extracted windows into recurring phase bands.

    Args:
        windows: the search output (e.g. ``result.windows``).
        period: the recurrence period in samples (e.g. one day).
        min_support: minimum number of *distinct periods* a band must draw
            windows from to count as recurring.
        gap_tolerance: phase gap that still merges two windows into one
            band (default: ``period // 24``, i.e. an hour for daily data).

    Returns:
        A :class:`RecurrenceReport`, strongest-support bands first.
    """
    if period < 2:
        raise ValueError(f"period must be >= 2, got {period}")
    if min_support < 1:
        raise ValueError(f"min_support must be >= 1, got {min_support}")
    if gap_tolerance is None:
        gap_tolerance = max(1, period // 24)
    if not windows:
        return RecurrenceReport(period=period)

    # Each window contributes its phase interval (may wrap at the period).
    entries: List[Tuple[int, int, int, WindowResult]] = []  # (phase_lo, phase_hi, cycle, w)
    for r in windows:
        cycle = r.window.start // period
        lo = r.window.start % period
        hi = lo + r.window.size - 1
        entries.append((lo, hi, cycle, r))
    entries.sort(key=lambda e: e[0])

    # Merge phase intervals closer than the tolerance into bands.
    bands: List[List[Tuple[int, int, int, WindowResult]]] = []
    for entry in entries:
        if bands and entry[0] <= max(e[1] for e in bands[-1]) + gap_tolerance:
            bands[-1].append(entry)
        else:
            bands.append([entry])

    report = RecurrenceReport(period=period)
    for band in bands:
        cycles = {e[2] for e in band}
        if len(cycles) < min_support:
            continue
        results = [e[3] for e in band]
        report.patterns.append(
            RecurringPattern(
                phase_start=min(e[0] for e in band),
                phase_end=min(max(e[1] for e in band), period - 1),
                support=len(cycles),
                occurrences=len(band),
                median_delay=float(np.median([r.window.delay for r in results])),
                mean_nmi=float(np.mean([r.nmi for r in results])),
            )
        )
    report.patterns.sort(key=lambda p: (-p.support, -p.occurrences))
    return report

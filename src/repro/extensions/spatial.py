"""Spatio-temporal correlation search (the paper's stated future work).

"In future work, TYCOS can be extended to capture correlations across
spatial dimensions."  This module does exactly that for a network of
sensors at known coordinates:

* :func:`spatial_scan` -- run TYCOS over station pairs, pruned by a
  maximum spatial distance (distant stations cannot share a local
  phenomenon, the spatial analogue of ``td_max``).
* :func:`estimate_propagation` -- regress the observed pairwise delays
  against the station displacement vectors; for a phenomenon moving at
  constant velocity ``v``, the expected delay between stations a and b is
  ``dot(p_b - p_a, v) / |v|^2``, so the least-squares fit recovers the
  front's speed and heading from TYCOS output alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import List, Optional, Tuple

import numpy as np

from repro.core.config import TycosConfig
from repro.core.tycos import Tycos
from repro.data.spatial import SpatialDataset, Station
from repro.experiments.reporting import format_table, title

__all__ = ["SpatialFinding", "SpatialReport", "spatial_scan", "estimate_propagation"]


@dataclass(frozen=True)
class SpatialFinding:
    """The correlation found between one station pair.

    Attributes:
        source: X-side station name.
        target: Y-side station name.
        distance: Euclidean separation.
        displacement: (dx, dy) from source to target.
        windows: number of extracted windows.
        median_delay: median delay over the windows (samples), or None.
    """

    source: str
    target: str
    distance: float
    displacement: Tuple[float, float]
    windows: int
    median_delay: Optional[float]


@dataclass
class SpatialReport:
    """Outcome of a spatial scan."""

    findings: List[SpatialFinding] = field(default_factory=list)
    pruned: List[Tuple[str, str]] = field(default_factory=list)

    def correlated(self) -> List[SpatialFinding]:
        """Pairs with extracted windows, nearest first."""
        return sorted(
            (f for f in self.findings if f.windows > 0), key=lambda f: f.distance
        )

    def to_text(self) -> str:
        """Render the scan as a table."""
        headers = ["pair", "distance", "windows", "median delay"]
        rows = [
            [
                f"{f.source} -> {f.target}",
                f"{f.distance:.1f}",
                f.windows,
                "-" if f.median_delay is None else f"{f.median_delay:+.0f}",
            ]
            for f in self.correlated()
        ]
        body = format_table(headers, rows)
        note = f"\n({len(self.pruned)} pairs beyond the distance bound)" if self.pruned else ""
        return title("Spatial correlation scan") + "\n" + body + note


def spatial_scan(
    dataset: SpatialDataset,
    config: TycosConfig,
    max_distance: Optional[float] = None,
    engine: Optional[Tycos] = None,
) -> SpatialReport:
    """Search every station pair within a spatial distance bound.

    Args:
        dataset: the spatial sensor collection.
        config: TYCOS parameters shared by all pairs.
        max_distance: pairs farther apart than this are pruned without a
            search (None disables spatial pruning).
        engine: optional preconfigured engine (default TYCOS_LMN).

    Returns:
        A :class:`SpatialReport` with one finding per searched pair.
    """
    if engine is None:
        engine = Tycos(config)
    report = SpatialReport()
    names = sorted(dataset.stations)
    for a, b in combinations(names, 2):
        sa: Station = dataset.stations[a]
        sb: Station = dataset.stations[b]
        distance = sa.distance_to(sb)
        if max_distance is not None and distance > max_distance:
            report.pruned.append((a, b))
            continue
        x, y = dataset.pair(a, b)
        result = engine.search(x, y)
        delays = result.delays()
        report.findings.append(
            SpatialFinding(
                source=a,
                target=b,
                distance=distance,
                displacement=(sb.x - sa.x, sb.y - sa.y),
                windows=len(result.windows),
                median_delay=float(np.median(delays)) if delays else None,
            )
        )
    return report


def estimate_propagation(report: SpatialReport) -> Optional[Tuple[float, float]]:
    """Recover the phenomenon's velocity from the pairwise delays.

    Solves the least-squares system ``dot(displacement_i, w) = delay_i``
    whose solution is ``w = v / |v|^2``; inverting gives the velocity.

    Returns:
        The estimated ``(vx, vy)`` in distance units per sample, or None
        when fewer than two non-collinear correlated pairs are available.
    """
    usable = [f for f in report.findings if f.windows > 0 and f.median_delay is not None]
    if len(usable) < 2:
        return None
    displacements = np.array([f.displacement for f in usable])
    delays = np.array([f.median_delay for f in usable])
    if np.linalg.matrix_rank(displacements) < 2:
        return None
    w, *_ = np.linalg.lstsq(displacements, delays, rcond=None)
    norm_sq = float(w @ w)
    if norm_sq == 0:
        return None
    v = w / norm_sq
    return (float(v[0]), float(v[1]))

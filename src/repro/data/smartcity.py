"""Synthetic weather / traffic-incident simulator (substitute for NYC [2]).

The paper's smart-city experiments correlate NYC Open Data weather
variables (precipitation, wind speed, snow) with collision records
(collisions, pedestrians injured, motorists killed).  This module
simulates the same structure: weather events arrive as episodes, and the
incident counts respond through a *lagged* intensity boost -- rain raises
the collision rate half an hour to two hours after onset, wind affects
motorists faster, and so on, mirroring the Table-3 findings C7-C10.

Incident channels are Poisson counts over a diurnal baseline, so the
resulting series have realistic integer/zero-inflated marginals; callers
should enable the jitter option of :class:`repro.core.window.PairView`
(the packaged configs do) to de-tie them for the KSG estimator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

__all__ = [
    "SmartCityDataset",
    "CityCoupling",
    "EXPECTED_CITY_COUPLINGS",
    "simulate_smartcity",
    "WEATHER_VARIABLES",
    "INCIDENT_VARIABLES",
]

WEATHER_VARIABLES = ("precipitation", "wind_speed", "snow")
INCIDENT_VARIABLES = ("collisions", "pedestrian_injured", "motorist_killed", "cyclist_injured")


@dataclass(frozen=True)
class CityCoupling:
    """A planted weather -> incident coupling.

    Attributes:
        source: weather variable.
        target: incident variable.
        lag_minutes: (min, max) of the planted onset lag.
        label: the Table-3 correlation id (C7 ... C10).
    """

    source: str
    target: str
    lag_minutes: Tuple[int, int]
    label: str


#: The Table-3 weather couplings with the paper's reported delay ranges.
EXPECTED_CITY_COUPLINGS: Tuple[CityCoupling, ...] = (
    CityCoupling("precipitation", "collisions", (30, 120), "C7"),
    CityCoupling("wind_speed", "collisions", (15, 60), "C8"),
    CityCoupling("precipitation", "pedestrian_injured", (30, 120), "C9"),
    CityCoupling("wind_speed", "motorist_killed", (15, 60), "C10"),
)


@dataclass
class SmartCityDataset:
    """Simulated 5-minute-resolution weather and incident series."""

    series: Dict[str, np.ndarray]
    minutes_per_sample: int
    days: int
    episodes: List[Tuple[str, int, int]] = field(default_factory=list)

    @property
    def n(self) -> int:
        """Number of samples per variable."""
        return next(iter(self.series.values())).size

    def pair(self, a: str, b: str) -> Tuple[np.ndarray, np.ndarray]:
        """The time series pair of two variables."""
        return self.series[a], self.series[b]

    def variable_names(self) -> List[str]:
        """All simulated variables."""
        return list(self.series)


def simulate_smartcity(
    days: int = 14,
    seed: int = 0,
    minutes_per_sample: int = 5,
    storms_per_week: float = 4.0,
) -> SmartCityDataset:
    """Simulate weather episodes and lag-responding incident counts.

    Args:
        days: number of simulated days.
        seed: randomness seed.
        minutes_per_sample: resolution (paper weather data: 5 minutes).
        storms_per_week: expected precipitation episodes per week.

    Returns:
        A :class:`SmartCityDataset` holding all weather and incident
        variables.
    """
    if days < 1:
        raise ValueError(f"days must be >= 1, got {days}")
    rng = np.random.default_rng(seed)
    per_day = 24 * 60 // minutes_per_sample
    n = days * per_day
    t = np.arange(n)

    precipitation = np.zeros(n)
    wind = 4.0 + 1.5 * np.abs(rng.normal(size=n))
    snow = np.zeros(n)
    episodes: List[Tuple[str, int, int]] = []

    # Weather episodes: rain, windstorms, occasional snow.
    n_rain = rng.poisson(storms_per_week * days / 7.0)
    rain_boost = np.zeros(n)
    for _ in range(n_rain):
        start = int(rng.uniform(0, n))
        duration = int(rng.uniform(60, 360) / minutes_per_sample)
        intensity = rng.uniform(0.5, 2.0)
        hi = min(n, start + duration)
        profile = intensity * np.sin(np.linspace(0.1, np.pi - 0.1, hi - start)) ** 2
        precipitation[start:hi] += profile * 8.0
        episodes.append(("precipitation", start, hi))
        # Lagged effect on incidents: ramp in after 30-120 min.
        lag = int(rng.uniform(30, 120) / minutes_per_sample)
        effect_hi = min(n, hi + lag)
        rain_boost[min(n, start + lag) : effect_hi] += profile[: effect_hi - min(n, start + lag)]

    n_wind = rng.poisson(storms_per_week * days / 7.0)
    wind_boost = np.zeros(n)
    for _ in range(n_wind):
        start = int(rng.uniform(0, n))
        duration = int(rng.uniform(45, 240) / minutes_per_sample)
        intensity = rng.uniform(0.5, 2.0)
        hi = min(n, start + duration)
        profile = intensity * np.sin(np.linspace(0.1, np.pi - 0.1, hi - start)) ** 2
        wind[start:hi] += profile * 12.0
        episodes.append(("wind_speed", start, hi))
        lag = int(rng.uniform(15, 60) / minutes_per_sample)
        effect_hi = min(n, hi + lag)
        wind_boost[min(n, start + lag) : effect_hi] += profile[: effect_hi - min(n, start + lag)]

    n_snow = rng.poisson(days / 4.0)
    snow_boost = np.zeros(n)
    for _ in range(n_snow):
        start = int(rng.uniform(0, n))
        duration = int(rng.uniform(120, 600) / minutes_per_sample)
        intensity = rng.uniform(0.5, 1.5)
        hi = min(n, start + duration)
        profile = intensity * np.sin(np.linspace(0.1, np.pi - 0.1, hi - start))
        snow[start:hi] += profile * 4.0
        episodes.append(("snow", start, hi))
        # Snowfall slows traffic and raises the accident rate 30-90 minutes
        # after onset (used by the Fig.-13 (Snow, Collision) sweeps).
        lag = int(rng.uniform(30, 90) / minutes_per_sample)
        effect_hi = min(n, hi + lag)
        snow_boost[min(n, start + lag) : effect_hi] += profile[: effect_hi - min(n, start + lag)]

    # Diurnal traffic baseline: two rush-hour humps.
    hour = (t * minutes_per_sample / 60.0) % 24.0
    diurnal = (
        0.6
        + 0.9 * np.exp(-0.5 * ((hour - 8.5) / 1.5) ** 2)
        + 1.0 * np.exp(-0.5 * ((hour - 17.5) / 2.0) ** 2)
    )

    # Incident rates: baseline * (1 + weather effects), channel-specific.
    # Rates are scaled so the Poisson counts are information-bearing at the
    # window sizes TYCOS evaluates (a handful of expected events per window).
    collisions_rate = 4.0 * diurnal * (
        1.0 + 2.5 * rain_boost + 1.8 * wind_boost + 2.0 * snow_boost
    )
    pedestrian_rate = 1.5 * diurnal * (1.0 + 4.0 * rain_boost + 0.3 * wind_boost)
    motorist_rate = 1.2 * diurnal * (1.0 + 0.4 * rain_boost + 4.0 * wind_boost)
    cyclist_rate = 0.8 * diurnal * (1.0 + 1.2 * rain_boost + 2.5 * wind_boost)

    series = {
        "precipitation": np.maximum(precipitation + 0.05 * rng.normal(size=n), 0.0),
        "wind_speed": np.maximum(wind + 0.3 * rng.normal(size=n), 0.0),
        "snow": np.maximum(snow + 0.02 * rng.normal(size=n), 0.0),
        "collisions": rng.poisson(collisions_rate).astype(np.float64),
        "pedestrian_injured": rng.poisson(pedestrian_rate).astype(np.float64),
        "motorist_killed": rng.poisson(motorist_rate).astype(np.float64),
        "cyclist_injured": rng.poisson(cyclist_rate).astype(np.float64),
    }
    return SmartCityDataset(
        series=series, minutes_per_sample=minutes_per_sample, days=days, episodes=episodes
    )

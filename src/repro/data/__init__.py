"""Synthetic workloads: Table-1 relations and the real-world substitutes."""

from repro.data.composer import ComposedPair, PlantedRelation, compose, standard_pair
from repro.data.energy import (
    DEVICES,
    EXPECTED_COUPLINGS,
    Coupling,
    EnergyDataset,
    simulate_energy,
)
from repro.data.relations import RELATIONS, RelationSpec, generate_relation, relation_names
from repro.data.smartcity import (
    EXPECTED_CITY_COUPLINGS,
    INCIDENT_VARIABLES,
    WEATHER_VARIABLES,
    CityCoupling,
    SmartCityDataset,
    simulate_smartcity,
)

__all__ = [
    "RELATIONS",
    "RelationSpec",
    "generate_relation",
    "relation_names",
    "ComposedPair",
    "PlantedRelation",
    "compose",
    "standard_pair",
    "EnergyDataset",
    "Coupling",
    "EXPECTED_COUPLINGS",
    "DEVICES",
    "simulate_energy",
    "SmartCityDataset",
    "CityCoupling",
    "EXPECTED_CITY_COUPLINGS",
    "WEATHER_VARIABLES",
    "INCIDENT_VARIABLES",
    "simulate_smartcity",
]

"""The nine synthetic relation types of paper Table 1.

Each generator draws ``m`` samples of ``x`` uniformly over the stated
domain (in random order -- crucial, because it makes the delay between x
and y identifiable: a time-shuffled functional relation only lines up at
the true lag) and produces ``y = f(x) + u`` with ``u ~ U(0, 1)`` noise,
exactly as Table 1 specifies:

=============  ==================================================
independent    ``y ~ N(0,1)``, ``x ~ N(3,5)``
linear         ``y = 2x + u``, ``x in [0, 10]``
exponential    ``y = 0.01^(x+u)``, ``x in [-10, 10]``
quadratic      ``y = x^2 + u``, ``x in [-4, 4]``
circle         ``y = +-sqrt(3^2 - x^2 + u)``, ``x in [-3, 3]``
sine           ``y = 2 sin(x) + u``, ``x in [0, 10]``
cross          ``y1 = x + u, y2 = -x + u``, ``x in [-5, 5]``
quartic        ``y = x^4 - 4x^3 + 4x^2 + x + u``, ``x in [-1, 3]``
square_root    ``y = sqrt(x)``, ``x in [0, 25]``
=============  ==================================================

The circle and cross relations are *non-functional* (one x maps to two
possible y); quadratic/sine/quartic are non-monotonic; exponential and
square root are non-linear but monotonic.  Together they span every class
the paper claims TYCOS handles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

import numpy as np

__all__ = ["RelationSpec", "RELATIONS", "generate_relation", "relation_names"]

Sampler = Callable[[int, np.random.Generator], Tuple[np.ndarray, np.ndarray]]


@dataclass(frozen=True)
class RelationSpec:
    """One Table-1 relation.

    Attributes:
        name: identifier used throughout the experiment harness.
        description: the ``y = f(x)`` formula as printed in Table 1.
        functional: True when each x maps to a single y.
        monotonic: True when f is monotonic over its domain.
        linear: True for the linear relation only.
        dependent: False only for the independent pair.
        sampler: draws ``(x, y)`` samples of the relation.
    """

    name: str
    description: str
    functional: bool
    monotonic: bool
    linear: bool
    dependent: bool
    sampler: Sampler


def _u(m: int, rng: np.random.Generator) -> np.ndarray:
    return rng.uniform(0.0, 1.0, m)


def _independent(m: int, rng: np.random.Generator):
    return rng.normal(3.0, 5.0, m), rng.normal(0.0, 1.0, m)


def _linear(m: int, rng: np.random.Generator):
    x = rng.uniform(0.0, 10.0, m)
    return x, 2.0 * x + _u(m, rng)


def _exponential(m: int, rng: np.random.Generator):
    x = rng.uniform(-10.0, 10.0, m)
    return x, np.power(0.01, x + _u(m, rng))


def _quadratic(m: int, rng: np.random.Generator):
    x = rng.uniform(-4.0, 4.0, m)
    return x, x * x + _u(m, rng)


def _circle(m: int, rng: np.random.Generator):
    x = rng.uniform(-3.0, 3.0, m)
    sign = rng.choice([-1.0, 1.0], m)
    return x, sign * np.sqrt(np.maximum(9.0 - x * x + _u(m, rng), 0.0))


def _sine(m: int, rng: np.random.Generator):
    x = rng.uniform(0.0, 10.0, m)
    return x, 2.0 * np.sin(x) + _u(m, rng)


def _cross(m: int, rng: np.random.Generator):
    x = rng.uniform(-5.0, 5.0, m)
    branch = rng.choice([-1.0, 1.0], m)
    return x, branch * x + _u(m, rng)


def _quartic(m: int, rng: np.random.Generator):
    x = rng.uniform(-1.0, 3.0, m)
    return x, x**4 - 4.0 * x**3 + 4.0 * x**2 + x + _u(m, rng)


def _square_root(m: int, rng: np.random.Generator):
    x = rng.uniform(0.0, 25.0, m)
    return x, np.sqrt(x)


RELATIONS: Dict[str, RelationSpec] = {
    spec.name: spec
    for spec in [
        RelationSpec(
            "independent", "y~N(0,1), x~N(3,5)", False, False, False, False, _independent
        ),
        RelationSpec("linear", "y = 2x + u, x in [0,10]", True, True, True, True, _linear),
        RelationSpec(
            "exponential", "y = 0.01^(x+u), x in [-10,10]", True, True, False, True, _exponential
        ),
        RelationSpec("quadratic", "y = x^2 + u, x in [-4,4]", True, False, False, True, _quadratic),
        RelationSpec(
            "circle", "y = +-sqrt(9 - x^2 + u), x in [-3,3]", False, False, False, True, _circle
        ),
        RelationSpec("sine", "y = 2sin(x) + u, x in [0,10]", True, False, False, True, _sine),
        RelationSpec(
            "cross", "y1 = x + u, y2 = -x + u, x in [-5,5]", False, False, False, True, _cross
        ),
        RelationSpec(
            "quartic",
            "y = x^4 - 4x^3 + 4x^2 + x + u, x in [-1,3]",
            True,
            False,
            False,
            True,
            _quartic,
        ),
        RelationSpec(
            "square_root", "y = sqrt(x), x in [0,25]", True, True, False, True, _square_root
        ),
    ]
}


def relation_names() -> List[str]:
    """Names of the nine relations in Table-1 order."""
    return list(RELATIONS)


def generate_relation(
    name: str, m: int, rng: np.random.Generator
) -> Tuple[np.ndarray, np.ndarray]:
    """Draw ``m`` samples of a named relation.

    Args:
        name: one of :func:`relation_names`.
        m: number of samples.
        rng: source of randomness.

    Returns:
        ``(x, y)`` sample arrays of length ``m``.

    Raises:
        KeyError: for an unknown relation name.
    """
    if name not in RELATIONS:
        raise KeyError(f"unknown relation {name!r}; choose from {relation_names()}")
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    return RELATIONS[name].sampler(m, rng)

"""Synthetic residential plug-load simulator (substitute for NIST [1]).

The paper's energy experiments read minute-resolution plug loads of 72
devices in the NIST Net-Zero test facility.  That dataset is not shipped
here, so this module simulates the relevant slice of it: a household whose
devices follow daily routines with *causal couplings at known lags* --
precisely the structure behind the Table-3 findings C1-C6 (kitchen
activity precedes the dish washer by hours, the washer precedes the dryer
by tens of minutes, the bathroom light precedes the kitchen light by a few
minutes in the morning, ...).

Because the couplings are planted, the expected delay ranges are known by
construction (:data:`EXPECTED_COUPLINGS`), which lets the Table-3 harness
grade TYCOS and AMIC objectively.

Signal model: each device emits amplitude-modulated box pulses on top of a
small standby load.  Coupled devices share the event *intensity* through a
(non-linear) response curve, so windows covering several events exhibit
genuine statistical dependence between the two loads at the planted lag --
the same mechanism that makes real appliance pairs correlate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

__all__ = ["EnergyDataset", "Coupling", "EXPECTED_COUPLINGS", "simulate_energy", "DEVICES"]

#: Device names available in the simulation.
DEVICES = (
    "kitchen",
    "dish_washer",
    "microwave",
    "clothes_washer",
    "dryer",
    "bathroom_light",
    "kitchen_light",
    "children_room_light",
    "living_room_light",
)


@dataclass(frozen=True)
class Coupling:
    """A planted causal coupling between two devices.

    Attributes:
        source: the leading device.
        target: the lagging device.
        lag_minutes: (min, max) of the planted lag distribution.
        label: the Table-3 correlation id (C1 ... C6).
    """

    source: str
    target: str
    lag_minutes: Tuple[int, int]
    label: str


#: The Table-3 device couplings, with the paper's reported delay ranges.
EXPECTED_COUPLINGS: Tuple[Coupling, ...] = (
    Coupling("kitchen", "dish_washer", (0, 240), "C1"),
    Coupling("kitchen", "microwave", (0, 60), "C2"),
    Coupling("clothes_washer", "dryer", (10, 30), "C3"),
    Coupling("bathroom_light", "kitchen_light", (1, 5), "C4"),
    Coupling("kitchen_light", "microwave", (0, 2), "C5"),
    Coupling("children_room_light", "living_room_light", (15, 40), "C6"),
)


@dataclass
class EnergyDataset:
    """Simulated minute-resolution plug loads.

    Attributes:
        series: device name -> load array (watt-like arbitrary units).
        minutes_per_sample: sampling resolution.
        days: number of simulated days.
    """

    series: Dict[str, np.ndarray]
    minutes_per_sample: int
    days: int
    events: List[Tuple[str, int]] = field(default_factory=list)

    @property
    def n(self) -> int:
        """Number of samples per device."""
        return next(iter(self.series.values())).size

    def pair(self, a: str, b: str) -> Tuple[np.ndarray, np.ndarray]:
        """The time series pair of two devices.

        Raises:
            KeyError: for an unknown device name.
        """
        return self.series[a], self.series[b]

    def device_names(self) -> List[str]:
        """All simulated devices."""
        return list(self.series)


def _pulse(load: np.ndarray, start: int, duration: int, amplitude: float, rng) -> None:
    """Add a noisy box pulse with soft edges to a load curve, in place."""
    n = load.size
    lo = max(0, start)
    hi = min(n, start + duration)
    if hi <= lo:
        return
    length = hi - lo
    shape = np.ones(length)
    ramp = min(3, length // 2)
    if ramp > 0:
        shape[:ramp] = np.linspace(0.3, 1.0, ramp)
        shape[-ramp:] = np.linspace(1.0, 0.3, ramp)
    load[lo:hi] += amplitude * shape * (1.0 + 0.08 * rng.normal(size=length))


def simulate_energy(
    days: int = 7,
    seed: int = 0,
    minutes_per_sample: int = 1,
    event_density: float = 1.0,
) -> EnergyDataset:
    """Simulate a household's plug loads with the Table-3 couplings planted.

    Args:
        days: number of simulated days.
        seed: randomness seed (the whole simulation is deterministic in it).
        minutes_per_sample: resolution; 1 matches the paper's minute data.
        event_density: multiplier on the number of daily events (>= 0).

    Returns:
        An :class:`EnergyDataset` of all devices in :data:`DEVICES`.
    """
    if days < 1:
        raise ValueError(f"days must be >= 1, got {days}")
    if minutes_per_sample < 1:
        raise ValueError(f"minutes_per_sample must be >= 1, got {minutes_per_sample}")
    rng = np.random.default_rng(seed)
    n = days * 24 * 60 // minutes_per_sample
    per_min = 1.0 / minutes_per_sample

    def idx(day: int, hour: float) -> int:
        return int((day * 24 * 60 + hour * 60) * per_min)

    series = {name: 2.0 + 0.5 * rng.normal(size=n).cumsum() * 0.01 for name in DEVICES}
    for s in series.values():
        np.clip(s, 0.5, None, out=s)
    events: List[Tuple[str, int]] = []

    def mins(x: float) -> int:
        return max(1, int(round(x * per_min)))

    for day in range(days):
        # --- C1/C2: evening kitchen session drives dish washer + microwave.
        n_sessions = rng.poisson(1.2 * event_density) + 1
        for _ in range(n_sessions):
            t0 = idx(day, rng.uniform(15.5, 19.0))
            intensity = rng.uniform(0.5, 1.5)
            dur = mins(rng.uniform(30, 90))
            _pulse(series["kitchen"], t0, dur, 60.0 * intensity, rng)
            events.append(("kitchen", t0))
            # dish washer fires 0-4 h later, response grows with intensity
            lag = mins(rng.uniform(0, 240))
            dw_amp = 45.0 * np.sqrt(intensity)
            _pulse(series["dish_washer"], t0 + lag, mins(rng.uniform(45, 75)), dw_amp, rng)
            events.append(("dish_washer", t0 + lag))
            # microwave 0-1 h later
            lag = mins(rng.uniform(0, 60))
            _pulse(series["microwave"], t0 + lag, mins(rng.uniform(3, 8)), 80.0 * intensity, rng)
            events.append(("microwave", t0 + lag))

        # --- C3: laundry, a few times a week.
        if rng.random() < 0.6 * event_density:
            t0 = idx(day, rng.uniform(9.0, 14.0))
            intensity = rng.uniform(0.6, 1.4)
            _pulse(series["clothes_washer"], t0, mins(rng.uniform(40, 60)), 50.0 * intensity, rng)
            lag = mins(rng.uniform(10, 30))
            _pulse(series["dryer"], t0 + lag, mins(rng.uniform(45, 70)), 65.0 * intensity**1.5, rng)
            events.append(("clothes_washer", t0))
            events.append(("dryer", t0 + lag))

        # --- C4/C5: the morning routine; several short light/microwave runs.
        n_mornings = max(2, rng.poisson(2.0 * event_density))
        for _ in range(n_mornings):
            t0 = idx(day, rng.uniform(5.5, 7.5))
            intensity = rng.uniform(0.7, 1.3)
            _pulse(series["bathroom_light"], t0, mins(rng.uniform(8, 18)), 12.0 * intensity, rng)
            lag = mins(rng.uniform(1, 5))
            kl_start = t0 + lag
            _pulse(
                series["kitchen_light"], kl_start, mins(rng.uniform(20, 40)), 10.0 * intensity, rng
            )
            lag2 = mins(rng.uniform(0, 2))
            _pulse(
                series["microwave"], kl_start + lag2, mins(rng.uniform(2, 5)), 70.0 * intensity, rng
            )
            events.append(("bathroom_light", t0))
            events.append(("kitchen_light", kl_start))

        # --- C6: evening children room -> living room.  The children-room
        # pulse ends before the living-room one starts (duration < min lag),
        # so the coupling is *purely* delayed: a zero-delay method sees
        # nothing, per the paper's Table-3 AMIC column.
        n_evenings = max(1, rng.poisson(0.8 * event_density))
        for _ in range(n_evenings):
            t0 = idx(day, rng.uniform(19.0, 21.0))
            intensity = rng.uniform(0.6, 1.4)
            _pulse(
                series["children_room_light"], t0, mins(rng.uniform(8, 14)), 9.0 * intensity, rng
            )
            lag = mins(rng.uniform(15, 40))
            _pulse(
                series["living_room_light"],
                t0 + lag,
                mins(rng.uniform(60, 120)),
                11.0 * intensity,
                rng,
            )
            events.append(("children_room_light", t0))
            events.append(("living_room_light", t0 + lag))

    # Light measurement noise on every channel.
    for name in series:
        series[name] = np.maximum(series[name] + 0.4 * rng.normal(size=n), 0.0)
    return EnergyDataset(
        series=series, minutes_per_sample=minutes_per_sample, days=days, events=events
    )

"""Composition of Table-1 relations into long time series pairs.

Section 8.3 A builds its synthetic workload by planting the nine relation
types into one ``(X_T, Y_T)`` pair: each relation occupies a segment of X,
its ``y = f(x)`` echo lands ``td`` steps later on Y, and the segments are
separated by stretches of independent noise.  The composer reproduces that
construction and records the ground-truth windows, so detection can be
graded automatically.

Scale note: the raw relations live on wildly different scales (the
exponential spans 40 decades), which no estimator -- and no real
normalized sensor feed -- would see in one series.  Mutual information is
invariant under strictly monotone per-variable transforms, so each planted
segment is rank-normalized (mapped to uniform margins) by default; the
ground truth is unchanged while the series becomes numerically sane.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.window import TimeDelayWindow
from repro.data.relations import RELATIONS, generate_relation, relation_names

__all__ = ["PlantedRelation", "ComposedPair", "compose", "standard_pair"]


@dataclass(frozen=True)
class PlantedRelation:
    """Where one relation was planted.

    Attributes:
        name: relation name (see :mod:`repro.data.relations`).
        start: first X index of the planted segment.
        end: last X index (inclusive).
        delay: the time delay at which the y-echo was planted.
    """

    name: str
    start: int
    end: int
    delay: int

    @property
    def window(self) -> TimeDelayWindow:
        """The ground-truth window of this planted relation."""
        return TimeDelayWindow(start=self.start, end=self.end, delay=self.delay)

    @property
    def dependent(self) -> bool:
        """False for the 'independent' placebo relation."""
        return RELATIONS[self.name].dependent


@dataclass
class ComposedPair:
    """A composed time series pair plus its ground truth."""

    x: np.ndarray
    y: np.ndarray
    planted: List[PlantedRelation] = field(default_factory=list)

    @property
    def n(self) -> int:
        """Series length."""
        return self.x.size

    def truth_windows(self) -> List[TimeDelayWindow]:
        """Ground-truth windows of the *dependent* planted relations."""
        return [p.window for p in self.planted if p.dependent]

    def truth_for(self, name: str) -> List[PlantedRelation]:
        """All plantings of one relation."""
        return [p for p in self.planted if p.name == name]


def _rank_normalize(values: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Map a sample to (jittered) uniform [0, 1] margins, rank-preserving."""
    order = np.argsort(values, kind="stable")
    ranks = np.empty_like(order)
    ranks[order] = np.arange(values.size)
    u = (ranks + 0.5) / values.size
    return u + rng.normal(scale=1e-6, size=values.size)


def _standardize(values: np.ndarray) -> np.ndarray:
    std = values.std()
    if std == 0.0:
        return values - values.mean()
    return (values - values.mean()) / std


def compose(
    plan: Sequence[Tuple[str, int, int]],
    rng: np.random.Generator,
    gap: int = 100,
    lead: Optional[int] = None,
    normalize: str = "rank",
    noise_scale: float = 1.0,
    segment_order: str = "shuffled",
) -> ComposedPair:
    """Plant a sequence of relations into one noise-backed pair.

    Args:
        plan: triples ``(relation_name, segment_length, delay)`` planted
            left to right.
        rng: randomness source (background noise, relation samples).
        gap: independent-noise samples between consecutive segments.  Must
            exceed the largest delay so echoes never bleed into the next
            segment.
        lead: noise samples before the first segment (default: ``gap``).
        normalize: ``"rank"`` (uniform margins, default), ``"zscore"`` or
            ``"none"`` -- how each planted segment is rescaled.
        noise_scale: standard deviation of the background noise.
        segment_order: ``"shuffled"`` (default) keeps the random draw
            order, which makes the delay exactly identifiable (MI collapses
            to zero one step off the true lag) -- required for the Table-1
            claim that delay-blind methods miss shifted relations;
            ``"sorted"`` plants each segment with x in time-increasing
            order (the paper's "linearly increasing time series" intro
            example), which makes every alignment locally functional.

    Returns:
        A :class:`ComposedPair` with ground truth recorded.

    Raises:
        ValueError: when a delay is too large for the configured gap, or
            the normalize mode is unknown.
    """
    if normalize not in ("rank", "zscore", "none"):
        raise ValueError(f"unknown normalize mode {normalize!r}")
    if segment_order not in ("sorted", "shuffled"):
        raise ValueError(f"unknown segment_order mode {segment_order!r}")
    if lead is None:
        lead = gap
    max_delay = max((abs(td) for _, __, td in plan), default=0)
    if max_delay >= gap:
        raise ValueError(
            f"gap ({gap}) must exceed the largest |delay| ({max_delay}) so "
            "echoes stay separated from neighboring segments"
        )
    total = lead + sum(m for _, m, __ in plan) + gap * len(plan) + max_delay
    if normalize == "rank":
        x = rng.uniform(0.0, 1.0, total)
        y = rng.uniform(0.0, 1.0, total)
    else:
        x = rng.normal(scale=noise_scale, size=total)
        y = rng.normal(scale=noise_scale, size=total)
    planted: List[PlantedRelation] = []
    pos = lead
    for name, m, delay in plan:
        xs, ys = generate_relation(name, m, rng)
        if segment_order == "sorted":
            order = np.argsort(xs, kind="stable")
            xs, ys = xs[order], ys[order]
        if normalize == "rank":
            xs = _rank_normalize(xs, rng)
            ys = _rank_normalize(ys, rng)
        elif normalize == "zscore":
            xs = _standardize(xs)
            ys = _standardize(ys)
        x[pos : pos + m] = xs
        y_lo = pos + delay
        if y_lo < 0 or y_lo + m > total:
            raise ValueError(f"segment {name!r} echo does not fit (delay {delay})")
        y[y_lo : y_lo + m] = ys
        planted.append(PlantedRelation(name=name, start=pos, end=pos + m - 1, delay=delay))
        pos += m + gap
    return ComposedPair(x=x, y=y, planted=planted)


def standard_pair(
    rng: np.random.Generator,
    segment_length: int = 150,
    delay: int = 0,
    gap: Optional[int] = None,
    names: Optional[Iterable[str]] = None,
    segment_order: str = "shuffled",
) -> ComposedPair:
    """The Section-8.3 workload: all nine relations, one shared delay.

    Args:
        rng: randomness source.
        segment_length: samples per planted relation.
        delay: the time delay ``td`` applied to every dependent relation
            (the independent placebo has nothing to shift).
        gap: separator length (default: ``max(100, |delay| + 25)``).
        names: subset of relations (default: all nine, Table-1 order).

    Returns:
        A :class:`ComposedPair`.
    """
    if names is None:
        names = relation_names()
    if gap is None:
        gap = max(100, abs(delay) + 25)
    plan = [(name, segment_length, delay if RELATIONS[name].dependent else 0) for name in names]
    return compose(plan, rng, gap=gap, segment_order=segment_order)

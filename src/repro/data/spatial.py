"""Spatially-indexed sensor network simulator (moving weather front).

Supports the spatial extension (:mod:`repro.extensions.spatial`): a set of
stations at known coordinates observes a phenomenon (a weather front) that
sweeps across the plane at constant velocity.  Each station records the
same signal shape delayed by its arrival time, plus local noise -- so
every station pair is correlated at a lag proportional to their separation
along the direction of motion.  The ground-truth velocity lets tests and
benches grade the propagation estimate exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

__all__ = ["Station", "SpatialDataset", "simulate_moving_front"]


@dataclass(frozen=True)
class Station:
    """A sensor at a fixed planar position."""

    name: str
    x: float
    y: float

    def distance_to(self, other: "Station") -> float:
        """Euclidean distance between two stations."""
        return float(np.hypot(self.x - other.x, self.y - other.y))


@dataclass
class SpatialDataset:
    """Station series plus geometry and the planted ground truth.

    Attributes:
        stations: station metadata by name.
        series: station name -> observed series.
        velocity: the planted front velocity (units: distance per sample).
        front_times: station name -> arrival time (samples) of each event.
    """

    stations: Dict[str, Station]
    series: Dict[str, np.ndarray]
    velocity: Tuple[float, float]
    front_times: Dict[str, List[int]] = field(default_factory=dict)

    @property
    def n(self) -> int:
        """Samples per station."""
        return next(iter(self.series.values())).size

    def pair(self, a: str, b: str) -> Tuple[np.ndarray, np.ndarray]:
        """The series pair of two stations."""
        return self.series[a], self.series[b]

    def expected_delay(self, a: str, b: str) -> float:
        """Planted lag (samples) of b's observation relative to a's.

        The front reaches position p at time ``dot(p, v) / |v|^2`` (up to a
        constant), so the expected pairwise delay is the projected
        separation divided by the speed.
        """
        va = np.array([self.stations[a].x, self.stations[a].y])
        vb = np.array([self.stations[b].x, self.stations[b].y])
        v = np.asarray(self.velocity)
        speed_sq = float(v @ v)
        if speed_sq == 0:
            return 0.0
        return float((vb - va) @ v / speed_sq)


def simulate_moving_front(
    stations: Dict[str, Tuple[float, float]],
    n: int = 800,
    events: int = 3,
    velocity: Tuple[float, float] = (0.5, 0.0),
    event_duration: Tuple[int, int] = (40, 80),
    noise: float = 0.15,
    seed: int = 0,
) -> SpatialDataset:
    """Simulate a sensor network observing fronts crossing the plane.

    Args:
        stations: name -> (x, y) coordinates.
        n: samples per station.
        events: number of front passages.
        velocity: front velocity in distance units per sample; a station at
            position p observes each event ``dot(p, v)/|v|^2`` samples
            after the origin does.
        event_duration: (min, max) samples of each event's pulse.
        noise: standard deviation of per-station observation noise.
        seed: randomness seed.

    Returns:
        A :class:`SpatialDataset` with ground truth recorded.
    """
    if not stations:
        raise ValueError("need at least one station")
    rng = np.random.default_rng(seed)
    station_objs = {name: Station(name, float(p[0]), float(p[1])) for name, p in stations.items()}
    v = np.asarray(velocity, dtype=np.float64)
    speed_sq = float(v @ v)
    series = {name: rng.normal(scale=noise, size=n) for name in stations}
    front_times: Dict[str, List[int]] = {name: [] for name in stations}

    # Arrival offsets per station relative to the origin.
    offsets = {
        name: (0.0 if speed_sq == 0 else float(np.array([s.x, s.y]) @ v / speed_sq))
        for name, s in station_objs.items()
    }
    max_offset = max(offsets.values())
    min_offset = min(offsets.values())

    for _ in range(events):
        duration = int(rng.integers(event_duration[0], event_duration[1] + 1))
        # Event start at the origin, chosen so every station sees it fully.
        lo = int(np.ceil(-min_offset)) + 1
        hi = n - duration - int(np.ceil(max_offset)) - 1
        if hi <= lo:
            raise ValueError("series too short for the station geometry and event size")
        t0 = int(rng.integers(lo, hi))
        amplitude = rng.uniform(0.8, 1.6)
        shape = amplitude * np.sin(np.linspace(0.05, np.pi - 0.05, duration)) ** 2
        shape = shape * (1.0 + 0.1 * rng.normal(size=duration))
        for name in stations:
            arrival = t0 + int(round(offsets[name]))
            series[name][arrival : arrival + duration] += shape
            front_times[name].append(arrival)

    return SpatialDataset(
        stations=station_objs,
        series=series,
        velocity=(float(v[0]), float(v[1])),
        front_times=front_times,
    )

"""Runtime contract checks for TYCOS's numerical invariants.

The correctness of the search rests on a handful of fragile invariants
that are easy to violate silently during refactors:

* KSG MI estimates must be finite (Papana & Kugiumtzis document how
  degenerate sample layouts push k-NN estimators to ``inf``/``nan``);
* normalized MI (Eq. 18) must stay inside [0, 1] after clamping;
* every window handed to an estimator must satisfy the feasibility
  constraints of Defs. 4.2-4.5;
* paired series must be equal-length 1-D float arrays of finite values.

This module machine-enforces them at the estimator/search boundaries.
Checks are **off by default** so hot paths pay (almost) nothing; set the
environment variable ``REPRO_CHECKS=1`` to enable them, e.g.::

    REPRO_CHECKS=1 python -m pytest

Violations raise :class:`ContractViolation` with a message naming the
call site, the offending value and the invariant it broke.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Optional

import numpy as np

if TYPE_CHECKING:  # avoids a repro.core <-> repro.mi import cycle at runtime
    from repro.core.window import TimeDelayWindow

__all__ = [
    "ContractViolation",
    "checks_enabled",
    "override_checks",
    "check_mi_finite",
    "check_nmi_range",
    "check_window_feasible",
    "check_series_shape",
]


class ContractViolation(AssertionError, ValueError):
    """A numerical invariant of the TYCOS pipeline was broken at runtime.

    Inherits both :class:`AssertionError` (a contract is an assertion about
    internal invariants) and :class:`ValueError` (at API boundaries a
    violation rejects an invalid value), so enabling ``REPRO_CHECKS`` never
    changes the exception types public APIs are documented to raise.
    """


# Tri-state override used by tests and by callers that want contracts on
# regardless of the environment: None defers to REPRO_CHECKS.
_override: Optional[bool] = None

# The environment is read once at import by design: `override_checks`
# covers the test-time toggling use case without per-call getenv costs,
# and CI sets REPRO_CHECKS before the interpreter starts.
_ENV_ENABLED: bool = os.environ.get(  # tycoslint: disable=TY113
    "REPRO_CHECKS", ""
).strip() not in ("", "0", "false", "off")


def checks_enabled() -> bool:
    """True when contract checks are active (env flag or explicit override)."""
    if _override is not None:
        return _override
    return _ENV_ENABLED


class override_checks:
    """Context manager forcing contracts on/off regardless of ``REPRO_CHECKS``.

    Usage::

        with override_checks(True):
            ...  # contracts raise on violation here
    """

    def __init__(self, enabled: bool):
        self._enabled = enabled
        self._saved: Optional[bool] = None

    def __enter__(self) -> "override_checks":
        global _override
        self._saved = _override
        _override = self._enabled
        return self

    def __exit__(self, *exc_info: object) -> None:
        global _override
        _override = self._saved


def check_mi_finite(mi: float, where: str = "mi") -> float:
    """Contract: an MI estimate must be a finite float (nats).

    Returns the value unchanged so call sites can wrap expressions.
    """
    if not np.isfinite(mi):
        raise ContractViolation(f"{where}: MI estimate must be finite, got {mi!r}")
    return mi


def check_nmi_range(nmi: float, where: str = "nmi") -> float:
    """Contract: normalized MI (Eq. 18) must lie in [0, 1] after clamping."""
    if not np.isfinite(nmi) or nmi < 0.0 or nmi > 1.0:
        raise ContractViolation(f"{where}: normalized MI must be in [0, 1], got {nmi!r}")
    return nmi


def check_window_feasible(
    window: "TimeDelayWindow",
    n: int,
    s_min: int,
    s_max: int,
    td_max: int,
    where: str = "window",
) -> "TimeDelayWindow":
    """Contract: a window must satisfy the Defs. 4.2-4.5 feasibility bounds."""
    if not window.is_feasible(n=n, s_min=s_min, s_max=s_max, td_max=td_max):
        raise ContractViolation(
            f"{where}: {window} is infeasible for n={n}, "
            f"s_min={s_min}, s_max={s_max}, td_max={td_max}"
        )
    return window


def check_series_shape(x: np.ndarray, y: np.ndarray, where: str = "series") -> None:
    """Contract: a series pair must be equal-length, 1-D, non-empty, finite."""
    if x.ndim != 1 or y.ndim != 1:
        raise ContractViolation(
            f"{where}: series must be 1-D, got shapes {x.shape} and {y.shape}"
        )
    if x.size != y.size:
        raise ContractViolation(
            f"{where}: series must have equal length, got {x.size} and {y.size}"
        )
    if x.size == 0:
        raise ContractViolation(f"{where}: series must be non-empty")
    if not (np.all(np.isfinite(x)) and np.all(np.isfinite(y))):
        raise ContractViolation(f"{where}: series must contain only finite values")

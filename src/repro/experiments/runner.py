"""Command-line entry point: regenerate any table or figure.

Installed as ``tycos-experiments`` (see pyproject).  Examples::

    tycos-experiments table1
    tycos-experiments fig10 --scale full
    tycos-experiments all --scale quick
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, Tuple

from repro.experiments.fig9 import run_fig9
from repro.experiments.fig10 import run_fig10
from repro.experiments.fig11 import run_fig11
from repro.experiments.fig12 import run_fig12
from repro.experiments.fig13 import run_fig13_sigma, run_fig13_smax, run_fig13_tdmax
from repro.experiments.table1 import run_table1
from repro.experiments.table3 import run_table3
from repro.experiments.table4 import run_table4

__all__ = ["EXPERIMENTS", "main", "run_timed"]


def _table1(scale: str, seed: int) -> str:
    if scale == "quick":
        return run_table1(delays=(0, 60), segment_length=100, seed=seed).to_text()
    return run_table1(delays=(0, 150), segment_length=150, seed=seed).to_text()


def _table3(scale: str, seed: int) -> str:
    target = 700 if scale == "quick" else 1800
    return run_table3(target_samples=target, seed=seed).to_text()


def _table4(scale: str, seed: int) -> str:
    sizes = (300, 500) if scale == "quick" else (300, 500, 800, 1200)
    return run_table4(sizes=sizes, seed=seed).to_text()


def _fig9(scale: str, seed: int) -> str:
    n = 400 if scale == "quick" else 900
    datasets = ("synthetic1", "energy") if scale == "quick" else None
    kwargs = {"datasets": datasets} if datasets else {}
    return run_fig9(n=n, seed=seed, **kwargs).to_text()


def _fig10(scale: str, seed: int) -> str:
    sizes = (250, 400) if scale == "quick" else (300, 500, 800)
    return run_fig10(sizes=sizes, seed=seed).to_text()


def _fig11(scale: str, seed: int) -> str:
    n = 400 if scale == "quick" else 700
    return run_fig11(n=n, seed=seed).to_text()


def _fig12(scale: str, seed: int) -> str:
    n = 400 if scale == "quick" else 700
    return run_fig12(n=n, seed=seed).to_text()


def _fig13(scale: str, seed: int) -> str:
    n = 500 if scale == "quick" else 900
    parts = [
        run_fig13_sigma(n=n, seed=seed).to_text(),
        run_fig13_smax(n=n, seed=seed).to_text(),
        run_fig13_tdmax(n=n, seed=seed).to_text(),
    ]
    return "\n\n".join(parts)


EXPERIMENTS: Dict[str, Callable[[str, int], str]] = {
    "table1": _table1,
    "table3": _table3,
    "table4": _table4,
    "fig9": _fig9,
    "fig10": _fig10,
    "fig11": _fig11,
    "fig12": _fig12,
    "fig13": _fig13,
}


def run_timed(name: str, scale: str, seed: int) -> Tuple[str, float]:
    """Run one experiment and measure it: ``(artifact text, seconds)``.

    Timing lives here, in the experiments layer, so the report builders
    (``repro.experiments.summary`` and friends) stay clock-free -- their
    serialized output must byte-diff clean across identical runs
    (tycoslint TY114).
    """
    started = time.perf_counter()
    text = EXPERIMENTS[name](scale, seed)
    return text, time.perf_counter() - started


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="tycos-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which artifact to regenerate",
    )
    parser.add_argument(
        "--scale",
        choices=("quick", "full"),
        default="quick",
        help="quick: minutes on a laptop; full: closer to paper sizes",
    )
    parser.add_argument("--seed", type=int, default=0, help="data and search seed")
    parser.add_argument(
        "--output",
        metavar="DIR",
        help="also write each artifact to DIR/<name>.txt",
    )
    args = parser.parse_args(argv)

    out_dir = None
    if args.output:
        from pathlib import Path

        out_dir = Path(args.output)
        out_dir.mkdir(parents=True, exist_ok=True)

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        text, elapsed = run_timed(name, args.scale, args.seed)
        print(text)
        print(f"[{name} finished in {elapsed:.1f}s]\n")
        if out_dir is not None:
            (out_dir / f"{name}.txt").write_text(text + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Shared dataset builders for the efficiency experiments (Figs 9-13).

The paper evaluates runtime on three synthetic datasets (each a different
mix of Table-1 relations composed into one pair) and on the two real-world
collections.  These builders produce the equivalent pairs at an arbitrary
target length so the figures can sweep data size.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.data.composer import compose
from repro.data.energy import simulate_energy
from repro.data.smartcity import simulate_smartcity

__all__ = ["synthetic_pair", "energy_pair", "city_pair", "dataset_pair", "DATASET_NAMES"]

DATASET_NAMES = ("synthetic1", "synthetic2", "synthetic3", "energy", "smartcity")

# Relation mixes of the three synthetic datasets (Section 8.4 A).
_MIXES: Dict[str, Tuple[str, ...]] = {
    "synthetic1": ("linear", "sine", "quadratic"),
    "synthetic2": ("exponential", "circle", "square_root", "cross"),
    "synthetic3": ("quartic", "sine", "linear", "circle", "quadratic"),
}


def synthetic_pair(
    name: str, n: int, seed: int = 0, delay: int = 25
) -> Tuple[np.ndarray, np.ndarray]:
    """A synthetic pair of roughly ``n`` samples with a known relation mix.

    Segments and separating gaps are scaled so the requested length is
    approximately met while keeping the mix proportions fixed.
    """
    if name not in _MIXES:
        raise KeyError(f"unknown synthetic dataset {name!r}; choose from {sorted(_MIXES)}")
    mix = _MIXES[name]
    rng = np.random.default_rng(seed)
    # Each relation contributes one segment + one gap; solve for the size.
    per_block = max(2 * (abs(delay) + 10), n // (2 * len(mix)))
    gap = max(abs(delay) + 10, per_block // 2)
    plan = [(rel, per_block, delay) for rel in mix]
    pair = compose(plan, rng, gap=gap)
    return pair.x[:n] if pair.n >= n else pair.x, pair.y[:n] if pair.n >= n else pair.y


def energy_pair(n: int, seed: int = 0) -> Tuple[np.ndarray, np.ndarray]:
    """A kitchen / dish-washer pair of roughly ``n`` samples (8-min res)."""
    days = max(1, int(np.ceil(n / 180.0)))
    data = simulate_energy(days=days, seed=seed, minutes_per_sample=8)
    x, y = data.pair("kitchen", "dish_washer")
    return x[:n], y[:n]


def city_pair(n: int, seed: int = 0) -> Tuple[np.ndarray, np.ndarray]:
    """A precipitation / collisions pair of roughly ``n`` samples (5-min res)."""
    days = max(1, int(np.ceil(n / 288.0)))
    data = simulate_smartcity(days=days, seed=seed)
    x, y = data.pair("precipitation", "collisions")
    return x[:n], y[:n]


def dataset_pair(name: str, n: int, seed: int = 0) -> Tuple[np.ndarray, np.ndarray]:
    """Dispatch on a dataset name from :data:`DATASET_NAMES`."""
    if name in _MIXES:
        return synthetic_pair(name, n, seed=seed)
    if name == "energy":
        return energy_pair(n, seed=seed)
    if name == "smartcity":
        return city_pair(n, seed=seed)
    raise KeyError(f"unknown dataset {name!r}; choose from {DATASET_NAMES}")

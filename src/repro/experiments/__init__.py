"""Experiment harness: one runner per table / figure of the paper.

========  ===========================================  =======================
Artifact  What it shows                                Runner
========  ===========================================  =======================
Table 1   relation types identified per method         :func:`run_table1`
Table 2   parameter presets                            ``repro.core.config``
Table 3   correlations extracted from real-world sims  :func:`run_table3`
Table 4   accuracy of TYCOS_L / TYCOS_LN               :func:`run_table4`
Fig 9     runtime of the four TYCOS variants           :func:`run_fig9`
Fig 10    Brute Force / MatrixProfile / TYCOS_LMN      :func:`run_fig10`
Fig 11    noise-threshold sweep (error, runtime gain)  :func:`run_fig11`
Fig 12    accuracy vs runtime-gain trade-off           :func:`run_fig12`
Fig 13    effect of sigma, s_max, td_max               ``run_fig13_*``
========  ===========================================  =======================
"""

from repro.experiments.datasets import DATASET_NAMES, dataset_pair
from repro.experiments.fig9 import Fig9Result, run_fig9
from repro.experiments.fig10 import Fig10Result, run_fig10
from repro.experiments.fig11 import Fig11Result, run_fig11
from repro.experiments.fig12 import Fig12Result, run_fig12
from repro.experiments.fig13 import (
    Fig13Result,
    run_fig13_sigma,
    run_fig13_smax,
    run_fig13_tdmax,
)
from repro.experiments.illustrations import (
    illustration_pair,
    mi_fluctuation,
    noise_prefix_effect,
)
from repro.experiments.similarity import covers, detects, window_set_similarity
from repro.experiments.summary import SummaryReport, generate_summary
from repro.experiments.table1 import Table1Result, run_table1
from repro.experiments.table3 import Table3Result, run_table3
from repro.experiments.table4 import Table4Result, run_table4

__all__ = [
    "run_table1",
    "Table1Result",
    "run_table3",
    "Table3Result",
    "run_table4",
    "Table4Result",
    "run_fig9",
    "Fig9Result",
    "run_fig10",
    "Fig10Result",
    "run_fig11",
    "Fig11Result",
    "run_fig12",
    "Fig12Result",
    "run_fig13_sigma",
    "run_fig13_smax",
    "run_fig13_tdmax",
    "Fig13Result",
    "covers",
    "detects",
    "window_set_similarity",
    "dataset_pair",
    "DATASET_NAMES",
    "mi_fluctuation",
    "noise_prefix_effect",
    "illustration_pair",
    "generate_summary",
    "SummaryReport",
]

"""Table 1: which methods identify which relation types, with/without delay.

Reproduces the paper's effectiveness matrix: nine synthetic relations are
planted into one time series pair (Section 8.3 A), once without delay and
once with a large delay, and five methods -- PCC, MASS, MatrixProfile,
AMIC and TYCOS -- are asked to locate them.

Method adapters follow each method's published usage:

* **PCC** has no window search and no delay concept, so it is graded on
  the aligned full relation segment (|r| >= threshold).
* **MASS** requires a query; per the paper it gets the x-side segment and
  must find a *shape* match at the aligned position in Y.
* **MatrixProfile** sweeps several subsequence lengths and joins across
  all offsets, so it can see shifted shapes -- but only affine ones.
* **AMIC** searches multi-scale windows top-down but only at delay 0.
* **TYCOS** runs the full TYCOS_LMN search.

Detection of the "independent" placebo means *correctly reporting
nothing* inside its segment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.baselines.amic import amic_search
from repro.baselines.mass import mass_distance_profile
from repro.baselines.matrix_profile import matrix_profile_scan
from repro.baselines.pearson import pcc
from repro.core.config import TycosConfig
from repro.core.tycos import tycos_lmn
from repro.core.window import TimeDelayWindow
from repro.data.composer import ComposedPair, standard_pair
from repro.data.relations import relation_names
from repro.experiments.reporting import check, format_table, title
from repro.experiments.similarity import detects

__all__ = ["Table1Result", "run_table1", "METHODS"]

METHODS = ("PCC", "MASS", "MatrixProfile", "AMIC", "TYCOS")


@dataclass
class Table1Result:
    """The detection matrix: (method, relation, delay) -> detected."""

    delays: Tuple[int, ...]
    cells: Dict[Tuple[str, str, int], bool] = field(default_factory=dict)

    def detected(self, method: str, relation: str, delay: int) -> bool:
        """Whether ``method`` identified ``relation`` at ``delay``."""
        return self.cells[(method, relation, delay)]

    def methods(self) -> List[str]:
        """The methods that were actually evaluated, in canonical order."""
        present = {m for m, _, __ in self.cells}
        return [m for m in METHODS if m in present]

    def to_text(self) -> str:
        """Render the matrix the way Table 1 lays it out."""
        methods = self.methods()
        blocks = [title("Table 1: identified relation types")]
        for delay in self.delays:
            headers = ["Relation"] + methods
            rows = []
            for relation in relation_names():
                rows.append(
                    [relation]
                    + [check(self.cells[(m, relation, delay)]) for m in methods]
                )
            blocks.append(f"\ntd = {delay}")
            blocks.append(format_table(headers, rows))
        return "\n".join(blocks)


def _grade(
    found: Sequence[TimeDelayWindow],
    pair: ComposedPair,
    min_cover: float = 0.7,
) -> Dict[str, bool]:
    """Per-relation detection verdict for a set of extracted windows."""
    verdict: Dict[str, bool] = {}
    for planted in pair.planted:
        hit = detects(found, planted.window, min_cover=min_cover)
        if planted.dependent:
            verdict[planted.name] = hit
        else:
            # Detecting independence = staying silent on that segment.
            verdict[planted.name] = not hit
    return verdict


def _tycos_windows(pair: ComposedPair, delay: int, seed: int) -> List[TimeDelayWindow]:
    config = TycosConfig(
        sigma=0.45,
        s_min=16,
        s_max=220,
        td_max=max(10, abs(delay) + 10),
        significance_permutations=20,
        seed=seed,
        # Shuffled segments leave no MI gradient along the delay axis, so
        # the initial probe must visit every delay once per restart.
        init_delay_step=1,
    )
    result = tycos_lmn(config).search(pair.x, pair.y)
    return [r.window for r in result.windows]


def _amic_windows(pair: ComposedPair, seed: int) -> List[TimeDelayWindow]:
    # AMIC's rigid binary splits rarely align with planted segments, so its
    # windows are partially diluted by background noise; the paper's Table-2
    # sigma (0.2-0.3) rather than the stricter TYCOS gate keeps the
    # comparison fair.
    config = TycosConfig(sigma=0.28, s_min=16, s_max=220, td_max=0, seed=seed)
    result = amic_search(pair.x, pair.y, config)
    return [r.window for r in result.windows]


def _pcc_verdicts(pair: ComposedPair, threshold: float = 0.85) -> Dict[str, bool]:
    """PCC on the aligned full segment: only linear/monotonic can pass."""
    verdict: Dict[str, bool] = {}
    for planted in pair.planted:
        xs = pair.x[planted.start : planted.end + 1]
        ys = pair.y[planted.start : planted.end + 1]  # aligned: no delay concept
        hit = abs(pcc(xs, ys)) >= threshold
        verdict[planted.name] = hit if planted.dependent else not hit
    return verdict


def _mass_verdicts(pair: ComposedPair, rel_threshold: float = 0.35) -> Dict[str, bool]:
    """MASS with the x-segment as query, graded at the aligned position.

    A relation counts as found when the distance profile at the query's own
    position is below ``rel_threshold * sqrt(2m)`` -- i.e. the y side holds
    a similar *shape* where the x pattern sits.
    """
    verdict: Dict[str, bool] = {}
    for planted in pair.planted:
        query = pair.x[planted.start : planted.end + 1]
        profile = mass_distance_profile(query, pair.y)
        cutoff = rel_threshold * np.sqrt(2.0 * query.size)
        # Aligned grading: the similar shape must sit where the query sits.
        lo = max(0, planted.start - 5)
        hi = min(profile.size, planted.start + 6)
        hit = bool(profile[lo:hi].min() <= cutoff) if hi > lo else False
        verdict[planted.name] = hit if planted.dependent else not hit
    return verdict


def _matrix_profile_verdicts(
    pair: ComposedPair,
    lengths: Sequence[int] = (32, 64),
    rel_threshold: float = 0.25,
) -> Dict[str, bool]:
    """MatrixProfile AB-join over several lengths; matches may be shifted,
    but the matched shape must come from the relation's own echo."""
    matches = matrix_profile_scan(pair.x, pair.y, lengths, threshold_factor=rel_threshold)
    verdict: Dict[str, bool] = {}
    for planted in pair.planted:
        y_lo = planted.start + planted.delay
        y_hi = planted.end + planted.delay
        hit = any(
            planted.start <= m.start_a <= planted.end - m.length + 1
            and y_lo <= m.start_b <= y_hi - m.length + 1
            for m in matches
        )
        verdict[planted.name] = hit if planted.dependent else not hit
    return verdict


def run_table1(
    delays: Tuple[int, ...] = (0, 150),
    segment_length: int = 150,
    seed: int = 0,
    methods: Sequence[str] = METHODS,
) -> Table1Result:
    """Run the Table-1 experiment.

    Args:
        delays: the td values to test (the paper reports 0 and 150).
        segment_length: samples per planted relation.
        seed: randomness seed for data and searches.
        methods: subset of :data:`METHODS` to evaluate.

    Returns:
        The detection matrix as a :class:`Table1Result`.
    """
    unknown = set(methods) - set(METHODS)
    if unknown:
        raise ValueError(f"unknown methods {sorted(unknown)}; choose from {METHODS}")
    result = Table1Result(delays=tuple(delays))
    for delay in delays:
        rng = np.random.default_rng(seed)
        pair = standard_pair(rng, segment_length=segment_length, delay=delay)
        verdicts: Dict[str, Dict[str, bool]] = {}
        if "PCC" in methods:
            verdicts["PCC"] = _pcc_verdicts(pair)
        if "MASS" in methods:
            verdicts["MASS"] = _mass_verdicts(pair)
        if "MatrixProfile" in methods:
            verdicts["MatrixProfile"] = _matrix_profile_verdicts(pair)
        if "AMIC" in methods:
            verdicts["AMIC"] = _grade(_amic_windows(pair, seed), pair)
        if "TYCOS" in methods:
            verdicts["TYCOS"] = _grade(_tycos_windows(pair, delay, seed), pair)
        for method, verdict in verdicts.items():
            for relation, hit in verdict.items():
                result.cells[(method, relation, delay)] = hit
    return result

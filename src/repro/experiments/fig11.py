"""Fig. 11: effect of the noise threshold ratio epsilon/sigma.

Sweeps ``epsilon / sigma`` and measures, relative to TYCOS_L on the same
data, the error rate (missed windows) and the runtime gain of TYCOS_LN.
The paper's finding, reproduced in shape: both grow with the ratio, and
around 0.25 the error stays small while the runtime drops materially.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.core.tycos import tycos_l, tycos_ln
from repro.experiments.datasets import dataset_pair
from repro.experiments.fig9 import make_config
from repro.experiments.reporting import format_series, title
from repro.experiments.similarity import window_set_similarity

__all__ = ["Fig11Result", "run_fig11"]


@dataclass
class Fig11Result:
    """Error rate and runtime gain per dataset per epsilon/sigma ratio."""

    ratios: List[float] = field(default_factory=list)
    error_rate: Dict[str, List[float]] = field(default_factory=dict)
    runtime_gain: Dict[str, List[float]] = field(default_factory=dict)

    def to_text(self) -> str:
        """Render both panels' series."""
        lines = [title("Fig 11: noise threshold sweep")]
        for ds in self.error_rate:
            error_values = [f"{v:.2f}" for v in self.error_rate[ds]]
            gain_values = [f"{v:.2f}" for v in self.runtime_gain[ds]]
            lines.append(format_series(f"{ds} error-rate", self.ratios, error_values))
            lines.append(format_series(f"{ds} runtime-gain", self.ratios, gain_values))
        return "\n".join(lines)


def run_fig11(
    ratios: Sequence[float] = (0.05, 0.15, 0.25, 0.4, 0.6, 0.8),
    n: int = 500,
    datasets: Sequence[str] = ("synthetic1", "smartcity"),
    seed: int = 0,
    repeats: int = 1,
) -> Fig11Result:
    """Run the Fig.-11 sweep.

    Args:
        ratios: epsilon/sigma values to test (must be < 1).
        n: series length.
        datasets: datasets to sweep over.
        seed: data and search seed.
        repeats: timing repetitions (medians would need >= 3; the default
            single run is fine for shape checks).

    Returns:
        A :class:`Fig11Result`; ``error_rate`` is 1 - recall of TYCOS_LN's
        windows against TYCOS_L's, ``runtime_gain`` the fractional runtime
        reduction.
    """
    result = Fig11Result(ratios=list(ratios))
    for ds in datasets:
        x, y = dataset_pair(ds, n, seed=seed)
        base_cfg = make_config(n, seed)
        reference = tycos_l(base_cfg).search(x, y)
        ref_windows = [r.window for r in reference.windows]
        ref_time = reference.stats.runtime_seconds
        errors: List[float] = []
        gains: List[float] = []
        for ratio in ratios:
            cfg = base_cfg.scaled(epsilon_ratio=ratio)
            timings = []
            res = None
            for _ in range(max(1, repeats)):
                res = tycos_ln(cfg).search(x, y)
                timings.append(res.stats.runtime_seconds)
            found = [r.window for r in res.windows]
            recall = window_set_similarity(found, ref_windows)
            errors.append(1.0 - recall)
            gains.append(1.0 - min(timings) / ref_time)
        result.error_rate[ds] = errors
        result.runtime_gain[ds] = gains
    return result

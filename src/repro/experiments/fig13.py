"""Fig. 13: effect of sigma, s_max and td_max.

Three sweeps on the smart-city (snow, collisions) pair:

* (a) raising sigma extracts fewer (but stronger) windows while runtime
  grows (larger neighborhoods are explored before a strong window is
  accepted);
* (b) raising s_max past the point where every correlation fits changes
  nothing in the output while runtime keeps growing;
* (c) raising td_max past the largest true lag changes neither the output
  nor (materially) the runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.config import TycosConfig
from repro.core.tycos import tycos_lmn
from repro.data.smartcity import simulate_smartcity
from repro.experiments.reporting import format_table, title

__all__ = ["SweepPoint", "Fig13Result", "run_fig13_sigma", "run_fig13_smax", "run_fig13_tdmax"]


@dataclass(frozen=True)
class SweepPoint:
    """One point of a parameter sweep."""

    value: float
    windows: int
    runtime_seconds: float


@dataclass
class Fig13Result:
    """One panel of Fig. 13."""

    parameter: str
    points: List[SweepPoint] = field(default_factory=list)

    def window_counts(self) -> List[int]:
        """Extracted-window counts along the sweep."""
        return [p.windows for p in self.points]

    def runtimes(self) -> List[float]:
        """Runtimes along the sweep."""
        return [p.runtime_seconds for p in self.points]

    def to_text(self) -> str:
        """Render the panel as a table."""
        headers = [self.parameter, "windows", "runtime (s)"]
        rows = [[p.value, p.windows, f"{p.runtime_seconds:.2f}"] for p in self.points]
        return title(f"Fig 13: effect of {self.parameter}") + "\n" + format_table(headers, rows)


def _snow_collision_pair(n: int, seed: int) -> Tuple[np.ndarray, np.ndarray]:
    days = max(2, int(np.ceil(n / 288.0)))
    data = simulate_smartcity(days=days, seed=seed)
    x, y = data.pair("snow", "collisions")
    return x[:n], y[:n]


def _base_config(seed: int) -> TycosConfig:
    return TycosConfig(
        sigma=0.25,
        s_min=16,
        s_max=96,
        td_max=24,
        jitter=1e-3,
        significance_permutations=0,
        seed=seed,
    )


def _sweep(parameter: str, values: Sequence[float], n: int, seed: int) -> Fig13Result:
    x, y = _snow_collision_pair(n, seed)
    result = Fig13Result(parameter=parameter)
    for value in values:
        cfg = _base_config(seed).scaled(**{parameter: value})
        res = tycos_lmn(cfg).search(x, y)
        result.points.append(
            SweepPoint(
                value=value, windows=len(res.windows), runtime_seconds=res.stats.runtime_seconds
            )
        )
    return result


def run_fig13_sigma(
    sigmas: Sequence[float] = (0.2, 0.3, 0.4, 0.5, 0.6),
    n: int = 600,
    seed: int = 0,
) -> Fig13Result:
    """Panel (a): the effect of the correlation threshold."""
    return _sweep("sigma", sigmas, n, seed)


def run_fig13_smax(
    s_maxes: Sequence[int] = (32, 64, 96, 128, 192),
    n: int = 600,
    seed: int = 0,
) -> Fig13Result:
    """Panel (b): convergence in the maximum window size."""
    return _sweep("s_max", s_maxes, n, seed)


def run_fig13_tdmax(
    td_maxes: Sequence[int] = (6, 12, 24, 36, 48),
    n: int = 600,
    seed: int = 0,
) -> Fig13Result:
    """Panel (c): convergence in the maximum time delay."""
    return _sweep("td_max", td_maxes, n, seed)

"""Fig. 12: the accuracy / runtime-gain trade-off of the noise threshold.

The same sweep as Fig. 11, plotted jointly per dataset: accuracy
(1 - error rate) and runtime gain against epsilon/sigma.  Used to justify
the paper's default epsilon = sigma / 4: in the [0.05, 0.3] band the error
stays under ~5 % while a large share of the runtime is saved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.experiments.fig11 import Fig11Result, run_fig11
from repro.experiments.reporting import format_table, title

__all__ = ["Fig12Result", "run_fig12"]


@dataclass
class Fig12Result:
    """Joint accuracy / runtime-gain view of the noise-threshold sweep."""

    sweep: Fig11Result = field(default_factory=Fig11Result)

    @property
    def ratios(self) -> List[float]:
        """The swept epsilon/sigma values."""
        return self.sweep.ratios

    def accuracy(self, dataset: str) -> List[float]:
        """1 - error rate per ratio."""
        return [1.0 - e for e in self.sweep.error_rate[dataset]]

    def runtime_gain(self, dataset: str) -> List[float]:
        """Fractional runtime saving per ratio."""
        return self.sweep.runtime_gain[dataset]

    def to_text(self) -> str:
        """Render the joint table, one row per (dataset, ratio)."""
        headers = ["dataset", "eps/sigma", "accuracy", "runtime gain"]
        rows = []
        for ds in self.sweep.error_rate:
            for i, ratio in enumerate(self.ratios):
                rows.append(
                    [
                        ds,
                        f"{ratio:.2f}",
                        f"{self.accuracy(ds)[i]:.2f}",
                        f"{self.runtime_gain(ds)[i]:.2f}",
                    ]
                )
        return title("Fig 12: accuracy vs runtime-gain trade-off") + "\n" + format_table(
            headers, rows
        )


def run_fig12(
    ratios: Sequence[float] = (0.05, 0.15, 0.25, 0.4, 0.6, 0.8),
    n: int = 500,
    datasets: Sequence[str] = ("energy", "smartcity"),
    seed: int = 0,
) -> Fig12Result:
    """Run the Fig.-12 trade-off analysis (delegates to the Fig.-11 sweep)."""
    return Fig12Result(sweep=run_fig11(ratios=ratios, n=n, datasets=datasets, seed=seed))

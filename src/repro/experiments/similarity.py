"""Window-set comparison metrics used by the evaluation.

Two uses:

* Detection grading (Tables 1 and 3): did a method locate a window that
  covers a planted ground-truth window, at (roughly) the right delay?
* Accuracy grading (Table 4): what fraction of the windows one method
  extracts are also extracted -- "cover a similar range of indices" in the
  paper's words -- by a reference method?
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.core.window import TimeDelayWindow

__all__ = ["covers", "detects", "window_set_similarity"]


def covers(
    candidate: TimeDelayWindow,
    truth: TimeDelayWindow,
    min_cover: float = 0.7,
    delay_tol: Optional[int] = None,
) -> bool:
    """Does ``candidate`` cover the ground-truth window?

    Args:
        candidate: an extracted window.
        truth: the planted window.
        min_cover: minimum fraction of the *smaller* of the two X intervals
            that the intersection must reach.  Extracted windows are often
            legitimately smaller than a planted segment (normalized MI
            peaks below the full segment size), and a candidate mostly
            inside the truth is a detection either way.
        delay_tol: when given, additionally require
            ``|candidate.delay - truth.delay| <= delay_tol``.

    Returns:
        True when both conditions hold.
    """
    inter = min(candidate.end, truth.end) - max(candidate.start, truth.start) + 1
    if inter <= 0:
        return False
    if inter / min(candidate.size, truth.size) < min_cover:
        return False
    if delay_tol is not None and abs(candidate.delay - truth.delay) > delay_tol:
        return False
    return True


def detects(
    extracted: Iterable[TimeDelayWindow],
    truth: TimeDelayWindow,
    min_cover: float = 0.7,
    delay_tol: Optional[int] = None,
) -> bool:
    """True when any extracted window covers the ground truth."""
    return any(covers(w, truth, min_cover=min_cover, delay_tol=delay_tol) for w in extracted)


def window_set_similarity(
    test: Sequence[TimeDelayWindow],
    reference: Sequence[TimeDelayWindow],
    min_cover: float = 0.5,
) -> float:
    """Fraction of reference windows that the test set also covers.

    Follows Section 8.4 B: "two windows are considered to be similar if
    they cover a similar range of indices".  Two windows count as similar
    when their X-interval intersection covers at least ``min_cover`` of
    the *smaller* of the two -- an aggregated brute-force window typically
    spans a whole correlated region, while a heuristic search reports the
    peak inside it, and the peak sitting inside the region is agreement,
    not disagreement.  Delays are not compared because the aggregated
    reference merges windows across delays.

    Args:
        test: windows extracted by the method under evaluation.
        reference: windows of the reference method.
        min_cover: intersection-over-smaller-window needed to match.

    Returns:
        A fraction in [0, 1]; 1.0 when both sets are empty, 0.0 when only
        one is.
    """
    if not reference:
        return 1.0 if not test else 0.0
    matched = 0
    for ref in reference:
        if any(covers(t, ref, min_cover=min_cover) for t in test):
            matched += 1
    return matched / len(reference)


def merged_delay_range(windows: Sequence[TimeDelayWindow]) -> Optional[tuple[int, int]]:
    """(min, max) delay across a window set, or None when empty."""
    if not windows:
        return None
    delays: List[int] = [w.delay for w in windows]
    return (min(delays), max(delays))

"""Fig. 9: runtime of the four TYCOS variants.

The paper runs TYCOS_L, TYCOS_LN, TYCOS_LM and TYCOS_LMN on three
synthetic and two real datasets and shows (log-scale y) that LMN is the
fastest everywhere, that each optimization helps on its own, and that the
two combined always beat either alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence

from repro.core.config import TycosConfig
from repro.core.tycos import Tycos, tycos_l, tycos_lm, tycos_lmn, tycos_ln
from repro.experiments.datasets import DATASET_NAMES, dataset_pair
from repro.experiments.reporting import format_table, title

__all__ = ["Fig9Result", "run_fig9", "VARIANTS"]

VARIANTS = ("TYCOS_L", "TYCOS_LN", "TYCOS_LM", "TYCOS_LMN")

_FACTORIES = {
    "TYCOS_L": tycos_l,
    "TYCOS_LN": tycos_ln,
    "TYCOS_LM": tycos_lm,
    "TYCOS_LMN": tycos_lmn,
}


@dataclass
class Fig9Result:
    """Per-dataset, per-variant runtimes and window counts."""

    runtimes: Dict[str, Dict[str, float]] = field(default_factory=dict)
    windows: Dict[str, Dict[str, int]] = field(default_factory=dict)
    evaluations: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def speedup(self, dataset: str, variant: str, baseline: str = "TYCOS_L") -> float:
        """Runtime ratio baseline / variant on one dataset."""
        return self.runtimes[dataset][baseline] / self.runtimes[dataset][variant]

    def to_text(self) -> str:
        """Render the figure's data as a table (one row per dataset)."""
        headers = ["Dataset"] + [f"{v} (s)" for v in VARIANTS] + ["LMN speedup vs L"]
        rows = []
        for ds, times in self.runtimes.items():
            rows.append(
                [ds]
                + [f"{times[v]:.2f}" for v in VARIANTS]
                + [f"{self.speedup(ds, 'TYCOS_LMN'):.1f}x"]
            )
        return title("Fig 9: runtime of TYCOS variants") + "\n" + format_table(headers, rows)


def make_config(n: int, seed: int = 0) -> TycosConfig:
    """The shared search configuration of the efficiency experiments.

    The operating point (sigma, s_min, permutation gate) keeps the searches
    in a signal-dominated regime: at smaller windows / lower thresholds the
    extracted sets are dominated by small-sample extremes of the MI null,
    and variant-vs-variant accuracy comparisons would measure noise
    reproduction rather than search quality.
    """
    return TycosConfig(
        sigma=0.45,
        s_min=24,
        s_max=max(64, n // 6),
        td_max=30,
        significance_permutations=10,
        seed=seed,
        # Dense: the synthetic relations are value-shuffled, so MI exists
        # only at the exact lag and a coarser probe grid would miss it.
        init_delay_step=1,
    )


def run_fig9(
    n: int = 600,
    seed: int = 0,
    datasets: Sequence[str] = DATASET_NAMES,
    variants: Sequence[str] = VARIANTS,
) -> Fig9Result:
    """Run the Fig.-9 experiment.

    Args:
        n: series length per dataset.
        seed: data and search seed.
        datasets: datasets to include (default: all five).
        variants: TYCOS variants to time (default: all four).

    Returns:
        A :class:`Fig9Result`.
    """
    result = Fig9Result()
    config = make_config(n, seed)
    for ds in datasets:
        x, y = dataset_pair(ds, n, seed=seed)
        result.runtimes[ds] = {}
        result.windows[ds] = {}
        result.evaluations[ds] = {}
        for variant in variants:
            engine: Tycos = _FACTORIES[variant](config)
            res = engine.search(x, y)
            result.runtimes[ds][variant] = res.stats.runtime_seconds
            result.windows[ds][variant] = len(res.windows)
            result.evaluations[ds][variant] = res.stats.windows_evaluated
    return result

"""Fig. 10: Brute Force vs MatrixProfile vs TYCOS_LMN runtime.

The paper's scalability figure: across growing data sizes, the exact
brute-force enumeration and an exact multi-length MatrixProfile sweep are
timed against TYCOS_LMN.  The expected shape -- preserved here -- is that
TYCOS_LMN is orders of magnitude faster than brute force and clearly
faster than the MatrixProfile sweep, with the gap widening in data size.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.baselines.matrix_profile import matrix_profile_scan
from repro.core.brute_force import brute_force_search
from repro.core.config import TycosConfig
from repro.core.tycos import tycos_lmn
from repro.experiments.datasets import dataset_pair
from repro.experiments.reporting import format_table, title

__all__ = ["Fig10Result", "run_fig10", "METHODS"]

METHODS = ("BruteForce", "MatrixProfile", "TYCOS_LMN")


@dataclass
class Fig10Result:
    """Per-size, per-method runtimes (seconds)."""

    sizes: List[int] = field(default_factory=list)
    runtimes: Dict[str, List[float]] = field(default_factory=dict)

    def speedup(self, method: str, over: str = "TYCOS_LMN") -> List[float]:
        """Element-wise runtime ratio method / over."""
        return [a / b for a, b in zip(self.runtimes[method], self.runtimes[over])]

    def to_text(self) -> str:
        """Render the figure's series as a table (one row per size)."""
        headers = ["n"] + [f"{m} (s)" for m in METHODS] + ["BF/TYCOS speedup"]
        rows = []
        for i, n in enumerate(self.sizes):
            bf = self.runtimes["BruteForce"][i]
            ty = self.runtimes["TYCOS_LMN"][i]
            rows.append(
                [n]
                + [f"{self.runtimes[m][i]:.2f}" for m in METHODS]
                + [f"{bf / ty:.0f}x"]
            )
        return title("Fig 10: exact baselines vs TYCOS_LMN") + "\n" + format_table(headers, rows)


def _fig10_config(n: int, seed: int) -> TycosConfig:
    # Bounds kept small enough that brute force stays tractable in Python;
    # the relative ordering of the methods is what the figure reproduces.
    return TycosConfig(
        sigma=0.35,
        s_min=16,
        s_max=48,
        td_max=6,
        significance_permutations=0,
        seed=seed,
    )


def run_fig10(
    sizes: Sequence[int] = (300, 500, 800),
    dataset: str = "synthetic1",
    seed: int = 0,
) -> Fig10Result:
    """Run the Fig.-10 experiment.

    Args:
        sizes: data sizes to sweep.
        dataset: dataset name (see :mod:`repro.experiments.datasets`).
        seed: data and search seed.

    Returns:
        A :class:`Fig10Result`.
    """
    result = Fig10Result(sizes=list(sizes))
    for m in METHODS:
        result.runtimes[m] = []
    for n in sizes:
        x, y = dataset_pair(dataset, n, seed=seed)
        config = _fig10_config(n, seed)

        bf = brute_force_search(x, y, config)
        result.runtimes["BruteForce"].append(bf.stats.runtime_seconds)

        started = time.perf_counter()
        matrix_profile_scan(x, y, lengths=(16, 24, 32, 48))
        result.runtimes["MatrixProfile"].append(time.perf_counter() - started)

        ty = tycos_lmn(config).search(x, y)
        result.runtimes["TYCOS_LMN"].append(ty.stats.runtime_seconds)
    return result

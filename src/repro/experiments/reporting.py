"""Plain-text reporting helpers for the experiment harness.

Every experiment runner renders its outcome through these utilities so the
console output mirrors the rows/series of the paper's tables and figures.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["check", "format_table", "format_series", "title"]


def check(flag: bool) -> str:
    """The paper's detection mark: a check or a cross."""
    return "Y" if flag else "x"


def title(text: str) -> str:
    """A boxed section title."""
    bar = "=" * len(text)
    return f"{bar}\n{text}\n{bar}"


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render rows as a fixed-width text table.

    Args:
        headers: column names.
        rows: row cell values (stringified).

    Returns:
        The table as one string, no trailing newline.
    """
    str_rows: List[List[str]] = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but the table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

    lines = [fmt(list(headers)), "-+-".join("-" * w for w in widths)]
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)


def format_series(name: str, xs: Sequence[object], ys: Sequence[object]) -> str:
    """Render an (x, y) series the way a figure's data would be tabulated."""
    pairs = ", ".join(f"{x}:{y}" for x, y in zip(xs, ys))
    return f"{name}: {pairs}"

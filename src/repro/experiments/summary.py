"""One-call regeneration of the full evaluation as a markdown report.

``tycos-experiments all --output DIR`` writes one text file per artifact;
this module goes one step further for reproducibility hand-offs: a single
markdown document with every table/figure, the configuration used, and
the environment -- the file a reviewer diffing this reproduction against
the paper would want.
"""

from __future__ import annotations

import platform
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.experiments.runner import EXPERIMENTS, run_timed

__all__ = ["SummaryReport", "generate_summary"]


@dataclass
class SummaryReport:
    """All regenerated artifacts plus run metadata."""

    scale: str
    seed: int
    sections: Dict[str, str] = field(default_factory=dict)
    durations: Dict[str, float] = field(default_factory=dict)
    failures: Dict[str, str] = field(default_factory=dict)

    def to_markdown(self, include_timings: bool = False) -> str:
        """The full report as one markdown document.

        The default output is byte-stable across identical runs (the
        determinism sanitizer diffs serialized reports); pass
        ``include_timings=True`` to append per-section regeneration
        times for human consumption.
        """
        lines: List[str] = [
            "# TYCOS evaluation report",
            "",
            f"- scale: `{self.scale}`",
            f"- seed: `{self.seed}`",
            f"- python: `{platform.python_version()}` on `{platform.machine()}`",
            "",
        ]
        for name in sorted(self.sections):
            lines.append(f"## {name}")
            lines.append("")
            lines.append("```")
            lines.append(self.sections[name])
            lines.append("```")
            if include_timings and name in self.durations:
                lines.append(f"_regenerated in {self.durations[name]:.1f}s_")
            lines.append("")
        if self.failures:
            lines.append("## failures")
            lines.append("")
            for name, error in sorted(self.failures.items()):
                lines.append(f"- **{name}**: {error}")
            lines.append("")
        return "\n".join(lines)


def generate_summary(
    scale: str = "quick",
    seed: int = 0,
    experiments: Optional[Sequence[str]] = None,
    output_path: Optional[str | Path] = None,
) -> SummaryReport:
    """Regenerate the requested artifacts and collect them in one report.

    Args:
        scale: "quick" or "full" (same semantics as the CLI).
        seed: data and search seed.
        experiments: subset of artifact names (default: all).
        output_path: when given, the markdown is also written there.

    Returns:
        A :class:`SummaryReport`; failed artifacts are recorded in
        ``failures`` instead of aborting the whole report.
    """
    if experiments is None:
        experiments = sorted(EXPERIMENTS)
    unknown = set(experiments) - set(EXPERIMENTS)
    if unknown:
        raise ValueError(f"unknown experiments {sorted(unknown)}")
    report = SummaryReport(scale=scale, seed=seed)
    for name in experiments:
        # run_timed owns the clock: report building stays wall-clock free
        # so serialized reports byte-diff clean (tycoslint TY114).
        try:
            report.sections[name], report.durations[name] = run_timed(name, scale, seed)
        except Exception as exc:  # pragma: no cover - defensive, tested via injection
            report.failures[name] = f"{type(exc).__name__}: {exc}"
            report.durations[name] = 0.0
    if output_path is not None:
        Path(output_path).write_text(report.to_markdown())
    return report

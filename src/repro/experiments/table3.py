"""Table 3: correlations extracted from the energy / smart-city datasets.

For each of the ten couplings the paper reports (C1-C6 on the energy data,
C7-C10 on the smart-city data), TYCOS and AMIC are run on the simulated
device/variable pair and the table prints, per method, the number of
extracted windows and the observed delay range -- the same three columns
as the paper's Table 3.

Expected shape (guaranteed by the simulators' construction): TYCOS finds
windows whose delays fall in the planted lag range for every coupling;
AMIC -- having no delay dimension -- extracts windows only for couplings
whose lag range starts at (or near) zero and reports them all at delay 0.

Each coupling is simulated at a resolution chosen so its maximum lag fits
in a modest ``td_max`` (the paper similarly works with minute and 5-minute
resolutions per dataset).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.baselines.amic import amic_search
from repro.core.config import TycosConfig
from repro.core.tycos import TycosResult, tycos_lmn
from repro.data.energy import EXPECTED_COUPLINGS, simulate_energy
from repro.data.smartcity import EXPECTED_CITY_COUPLINGS, simulate_smartcity
from repro.experiments.reporting import format_table, title

__all__ = ["Table3Row", "Table3Result", "run_table3", "COUPLING_PLANS"]


@dataclass(frozen=True)
class CouplingPlan:
    """How one Table-3 coupling is simulated and searched.

    Attributes:
        label: the paper's correlation id (C1 ... C10).
        domain: "energy" or "city".
        source: leading variable name.
        target: lagging variable name.
        lag_minutes: planted lag range.
        resolution_minutes: sampling resolution for this coupling.
    """

    label: str
    domain: str
    source: str
    target: str
    lag_minutes: Tuple[int, int]
    resolution_minutes: int


def _plans() -> List[CouplingPlan]:
    plans: List[CouplingPlan] = []
    for c in EXPECTED_COUPLINGS:
        # Resolution chosen so the maximum lag is <= ~30 samples.
        res = max(1, int(np.ceil(c.lag_minutes[1] / 30.0)))
        plans.append(
            CouplingPlan(c.label, "energy", c.source, c.target, c.lag_minutes, res)
        )
    for c in EXPECTED_CITY_COUPLINGS:
        plans.append(CouplingPlan(c.label, "city", c.source, c.target, c.lag_minutes, 5))
    return plans


COUPLING_PLANS: Tuple[CouplingPlan, ...] = tuple(_plans())


@dataclass
class Table3Row:
    """One row of Table 3."""

    label: str
    pair_name: str
    lag_minutes: Tuple[int, int]
    tycos_count: int
    tycos_delay_minutes: Optional[Tuple[int, int]]
    amic_count: int

    def tycos_cell(self) -> str:
        """The 'count, [delay range]' cell the paper prints for TYCOS."""
        if self.tycos_count == 0:
            return "x"
        lo, hi = self.tycos_delay_minutes
        return f"{self.tycos_count}, [{lo}-{hi}m]"

    def amic_cell(self) -> str:
        """The AMIC cell (delay is always 0)."""
        if self.amic_count == 0:
            return "x"
        return f"{self.amic_count}, 0m"


@dataclass
class Table3Result:
    """All rows of the Table-3 experiment."""

    rows: List[Table3Row] = field(default_factory=list)

    def row(self, label: str) -> Table3Row:
        """The row of one coupling id."""
        for r in self.rows:
            if r.label == label:
                return r
        raise KeyError(f"no row with label {label!r}")

    def to_text(self) -> str:
        """Render the table the way the paper prints it."""
        headers = ["Correlation", "planted lag", "TYCOS", "AMIC"]
        cells = [
            [
                f"({r.label}) {r.pair_name}",
                f"[{r.lag_minutes[0]}-{r.lag_minutes[1]}m]",
                r.tycos_cell(),
                r.amic_cell(),
            ]
            for r in self.rows
        ]
        return title("Table 3: extracted correlations") + "\n" + format_table(headers, cells)


def _search_pair(
    x: np.ndarray,
    y: np.ndarray,
    td_max: int,
    sigma: float,
    seed: int,
) -> Tuple[TycosResult, TycosResult]:
    base = TycosConfig(
        sigma=sigma,
        s_min=24,
        s_max=min(240, x.size // 2),
        td_max=td_max,
        jitter=1e-3,
        significance_permutations=10,
        seed=seed,
    )
    tycos = tycos_lmn(base).search(x, y)
    amic = amic_search(x, y, base.scaled(td_max=0))
    return tycos, amic


def run_table3(
    target_samples: int = 900,
    sigma: float = 0.25,
    seed: int = 0,
    labels: Optional[Tuple[str, ...]] = None,
) -> Table3Result:
    """Run the Table-3 experiment on the simulated datasets.

    Args:
        target_samples: approximate series length per coupling (controls
            the number of simulated days given each plan's resolution).
        sigma: correlation threshold for both methods.
        seed: simulation and search seed.
        labels: subset of coupling ids to run (default: all ten).

    Returns:
        A :class:`Table3Result` with one row per coupling.
    """
    result = Table3Result()
    for plan in COUPLING_PLANS:
        if labels is not None and plan.label not in labels:
            continue
        samples_per_day = 24 * 60 // plan.resolution_minutes
        days = max(1, int(round(target_samples / samples_per_day)))
        if plan.domain == "energy":
            dataset = simulate_energy(
                days=days, seed=seed, minutes_per_sample=plan.resolution_minutes
            )
        else:
            dataset = simulate_smartcity(
                days=days, seed=seed, minutes_per_sample=plan.resolution_minutes
            )
        x, y = dataset.pair(plan.source, plan.target)
        lag_hi_samples = max(1, int(np.ceil(plan.lag_minutes[1] / plan.resolution_minutes)))
        td_max = lag_hi_samples + 6
        tycos, amic = _search_pair(x, y, td_max, sigma, seed)
        delays = tycos.delay_range()
        delay_minutes = None
        if delays is not None:
            delay_minutes = (
                delays[0] * plan.resolution_minutes,
                delays[1] * plan.resolution_minutes,
            )
        result.rows.append(
            Table3Row(
                label=plan.label,
                pair_name=f"{plan.source} vs {plan.target}",
                lag_minutes=plan.lag_minutes,
                tycos_count=len(tycos.windows),
                tycos_delay_minutes=delay_minutes,
                amic_count=len(amic.windows),
            )
        )
    return result

"""Table 4: accuracy of the heuristic search and of the noise theory.

Two comparisons per data size, on synthetic and (simulated) real data:

* TYCOS_L vs Brute Force -- how much of the exact result the LAHC search
  recovers (the paper reports 88-98 %).
* TYCOS_LN vs TYCOS_L -- how much the noise pruning gives up (90-100 %).

Following Section 8.4 B, windows are aggregated (overlapping ones merged)
on both sides before comparison, and two windows count as the same result
when they cover a similar index range.

The paper sweeps 1K-100K samples on a C++ implementation; a Python brute
force cannot reach that, so the sweep uses smaller sizes with the same
grid *shape* -- the quantity of interest (the similarity percentage) is
size-stable by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.core.brute_force import brute_force_search
from repro.core.config import TycosConfig
from repro.core.results import merge_overlapping
from repro.core.tycos import tycos_l, tycos_ln
from repro.data.energy import simulate_energy
from repro.experiments.datasets import synthetic_pair
from repro.experiments.reporting import format_table, title
from repro.experiments.similarity import window_set_similarity

__all__ = ["Table4Row", "Table4Result", "run_table4"]


@dataclass(frozen=True)
class Table4Row:
    """Accuracy readings at one data size (percentages)."""

    size: int
    l_vs_bf_synthetic: float
    l_vs_bf_real: float
    ln_vs_l_synthetic: float
    ln_vs_l_real: float


@dataclass
class Table4Result:
    """All rows of the accuracy table."""

    rows: List[Table4Row] = field(default_factory=list)

    def to_text(self) -> str:
        """Render the table in the paper's layout."""
        headers = [
            "Size",
            "L vs BF (synth)",
            "L vs BF (real)",
            "LN vs L (synth)",
            "LN vs L (real)",
        ]
        cells = [
            [
                r.size,
                f"{100 * r.l_vs_bf_synthetic:.1f}",
                f"{100 * r.l_vs_bf_real:.1f}",
                f"{100 * r.ln_vs_l_synthetic:.1f}",
                f"{100 * r.ln_vs_l_real:.1f}",
            ]
            for r in self.rows
        ]
        return title("Table 4: accuracy evaluation") + "\n" + format_table(headers, cells)


def _accuracy_config(seed: int) -> TycosConfig:
    # Small bounds keep the Python brute force tractable; identical bounds
    # are used by every method so the comparison is apples to apples.
    return TycosConfig(
        sigma=0.35,
        s_min=16,
        s_max=48,
        td_max=6,
        significance_permutations=0,
        seed=seed,
        init_delay_step=1,
    )


def _accuracy_pair(dataset: str, n: int, seed: int) -> tuple[np.ndarray, np.ndarray]:
    """Pairs whose true lags fit inside the (small) brute-force td_max."""
    if dataset.startswith("synthetic"):
        return synthetic_pair(dataset, n, seed=seed, delay=4)
    # Clothes washer -> dryer: planted lag 10-30 minutes = 2-7 samples at
    # the 4-minute resolution used here, and both pulses span 10+ samples,
    # so the correlated windows are well inside the small search bounds.
    days = max(1, int(np.ceil(n / 360.0)))
    data = simulate_energy(days=days, seed=seed, minutes_per_sample=4, event_density=2.0)
    x, y = data.pair("clothes_washer", "dryer")
    return x[:n], y[:n]


def _pair_similarities(dataset: str, n: int, seed: int) -> tuple[float, float]:
    x, y = _accuracy_pair(dataset, n, seed)
    config = _accuracy_config(seed)
    bf = brute_force_search(x, y, config, aggregate=True)
    l_res = tycos_l(config).search(x, y)
    ln_res = tycos_ln(config).search(x, y)
    bf_windows = [r.window for r in bf.windows]
    l_windows = merge_overlapping([r.window for r in l_res.windows])
    ln_windows = merge_overlapping([r.window for r in ln_res.windows])
    return (
        window_set_similarity(l_windows, bf_windows),
        window_set_similarity(ln_windows, l_windows),
    )


def run_table4(
    sizes: Sequence[int] = (300, 500, 800),
    seed: int = 0,
    synthetic_dataset: str = "synthetic1",
    real_dataset: str = "energy",
) -> Table4Result:
    """Run the Table-4 accuracy sweep.

    Args:
        sizes: data sizes to evaluate.
        seed: data and search seed.
        synthetic_dataset: which synthetic mix stands in for the paper's
            synthetic column.
        real_dataset: which simulator stands in for the real-data column.

    Returns:
        A :class:`Table4Result`.
    """
    result = Table4Result()
    for n in sizes:
        l_bf_syn, ln_l_syn = _pair_similarities(synthetic_dataset, n, seed)
        l_bf_real, ln_l_real = _pair_similarities(real_dataset, n, seed)
        result.rows.append(
            Table4Row(
                size=n,
                l_vs_bf_synthetic=l_bf_syn,
                l_vs_bf_real=l_bf_real,
                ln_vs_l_synthetic=ln_l_syn,
                ln_vs_l_real=ln_l_real,
            )
        )
    return result

"""Programmatic data behind the paper's illustrative figures (Figs 4, 6).

These are not evaluation artifacts -- they are the intuition figures the
method sections lean on -- but a reproduction should be able to generate
them too:

* :func:`mi_fluctuation` -- Fig 4: the MI of a sliding window across a
  composed pair; the local maxima are the correlated regions LAHC climbs.
* :func:`noise_prefix_effect` -- Fig 6: the MI of a fixed-end window as a
  noise prefix is excluded sample block by sample block; monotone increase
  is the empirical face of Theorem 6.1.

``examples/mi_landscape.py`` renders both as ASCII.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.data.composer import ComposedPair, standard_pair
from repro.mi.normalized import normalized_mi

__all__ = ["mi_fluctuation", "noise_prefix_effect", "illustration_pair"]


def illustration_pair(seed: int = 1, segment_length: int = 120) -> ComposedPair:
    """The small composed pair both illustrations use."""
    rng = np.random.default_rng(seed)
    return standard_pair(
        rng, segment_length=segment_length, delay=0, names=["linear", "sine", "circle"]
    )


def mi_fluctuation(
    pair: ComposedPair,
    window: int = 60,
    step: int = 15,
) -> Tuple[List[int], List[float]]:
    """Fig 4: sliding-window normalized MI across the pair.

    Args:
        pair: the composed pair.
        window: sliding window size.
        step: stride between window positions.

    Returns:
        ``(starts, values)`` -- window start indices and their normalized
        MI; peaks align with the planted relations.
    """
    starts: List[int] = []
    values: List[float] = []
    for start in range(0, pair.n - window, step):
        starts.append(start)
        values.append(
            normalized_mi(pair.x[start : start + window], pair.y[start : start + window])
        )
    return starts, values


def noise_prefix_effect(
    pair: ComposedPair,
    prefixes: Tuple[int, ...] = (60, 40, 20, 0),
    relation_index: int = 0,
) -> Tuple[List[int], List[float]]:
    """Fig 6: MI of a window as its leading noise is excluded.

    Args:
        pair: the composed pair.
        prefixes: numbers of noise samples included before the relation.
        relation_index: which planted relation to anchor on.

    Returns:
        ``(prefixes, values)`` -- the values increase as the prefix
        shrinks (Theorem 6.1's dilution, run backwards).
    """
    planted = pair.planted[relation_index]
    values: List[float] = []
    for prefix in prefixes:
        s = max(0, planted.start - prefix)
        values.append(
            normalized_mi(pair.x[s : planted.end + 1], pair.y[s : planted.end + 1])
        )
    return list(prefixes), values

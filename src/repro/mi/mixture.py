"""Mixture distributions and empirical checks for the noise theorem.

Paper Definition 6.1 introduces ``Z = X (+)_theta U``: a variable drawn from
X with probability theta and from an independent noise source U otherwise.
Theorem 6.1 then shows ``I(X; Y) >= I(Z; W) = theta * eta * I(X; Y)`` when
U, V are independent of everything -- the theoretical core of the TYCOS
noise-pruning rule (Def. 6.4): concatenating an uninformative segment onto a
correlated window dilutes its MI.

This module provides the sampling construction and helpers used by tests
and benchmarks to verify the theorem both exactly (discrete plug-in MI) and
with the KSG estimator.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro._types import AnyArray, FloatArray
from repro.mi.discrete import discrete_mi, empirical_joint

__all__ = ["mix_samples", "mixture_joint", "theorem61_gap"]


def mix_samples(
    x: AnyArray,
    u: AnyArray,
    theta: float,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray]:
    """Draw a mixture sample ``Z = X (+)_theta U`` (Def. 6.1).

    Args:
        x: samples of X.
        u: samples of the independent source U (same length as x).
        theta: probability of drawing from X, in [0, 1].
        rng: random generator deciding the per-sample source.

    Returns:
        ``(z, chose_x)`` where ``z[i]`` equals ``x[i]`` when ``chose_x[i]``
        and ``u[i]`` otherwise.  Returning the selector lets callers build
        *jointly* consistent mixtures of paired variables.
    """
    x = np.asarray(x).ravel()
    u = np.asarray(u).ravel()
    if x.size != u.size:
        raise ValueError("x and u must have equal length")
    if not 0.0 <= theta <= 1.0:
        raise ValueError(f"theta must be in [0, 1], got {theta}")
    chose_x = rng.random(x.size) < theta
    z = np.where(chose_x, x, u)
    return z, chose_x


def mixture_joint(
    joint_xy: AnyArray,
    pu: AnyArray,
    pv: AnyArray,
    theta: float,
    eta: float,
) -> FloatArray:
    """Exact joint table of ``(Z, W)`` per Eqs. (9)-(12) of the paper.

    Z ranges over the alphabet of X followed by the alphabet of U; W over
    Y's alphabet followed by V's.  The independence assumptions of Theorem
    6.1 are baked in: the cross blocks factorize into products of marginals.

    Args:
        joint_xy: joint table of (X, Y).
        pu: marginal p.m.f. of U.
        pv: marginal p.m.f. of V.
        theta: probability that Z draws from X.
        eta: probability that W draws from Y.
    """
    joint_xy = np.asarray(joint_xy, dtype=np.float64)
    pu = np.asarray(pu, dtype=np.float64).ravel()
    pv = np.asarray(pv, dtype=np.float64).ravel()
    px = joint_xy.sum(axis=1)
    py = joint_xy.sum(axis=0)
    top_left = theta * eta * joint_xy                      # (X, Y), Eq. 9
    top_right = theta * (1 - eta) * np.outer(px, pv)       # (X, V), Eq. 10
    bottom_left = (1 - theta) * eta * np.outer(pu, py)     # (U, Y), Eq. 11
    bottom_right = (1 - theta) * (1 - eta) * np.outer(pu, pv)  # (U, V), Eq. 12
    top = np.hstack([top_left, top_right])
    bottom = np.hstack([bottom_left, bottom_right])
    return np.vstack([top, bottom])


def theorem61_gap(
    joint_xy: AnyArray,
    pu: AnyArray,
    pv: AnyArray,
    theta: float,
    eta: float,
) -> Tuple[float, float]:
    """Return ``(I(X;Y), I(Z;W))`` for an exact mixture construction.

    Theorem 6.1 asserts ``I(Z;W) = theta * eta * I(X;Y) <= I(X;Y)``; tests
    assert both the inequality and the exact identity.
    """
    i_xy = discrete_mi(joint_xy)
    i_zw = discrete_mi(mixture_joint(joint_xy, pu, pv, theta, eta))
    return i_xy, i_zw


def empirical_theorem61_gap(
    x: AnyArray,
    y: AnyArray,
    u: AnyArray,
    v: AnyArray,
    theta: float,
    eta: float,
    rng: np.random.Generator,
) -> Tuple[float, float]:
    """Sampled version of :func:`theorem61_gap` on discrete label arrays."""
    z, _ = mix_samples(x, u, theta, rng)
    w, _ = mix_samples(y, v, eta, rng)
    return discrete_mi(empirical_joint(x, y)), discrete_mi(empirical_joint(z, w))

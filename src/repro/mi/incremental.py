"""Incremental KSG mutual information over a sliding point set (Section 7).

TYCOS explores neighborhoods by nudging a window's start/end indices, so
consecutive MI evaluations share almost all their data points.  Recomputing
KSG from scratch costs O(m^2) per window; this engine instead maintains,
for every live point, its k-nearest-neighbor set and reacts to point
insertions/removals using the paper's *influenced region* (IR) and
*influenced marginal region* (IMR) rules:

* Lemma 3 -- an inserted point becomes a new k-th neighbor of ``p`` iff it
  lands inside ``p``'s IR (Chebyshev ball of radius ``d_k(p)``).  The update
  is a constant-time replacement in ``p``'s neighbor set; no search.
* Lemma 4 -- a removed point changes ``p``'s k-NN set iff it was inside
  ``p``'s IR; only then is a fresh neighbor search for ``p`` required.
* Lemmas 5/6 -- marginal counts change only inside the IMRs.  We exploit
  this in aggregate: marginal counts are recounted with two binary searches
  per point over sorted projections at query time, which is O(m log m) --
  asymptotically the same as recounting only the touched strips, without
  the per-strip bookkeeping.

The net effect matches the paper's TYCOS_LM: per delta-step window move the
dominant O(m^2) neighbor search collapses to O((delta + a) * m) where ``a``
is the number of IR-affected points.

The estimate produced is *identical* to the batch estimator on the same
point set (tests assert exact agreement), because the same geometry feeds
the same formula.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro import contracts
from repro.mi.ksg import KSGEstimator
from repro.mi.neighbors import KnnResult, chebyshev_knn_bruteforce

__all__ = ["SlidingKSG"]

# Neighbor record layout: (chebyshev distance, |dx|, |dy|, neighbor id).
_Neighbor = Tuple[float, float, float, int]


class SlidingKSG:
    """KSG MI estimator over a dynamically maintained set of (x, y) points.

    Points carry caller-chosen integer ids (TYCOS uses the time index on
    ``X_T``), so the caller can slide a window by adding/removing ids.

    Usage::

        eng = SlidingKSG(k=4)
        eng.reset(x[0:100], y[0:100], ids=range(0, 100))
        eng.mi()                      # MI of the initial window
        eng.add(100, x[100], y[100])  # grow the window by one step
        eng.remove(0)                 # ... and shrink it at the front
        eng.mi()                      # updated estimate, no full recompute

    Attributes:
        full_searches: number of from-scratch k-NN searches performed
            (bulk loads count one per point).
        incremental_updates: number of constant-time neighbor-set
            replacements triggered by Lemma 3.
    """

    def __init__(self, k: int = 4, algorithm: int = 2) -> None:
        self._estimator = KSGEstimator(k=k, algorithm=algorithm, backend="bruteforce")
        self.k = k
        self.algorithm = algorithm
        # Parallel position-indexed storage (swap-pop on removal), backed
        # by preallocated numpy buffers so adds/removes never rebuild
        # arrays from Python lists.
        self._ids: List[int] = []
        self._size = 0
        self._buf_x = np.empty(64)
        self._buf_y = np.empty(64)
        # Positional caches of each point's neighbor geometry, maintained
        # alongside the neighbor sets so mi() is pure vectorized work.
        self._buf_kth = np.empty(64)
        self._buf_epsx = np.empty(64)
        self._buf_epsy = np.empty(64)
        self._pos: Dict[int, int] = {}
        # Neighbor sets per id and the reverse adjacency (who lists me).
        self._neighbors: Dict[int, List[_Neighbor]] = {}
        self._reverse: Dict[int, Set[int]] = {}
        self._needs_rebuild = True
        self.full_searches = 0
        self.incremental_updates = 0

    def _ensure_capacity(self, needed: int) -> None:
        if needed <= self._buf_x.size:
            return
        capacity = self._buf_x.size
        while capacity < needed:
            capacity *= 2
        for name in ("_buf_x", "_buf_y", "_buf_kth", "_buf_epsx", "_buf_epsy"):
            old = getattr(self, name)
            grown = np.empty(capacity)
            grown[: old.size] = old
            setattr(self, name, grown)

    # ------------------------------------------------------------------ #
    # basic container protocol

    def __len__(self) -> int:
        return len(self._ids)

    def __contains__(self, point_id: int) -> bool:
        return point_id in self._pos

    @property
    def ids(self) -> Tuple[int, ...]:
        """Ids of the currently live points (unspecified order)."""
        return tuple(self._ids)

    # ------------------------------------------------------------------ #
    # mutation

    def reset(
        self, x: Iterable[float], y: Iterable[float], ids: Optional[Iterable[int]] = None
    ) -> None:
        """Replace the entire point set and rebuild neighbor structures."""
        xs = [float(v) for v in x]
        ys = [float(v) for v in y]
        if len(xs) != len(ys):
            raise ValueError("x and y must have equal length")
        if ids is None:
            id_list = list(range(len(xs)))
        else:
            id_list = [int(i) for i in ids]
        if len(id_list) != len(xs):
            raise ValueError("ids must match the number of points")
        if len(set(id_list)) != len(id_list):
            raise ValueError("ids must be unique")
        self._ids = id_list
        self._size = len(id_list)
        self._ensure_capacity(self._size)
        self._buf_x[: self._size] = xs
        self._buf_y[: self._size] = ys
        self._buf_kth[: self._size] = 0.0
        self._buf_epsx[: self._size] = 0.0
        self._buf_epsy[: self._size] = 0.0
        self._pos = {pid: i for i, pid in enumerate(id_list)}
        self._neighbors = {}
        self._reverse = {pid: set() for pid in id_list}
        self._needs_rebuild = True
        self._maybe_rebuild()

    def add(self, point_id: int, x: float, y: float) -> None:
        """Insert a point, updating affected neighbor sets (Lemma 3)."""
        if point_id in self._pos:
            raise KeyError(f"point id {point_id} already present")
        x = float(x)
        y = float(y)
        m_before = self._size
        if not self._needs_rebuild and m_before > self.k:
            xs = self._buf_x[:m_before]
            ys = self._buf_y[:m_before]
            dx = np.abs(xs - x)
            dy = np.abs(ys - y)
            dist = np.maximum(dx, dy)
            # New point's own neighbor set: k best among existing points.
            order = np.argpartition(dist, self.k - 1)[: self.k]
            new_set: List[_Neighbor] = [
                (float(dist[j]), float(dx[j]), float(dy[j]), self._ids[j]) for j in order
            ]
            self.full_searches += 1
            # Lemma 3: the new point displaces the current k-th neighbor of
            # every point whose IR it falls into.
            affected = np.nonzero(dist < self._buf_kth[:m_before])[0]
            for j in affected:
                pid = self._ids[j]
                nb = self._neighbors[pid]
                worst = max(range(len(nb)), key=lambda t: nb[t][0])
                evicted = nb[worst][3]
                self._reverse[evicted].discard(pid)
                nb[worst] = (float(dist[j]), float(dx[j]), float(dy[j]), point_id)
                self._reverse.setdefault(point_id, set()).add(pid)
                self._buf_kth[j] = max(t[0] for t in nb)
                self._buf_epsx[j] = max(t[1] for t in nb)
                self._buf_epsy[j] = max(t[2] for t in nb)
                self.incremental_updates += 1
            self._neighbors[point_id] = new_set
            self._reverse.setdefault(point_id, set())
            for t in new_set:
                self._reverse[t[3]].add(point_id)
            new_kth = max(t[0] for t in new_set)
            new_epsx = max(t[1] for t in new_set)
            new_epsy = max(t[2] for t in new_set)
        else:
            self._needs_rebuild = True
            self._reverse.setdefault(point_id, set())
            new_kth = new_epsx = new_epsy = 0.0
        pos = self._size
        self._ensure_capacity(pos + 1)
        self._pos[point_id] = pos
        self._ids.append(point_id)
        self._buf_x[pos] = x
        self._buf_y[pos] = y
        self._buf_kth[pos] = new_kth
        self._buf_epsx[pos] = new_epsx
        self._buf_epsy[pos] = new_epsy
        self._size += 1
        self._maybe_rebuild()

    def remove(self, point_id: int) -> None:
        """Remove a point, re-searching only IR-affected points (Lemma 4)."""
        if point_id not in self._pos:
            raise KeyError(f"point id {point_id} not present")
        pos = self._pos.pop(point_id)
        last = self._size - 1
        if pos != last:
            self._ids[pos] = self._ids[last]
            self._buf_x[pos] = self._buf_x[last]
            self._buf_y[pos] = self._buf_y[last]
            self._buf_kth[pos] = self._buf_kth[last]
            self._buf_epsx[pos] = self._buf_epsx[last]
            self._buf_epsy[pos] = self._buf_epsy[last]
            self._pos[self._ids[pos]] = pos
        self._ids.pop()
        self._size -= 1

        dependents = self._reverse.pop(point_id, set())
        removed_set = self._neighbors.pop(point_id, None)
        if removed_set is not None:
            for t in removed_set:
                rev = self._reverse.get(t[3])
                if rev is not None:
                    rev.discard(point_id)

        if self._needs_rebuild:
            self._maybe_rebuild()
            return
        if len(self._ids) <= self.k:
            # Too few points to hold k-neighbor sets; rebuild lazily later.
            self._needs_rebuild = True
            self._neighbors = {}
            self._reverse = {pid: set() for pid in self._ids}
            return
        for pid in dependents:
            if pid in self._pos:
                self._research_point(pid)

    # ------------------------------------------------------------------ #
    # queries

    def mi(self) -> float:
        """Current KSG MI estimate (nats) over the live point set.

        Raises:
            ValueError: if fewer than ``k + 2`` points are live.
        """
        m = len(self._ids)
        if m < self.k + 2:
            raise ValueError(f"need at least k+2={self.k + 2} points, got {m}")
        self._maybe_rebuild()
        x = self._buf_x[:m]
        y = self._buf_y[:m]
        geometry = KnnResult(
            kth_distance=self._buf_kth[:m],
            eps_x=self._buf_epsx[:m],
            eps_y=self._buf_epsy[:m],
            indices=np.empty((m, 0), dtype=np.int64),
        )
        value = self._estimator.mi_from_geometry(x, y, geometry, self.k)
        if contracts.checks_enabled():
            contracts.check_mi_finite(value, where="SlidingKSG.mi")
        return value

    def neighbor_ids(self, point_id: int) -> Tuple[int, ...]:
        """Ids of ``point_id``'s current k nearest neighbors (for tests)."""
        self._maybe_rebuild()
        return tuple(t[3] for t in self._neighbors[point_id])

    # ------------------------------------------------------------------ #
    # internals

    def _maybe_rebuild(self) -> None:
        if not self._needs_rebuild or self._size <= self.k:
            return
        x = self._buf_x[: self._size]
        y = self._buf_y[: self._size]
        knn = chebyshev_knn_bruteforce(x, y, self.k)
        self._neighbors = {}
        self._reverse = {pid: set() for pid in self._ids}
        dx = np.abs(x[:, None] - x[None, :])
        dy = np.abs(y[:, None] - y[None, :])
        self._buf_kth[: self._size] = knn.kth_distance
        self._buf_epsx[: self._size] = knn.eps_x
        self._buf_epsy[: self._size] = knn.eps_y
        for i, pid in enumerate(self._ids):
            entries: List[_Neighbor] = []
            for j in knn.indices[i]:
                entries.append(
                    (float(max(dx[i, j], dy[i, j])), float(dx[i, j]), float(dy[i, j]), self._ids[j])
                )
                self._reverse[self._ids[j]].add(pid)
            self._neighbors[pid] = entries
        self.full_searches += len(self._ids)
        self._needs_rebuild = False

    def _research_point(self, point_id: int) -> None:
        """Full k-NN search for one point (used after an IR-hit removal)."""
        pos = self._pos[point_id]
        x = self._buf_x[: self._size]
        y = self._buf_y[: self._size]
        dx = np.abs(x - x[pos])
        dy = np.abs(y - y[pos])
        dist = np.maximum(dx, dy)
        dist[pos] = np.inf
        order = np.argpartition(dist, self.k - 1)[: self.k]
        old = self._neighbors.get(point_id, [])
        for t in old:
            rev = self._reverse.get(t[3])
            if rev is not None:
                rev.discard(point_id)
        entries: List[_Neighbor] = []
        for j in order:
            nid = self._ids[j]
            entries.append((float(dist[j]), float(dx[j]), float(dy[j]), nid))
            self._reverse[nid].add(point_id)
        self._neighbors[point_id] = entries
        self._buf_kth[pos] = max(t[0] for t in entries)
        self._buf_epsx[pos] = max(t[1] for t in entries)
        self._buf_epsy[pos] = max(t[2] for t in entries)
        self.full_searches += 1

"""Incremental KSG mutual information over a sliding point set (Section 7).

TYCOS explores neighborhoods by nudging a window's start/end indices, so
consecutive MI evaluations share almost all their data points.  Recomputing
KSG from scratch costs O(m^2) per window; this engine instead maintains,
for every live point, its k-nearest-neighbor set and reacts to point
insertions/removals using the paper's *influenced region* (IR) and
*influenced marginal region* (IMR) rules:

* Lemma 3 -- an inserted point becomes a new k-th neighbor of ``p`` iff it
  lands inside ``p``'s IR (Chebyshev ball of radius ``d_k(p)``).  The update
  is a constant-time replacement in ``p``'s neighbor set; no search.
* Lemma 4 -- a removed point changes ``p``'s k-NN set iff it was inside
  ``p``'s IR; only then is a fresh neighbor search for ``p`` required.
* Lemmas 5/6 -- marginal counts change only inside the IMRs.  We exploit
  this through a :class:`repro.mi.neighbors.MarginalIndex` per axis: the
  sorted projections are maintained incrementally (one binary search plus
  one memmove per point move), so the query-time marginal recount is two
  binary searches per point over *already sorted* arrays -- the per-call
  ``O(m log m)`` sort disappears.

Neighbor records live in one structured numpy table indexed by point
position (fields ``dist``/``dx``/``dy``/``id``), so bulk loads, Lemma-3
displacements and the evictee/extent updates are vectorized gathers and
reductions instead of per-point Python tuple juggling.

The net effect matches the paper's TYCOS_LM: per delta-step window move the
dominant O(m^2) neighbor search collapses to O((delta + a) * m) where ``a``
is the number of IR-affected points.

The estimate produced is *identical* to the batch estimator on the same
point set (tests assert exact agreement), because the same geometry feeds
the same formula.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro import contracts
from repro.mi.digamma import shared_digamma_table
from repro.mi.ksg import KSGEstimator
from repro.mi.neighbors import KnnResult, MarginalIndex

if TYPE_CHECKING:
    from repro.mi.backends.dispatch import KernelSet

__all__ = ["SlidingKSG"]

# Columnar neighbor record: Chebyshev distance, |dx|, |dy|, neighbor id.
_NEIGHBOR_DTYPE = np.dtype(
    [("dist", np.float64), ("dx", np.float64), ("dy", np.float64), ("id", np.int64)]
)


class SlidingKSG:
    """KSG MI estimator over a dynamically maintained set of (x, y) points.

    Points carry caller-chosen integer ids (TYCOS uses the time index on
    ``X_T``), so the caller can slide a window by adding/removing ids.

    Usage::

        eng = SlidingKSG(k=4)
        eng.reset(x[0:100], y[0:100], ids=range(0, 100))
        eng.mi()                      # MI of the initial window
        eng.add(100, x[100], y[100])  # grow the window by one step
        eng.remove(0)                 # ... and shrink it at the front
        eng.mi()                      # updated estimate, no full recompute

    Args:
        k: number of nearest neighbors.
        algorithm: KSG variant (2 is the paper's Eq. 2).
        use_digamma_table: serve digamma from the shared process-wide
            table (exact scipy values; off only for benchmark ablations).
        use_sorted_marginals: maintain sorted x/y projections incrementally
            (Lemmas 5/6) instead of re-sorting both on every :meth:`mi`.
        kernels: optional backend kernel suite
            (:func:`repro.mi.backends.dispatch.get_kernels`); routes the
            estimator's marginal counts through the backend.  The
            neighbor-set maintenance itself stays on the legacy numpy
            path -- its state is path-dependent, so a compiled rewrite
            could not be gated on bit-equality window by window.

    Attributes:
        full_searches: number of from-scratch k-NN searches performed
            (bulk loads count one per point).
        incremental_updates: number of constant-time neighbor-set
            replacements triggered by Lemma 3.
    """

    def __init__(
        self,
        k: int = 4,
        algorithm: int = 2,
        use_digamma_table: bool = True,
        use_sorted_marginals: bool = True,
        kernels: Optional["KernelSet"] = None,
    ) -> None:
        self._estimator = KSGEstimator(
            k=k,
            algorithm=algorithm,
            backend="bruteforce",
            use_digamma_table=use_digamma_table,
            kernels=kernels,
        )
        self.k = k
        self.algorithm = algorithm
        self._use_digamma_table = use_digamma_table
        # Parallel position-indexed storage (swap-pop on removal), backed
        # by preallocated numpy buffers so adds/removes never rebuild
        # arrays from Python lists.
        self._ids: List[int] = []
        self._size = 0
        self._buf_x = np.empty(64)
        self._buf_y = np.empty(64)
        # Positional caches of each point's neighbor geometry, maintained
        # alongside the neighbor table so mi() is pure vectorized work.
        self._buf_kth = np.empty(64)
        self._buf_epsx = np.empty(64)
        self._buf_epsy = np.empty(64)
        # Structured neighbor table: row i holds point i's k neighbor
        # records.  Rows are only meaningful while not _needs_rebuild.
        self._nb = np.empty((64, k), dtype=_NEIGHBOR_DTYPE)
        self._pos: Dict[int, int] = {}
        # Reverse adjacency: id -> ids of points listing it as a neighbor.
        self._reverse: Dict[int, Set[int]] = {}
        # Incrementally maintained sorted projections (Lemmas 5/6).
        self._marginal_x: Optional[MarginalIndex] = (
            MarginalIndex() if use_sorted_marginals else None
        )
        self._marginal_y: Optional[MarginalIndex] = (
            MarginalIndex() if use_sorted_marginals else None
        )
        self._needs_rebuild = True
        self.full_searches = 0
        self.incremental_updates = 0

    def _ensure_capacity(self, needed: int) -> None:
        if needed <= self._buf_x.size:
            return
        capacity = self._buf_x.size
        while capacity < needed:
            capacity *= 2
        for name in ("_buf_x", "_buf_y", "_buf_kth", "_buf_epsx", "_buf_epsy"):
            old = getattr(self, name)
            grown = np.empty(capacity)
            grown[: old.size] = old
            setattr(self, name, grown)
        grown_nb = np.empty((capacity, self.k), dtype=_NEIGHBOR_DTYPE)
        grown_nb[: self._nb.shape[0]] = self._nb
        self._nb = grown_nb

    # ------------------------------------------------------------------ #
    # basic container protocol

    def __len__(self) -> int:
        return len(self._ids)

    def __contains__(self, point_id: int) -> bool:
        return point_id in self._pos

    @property
    def ids(self) -> Tuple[int, ...]:
        """Ids of the currently live points (unspecified order)."""
        return tuple(self._ids)

    # ------------------------------------------------------------------ #
    # mutation

    def reset(
        self, x: Iterable[float], y: Iterable[float], ids: Optional[Iterable[int]] = None
    ) -> None:
        """Replace the entire point set and rebuild neighbor structures."""
        xs = [float(v) for v in x]
        ys = [float(v) for v in y]
        if len(xs) != len(ys):
            raise ValueError("x and y must have equal length")
        if ids is None:
            id_list = list(range(len(xs)))
        else:
            id_list = [int(i) for i in ids]
        if len(id_list) != len(xs):
            raise ValueError("ids must match the number of points")
        if len(set(id_list)) != len(id_list):
            raise ValueError("ids must be unique")
        self._ids = id_list
        self._size = len(id_list)
        self._ensure_capacity(self._size)
        self._buf_x[: self._size] = xs
        self._buf_y[: self._size] = ys
        self._buf_kth[: self._size] = 0.0
        self._buf_epsx[: self._size] = 0.0
        self._buf_epsy[: self._size] = 0.0
        self._pos = {pid: i for i, pid in enumerate(id_list)}
        self._reverse = {pid: set() for pid in id_list}
        if self._marginal_x is not None and self._marginal_y is not None:
            self._marginal_x.reset(self._buf_x[: self._size])
            self._marginal_y.reset(self._buf_y[: self._size])
        self._needs_rebuild = True
        self._maybe_rebuild()

    def add(self, point_id: int, x: float, y: float) -> None:
        """Insert a point, updating affected neighbor sets (Lemma 3)."""
        if point_id in self._pos:
            raise KeyError(f"point id {point_id} already present")
        x = float(x)
        y = float(y)
        m_before = self._size
        if not self._needs_rebuild and m_before > self.k:
            xs = self._buf_x[:m_before]
            ys = self._buf_y[:m_before]
            dx = np.abs(xs - x)
            dy = np.abs(ys - y)
            dist = np.maximum(dx, dy)
            # New point's own neighbor set: k best among existing points.
            order = np.argpartition(dist, self.k - 1)[: self.k]
            self.full_searches += 1
            # Lemma 3: the new point displaces the current k-th neighbor of
            # every point whose IR it falls into.  The displacement -- find
            # the worst record, replace it, refresh the cached extents --
            # is one batched gather/reduce over all affected rows.
            affected = np.nonzero(dist < self._buf_kth[:m_before])[0]
            if affected.size:
                nb_dist = self._nb["dist"]
                nb_dx = self._nb["dx"]
                nb_dy = self._nb["dy"]
                nb_id = self._nb["id"]
                worst = np.argmax(nb_dist[affected], axis=1)
                evicted = nb_id[affected, worst]
                new_dependents = self._reverse.setdefault(point_id, set())
                for j, evictee in zip(affected, evicted):
                    pid = self._ids[j]
                    self._reverse[int(evictee)].discard(pid)
                    new_dependents.add(pid)
                nb_dist[affected, worst] = dist[affected]
                nb_dx[affected, worst] = dx[affected]
                nb_dy[affected, worst] = dy[affected]
                nb_id[affected, worst] = point_id
                self._buf_kth[affected] = nb_dist[affected].max(axis=1)
                self._buf_epsx[affected] = nb_dx[affected].max(axis=1)
                self._buf_epsy[affected] = nb_dy[affected].max(axis=1)
                self.incremental_updates += int(affected.size)
            self._reverse.setdefault(point_id, set())
            new_ids = np.empty(self.k, dtype=np.int64)
            for slot, j in enumerate(order):
                neighbor_id = self._ids[j]
                new_ids[slot] = neighbor_id
                self._reverse[neighbor_id].add(point_id)
            new_dist = dist[order]
            new_dx = dx[order]
            new_dy = dy[order]
            new_kth = float(new_dist.max())
            new_epsx = float(new_dx.max())
            new_epsy = float(new_dy.max())
        else:
            self._needs_rebuild = True
            self._reverse.setdefault(point_id, set())
            new_dist = new_dx = new_dy = new_ids = None
            new_kth = new_epsx = new_epsy = 0.0
        pos = self._size
        self._ensure_capacity(pos + 1)
        self._pos[point_id] = pos
        self._ids.append(point_id)
        self._buf_x[pos] = x
        self._buf_y[pos] = y
        self._buf_kth[pos] = new_kth
        self._buf_epsx[pos] = new_epsx
        self._buf_epsy[pos] = new_epsy
        if new_dist is not None:
            row = self._nb[pos]
            row["dist"] = new_dist
            row["dx"] = new_dx
            row["dy"] = new_dy
            row["id"] = new_ids
        self._size += 1
        if self._marginal_x is not None and self._marginal_y is not None:
            self._marginal_x.add(x)
            self._marginal_y.add(y)
        self._maybe_rebuild()

    def remove(self, point_id: int) -> None:
        """Remove a point, re-searching only IR-affected points (Lemma 4)."""
        if point_id not in self._pos:
            raise KeyError(f"point id {point_id} not present")
        pos = self._pos.pop(point_id)
        removed_x = float(self._buf_x[pos])
        removed_y = float(self._buf_y[pos])
        removed_neighbor_ids: Optional[np.ndarray] = None
        if not self._needs_rebuild:
            removed_neighbor_ids = self._nb["id"][pos].copy()
        last = self._size - 1
        if pos != last:
            self._ids[pos] = self._ids[last]
            self._buf_x[pos] = self._buf_x[last]
            self._buf_y[pos] = self._buf_y[last]
            self._buf_kth[pos] = self._buf_kth[last]
            self._buf_epsx[pos] = self._buf_epsx[last]
            self._buf_epsy[pos] = self._buf_epsy[last]
            self._nb[pos] = self._nb[last]
            self._pos[self._ids[pos]] = pos
        self._ids.pop()
        self._size -= 1
        if self._marginal_x is not None and self._marginal_y is not None:
            self._marginal_x.remove(removed_x)
            self._marginal_y.remove(removed_y)

        dependents = self._reverse.pop(point_id, set())
        if removed_neighbor_ids is not None:
            for neighbor_id in removed_neighbor_ids:
                rev = self._reverse.get(int(neighbor_id))
                if rev is not None:
                    rev.discard(point_id)

        if self._needs_rebuild:
            self._maybe_rebuild()
            return
        if len(self._ids) <= self.k:
            # Too few points to hold k-neighbor sets; rebuild lazily later.
            self._needs_rebuild = True
            self._reverse = {pid: set() for pid in self._ids}
            return
        for pid in dependents:
            if pid in self._pos:
                self._research_point(pid)

    # ------------------------------------------------------------------ #
    # queries

    def mi(self) -> float:
        """Current KSG MI estimate (nats) over the live point set.

        Raises:
            ValueError: if fewer than ``k + 2`` points are live.
        """
        m = len(self._ids)
        if m < self.k + 2:
            raise ValueError(f"need at least k+2={self.k + 2} points, got {m}")
        self._maybe_rebuild()
        x = self._buf_x[:m]
        y = self._buf_y[:m]
        geometry = KnnResult(
            kth_distance=self._buf_kth[:m],
            eps_x=self._buf_epsx[:m],
            eps_y=self._buf_epsy[:m],
            indices=np.empty((m, 0), dtype=np.int64),
        )
        table = shared_digamma_table().prefix(m) if self._use_digamma_table else None
        sorted_x = sorted_y = None
        if self._marginal_x is not None and self._marginal_y is not None:
            sorted_x = self._marginal_x.sorted_values()
            sorted_y = self._marginal_y.sorted_values()
        value = self._estimator.mi_from_geometry(
            x,
            y,
            geometry,
            self.k,
            digamma_table=table,
            sorted_x=sorted_x,
            sorted_y=sorted_y,
        )
        if contracts.checks_enabled():
            contracts.check_mi_finite(value, where="SlidingKSG.mi")
        return value

    def neighbor_ids(self, point_id: int) -> Tuple[int, ...]:
        """Ids of ``point_id``'s current k nearest neighbors (for tests)."""
        self._maybe_rebuild()
        if self._needs_rebuild or point_id not in self._pos:
            raise KeyError(point_id)
        return tuple(int(i) for i in self._nb["id"][self._pos[point_id]])

    # ------------------------------------------------------------------ #
    # internals

    def _maybe_rebuild(self) -> None:
        if not self._needs_rebuild or self._size <= self.k:
            return
        m = self._size
        x = self._buf_x[:m]
        y = self._buf_y[:m]
        # Same kernel as chebyshev_knn_bruteforce, inlined so the dx/dy
        # broadcasts feed the neighbor-table gathers instead of being
        # recomputed (identical values, identical argpartition ties).
        dx = np.abs(x[:, None] - x[None, :])
        dy = np.abs(y[:, None] - y[None, :])
        dist = np.maximum(dx, dy)
        np.fill_diagonal(dist, np.inf)
        idx = np.argpartition(dist, self.k - 1, axis=1)[:, : self.k]
        rows = np.arange(m)[:, None]
        nb = self._nb[:m]
        nb["dist"] = dist[rows, idx]
        nb["dx"] = dx[rows, idx]
        nb["dy"] = dy[rows, idx]
        ids_arr = np.asarray(self._ids, dtype=np.int64)
        nb["id"] = ids_arr[idx]
        self._buf_kth[:m] = nb["dist"].max(axis=1)
        self._buf_epsx[:m] = nb["dx"].max(axis=1)
        self._buf_epsy[:m] = nb["dy"].max(axis=1)
        self._reverse = {pid: set() for pid in self._ids}
        neighbor_id_rows = nb["id"]
        for i, pid in enumerate(self._ids):
            for neighbor_id in neighbor_id_rows[i]:
                self._reverse[int(neighbor_id)].add(pid)
        self.full_searches += m
        self._needs_rebuild = False

    def _research_point(self, point_id: int) -> None:
        """Full k-NN search for one point (used after an IR-hit removal)."""
        pos = self._pos[point_id]
        x = self._buf_x[: self._size]
        y = self._buf_y[: self._size]
        dx = np.abs(x - x[pos])
        dy = np.abs(y - y[pos])
        dist = np.maximum(dx, dy)
        dist[pos] = np.inf
        order = np.argpartition(dist, self.k - 1)[: self.k]
        for neighbor_id in self._nb["id"][pos]:
            rev = self._reverse.get(int(neighbor_id))
            if rev is not None:
                rev.discard(point_id)
        row = self._nb[pos]
        row["dist"] = dist[order]
        row["dx"] = dx[order]
        row["dy"] = dy[order]
        for slot, j in enumerate(order):
            neighbor_id = self._ids[j]
            row["id"][slot] = neighbor_id
            self._reverse[neighbor_id].add(point_id)
        self._buf_kth[pos] = float(dist[order].max())
        self._buf_epsx[pos] = float(dx[order].max())
        self._buf_epsy[pos] = float(dy[order].max())
        self.full_searches += 1

"""Histogram (binned plug-in) mutual information estimator.

One of the two classical estimators the paper's Section 3.1 weighs KSG
against (citing Papana & Kugiumtzis [22]): partition the plane into a
grid, estimate the joint p.m.f. by cell counts and apply Eq. (1).  Cheap
and simple, but the bin width trades bias against variance and the
estimator needs far more samples than KSG for the same accuracy -- the
comparison bench ``benchmarks/test_ablation_estimators.py`` reproduces
exactly that finding.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro._types import AnyArray
from repro.mi.entropy import default_bins

__all__ = ["histogram_mi"]


def histogram_mi(x: AnyArray, y: AnyArray, bins: Optional[int] = None) -> float:
    """Binned plug-in estimate of I(X; Y) in nats.

    Args:
        x: samples of the first variable, shape ``(m,)``.
        y: paired samples of the second variable, shape ``(m,)``.
        bins: equal-width bins per axis (default: the sqrt rule of
            :func:`repro.mi.entropy.default_bins`).

    Returns:
        ``sum p(i,j) log[ p(i,j) / (p(i) p(j)) ]`` over occupied cells.
    """
    x = np.asarray(x, dtype=np.float64).ravel()
    y = np.asarray(y, dtype=np.float64).ravel()
    if x.size != y.size:
        raise ValueError(f"x and y must have equal length, got {x.size} and {y.size}")
    if x.size < 2:
        raise ValueError(f"need at least 2 samples, got {x.size}")
    if bins is None:
        bins = default_bins(x.size)
    if bins < 2:
        raise ValueError(f"bins must be >= 2, got {bins}")
    joint, _, _ = np.histogram2d(x, y, bins=bins)
    joint = joint / x.size
    px = joint.sum(axis=1, keepdims=True)
    py = joint.sum(axis=0, keepdims=True)
    mask = joint > 0
    outer = px * py
    return float(np.sum(joint[mask] * np.log(joint[mask] / outer[mask])))

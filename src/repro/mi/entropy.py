"""Entropy estimators used for MI normalization and cross-checks.

Three estimators are provided:

* :func:`discrete_entropy` -- the plug-in (maximum likelihood) entropy of a
  discrete sample.
* :func:`binned_joint_entropy` -- the plug-in entropy of a 2-D continuous
  sample after equal-width binning; this is the ``H_w`` used to normalize
  window MI (paper Eq. 18), because the window's uncertainty must be a
  non-negative, bounded quantity for the ratio to land in [0, 1].
* :func:`kl_entropy` -- the Kozachenko--Leonenko k-NN differential entropy
  estimator, used in tests to sanity-check the k-NN machinery against known
  closed forms (e.g. the Gaussian).
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Optional

import numpy as np

from repro._types import AnyArray, IntArray
from repro.mi.digamma import shared_digamma_table

__all__ = ["discrete_entropy", "binned_joint_entropy", "kl_entropy", "default_bins"]


def discrete_entropy(labels: AnyArray) -> float:
    """Plug-in Shannon entropy (nats) of a discrete sample.

    Args:
        labels: 1-D array of hashable/comparable symbols.

    Returns:
        ``-sum p log p`` over the empirical distribution.
    """
    labels = np.asarray(labels).ravel()
    if labels.size == 0:
        raise ValueError("cannot compute entropy of an empty sample")
    _, counts = np.unique(labels, return_counts=True)
    p = counts / labels.size
    return float(-np.sum(p * np.log(p)))


@lru_cache(maxsize=None)
def default_bins(m: int) -> int:
    """Bin count heuristic for plug-in entropy of ``m`` continuous samples.

    The square-root choice keeps the expected occupancy per *marginal* bin
    around ``sqrt(m)``, which is the standard bias/variance compromise for
    2-D plug-in entropies at the window sizes TYCOS evaluates.  Memoized:
    a search evaluates tens of thousands of windows over a few dozen
    distinct sizes.
    """
    # math.sqrt/math.ceil produce the same float64 result as the numpy
    # scalar path but without ufunc dispatch.
    return max(2, math.ceil(math.sqrt(m / 5.0)))


def binned_joint_entropy(
    x: AnyArray,
    y: AnyArray,
    bins: Optional[int] = None,
    *,
    x_bounds: Optional[tuple] = None,
    y_bounds: Optional[tuple] = None,
) -> float:
    """Plug-in joint entropy (nats) of a continuous pair after binning.

    Args:
        x: samples of the first variable, shape ``(m,)``.
        y: paired samples of the second variable, shape ``(m,)``.
        bins: number of equal-width bins per axis; defaults to
            :func:`default_bins`.
        x_bounds: optional ``(min, max)`` of ``x``, when the caller already
            holds them (e.g. the ends of a maintained sorted projection).
            Must equal ``(x.min(), x.max())`` exactly -- this skips the two
            reductions, it does not change the binning range.
        y_bounds: same for ``y``.

    Returns:
        Non-negative entropy of the joint bin-occupancy distribution,
        bounded by ``2 * log(bins)``.
    """
    # This sits on the per-window hot path (once per MI evaluation), so
    # avoid redundant dispatch: asarray only when needed, ufunc methods
    # over fromnumeric wrappers.  Every shortcut is value-identical.
    if type(x) is not np.ndarray or x.dtype != np.float64 or x.ndim != 1:
        x = np.asarray(x, dtype=np.float64).ravel()
    if type(y) is not np.ndarray or y.dtype != np.float64 or y.ndim != 1:
        y = np.asarray(y, dtype=np.float64).ravel()
    if x.size != y.size:
        raise ValueError("x and y must have equal length")
    if x.size == 0:
        raise ValueError("cannot compute entropy of an empty sample")
    if bins is None:
        bins = default_bins(x.size)
    # Manual equal-width binning: ~10x faster than np.histogram2d, which
    # routes through histogramdd and dominates search profiles otherwise.
    counts = np.bincount(
        _flat_bin_index(x, bins, x_bounds) * bins + _flat_bin_index(y, bins, y_bounds)
    )
    p = counts[counts > 0] / x.size
    return float(-(p * np.log(p)).sum())


def _flat_bin_index(
    values: np.ndarray, bins: int, bounds: Optional[tuple] = None
) -> IntArray:
    """Equal-width bin index of each value over its own [min, max] range."""
    if bounds is None:
        lo = values.min()
        span = values.max() - lo
    else:
        lo = bounds[0]
        span = bounds[1] - lo
    if span <= 0:
        return np.zeros(values.size, dtype=np.int64)
    idx = ((values - lo) * (bins / span)).astype(np.int64)
    np.minimum(idx, bins - 1, out=idx)
    return idx


def kl_entropy(points: AnyArray, k: int = 4) -> float:
    """Kozachenko--Leonenko differential entropy estimate (nats).

    Uses the Euclidean-ball form
    ``H = psi(m) - psi(k) + log(c_d) + (d/m) * sum log(r_k(i))``
    where ``r_k(i)`` is the distance from sample i to its k-th nearest
    neighbor and ``c_d`` the volume of the d-dimensional unit ball.

    Args:
        points: sample matrix of shape ``(m, d)`` (or ``(m,)`` for d=1).
        k: number of neighbors, ``1 <= k < m``.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim == 1:
        points = points[:, None]
    m, d = points.shape
    if m <= k:
        raise ValueError(f"need more than k={k} samples, got {m}")
    diffs = points[:, None, :] - points[None, :, :]
    dist = np.sqrt(np.sum(diffs * diffs, axis=2))
    np.fill_diagonal(dist, np.inf)
    r_k = np.partition(dist, k - 1, axis=1)[:, k - 1]
    r_k = np.maximum(r_k, np.finfo(np.float64).tiny)
    from scipy.special import gammaln

    table = shared_digamma_table()
    log_c_d = (d / 2.0) * np.log(np.pi) - gammaln(d / 2.0 + 1.0)
    return float(table.value(m) - table.value(k) + log_c_d + (d / m) * np.sum(np.log(r_k)))

"""Normalized mutual information (paper Eq. 18).

The raw MI of a window has no universal upper bound, which makes a fixed
correlation threshold hard to set across heterogeneous datasets.  Section
6.3.1 therefore normalizes the window MI by the window entropy:

``0 <= I~_w = I_w / H_w <= 1``

We estimate ``I_w`` with the KSG estimator and ``H_w`` with the plug-in
entropy of the binned joint sample (a non-negative, bounded uncertainty
measure).  Because the two estimators have different small-sample biases the
raw ratio can stray slightly outside [0, 1]; the result is clamped, exactly
as a production implementation must do for a user-facing [0, 1] score.
"""

from __future__ import annotations

from typing import Optional

from repro import contracts
from repro._types import AnyArray
from repro.mi.entropy import binned_joint_entropy
from repro.mi.ksg import KSGEstimator

__all__ = ["normalized_mi", "normalize_value", "normalize_ratio"]

# Entropy floor: below this the window is essentially constant and carries
# no usable information, so its normalized MI is defined as 0.
_H_FLOOR = 1e-9


def normalize_value(mi: float, entropy: float) -> float:
    """Map a raw (MI, entropy) pair onto the [0, 1] normalized scale."""
    return min(normalize_ratio(mi, entropy), 1.0)


def normalize_ratio(mi: float, entropy: float) -> float:
    """The unclamped (but non-negative) ratio ``I_w / H_w``.

    Used as the search objective: on strongly dependent windows the KSG
    estimate keeps growing with the sample count while the binned entropy
    saturates, so the ratio can exceed 1 -- clamping there would flatten
    the landscape and stall window growth exactly where the correlation is
    strongest.  The clamped [0, 1] value remains the user-facing score.
    """
    if entropy <= _H_FLOOR:
        return 0.0
    return max(float(mi / entropy), 0.0)


def normalized_mi(
    x: AnyArray,
    y: AnyArray,
    k: int = 4,
    estimator: Optional[KSGEstimator] = None,
    bins: Optional[int] = None,
) -> float:
    """Normalized MI of a paired sample, scaled to [0, 1].

    Args:
        x: samples of the first series.
        y: paired samples of the second series.
        k: KSG neighbor count (ignored when ``estimator`` is given).
        estimator: optional preconfigured :class:`KSGEstimator`.
        bins: bin count for the entropy denominator (default: sqrt rule).

    Returns:
        ``clip(I_ksg / H_binned, 0, 1)``.
    """
    if estimator is None:
        estimator = KSGEstimator(k=k)
    mi = estimator.mi(x, y)
    entropy = binned_joint_entropy(x, y, bins=bins)
    value = normalize_value(mi, entropy)
    if contracts.checks_enabled():
        contracts.check_nmi_range(value, where="normalized_mi")
    return value

"""Mutual information substrate for TYCOS.

This package implements, from scratch, everything the TYCOS search needs to
quantify statistical dependence between two windows of time series data:

* :mod:`repro.mi.ksg` -- the Kraskov--Stoegbauer--Grassberger (KSG) k-nearest
  neighbor MI estimator (paper Eq. 2 / Eq. 3).
* :mod:`repro.mi.neighbors` -- max-norm k-nearest-neighbor search backends
  (vectorized brute force and a uniform grid index) plus marginal counting.
* :mod:`repro.mi.entropy` -- plug-in discrete entropy, binned continuous
  entropy and the Kozachenko--Leonenko differential entropy estimator.
* :mod:`repro.mi.normalized` -- the normalized MI of paper Eq. (18) used to
  set the correlation threshold sigma on a [0, 1] scale.
* :mod:`repro.mi.discrete` -- exact plug-in discrete MI (paper Eq. 1).
* :mod:`repro.mi.mixture` -- mixture distributions (Def. 6.1) and empirical
  verification helpers for the noise theorem (Theorem 6.1).
* :mod:`repro.mi.incremental` -- the Section 7 incremental KSG engine based
  on influenced regions (IR) and influenced marginal regions (IMR).
* :mod:`repro.mi.digamma` -- the process-wide integer digamma lookup table
  every estimator draws from (the only sanctioned scipy digamma call site).
* :mod:`repro.mi.kdtree` -- the k-d tree neighbor backend the paper's
  Lemma-2 analysis invokes (Bentley 1975).
* :mod:`repro.mi.backends` -- optional compiled (numba) kernel backend
  behind the bit-exactness gate, selected via
  :func:`repro.mi.backends.dispatch.get_kernels`; the numba import is
  lazy, so the default numpy path never pays for the accelerator.
* :mod:`repro.mi.histogram` / :mod:`repro.mi.kde` -- the classical MI
  estimators the paper's Section 3.1 compares KSG against.
"""

from repro.mi.digamma import DigammaTable, digamma_direct, shared_digamma_table
from repro.mi.discrete import discrete_entropy_from_joint, discrete_mi, empirical_joint
from repro.mi.entropy import binned_joint_entropy, discrete_entropy, kl_entropy
from repro.mi.histogram import histogram_mi
from repro.mi.incremental import SlidingKSG
from repro.mi.kde import kde_mi
from repro.mi.kdtree import KDTree, chebyshev_knn_kdtree
from repro.mi.ksg import KSGEstimator, ksg_mi
from repro.mi.mixture import mix_samples, theorem61_gap
from repro.mi.neighbors import (
    GridIndex,
    MarginalIndex,
    PairDistanceWorkspace,
    chebyshev_knn_bruteforce,
    chebyshev_knn_grid,
    marginal_counts,
)
from repro.mi.normalized import normalized_mi

__all__ = [
    "KSGEstimator",
    "ksg_mi",
    "DigammaTable",
    "digamma_direct",
    "shared_digamma_table",
    "MarginalIndex",
    "histogram_mi",
    "kde_mi",
    "SlidingKSG",
    "KDTree",
    "chebyshev_knn_kdtree",
    "GridIndex",
    "PairDistanceWorkspace",
    "chebyshev_knn_bruteforce",
    "chebyshev_knn_grid",
    "marginal_counts",
    "discrete_entropy",
    "binned_joint_entropy",
    "kl_entropy",
    "discrete_mi",
    "discrete_entropy_from_joint",
    "empirical_joint",
    "mix_samples",
    "theorem61_gap",
    "normalized_mi",
]

"""k-nearest-neighbor search under the Chebyshev (max) norm.

The KSG estimator (paper Section 3.1) measures, for every sample point
``p_i = (x_i, y_i)``, the distance to its k-th nearest neighbor under the
maximum norm ``d(p_i, p_j) = max(|x_i - x_j|, |y_i - y_j|)`` and then counts
how many samples fall inside the marginal strips spanned by that distance.

Two interchangeable backends are provided:

* :func:`chebyshev_knn_bruteforce` -- a fully vectorized O(m^2) search.
  Fast in practice for the window sizes TYCOS evaluates (tens to a few
  thousand samples) because the work is a handful of numpy kernels.
* :func:`chebyshev_knn_grid` -- a uniform grid index (the "grid-based
  structure for low dimensional data" of paper Section 5.1) with expected
  O(m log m) behaviour on well-spread data.

Marginal counts are computed with sorted projections and binary search
(:func:`marginal_counts`), which is O(m log m) regardless of backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro._types import AnyArray, FloatArray, IntArray

if TYPE_CHECKING:
    from repro.mi.backends.dispatch import KernelSet

__all__ = [
    "KnnResult",
    "chebyshev_knn_bruteforce",
    "chebyshev_knn_grid",
    "marginal_counts",
    "GridIndex",
    "MarginalIndex",
    "PairDistanceWorkspace",
]


@dataclass(frozen=True)
class KnnResult:
    """Per-point neighbor geometry needed by the KSG estimator.

    Attributes:
        kth_distance: Chebyshev distance from each point to its k-th nearest
            neighbor (shape ``(m,)``).
        eps_x: Largest ``|x_i - x_j|`` over each point's k nearest neighbors
            (the x-extent of the k-NN bounding rectangle, shape ``(m,)``).
        eps_y: Largest ``|y_i - y_j|`` over each point's k nearest neighbors
            (shape ``(m,)``).
        indices: Indices of the k nearest neighbors per point
            (shape ``(m, k)``); ordering within a row is unspecified.
    """

    kth_distance: FloatArray
    eps_x: FloatArray
    eps_y: FloatArray
    indices: IntArray


def _validate_xy(x: AnyArray, y: AnyArray, k: int) -> Tuple[FloatArray, FloatArray]:
    x = np.asarray(x, dtype=np.float64).ravel()
    y = np.asarray(y, dtype=np.float64).ravel()
    if x.shape != y.shape:
        raise ValueError(f"x and y must have equal length, got {x.size} and {y.size}")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if x.size <= k:
        raise ValueError(f"need more than k={k} samples, got {x.size}")
    if not (np.all(np.isfinite(x)) and np.all(np.isfinite(y))):
        raise ValueError("x and y must be finite")
    return x, y


def chebyshev_knn_bruteforce(x: AnyArray, y: AnyArray, k: int) -> KnnResult:
    """Find the k nearest neighbors of every point under the max norm.

    Args:
        x: x-coordinates, shape ``(m,)``.
        y: y-coordinates, shape ``(m,)``.
        k: number of neighbors (``1 <= k < m``).

    Returns:
        A :class:`KnnResult` with the k-th neighbor distance and the
        marginal extents of the k-NN rectangle for every point.
    """
    x, y = _validate_xy(x, y, k)
    m = x.size
    dx = np.abs(x[:, None] - x[None, :])
    dy = np.abs(y[:, None] - y[None, :])
    dist = np.maximum(dx, dy)
    np.fill_diagonal(dist, np.inf)

    neighbor_idx = np.argpartition(dist, k - 1, axis=1)[:, :k]
    rows = np.arange(m)[:, None]
    kth_distance = dist[rows, neighbor_idx].max(axis=1)
    eps_x = dx[rows, neighbor_idx].max(axis=1)
    eps_y = dy[rows, neighbor_idx].max(axis=1)
    return KnnResult(kth_distance=kth_distance, eps_x=eps_x, eps_y=eps_y, indices=neighbor_idx)


class PairDistanceWorkspace:
    """Shared pairwise-distance workspace over the union span of windows.

    The delta-neighbors probed during one LAHC ring share a delay and
    overlap heavily, so their sample pairs are all drawn from one short
    union sub-series.  Instead of recomputing the O(m^2) ``|dx|`` / ``|dy|``
    broadcasts per window, this workspace computes them once over the union
    and answers each window's k-NN query from principal submatrices.

    The per-window geometry is *identical* to
    :func:`chebyshev_knn_bruteforce`: a window's distance submatrix holds
    exactly the values the brute-force kernel would compute (the union
    diagonal is pre-filled with ``inf``, and every principal submatrix
    shares that diagonal), and the selection runs on a contiguous copy so
    even tie-breaking inside ``argpartition`` matches the scalar path.

    Args:
        x_union: x-side samples of the union span, shape ``(u,)``.
        y_union: paired y-side samples of the union span, shape ``(u,)``.
    """

    def __init__(self, x_union: AnyArray, y_union: AnyArray) -> None:
        x = np.asarray(x_union, dtype=np.float64).ravel()
        y = np.asarray(y_union, dtype=np.float64).ravel()
        if x.size != y.size:
            raise ValueError(f"x and y must have equal length, got {x.size} and {y.size}")
        if x.size < 2:
            raise ValueError(f"need at least 2 samples, got {x.size}")
        self._x = x
        self._y = y
        # One (3, u, u) block -- [dist, |dx|, |dy|] -- so a window's knn()
        # can slice, copy and gather all three layers in single numpy calls
        # instead of three.  Values are identical to the separate
        # ``np.abs(outer difference)`` / ``np.maximum`` construction.
        u = x.size
        full = np.empty((3, u, u))
        np.subtract(x[:, None], x[None, :], out=full[1])
        np.abs(full[1], out=full[1])
        np.subtract(y[:, None], y[None, :], out=full[2])
        np.abs(full[2], out=full[2])
        np.maximum(full[1], full[2], out=full[0])
        np.fill_diagonal(full[0], np.inf)
        self._full = full
        self._dist = full[0]
        self._dx = full[1]
        self._dy = full[2]
        # Stable ascending-value orderings of the union projections, built
        # lazily by sorted_window() and shared by every window of the group.
        self._order_x: Optional[IntArray] = None
        self._order_y: Optional[IntArray] = None
        # Shared digamma prefix, resolved on first digamma_table() call.
        self._digamma: Optional[FloatArray] = None
        # Row-index column reused by every knn gather (sliced per window).
        self._rows = np.arange(self._dist.shape[0], dtype=np.intp)[:, None]

    @property
    def size(self) -> int:
        """Number of samples in the union span."""
        return self._dist.shape[0]

    def digamma_table(self) -> FloatArray:
        """``digamma(i)`` for ``i = 1..size`` from the process-wide table.

        ``table[i - 1] == digamma(i)`` exactly (same scipy evaluation on the
        same float64 inputs), so estimator code can gather instead of
        re-evaluating the transcendental per window.  The returned array may
        be longer than ``size``.  Resolved once per workspace.
        """
        if self._digamma is None:
            from repro.mi.digamma import shared_digamma_table

            self._digamma = shared_digamma_table().prefix(self.size)
        return self._digamma

    #: Below this window size a direct ``np.sort`` of the window beats the
    #: O(union) mask-gather over the amortized argsort (measured: sorting
    #: <= a few hundred float64 costs ~1-2us, the mask-gather ~5us).
    _SORT_DIRECT_MAX = 256

    def sorted_window(self, offset: int, m: int) -> Tuple[FloatArray, FloatArray]:
        """Sorted x/y projections of the window at ``offset``, span-amortized.

        Two constructions, chosen by measured cost, both returning the
        ascending sequence of the window's float64 multiset (a sorted
        multiset has exactly one array realization, so they are
        elementwise identical and feed :func:`marginal_counts`
        ``presorted=`` without changing any count):

        * small windows: a direct ``np.sort`` of the window slice;
        * large windows: the union's stable argsort is computed once (per
          axis, lazily) and the window's projection is a boolean-mask
          gather over it -- C loops over ``size`` elements instead of a
          fresh ``O(m log m)`` sort per window per axis.
        """
        hi = offset + m
        if m < self._SORT_DIRECT_MAX:
            return np.sort(self._x[offset:hi]), np.sort(self._y[offset:hi])
        if self._order_x is None or self._order_y is None:
            self._order_x = np.argsort(self._x, kind="stable")
            self._order_y = np.argsort(self._y, kind="stable")
        sel_x = self._order_x[(self._order_x >= offset) & (self._order_x < hi)]
        sel_y = self._order_y[(self._order_y >= offset) & (self._order_y < hi)]
        return self._x[sel_x], self._y[sel_y]

    def knn(
        self, offset: int, m: int, k: int, kernels: Optional["KernelSet"] = None
    ) -> KnnResult:
        """k-NN geometry of the ``m``-sample window at ``offset`` in the union.

        Args:
            offset: index of the window's first sample within the union.
            m: window size (``offset + m <= size``).
            k: number of neighbors (``1 <= k < m``).
            kernels: optional backend kernel suite
                (:func:`repro.mi.backends.dispatch.get_kernels`); routes
                the single-gather top-k through the canonical backend
                kernel.  Distances, radii and -- on tie-free inputs --
                the selected neighbor sets match the legacy path; only
                the tie resolution and the row order of ``indices``
                become the canonical (lexicographic, ascending) ones.

        Returns:
            The same :class:`KnnResult` :func:`chebyshev_knn_bruteforce`
            would return for the extracted window.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if m <= k:
            raise ValueError(f"need more than k={k} samples, got {m}")
        if offset < 0 or offset + m > self.size:
            raise ValueError(
                f"window [{offset}, {offset + m}) exceeds union span of {self.size} samples"
            )
        sel = slice(offset, offset + m)
        # Contiguous copy of all three layers at once; argpartition sees the
        # exact buffer the scalar kernel builds (identical values *and*
        # identical tie resolution), and one broadcast gather + one max
        # replace three of each.
        sub = np.ascontiguousarray(self._full[:, sel, sel])
        if kernels is not None:
            kth, eps_x, eps_y, indices = kernels.topk(sub[0], sub[1], sub[2], k)
            return KnnResult(kth_distance=kth, eps_x=eps_x, eps_y=eps_y, indices=indices)
        neighbor_idx = sub[0].argpartition(k - 1, axis=1)[:, :k]
        gathered = sub[:, self._rows[:m], neighbor_idx].max(axis=2)
        return KnnResult(
            kth_distance=gathered[0],
            eps_x=gathered[1],
            eps_y=gathered[2],
            indices=neighbor_idx,
        )


class GridIndex:
    """Uniform grid over 2-D points supporting Chebyshev k-NN queries.

    The plane is partitioned into square cells whose side is chosen so the
    average occupancy is a small constant.  A k-NN query expands rings of
    cells around the query cell; a ring at radius ``r`` guarantees every
    uncollected point is at Chebyshev distance > ``(r - 1) * cell``, which
    gives a correct stopping rule.
    """

    def __init__(self, x: AnyArray, y: AnyArray, target_per_cell: float = 2.0) -> None:
        x = np.asarray(x, dtype=np.float64).ravel()
        y = np.asarray(y, dtype=np.float64).ravel()
        if x.size != y.size:
            raise ValueError("x and y must have equal length")
        if x.size == 0:
            raise ValueError("cannot index an empty point set")
        self._x = x
        self._y = y
        m = x.size
        span_x = float(x.max() - x.min())
        span_y = float(y.max() - y.min())
        span = max(span_x, span_y)
        if span <= 0.0:
            # All points coincide in at least one layout; one cell suffices.
            self._cell = 1.0
        else:
            n_cells_per_axis = max(1, int(np.sqrt(m / target_per_cell)))
            self._cell = span / n_cells_per_axis
        self._x0 = float(x.min())
        self._y0 = float(y.min())
        self._buckets: Dict[Tuple[int, int], List[int]] = {}
        cx = ((x - self._x0) / self._cell).astype(np.int64)
        cy = ((y - self._y0) / self._cell).astype(np.int64)
        for i in range(m):
            self._buckets.setdefault((int(cx[i]), int(cy[i])), []).append(i)
        self._cx = cx
        self._cy = cy

    def _ring_cells(self, cx: int, cy: int, r: int) -> Iterator[Tuple[int, int]]:
        if r == 0:
            yield (cx, cy)
            return
        for gx in range(cx - r, cx + r + 1):
            yield (gx, cy - r)
            yield (gx, cy + r)
        for gy in range(cy - r + 1, cy + r):
            yield (cx - r, gy)
            yield (cx + r, gy)

    def knn(self, i: int, k: int) -> Tuple[IntArray, FloatArray]:
        """Return ``(indices, distances)`` of the k nearest neighbors of point i.

        Distances are Chebyshev; the query point itself is excluded.
        """
        x, y = self._x, self._y
        qx, qy = x[i], y[i]
        cx, cy = int(self._cx[i]), int(self._cy[i])
        seen = 0
        r = 0
        # Expand rings until the k-th best distance is certainly final,
        # scoring only the candidates each new ring contributes and folding
        # them into a running top-k (never re-scanning earlier rings).
        best_idx = np.empty(0, dtype=np.int64)
        best_dist = np.empty(0)
        while True:
            fresh: List[int] = []
            for cell in self._ring_cells(cx, cy, r):
                bucket = self._buckets.get(cell)
                if bucket:
                    fresh.extend(bucket)
            if fresh:
                cand = np.asarray([c for c in fresh if c != i], dtype=np.int64)
                if cand.size:
                    seen += cand.size
                    d = np.maximum(np.abs(x[cand] - qx), np.abs(y[cand] - qy))
                    merged_idx = np.concatenate((best_idx, cand))
                    merged_dist = np.concatenate((best_dist, d))
                    if merged_idx.size > k:
                        order = np.argpartition(merged_dist, k - 1)[:k]
                        best_idx = merged_idx[order]
                        best_dist = merged_dist[order]
                    else:
                        best_idx = merged_idx
                        best_dist = merged_dist
            # Every point not yet visited lies in a ring at radius > r,
            # hence at distance > (r) * cell - offset; the safe bound is
            # (r) * cell because the query point can sit on a cell border.
            if best_idx.size >= k and best_dist.max() <= r * self._cell:
                break
            r += 1
            if r > 2 * max(1, int(np.sqrt(x.size))) + 2 and seen:
                # Degenerate layouts (all points stacked in few cells):
                # fall back to scanning the full point set.
                cand = np.asarray([j for j in range(x.size) if j != i], dtype=np.int64)
                d = np.maximum(np.abs(x[cand] - qx), np.abs(y[cand] - qy))
                order = np.argpartition(d, k - 1)[:k]
                best_idx = cand[order]
                best_dist = d[order]
                break
        return best_idx, best_dist


def chebyshev_knn_grid(
    x: AnyArray, y: AnyArray, k: int, kernels: Optional["KernelSet"] = None
) -> KnnResult:
    """Grid-index based k-NN search; same contract as the brute-force backend.

    With a backend kernel suite the whole ring search runs inside the
    canonical ``grid_knn`` kernel (one call for all points instead of a
    Python loop over buckets); distances, radii and tie-free neighbor
    sets match the legacy path.
    """
    x, y = _validate_xy(x, y, k)
    m = x.size
    if kernels is not None:
        kth, eps_x, eps_y, indices = kernels.grid_knn(x, y, k)
        return KnnResult(kth_distance=kth, eps_x=eps_x, eps_y=eps_y, indices=indices)
    index = GridIndex(x, y)
    kth_distance = np.empty(m)
    eps_x = np.empty(m)
    eps_y = np.empty(m)
    indices = np.empty((m, k), dtype=np.int64)
    for i in range(m):
        idx, dist = index.knn(i, k)
        indices[i] = idx
        kth_distance[i] = dist.max()
        eps_x[i] = np.abs(x[idx] - x[i]).max()
        eps_y[i] = np.abs(y[idx] - y[i]).max()
    return KnnResult(kth_distance=kth_distance, eps_x=eps_x, eps_y=eps_y, indices=indices)


def marginal_counts(
    values: AnyArray,
    radii: AnyArray,
    strict: bool,
    presorted: Optional[FloatArray] = None,
) -> IntArray:
    """Count, for every point, the neighbors inside its marginal strip.

    For point ``i`` the strip is ``[values[i] - radii[i], values[i] + radii[i]]``
    (open interval when ``strict``), and the point itself is excluded.

    Args:
        values: 1-D projections of the samples, shape ``(m,)``.
        radii: per-point strip half-widths, shape ``(m,)``.
        strict: when True count ``|v_j - v_i| < r_i`` (KSG algorithm 1);
            when False count ``|v_j - v_i| <= r_i`` (KSG algorithm 2).
        presorted: optional ascending float64 array holding exactly the
            multiset of ``values`` (e.g. a maintained
            :meth:`MarginalIndex.sorted_values` or a
            :meth:`PairDistanceWorkspace.sorted_window` projection).  When
            given, the per-call ``O(m log m)`` sort is skipped; because a
            sorted float64 multiset has exactly one array realization, the
            counts are identical to the from-scratch path.

    Returns:
        Integer array of counts, shape ``(m,)``.
    """
    # Hot path: one call per axis per MI estimate.  Skip the asarray
    # round-trips when the caller already holds 1-D float64 arrays (the
    # estimators always do); the converted path is value-identical.
    if type(values) is not np.ndarray or values.dtype != np.float64 or values.ndim != 1:
        values = np.asarray(values, dtype=np.float64).ravel()
    if type(radii) is not np.ndarray or radii.dtype != np.float64 or radii.ndim != 1:
        radii = np.asarray(radii, dtype=np.float64).ravel()
    order = np.sort(values) if presorted is None else presorted
    lo = values - radii
    hi = values + radii
    if strict:
        left = order.searchsorted(lo, side="right")
        right = order.searchsorted(hi, side="left")
    else:
        left = order.searchsorted(lo, side="left")
        right = order.searchsorted(hi, side="right")
    counts = right - left - 1  # exclude the point itself
    return np.maximum(counts, 0, out=counts)


class MarginalIndex:
    """A 1-D projection kept sorted incrementally under add/remove churn.

    The incremental engine (paper Section 7, Lemmas 5/6) confines marginal
    count changes to the influenced marginal regions, which means the
    *sorted order* of a projection changes by one insertion or deletion
    per point move.  This index is the IMR realization of that fact: it
    maintains the ascending array with one ``searchsorted`` plus one
    ``O(m)`` memmove per mutation, so a query never pays the
    ``O(m log m)`` from-scratch sort that :func:`marginal_counts`
    otherwise performs.

    Exactness: an ascending float64 array is uniquely determined by its
    value multiset, so after any mutation sequence :meth:`sorted_values`
    is elementwise identical to ``np.sort`` of the live values (tests
    assert this under randomized churn).
    """

    def __init__(self, values: Optional[AnyArray] = None) -> None:
        self._buf = np.empty(64, dtype=np.float64)
        self._size = 0
        if values is not None:
            self.reset(values)

    def __len__(self) -> int:
        return self._size

    def reset(self, values: AnyArray) -> None:
        """Replace the contents with a fresh (bulk-sorted) value set."""
        values = np.asarray(values, dtype=np.float64).ravel()
        if self._buf.size < values.size:
            capacity = self._buf.size
            while capacity < values.size:
                capacity *= 2
            self._buf = np.empty(capacity, dtype=np.float64)
        self._size = values.size
        self._buf[: self._size] = np.sort(values)

    def add(self, value: float) -> None:
        """Insert one value, keeping the array sorted (O(m) memmove)."""
        size = self._size
        if size == self._buf.size:
            grown = np.empty(self._buf.size * 2, dtype=np.float64)
            grown[:size] = self._buf[:size]
            self._buf = grown
        pos = int(self._buf[:size].searchsorted(value, side="right"))
        self._buf[pos + 1 : size + 1] = self._buf[pos:size]
        self._buf[pos] = value
        self._size = size + 1

    def remove(self, value: float) -> None:
        """Remove one occurrence of ``value`` (O(m) memmove).

        Raises:
            KeyError: if ``value`` is not present.
        """
        size = self._size
        pos = int(self._buf[:size].searchsorted(value, side="left"))
        if pos >= size or self._buf[pos] != value:
            raise KeyError(f"value {value!r} not present in the index")
        self._buf[pos : size - 1] = self._buf[pos + 1 : size]
        self._size = size - 1

    def sorted_values(self) -> FloatArray:
        """The live ascending array (a view; do not mutate)."""
        return self._buf[: self._size]

"""k-nearest-neighbor search under the Chebyshev (max) norm.

The KSG estimator (paper Section 3.1) measures, for every sample point
``p_i = (x_i, y_i)``, the distance to its k-th nearest neighbor under the
maximum norm ``d(p_i, p_j) = max(|x_i - x_j|, |y_i - y_j|)`` and then counts
how many samples fall inside the marginal strips spanned by that distance.

Two interchangeable backends are provided:

* :func:`chebyshev_knn_bruteforce` -- a fully vectorized O(m^2) search.
  Fast in practice for the window sizes TYCOS evaluates (tens to a few
  thousand samples) because the work is a handful of numpy kernels.
* :func:`chebyshev_knn_grid` -- a uniform grid index (the "grid-based
  structure for low dimensional data" of paper Section 5.1) with expected
  O(m log m) behaviour on well-spread data.

Marginal counts are computed with sorted projections and binary search
(:func:`marginal_counts`), which is O(m log m) regardless of backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro._types import AnyArray, FloatArray, IntArray

__all__ = [
    "KnnResult",
    "chebyshev_knn_bruteforce",
    "chebyshev_knn_grid",
    "marginal_counts",
    "GridIndex",
    "PairDistanceWorkspace",
]


@dataclass(frozen=True)
class KnnResult:
    """Per-point neighbor geometry needed by the KSG estimator.

    Attributes:
        kth_distance: Chebyshev distance from each point to its k-th nearest
            neighbor (shape ``(m,)``).
        eps_x: Largest ``|x_i - x_j|`` over each point's k nearest neighbors
            (the x-extent of the k-NN bounding rectangle, shape ``(m,)``).
        eps_y: Largest ``|y_i - y_j|`` over each point's k nearest neighbors
            (shape ``(m,)``).
        indices: Indices of the k nearest neighbors per point
            (shape ``(m, k)``); ordering within a row is unspecified.
    """

    kth_distance: FloatArray
    eps_x: FloatArray
    eps_y: FloatArray
    indices: IntArray


def _validate_xy(x: AnyArray, y: AnyArray, k: int) -> Tuple[FloatArray, FloatArray]:
    x = np.asarray(x, dtype=np.float64).ravel()
    y = np.asarray(y, dtype=np.float64).ravel()
    if x.shape != y.shape:
        raise ValueError(f"x and y must have equal length, got {x.size} and {y.size}")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if x.size <= k:
        raise ValueError(f"need more than k={k} samples, got {x.size}")
    if not (np.all(np.isfinite(x)) and np.all(np.isfinite(y))):
        raise ValueError("x and y must be finite")
    return x, y


def chebyshev_knn_bruteforce(x: AnyArray, y: AnyArray, k: int) -> KnnResult:
    """Find the k nearest neighbors of every point under the max norm.

    Args:
        x: x-coordinates, shape ``(m,)``.
        y: y-coordinates, shape ``(m,)``.
        k: number of neighbors (``1 <= k < m``).

    Returns:
        A :class:`KnnResult` with the k-th neighbor distance and the
        marginal extents of the k-NN rectangle for every point.
    """
    x, y = _validate_xy(x, y, k)
    m = x.size
    dx = np.abs(x[:, None] - x[None, :])
    dy = np.abs(y[:, None] - y[None, :])
    dist = np.maximum(dx, dy)
    np.fill_diagonal(dist, np.inf)

    neighbor_idx = np.argpartition(dist, k - 1, axis=1)[:, :k]
    rows = np.arange(m)[:, None]
    kth_distance = dist[rows, neighbor_idx].max(axis=1)
    eps_x = dx[rows, neighbor_idx].max(axis=1)
    eps_y = dy[rows, neighbor_idx].max(axis=1)
    return KnnResult(kth_distance=kth_distance, eps_x=eps_x, eps_y=eps_y, indices=neighbor_idx)


class PairDistanceWorkspace:
    """Shared pairwise-distance workspace over the union span of windows.

    The delta-neighbors probed during one LAHC ring share a delay and
    overlap heavily, so their sample pairs are all drawn from one short
    union sub-series.  Instead of recomputing the O(m^2) ``|dx|`` / ``|dy|``
    broadcasts per window, this workspace computes them once over the union
    and answers each window's k-NN query from principal submatrices.

    The per-window geometry is *identical* to
    :func:`chebyshev_knn_bruteforce`: a window's distance submatrix holds
    exactly the values the brute-force kernel would compute (the union
    diagonal is pre-filled with ``inf``, and every principal submatrix
    shares that diagonal), and the selection runs on a contiguous copy so
    even tie-breaking inside ``argpartition`` matches the scalar path.

    Args:
        x_union: x-side samples of the union span, shape ``(u,)``.
        y_union: paired y-side samples of the union span, shape ``(u,)``.
    """

    def __init__(self, x_union: AnyArray, y_union: AnyArray) -> None:
        x = np.asarray(x_union, dtype=np.float64).ravel()
        y = np.asarray(y_union, dtype=np.float64).ravel()
        if x.size != y.size:
            raise ValueError(f"x and y must have equal length, got {x.size} and {y.size}")
        if x.size < 2:
            raise ValueError(f"need at least 2 samples, got {x.size}")
        self._dx = np.abs(x[:, None] - x[None, :])
        self._dy = np.abs(y[:, None] - y[None, :])
        self._dist = np.maximum(self._dx, self._dy)
        np.fill_diagonal(self._dist, np.inf)
        #: Digamma lookup for integer arguments ``1..u`` shared by every
        #: window of the group (lazily built by :meth:`digamma_table`).
        self._digamma: Optional[FloatArray] = None
        # Row-index column reused by every knn gather (sliced per window).
        self._rows = np.arange(self._dist.shape[0], dtype=np.intp)[:, None]

    @property
    def size(self) -> int:
        """Number of samples in the union span."""
        return self._dist.shape[0]

    def digamma_table(self) -> FloatArray:
        """``digamma(i)`` for ``i = 1..size``, computed once per workspace.

        ``table[i - 1] == digamma(i)`` exactly (same scipy evaluation on the
        same float64 inputs), so estimator code can gather instead of
        re-evaluating the transcendental per window.
        """
        if self._digamma is None:
            from scipy.special import digamma

            self._digamma = np.asarray(
                digamma(np.arange(1, self.size + 1, dtype=np.float64)), dtype=np.float64
            )
        return self._digamma

    def knn(self, offset: int, m: int, k: int) -> KnnResult:
        """k-NN geometry of the ``m``-sample window at ``offset`` in the union.

        Args:
            offset: index of the window's first sample within the union.
            m: window size (``offset + m <= size``).
            k: number of neighbors (``1 <= k < m``).

        Returns:
            The same :class:`KnnResult` :func:`chebyshev_knn_bruteforce`
            would return for the extracted window.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if m <= k:
            raise ValueError(f"need more than k={k} samples, got {m}")
        if offset < 0 or offset + m > self.size:
            raise ValueError(
                f"window [{offset}, {offset + m}) exceeds union span of {self.size} samples"
            )
        sel = slice(offset, offset + m)
        # Contiguous copy so argpartition sees the exact buffer the scalar
        # kernel builds (identical values *and* identical tie resolution).
        dist = np.ascontiguousarray(self._dist[sel, sel])
        neighbor_idx = np.argpartition(dist, k - 1, axis=1)[:, :k]
        rows = self._rows[:m]
        kth_distance = dist[rows, neighbor_idx].max(axis=1)
        eps_x = self._dx[sel, sel][rows, neighbor_idx].max(axis=1)
        eps_y = self._dy[sel, sel][rows, neighbor_idx].max(axis=1)
        return KnnResult(
            kth_distance=kth_distance, eps_x=eps_x, eps_y=eps_y, indices=neighbor_idx
        )


class GridIndex:
    """Uniform grid over 2-D points supporting Chebyshev k-NN queries.

    The plane is partitioned into square cells whose side is chosen so the
    average occupancy is a small constant.  A k-NN query expands rings of
    cells around the query cell; a ring at radius ``r`` guarantees every
    uncollected point is at Chebyshev distance > ``(r - 1) * cell``, which
    gives a correct stopping rule.
    """

    def __init__(self, x: AnyArray, y: AnyArray, target_per_cell: float = 2.0) -> None:
        x = np.asarray(x, dtype=np.float64).ravel()
        y = np.asarray(y, dtype=np.float64).ravel()
        if x.size != y.size:
            raise ValueError("x and y must have equal length")
        if x.size == 0:
            raise ValueError("cannot index an empty point set")
        self._x = x
        self._y = y
        m = x.size
        span_x = float(x.max() - x.min())
        span_y = float(y.max() - y.min())
        span = max(span_x, span_y)
        if span <= 0.0:
            # All points coincide in at least one layout; one cell suffices.
            self._cell = 1.0
        else:
            n_cells_per_axis = max(1, int(np.sqrt(m / target_per_cell)))
            self._cell = span / n_cells_per_axis
        self._x0 = float(x.min())
        self._y0 = float(y.min())
        self._buckets: Dict[Tuple[int, int], List[int]] = {}
        cx = ((x - self._x0) / self._cell).astype(np.int64)
        cy = ((y - self._y0) / self._cell).astype(np.int64)
        for i in range(m):
            self._buckets.setdefault((int(cx[i]), int(cy[i])), []).append(i)
        self._cx = cx
        self._cy = cy

    def _ring_cells(self, cx: int, cy: int, r: int) -> Iterator[Tuple[int, int]]:
        if r == 0:
            yield (cx, cy)
            return
        for gx in range(cx - r, cx + r + 1):
            yield (gx, cy - r)
            yield (gx, cy + r)
        for gy in range(cy - r + 1, cy + r):
            yield (cx - r, gy)
            yield (cx + r, gy)

    def knn(self, i: int, k: int) -> Tuple[IntArray, FloatArray]:
        """Return ``(indices, distances)`` of the k nearest neighbors of point i.

        Distances are Chebyshev; the query point itself is excluded.
        """
        x, y = self._x, self._y
        qx, qy = x[i], y[i]
        cx, cy = int(self._cx[i]), int(self._cy[i])
        seen = 0
        r = 0
        # Expand rings until the k-th best distance is certainly final,
        # scoring only the candidates each new ring contributes and folding
        # them into a running top-k (never re-scanning earlier rings).
        best_idx = np.empty(0, dtype=np.int64)
        best_dist = np.empty(0)
        while True:
            fresh: List[int] = []
            for cell in self._ring_cells(cx, cy, r):
                bucket = self._buckets.get(cell)
                if bucket:
                    fresh.extend(bucket)
            if fresh:
                cand = np.asarray([c for c in fresh if c != i], dtype=np.int64)
                if cand.size:
                    seen += cand.size
                    d = np.maximum(np.abs(x[cand] - qx), np.abs(y[cand] - qy))
                    merged_idx = np.concatenate((best_idx, cand))
                    merged_dist = np.concatenate((best_dist, d))
                    if merged_idx.size > k:
                        order = np.argpartition(merged_dist, k - 1)[:k]
                        best_idx = merged_idx[order]
                        best_dist = merged_dist[order]
                    else:
                        best_idx = merged_idx
                        best_dist = merged_dist
            # Every point not yet visited lies in a ring at radius > r,
            # hence at distance > (r) * cell - offset; the safe bound is
            # (r) * cell because the query point can sit on a cell border.
            if best_idx.size >= k and best_dist.max() <= r * self._cell:
                break
            r += 1
            if r > 2 * max(1, int(np.sqrt(x.size))) + 2 and seen:
                # Degenerate layouts (all points stacked in few cells):
                # fall back to scanning the full point set.
                cand = np.asarray([j for j in range(x.size) if j != i], dtype=np.int64)
                d = np.maximum(np.abs(x[cand] - qx), np.abs(y[cand] - qy))
                order = np.argpartition(d, k - 1)[:k]
                best_idx = cand[order]
                best_dist = d[order]
                break
        return best_idx, best_dist


def chebyshev_knn_grid(x: AnyArray, y: AnyArray, k: int) -> KnnResult:
    """Grid-index based k-NN search; same contract as the brute-force backend."""
    x, y = _validate_xy(x, y, k)
    m = x.size
    index = GridIndex(x, y)
    kth_distance = np.empty(m)
    eps_x = np.empty(m)
    eps_y = np.empty(m)
    indices = np.empty((m, k), dtype=np.int64)
    for i in range(m):
        idx, dist = index.knn(i, k)
        indices[i] = idx
        kth_distance[i] = dist.max()
        eps_x[i] = np.abs(x[idx] - x[i]).max()
        eps_y[i] = np.abs(y[idx] - y[i]).max()
    return KnnResult(kth_distance=kth_distance, eps_x=eps_x, eps_y=eps_y, indices=indices)


def marginal_counts(values: AnyArray, radii: AnyArray, strict: bool) -> IntArray:
    """Count, for every point, the neighbors inside its marginal strip.

    For point ``i`` the strip is ``[values[i] - radii[i], values[i] + radii[i]]``
    (open interval when ``strict``), and the point itself is excluded.

    Args:
        values: 1-D projections of the samples, shape ``(m,)``.
        radii: per-point strip half-widths, shape ``(m,)``.
        strict: when True count ``|v_j - v_i| < r_i`` (KSG algorithm 1);
            when False count ``|v_j - v_i| <= r_i`` (KSG algorithm 2).

    Returns:
        Integer array of counts, shape ``(m,)``.
    """
    values = np.asarray(values, dtype=np.float64).ravel()
    radii = np.asarray(radii, dtype=np.float64).ravel()
    order = np.sort(values)
    lo = values - radii
    hi = values + radii
    if strict:
        left = np.searchsorted(order, lo, side="right")
        right = np.searchsorted(order, hi, side="left")
    else:
        left = np.searchsorted(order, lo, side="left")
        right = np.searchsorted(order, hi, side="right")
    counts = right - left - 1  # exclude the point itself
    return np.maximum(counts, 0)

"""Process-wide digamma lookup table for integer arguments.

Every digamma evaluation in the KSG formula (paper Eq. 2) takes a small
positive *integer* argument -- ``k``, the window size ``m``, or a marginal
neighbor count ``n_x``/``n_y`` bounded by ``m``.  Evaluating scipy's
transcendental per window is therefore pure waste: the same few thousand
integers recur millions of times across a search.  This module hosts the
one place in the codebase where ``scipy.special.digamma`` may be called
directly (machine-enforced by tycoslint rule TY007): a lazily grown table
of ``digamma(i)`` for ``i = 1..capacity`` shared by every estimator,
scorer and engine in the process.

Exactness: every table entry is the *same* scipy evaluation a direct call
would perform (same float64 input, same function), so routing through the
table never changes an estimate -- tests assert bit-equality against
direct ``scipy.special.digamma`` calls.
"""

from __future__ import annotations

import numpy as np
from scipy.special import digamma as _scipy_digamma

from repro._types import AnyArray, FloatArray, IntArray

__all__ = ["DigammaTable", "digamma_direct", "shared_digamma_table"]


def digamma_direct(values: AnyArray) -> AnyArray:
    """Direct scipy digamma evaluation (the reference / ablation path).

    Exists so estimator code that must *bypass* the table (e.g. the
    ``use_digamma_table=False`` benchmark ablation, or non-integer
    arguments) still routes through this module, keeping tycoslint rule
    TY007 exception-free.
    """
    return _scipy_digamma(values)


def _evaluate(size: int) -> FloatArray:
    """``digamma(i)`` for ``i = 1..size`` as a read-only float64 array."""
    table = np.asarray(
        _scipy_digamma(np.arange(1, size + 1, dtype=np.float64)), dtype=np.float64
    )
    table.flags.writeable = False
    return table


class DigammaTable:
    """Lazily grown lookup table with ``table[i - 1] == digamma(i)``.

    The table doubles on demand and is recomputed wholesale on growth
    (one vectorized scipy call), so each integer is evaluated through
    scipy O(log max_seen) times over the process lifetime instead of
    once per window.  Growth races between threads are benign: both
    winners compute identical values.

    Args:
        initial: starting capacity (entries for ``digamma(1..initial)``).
    """

    def __init__(self, initial: int = 1024) -> None:
        if initial < 1:
            raise ValueError(f"initial capacity must be >= 1, got {initial}")
        self._table = _evaluate(initial)

    @property
    def size(self) -> int:
        """Largest integer argument currently covered."""
        return self._table.size

    def prefix(self, n: int) -> FloatArray:
        """A read-only array covering at least ``digamma(1..n)``.

        The returned array may be longer than ``n``; callers index it as
        ``prefix(n)[i - 1]`` for any ``1 <= i <= n``.  This is the shape
        :meth:`repro.mi.ksg.KSGEstimator.mi_from_geometry` accepts as its
        ``digamma_table`` argument.
        """
        if n > self._table.size:
            grown = self._table.size
            while grown < n:
                grown *= 2
            self._table = _evaluate(grown)
        return self._table

    def kernel_view(self, n: int) -> FloatArray:
        """A stable, contiguous, read-only view for kernel hand-off.

        Backend kernels hold the returned array across many calls, so
        its guarantees are part of the dispatch contract:

        * contiguous C-order float64, read-only (``writeable`` false) --
          nothing needs to be copied per kernel call;
        * *stable under growth*: :meth:`prefix` growth allocates a fresh
          array and rebinds ``self._table``, so an array handed out here
          is never reallocated or mutated afterwards.  A scorer that
          received a view mid-search keeps indexing valid ``digamma``
          values for every ``i <= n`` it was sized for, even if the
          shared table has since doubled.
        """
        table = self.prefix(n)
        # _evaluate() already returns a C-contiguous read-only array;
        # assert rather than copy so the no-copy guarantee is machine-checked.
        assert table.flags["C_CONTIGUOUS"] and not table.flags.writeable
        return table

    def value(self, n: int) -> float:
        """``digamma(n)`` for a positive integer ``n``."""
        if n < 1:
            raise ValueError(f"need a positive integer argument, got {n}")
        return float(self.prefix(n)[n - 1])

    def values(self, ns: IntArray) -> FloatArray:
        """``digamma(ns)`` elementwise for an array of positive integers."""
        ns = np.asarray(ns)
        if ns.size == 0:
            return np.empty(0, dtype=np.float64)
        return np.asarray(self.prefix(int(ns.max()))[ns - 1], dtype=np.float64)


_SHARED = DigammaTable()


def shared_digamma_table() -> DigammaTable:
    """The process-wide table shared by every KSG evaluation."""
    return _SHARED

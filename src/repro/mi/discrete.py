"""Exact plug-in discrete mutual information (paper Eq. 1).

The KSG estimator is what TYCOS runs in production; this module provides the
textbook definition on discrete alphabets so that information-theoretic
facts the search relies on -- chiefly Theorem 6.1 (mixing in independent
noise can only lower MI) -- can be verified exactly in tests, without
estimator bias in the way.
"""

from __future__ import annotations

import numpy as np

from repro._types import AnyArray, FloatArray

__all__ = ["discrete_mi", "discrete_entropy_from_joint", "empirical_joint"]


def empirical_joint(x_labels: AnyArray, y_labels: AnyArray) -> FloatArray:
    """Empirical joint probability table of two paired discrete samples.

    Args:
        x_labels: 1-D array of symbols for X.
        y_labels: paired 1-D array of symbols for Y.

    Returns:
        Matrix ``P`` with ``P[i, j] = Pr(X = xi, Y = yj)``; rows follow the
        sorted unique symbols of X, columns those of Y.
    """
    x_labels = np.asarray(x_labels).ravel()
    y_labels = np.asarray(y_labels).ravel()
    if x_labels.size != y_labels.size:
        raise ValueError("x and y samples must be paired (equal length)")
    if x_labels.size == 0:
        raise ValueError("cannot build a joint from an empty sample")
    x_sym, x_idx = np.unique(x_labels, return_inverse=True)
    y_sym, y_idx = np.unique(y_labels, return_inverse=True)
    table = np.zeros((x_sym.size, y_sym.size))
    np.add.at(table, (x_idx, y_idx), 1.0)
    return table / x_labels.size


def _validate_joint(joint: AnyArray) -> FloatArray:
    joint = np.asarray(joint, dtype=np.float64)
    if joint.ndim != 2:
        raise ValueError("joint must be a 2-D probability table")
    if np.any(joint < 0):
        raise ValueError("joint probabilities must be non-negative")
    total = joint.sum()
    if not np.isclose(total, 1.0, atol=1e-8):
        raise ValueError(f"joint probabilities must sum to 1, got {total}")
    return joint


def discrete_mi(joint: AnyArray) -> float:
    """Mutual information (nats) of a joint probability table (Eq. 1)."""
    joint = _validate_joint(joint)
    px = joint.sum(axis=1, keepdims=True)
    py = joint.sum(axis=0, keepdims=True)
    mask = joint > 0
    ratio = np.zeros_like(joint)
    outer = px * py
    ratio[mask] = joint[mask] / outer[mask]
    return float(np.sum(joint[mask] * np.log(ratio[mask])))


def discrete_entropy_from_joint(joint: AnyArray) -> float:
    """Joint Shannon entropy (nats) of a probability table."""
    joint = _validate_joint(joint)
    p = joint[joint > 0]
    return float(-np.sum(p * np.log(p)))

"""The Kraskov--Stoegbauer--Grassberger (KSG) mutual information estimator.

Implements the estimator the paper adopts in Section 3.1 (Eq. 2) and applies
per window in Definition 4.6 (Eq. 3):

``I(X; Y) = psi(k) - 1/k - <psi(n_x) + psi(n_y)> + psi(m)``

where ``psi`` is the digamma function, ``k`` the number of nearest neighbors
under the Chebyshev norm, ``n_x``/``n_y`` the marginal neighbor counts inside
the k-NN rectangle of each point, and ``m`` the window size.  This is KSG
"algorithm 2"; the classic "algorithm 1"
(``psi(k) - <psi(n_x + 1) + psi(n_y + 1)> + psi(m)``) is also provided for
cross-checks.

Estimates are in *nats*.  MI is theoretically non-negative but the estimator
is unbiased around zero for independent data and can return small negative
values; callers that need a dependence score should clamp (see
:func:`repro.mi.normalized.normalized_mi`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro import contracts
from repro._types import AnyArray, FloatArray, IntArray
from repro.mi.digamma import digamma_direct, shared_digamma_table
from repro.mi.neighbors import (
    KnnResult,
    chebyshev_knn_bruteforce,
    chebyshev_knn_grid,
    marginal_counts,
)

if TYPE_CHECKING:
    from repro.mi.backends.dispatch import KernelSet

__all__ = ["KSGEstimator", "ksg_mi"]

_BACKENDS = ("bruteforce", "grid", "kdtree", "auto")
# Above this window size the grid index beats the O(m^2) vectorized scan.
_GRID_CUTOVER = 4096


@dataclass(frozen=True)
class KSGEstimator:
    """Configurable KSG mutual information estimator.

    Attributes:
        k: number of nearest neighbors (paper default intent: a small
            constant; 4 is the customary choice and our default).
        algorithm: 2 for the paper's Eq. (2) variant, 1 for classic KSG-1.
        backend: neighbor search backend, one of ``"bruteforce"``, ``"grid"``,
            ``"kdtree"`` or ``"auto"`` (size-based choice between the first
            two; the k-d tree is opt-in, best under heavy clustering).
        use_digamma_table: serve digamma evaluations from the process-wide
            :func:`repro.mi.digamma.shared_digamma_table` instead of calling
            scipy per estimate.  Table entries are exact scipy evaluations,
            so this never changes an estimate; the switch exists only so
            benchmarks can measure the table against direct calls.
        kernels: optional resolved backend kernel suite
            (:func:`repro.mi.backends.dispatch.get_kernels`).  When set,
            whole-window estimates use the fused canonical kernels and
            marginal counts route through the kernel suite; counts and
            radii semantics are unchanged (canonical selection equals the
            legacy selection wherever distances are tie-free).  ``None``
            (the default) keeps the legacy vectorized paths untouched.
    """

    k: int = 4
    algorithm: int = 2
    backend: str = "auto"
    use_digamma_table: bool = True
    kernels: Optional["KernelSet"] = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        if self.algorithm not in (1, 2):
            raise ValueError(f"algorithm must be 1 or 2, got {self.algorithm}")
        if self.backend not in _BACKENDS:
            raise ValueError(f"backend must be one of {_BACKENDS}, got {self.backend!r}")

    def resolved_backend(self, m: int) -> str:
        """The neighbor-search backend actually used for ``m`` samples."""
        if self.backend == "auto":
            return "grid" if m >= _GRID_CUTOVER else "bruteforce"
        return self.backend

    def _knn(self, x: FloatArray, y: FloatArray, k: int) -> KnnResult:
        backend = self.resolved_backend(x.size)
        if backend == "grid":
            return chebyshev_knn_grid(x, y, k, kernels=self.kernels)
        if backend == "kdtree":
            from repro.mi.kdtree import chebyshev_knn_kdtree

            return chebyshev_knn_kdtree(x, y, k)
        return chebyshev_knn_bruteforce(x, y, k)

    def effective_k(self, m: int) -> int:
        """The neighbor count actually used for a window of ``m`` samples."""
        return min(self.k, m - 1)

    def mi(self, x: AnyArray, y: AnyArray) -> float:
        """Estimate I(X; Y) in nats from paired samples.

        Args:
            x: samples of the first series, shape ``(m,)``.
            y: samples of the second series, shape ``(m,)``; ``y[i]`` must be
                the observation paired with ``x[i]`` (after any delay shift).

        Returns:
            The KSG estimate of the mutual information (nats).

        Raises:
            ValueError: if fewer than 2 samples are supplied or the inputs
                have mismatched lengths / non-finite values.
        """
        x = np.asarray(x, dtype=np.float64).ravel()
        y = np.asarray(y, dtype=np.float64).ravel()
        if x.size != y.size:
            raise ValueError(f"x and y must have equal length, got {x.size} and {y.size}")
        m = x.size
        if m < 2:
            raise ValueError(f"need at least 2 samples, got {m}")
        if contracts.checks_enabled():
            contracts.check_series_shape(x, y, where="KSGEstimator.mi")
        k = self.effective_k(m)
        if (
            self.kernels is not None
            and self.algorithm == 2
            and self.resolved_backend(m) == "bruteforce"
        ):
            # Fused canonical kernel: k-NN radii and marginal counts in
            # one pass, no O(m^2) workspace materialized in Python.
            n_x, n_y = self.kernels.window_counts(x, y, k)
            return self.mi_from_counts(n_x, n_y, k, m)
        knn = self._knn(x, y, k)
        return self.mi_from_geometry(x, y, knn, k)

    def mi_from_geometry(
        self,
        x: FloatArray,
        y: FloatArray,
        knn: KnnResult,
        k: int,
        digamma_table: Optional[FloatArray] = None,
        sorted_x: Optional[FloatArray] = None,
        sorted_y: Optional[FloatArray] = None,
    ) -> float:
        """Finish an MI estimate given precomputed k-NN geometry.

        Split out so the incremental engine (Section 7) can reuse its
        maintained neighbor sets and the batched ring scorer can amortize
        one neighbor workspace across a whole delta-neighborhood.

        Args:
            x: window samples of the first series.
            y: paired window samples of the second series.
            knn: precomputed neighbor geometry for the window.
            k: neighbor count the geometry was built with.
            digamma_table: optional precomputed ``digamma(i)`` for
                ``i = 1..len(table)`` (``table[i - 1] == digamma(i)``,
                length >= ``m``); every digamma argument here is a positive
                integer ``<= m``, so a caller evaluating many windows can
                share one table.  The table values are exact scipy
                evaluations, so supplying it never changes the estimate.
                When omitted, the process-wide shared table is used unless
                ``use_digamma_table`` is off.
            sorted_x: optional ascending float64 realization of exactly the
                multiset of ``x`` (see :func:`marginal_counts` presorted);
                skips the per-call marginal sort without changing counts.
            sorted_y: same for ``y``.
        """
        if self.algorithm == 2:
            n_x = self._marginal(x, knn.eps_x, False, sorted_x)
            n_y = self._marginal(y, knn.eps_y, False, sorted_y)
        else:
            n_x = self._marginal(x, knn.kth_distance, True, sorted_x)
            n_y = self._marginal(y, knn.kth_distance, True, sorted_y)
        return self.mi_from_counts(n_x, n_y, k, x.size, digamma_table=digamma_table)

    def _marginal(
        self,
        values: FloatArray,
        radii: FloatArray,
        strict: bool,
        presorted: Optional[FloatArray],
    ) -> IntArray:
        if self.kernels is not None:
            return self.kernels.marginal(values, radii, strict, presorted)
        return marginal_counts(values, radii, strict=strict, presorted=presorted)

    def mi_from_counts(
        self,
        n_x: IntArray,
        n_y: IntArray,
        k: int,
        m: int,
        digamma_table: Optional[FloatArray] = None,
    ) -> float:
        """Finish an MI estimate from raw marginal strip counts.

        The digamma gather and the pairwise-sum reduction stay in numpy
        regardless of the active kernel backend: the kernels emit only
        exact integer counts, so the floating-point summation order --
        and hence the estimate -- is bit-identical across engines.

        ``n_x``/``n_y`` are raw :func:`marginal_counts` outputs for the
        algorithm configured on this estimator (loose radii counts for
        algorithm 2, strict kth-distance counts for algorithm 1).
        """
        if digamma_table is None and self.use_digamma_table:
            digamma_table = shared_digamma_table().prefix(m)

        if self.algorithm == 2:
            # Eq. (2): counts include the k neighbors, so n >= k >= 1 except
            # in degenerate duplicate layouts; guard psi(0).
            n_x = np.maximum(n_x, 1)
            n_y = np.maximum(n_y, 1)
            if digamma_table is not None:
                psi_sum = digamma_table[n_x - 1] + digamma_table[n_y - 1]
                psi_k = float(digamma_table[k - 1])
                psi_m = float(digamma_table[m - 1])
            else:
                psi_sum = np.asarray(
                    digamma_direct(n_x) + digamma_direct(n_y), dtype=np.float64
                )
                psi_k = float(digamma_direct(k))
                psi_m = float(digamma_direct(m))
            # .sum()/m is bit-identical to .mean() (numpy's _mean is
            # umr_sum over count) without the wrapper's dispatch cost.
            value = psi_k - 1.0 / k - float(psi_sum.sum() / m) + psi_m
        else:
            if digamma_table is not None:
                psi_sum = digamma_table[n_x] + digamma_table[n_y]
                psi_k = float(digamma_table[k - 1])
                psi_m = float(digamma_table[m - 1])
            else:
                psi_sum = np.asarray(
                    digamma_direct(n_x + 1) + digamma_direct(n_y + 1), dtype=np.float64
                )
                psi_k = float(digamma_direct(k))
                psi_m = float(digamma_direct(m))
            value = psi_k - float(psi_sum.sum() / m) + psi_m
        if contracts.checks_enabled():
            contracts.check_mi_finite(float(value), where="KSGEstimator.mi_from_counts")
        return float(value)


def ksg_mi(
    x: AnyArray,
    y: AnyArray,
    k: int = 4,
    algorithm: int = 2,
    backend: str = "auto",
) -> float:
    """Convenience wrapper: estimate I(X; Y) with a throwaway estimator."""
    return KSGEstimator(k=k, algorithm=algorithm, backend=backend).mi(x, y)

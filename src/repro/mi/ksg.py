"""The Kraskov--Stoegbauer--Grassberger (KSG) mutual information estimator.

Implements the estimator the paper adopts in Section 3.1 (Eq. 2) and applies
per window in Definition 4.6 (Eq. 3):

``I(X; Y) = psi(k) - 1/k - <psi(n_x) + psi(n_y)> + psi(m)``

where ``psi`` is the digamma function, ``k`` the number of nearest neighbors
under the Chebyshev norm, ``n_x``/``n_y`` the marginal neighbor counts inside
the k-NN rectangle of each point, and ``m`` the window size.  This is KSG
"algorithm 2"; the classic "algorithm 1"
(``psi(k) - <psi(n_x + 1) + psi(n_y + 1)> + psi(m)``) is also provided for
cross-checks.

Estimates are in *nats*.  MI is theoretically non-negative but the estimator
is unbiased around zero for independent data and can return small negative
values; callers that need a dependence score should clamp (see
:func:`repro.mi.normalized.normalized_mi`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import digamma

from repro import contracts
from repro._types import AnyArray, FloatArray
from repro.mi.neighbors import (
    KnnResult,
    chebyshev_knn_bruteforce,
    chebyshev_knn_grid,
    marginal_counts,
)

__all__ = ["KSGEstimator", "ksg_mi"]

_BACKENDS = ("bruteforce", "grid", "kdtree", "auto")
# Above this window size the grid index beats the O(m^2) vectorized scan.
_GRID_CUTOVER = 4096


@dataclass(frozen=True)
class KSGEstimator:
    """Configurable KSG mutual information estimator.

    Attributes:
        k: number of nearest neighbors (paper default intent: a small
            constant; 4 is the customary choice and our default).
        algorithm: 2 for the paper's Eq. (2) variant, 1 for classic KSG-1.
        backend: neighbor search backend, one of ``"bruteforce"``, ``"grid"``,
            ``"kdtree"`` or ``"auto"`` (size-based choice between the first
            two; the k-d tree is opt-in, best under heavy clustering).
    """

    k: int = 4
    algorithm: int = 2
    backend: str = "auto"

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        if self.algorithm not in (1, 2):
            raise ValueError(f"algorithm must be 1 or 2, got {self.algorithm}")
        if self.backend not in _BACKENDS:
            raise ValueError(f"backend must be one of {_BACKENDS}, got {self.backend!r}")

    def _knn(self, x: FloatArray, y: FloatArray, k: int) -> KnnResult:
        backend = self.backend
        if backend == "auto":
            backend = "grid" if x.size >= _GRID_CUTOVER else "bruteforce"
        if backend == "grid":
            return chebyshev_knn_grid(x, y, k)
        if backend == "kdtree":
            from repro.mi.kdtree import chebyshev_knn_kdtree

            return chebyshev_knn_kdtree(x, y, k)
        return chebyshev_knn_bruteforce(x, y, k)

    def effective_k(self, m: int) -> int:
        """The neighbor count actually used for a window of ``m`` samples."""
        return min(self.k, m - 1)

    def mi(self, x: AnyArray, y: AnyArray) -> float:
        """Estimate I(X; Y) in nats from paired samples.

        Args:
            x: samples of the first series, shape ``(m,)``.
            y: samples of the second series, shape ``(m,)``; ``y[i]`` must be
                the observation paired with ``x[i]`` (after any delay shift).

        Returns:
            The KSG estimate of the mutual information (nats).

        Raises:
            ValueError: if fewer than 2 samples are supplied or the inputs
                have mismatched lengths / non-finite values.
        """
        x = np.asarray(x, dtype=np.float64).ravel()
        y = np.asarray(y, dtype=np.float64).ravel()
        if x.size != y.size:
            raise ValueError(f"x and y must have equal length, got {x.size} and {y.size}")
        m = x.size
        if m < 2:
            raise ValueError(f"need at least 2 samples, got {m}")
        if contracts.checks_enabled():
            contracts.check_series_shape(x, y, where="KSGEstimator.mi")
        k = self.effective_k(m)
        knn = self._knn(x, y, k)
        return self.mi_from_geometry(x, y, knn, k)

    def mi_from_geometry(self, x: FloatArray, y: FloatArray, knn: KnnResult, k: int) -> float:
        """Finish an MI estimate given precomputed k-NN geometry.

        Split out so the incremental engine (Section 7) can reuse its
        maintained neighbor sets.
        """
        m = x.size
        if self.algorithm == 2:
            n_x = marginal_counts(x, knn.eps_x, strict=False)
            n_y = marginal_counts(y, knn.eps_y, strict=False)
            # Eq. (2): counts include the k neighbors, so n >= k >= 1 except
            # in degenerate duplicate layouts; guard psi(0).
            n_x = np.maximum(n_x, 1)
            n_y = np.maximum(n_y, 1)
            value = (
                digamma(k)
                - 1.0 / k
                - float(np.mean(digamma(n_x) + digamma(n_y)))
                + digamma(m)
            )
        else:
            n_x = marginal_counts(x, knn.kth_distance, strict=True)
            n_y = marginal_counts(y, knn.kth_distance, strict=True)
            value = (
                digamma(k)
                - float(np.mean(digamma(n_x + 1) + digamma(n_y + 1)))
                + digamma(m)
            )
        if contracts.checks_enabled():
            contracts.check_mi_finite(float(value), where="KSGEstimator.mi_from_geometry")
        return float(value)


def ksg_mi(
    x: AnyArray,
    y: AnyArray,
    k: int = 4,
    algorithm: int = 2,
    backend: str = "auto",
) -> float:
    """Convenience wrapper: estimate I(X; Y) with a throwaway estimator."""
    return KSGEstimator(k=k, algorithm=algorithm, backend=backend).mi(x, y)

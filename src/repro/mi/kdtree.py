"""A 2-D k-d tree for Chebyshev k-nearest-neighbor search.

The paper's complexity analysis (Section 5.1) invokes "a more efficient
data structure ... such as k-d tree [Bentley 1975]" to bring the expected
k-NN cost to O(k d m log m).  This module implements that structure from
scratch: median-split construction over (x, y) points and best-first k-NN
queries under the maximum norm, with the standard bounding-box pruning
rule.

It complements the uniform grid of :mod:`repro.mi.neighbors`: the grid is
the better choice for well-spread data (O(1) bucket lookup), the k-d tree
degrades more gracefully under heavy clustering because its splits adapt
to the data's density.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro._types import AnyArray, FloatArray, IntArray
from repro.mi.neighbors import KnnResult

__all__ = ["KDTree", "chebyshev_knn_kdtree"]

# Below this size a node stores its points directly and queries scan them.
_LEAF_SIZE = 16


@dataclass
class _Node:
    """One k-d tree node; leaves carry point indices, splits carry a plane."""

    lo: Tuple[float, float]
    hi: Tuple[float, float]
    indices: Optional[IntArray] = None  # leaf payload
    axis: int = 0
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.indices is not None


def _box_distance(
    lo: Tuple[float, float], hi: Tuple[float, float], qx: float, qy: float
) -> float:
    """Chebyshev distance from a query point to an axis-aligned box."""
    dx = max(lo[0] - qx, 0.0, qx - hi[0])
    dy = max(lo[1] - qy, 0.0, qy - hi[1])
    return max(dx, dy)


class KDTree:
    """Median-split 2-D k-d tree with Chebyshev k-NN queries.

    Args:
        x: x-coordinates, shape ``(m,)``.
        y: y-coordinates, shape ``(m,)``.

    The tree holds indices into the input arrays; queries return those
    indices, never copies of the points.
    """

    def __init__(self, x: AnyArray, y: AnyArray) -> None:
        x = np.asarray(x, dtype=np.float64).ravel()
        y = np.asarray(y, dtype=np.float64).ravel()
        if x.size != y.size:
            raise ValueError("x and y must have equal length")
        if x.size == 0:
            raise ValueError("cannot build a k-d tree over zero points")
        self._x = x
        self._y = y
        indices = np.arange(x.size, dtype=np.int64)
        lo = (float(x.min()), float(y.min()))
        hi = (float(x.max()), float(y.max()))
        self._root = self._build(indices, lo, hi, depth=0)

    def _build(
        self,
        indices: IntArray,
        lo: Tuple[float, float],
        hi: Tuple[float, float],
        depth: int,
    ) -> _Node:
        if indices.size <= _LEAF_SIZE:
            return _Node(lo=lo, hi=hi, indices=indices)
        # Split the wider axis at the median -- adapts to density better
        # than round-robin on skewed data.
        width_x = hi[0] - lo[0]
        width_y = hi[1] - lo[1]
        axis = 0 if width_x >= width_y else 1
        coords = self._x[indices] if axis == 0 else self._y[indices]
        order = np.argsort(coords, kind="stable")
        indices = indices[order]
        mid = indices.size // 2
        threshold = float(coords[order[mid]])
        left_hi = (threshold, hi[1]) if axis == 0 else (hi[0], threshold)
        right_lo = (threshold, lo[1]) if axis == 0 else (lo[0], threshold)
        node = _Node(lo=lo, hi=hi, axis=axis, threshold=threshold)
        node.left = self._build(indices[:mid], lo, left_hi, depth + 1)
        node.right = self._build(indices[mid:], right_lo, hi, depth + 1)
        return node

    def knn(
        self, qx: float, qy: float, k: int, exclude: int = -1
    ) -> Tuple[IntArray, FloatArray]:
        """The k nearest stored points to (qx, qy) under the max norm.

        Args:
            qx: query x-coordinate.
            qy: query y-coordinate.
            k: number of neighbors (``1 <= k <= size``, minus exclusion).
            exclude: index to skip (pass the query's own index for
                leave-one-out queries).

        Returns:
            ``(indices, distances)`` of the k best, unordered.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        # Max-heap of (-distance, index) holding the best k found so far.
        best: List[Tuple[float, int]] = []
        # Best-first traversal: a min-heap of (box distance, tiebreak, node).
        counter = 0
        frontier: List[Tuple[float, int, _Node]] = [(0.0, counter, self._root)]
        x, y = self._x, self._y
        while frontier:
            box_d, _, node = heapq.heappop(frontier)
            if len(best) == k and box_d > -best[0][0]:
                break  # nothing in this subtree can improve the k best
            if node.is_leaf:
                idx = node.indices
                d = np.maximum(np.abs(x[idx] - qx), np.abs(y[idx] - qy))
                for j, dist in zip(idx, d):
                    if j == exclude:
                        continue
                    if len(best) < k:
                        heapq.heappush(best, (-dist, int(j)))
                    elif dist < -best[0][0]:
                        heapq.heapreplace(best, (-dist, int(j)))
                continue
            for child in (node.left, node.right):
                if child is not None:
                    counter += 1
                    child_d = _box_distance(child.lo, child.hi, qx, qy)
                    if len(best) < k or child_d <= -best[0][0]:
                        heapq.heappush(frontier, (child_d, counter, child))
        if len(best) < k:
            raise ValueError(f"requested k={k} neighbors but only {len(best)} available")
        dists = np.array([-d for d, _ in best])
        idxs = np.array([j for _, j in best], dtype=np.int64)
        return idxs, dists


def chebyshev_knn_kdtree(x: AnyArray, y: AnyArray, k: int) -> KnnResult:
    """k-d tree based all-points k-NN; same contract as the other backends."""
    x = np.asarray(x, dtype=np.float64).ravel()
    y = np.asarray(y, dtype=np.float64).ravel()
    if x.size != y.size:
        raise ValueError("x and y must have equal length")
    if x.size <= k:
        raise ValueError(f"need more than k={k} samples, got {x.size}")
    if not (np.all(np.isfinite(x)) and np.all(np.isfinite(y))):
        raise ValueError("x and y must be finite")
    tree = KDTree(x, y)
    m = x.size
    kth_distance = np.empty(m)
    eps_x = np.empty(m)
    eps_y = np.empty(m)
    indices = np.empty((m, k), dtype=np.int64)
    for i in range(m):
        idx, dist = tree.knn(float(x[i]), float(y[i]), k, exclude=i)
        indices[i] = idx
        kth_distance[i] = dist.max()
        eps_x[i] = np.abs(x[idx] - x[i]).max()
        eps_y[i] = np.abs(y[idx] - y[i]).max()
    return KnnResult(kth_distance=kth_distance, eps_x=eps_x, eps_y=eps_y, indices=indices)

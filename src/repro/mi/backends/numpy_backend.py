"""Canonical vectorized numpy reference for the backend kernels.

These functions *define* the backend kernel semantics: the k nearest
neighbors of a point are the k lexicographically smallest
``(distance, index)`` pairs, and neighbor index rows are emitted in
ascending order.  The compiled kernels in
:mod:`repro.mi.backends.numba_backend` are asserted bit-identical to
this module under the ``FAST_PATH_GATES`` discipline, which is only
possible because — unlike ``argpartition`` — lexicographic selection
has exactly one correct answer on distance ties.

On tie-free inputs (the tracked workloads are jittered) canonical
selection picks the same neighbor *sets* as the legacy argpartition
paths, so end-to-end scores agree bit-for-bit with the default engine.

The float32 tier selects candidates in float32 and re-ranks them with
exact float64 lexicographic order (see
:data:`repro.mi.backends._kernels.F32_CANDIDATE_PAD`), so radii and
marginal counts are always float64 quantities.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
import numpy.typing as npt

from repro._types import FloatArray, IntArray
from repro.mi.backends._kernels import F32_CANDIDATE_PAD, Float32Array

BoolArray = npt.NDArray[np.bool_]

__all__ = [
    "GridLayout",
    "build_grid",
    "canonical_mask",
    "cluster_counts",
    "cluster_counts_f32",
    "grid_knn_ref",
    "marginal_counts_ref",
    "topk_block",
    "window_counts",
    "window_counts_f32",
]


def canonical_mask(dist: FloatArray, k: int) -> BoolArray:
    """Boolean mask of the k lex-smallest ``(distance, column)`` per row.

    Columns with distance strictly below the k-th order statistic are
    always selected (there are at most k-1 of them); the remaining slots
    are filled by the lowest-index columns tied at the k-th distance.
    """

    kth = np.partition(dist, k - 1, axis=1)[:, k - 1]
    less = dist < kth[:, None]
    need = k - less.sum(axis=1)
    eq = dist == kth[:, None]
    take = eq & (np.cumsum(eq, axis=1) <= need[:, None])
    result: BoolArray = less | take
    return result


def _mask_to_outputs(
    mask: BoolArray,
    adx: FloatArray,
    ady: FloatArray,
    kth: FloatArray,
    k: int,
) -> Tuple[FloatArray, FloatArray, FloatArray, IntArray]:
    m = mask.shape[0]
    eps_x = np.max(adx, axis=1, where=mask, initial=-np.inf)
    eps_y = np.max(ady, axis=1, where=mask, initial=-np.inf)
    indices = np.nonzero(mask)[1].reshape(m, k).astype(np.int64)
    return kth, eps_x, eps_y, indices


def topk_block(
    dist: FloatArray,
    adx: FloatArray,
    ady: FloatArray,
    k: int,
) -> Tuple[FloatArray, FloatArray, FloatArray, IntArray]:
    """Canonical top-k over a workspace distance block (inf diagonal)."""

    mask = canonical_mask(dist, k)
    kth = np.partition(dist, k - 1, axis=1)[:, k - 1]
    return _mask_to_outputs(mask, adx, ady, kth, k)


def marginal_counts_ref(
    values: FloatArray,
    radii: FloatArray,
    strict: bool,
    order: FloatArray,
) -> IntArray:
    """Strip counts over a presorted projection (searchsorted semantics)."""

    if strict:
        left = np.searchsorted(order, values - radii, side="right")
        right = np.searchsorted(order, values + radii, side="left")
    else:
        left = np.searchsorted(order, values - radii, side="left")
        right = np.searchsorted(order, values + radii, side="right")
    counts = right - left - 1
    np.maximum(counts, 0, out=counts)
    return counts.astype(np.int64, copy=False)


def _pair_distances(
    x: FloatArray, y: FloatArray
) -> Tuple[FloatArray, FloatArray, FloatArray]:
    adx = np.abs(x[:, None] - x[None, :])
    ady = np.abs(y[:, None] - y[None, :])
    dist = np.maximum(adx, ady)
    np.fill_diagonal(dist, np.inf)
    return dist, adx, ady


def _strip_counts(
    x: FloatArray,
    y: FloatArray,
    eps_x: FloatArray,
    eps_y: FloatArray,
) -> Tuple[IntArray, IntArray]:
    n_x = marginal_counts_ref(x, eps_x, False, np.sort(x))
    n_y = marginal_counts_ref(y, eps_y, False, np.sort(y))
    return n_x, n_y


def window_counts(x: FloatArray, y: FloatArray, k: int) -> Tuple[IntArray, IntArray]:
    """Fused algorithm-2 window geometry (canonical k-NN + loose counts)."""

    dist, adx, ady = _pair_distances(x, y)
    mask = canonical_mask(dist, k)
    eps_x = np.max(adx, axis=1, where=mask, initial=-np.inf)
    eps_y = np.max(ady, axis=1, where=mask, initial=-np.inf)
    return _strip_counts(x, y, eps_x, eps_y)


def window_counts_f32(
    x: FloatArray,
    y: FloatArray,
    x32: Float32Array,
    y32: Float32Array,
    k: int,
) -> Tuple[IntArray, IntArray]:
    """float32-pruned window geometry, re-ranked and counted in float64."""

    m = x.shape[0]
    kc = min(k + F32_CANDIDATE_PAD, m - 1)
    adx32 = np.abs(x32[:, None] - x32[None, :])
    ady32 = np.abs(y32[:, None] - y32[None, :])
    dist32 = np.maximum(adx32, ady32)
    np.fill_diagonal(dist32, np.float32(np.inf))
    candidates = canonical_mask(dist32, kc)
    dist, adx, ady = _pair_distances(x, y)
    pruned = np.where(candidates, dist, np.inf)
    mask = canonical_mask(pruned, k)
    eps_x = np.max(adx, axis=1, where=mask, initial=-np.inf)
    eps_y = np.max(ady, axis=1, where=mask, initial=-np.inf)
    return _strip_counts(x, y, eps_x, eps_y)


def cluster_counts(
    x: FloatArray,
    y: FloatArray,
    offsets: IntArray,
    sizes: IntArray,
    ks: IntArray,
) -> Tuple[IntArray, IntArray]:
    """Per-window :func:`window_counts` over a same-delay union slice."""

    total = int(sizes.sum())
    out_nx = np.empty(total, dtype=np.int64)
    out_ny = np.empty(total, dtype=np.int64)
    pos = 0
    for w in range(offsets.shape[0]):
        off = int(offsets[w])
        m = int(sizes[w])
        n_x, n_y = window_counts(x[off : off + m], y[off : off + m], int(ks[w]))
        out_nx[pos : pos + m] = n_x
        out_ny[pos : pos + m] = n_y
        pos += m
    return out_nx, out_ny


def cluster_counts_f32(
    x: FloatArray,
    y: FloatArray,
    x32: Float32Array,
    y32: Float32Array,
    offsets: IntArray,
    sizes: IntArray,
    ks: IntArray,
) -> Tuple[IntArray, IntArray]:
    """float32 tier of :func:`cluster_counts` (union cast once by caller)."""

    total = int(sizes.sum())
    out_nx = np.empty(total, dtype=np.int64)
    out_ny = np.empty(total, dtype=np.int64)
    pos = 0
    for w in range(offsets.shape[0]):
        off = int(offsets[w])
        m = int(sizes[w])
        n_x, n_y = window_counts_f32(
            x[off : off + m],
            y[off : off + m],
            x32[off : off + m],
            y32[off : off + m],
            int(ks[w]),
        )
        out_nx[pos : pos + m] = n_x
        out_ny[pos : pos + m] = n_y
        pos += m
    return out_nx, out_ny


def grid_knn_ref(
    x: FloatArray, y: FloatArray, k: int
) -> Tuple[FloatArray, FloatArray, FloatArray, IntArray]:
    """Canonical reference for the grid kernel.

    Deliberately grid-structure-free: the compiled ring search must
    produce the global canonical top-k regardless of bucket layout, so
    the reference is plain brute force over the full distance matrix.
    """

    dist, adx, ady = _pair_distances(x, y)
    return topk_block(dist, adx, ady, k)


class GridLayout:
    """CSR bucket layout mirroring ``GridIndex``'s cell math.

    Points are bucketed by ``floor((value - min) / cell)`` per axis with
    the same ``span / max(1, int(sqrt(m / target_per_cell)))`` cell side
    as ``GridIndex``; the CSR ordering uses a stable argsort so the
    layout is deterministic.
    """

    __slots__ = ("cell", "ncx", "ncy", "starts", "order", "cx", "cy")

    def __init__(self, x: FloatArray, y: FloatArray, target_per_cell: float = 2.0) -> None:
        m = x.shape[0]
        x0 = float(x.min())
        y0 = float(y.min())
        span = max(float(x.max()) - x0, float(y.max()) - y0)
        cells_per_axis = max(1, int(np.sqrt(m / target_per_cell)))
        cell = span / cells_per_axis if span > 0.0 else 1.0
        cx = ((x - x0) / cell).astype(np.int64)
        cy = ((y - y0) / cell).astype(np.int64)
        ncx = int(cx.max()) + 1
        ncy = int(cy.max()) + 1
        cell_ids = cx * ncy + cy
        order = np.argsort(cell_ids, kind="stable").astype(np.int64)
        counts = np.bincount(cell_ids, minlength=ncx * ncy)
        starts = np.zeros(ncx * ncy + 1, dtype=np.int64)
        np.cumsum(counts, out=starts[1:])
        self.cell = cell
        self.ncx = ncx
        self.ncy = ncy
        self.starts = starts
        self.order = order
        self.cx = cx
        self.cy = cy


def build_grid(
    x: FloatArray, y: FloatArray, target_per_cell: float = 2.0
) -> Optional[GridLayout]:
    """Build the CSR grid, or ``None`` when bucketing cannot help (m < 2)."""

    if x.shape[0] < 2:
        return None
    return GridLayout(x, y, target_per_cell)

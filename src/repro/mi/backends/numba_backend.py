"""The only module in the repository that imports :mod:`numba` (TY115).

Importing this module raises ``ImportError`` when numba is absent;
:mod:`repro.mi.backends.dispatch` catches that and serves the numpy
reference instead.  Import itself is cheap — ``njit`` decoration is
lazy — so probing for availability does not trigger compilation.
Compilation happens once per kernel signature on the first call;
:func:`warm_up` runs every kernel on tiny pinned inputs so the cost is
paid at ``get_kernels()`` time rather than inside the first scored
window, and so per-kernel compilation failures surface where the
dispatch layer can fall back to numpy.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

import numba
import numpy as np

from repro.mi.backends import _kernels

__all__ = ["NUMBA_VERSION", "compiled_kernels", "warm_up"]

NUMBA_VERSION: str = str(numba.__version__)

# fastmath stays off: bit-exactness against the numpy reference depends
# on IEEE-faithful subtraction, abs, max and comparisons.  nogil lets
# future intra-process parallelism overlap kernel calls.
_JIT = numba.njit(cache=False, fastmath=False, nogil=True)


def _build() -> Dict[str, Callable[..., None]]:
    bisect_left = _JIT(_kernels.make_bisect_left())
    bisect_right = _JIT(_kernels.make_bisect_right())
    window_counts = _JIT(_kernels.make_window_counts(bisect_left, bisect_right))
    window_counts_f32 = _JIT(_kernels.make_window_counts_f32(bisect_left, bisect_right))
    return {
        "topk_block": _JIT(_kernels.make_topk_block()),
        "marginal_counts": _JIT(_kernels.make_marginal_counts(bisect_left, bisect_right)),
        "window_counts": window_counts,
        "window_counts_f32": window_counts_f32,
        "cluster_counts": _JIT(_kernels.make_cluster_counts(window_counts)),
        "cluster_counts_f32": _JIT(_kernels.make_cluster_counts_f32(window_counts_f32)),
        "grid_knn": _JIT(_kernels.make_grid_knn()),
    }


_COMPILED: Dict[str, Callable[..., None]] = _build()


def compiled_kernels() -> Dict[str, Callable[..., None]]:
    """Return the njit-wrapped kernel suite (compilation still pending)."""

    return dict(_COMPILED)


def warm_up(name: str, kernel: Callable[..., None]) -> None:
    """Force-compile ``kernel`` by running it on a tiny pinned workload.

    Raises whatever numba raises on compilation failure; the dispatch
    layer records the failure and substitutes the numpy reference for
    that kernel only.
    """

    x = np.array([0.0, 0.4, 1.1, 0.2, 0.9, 0.5], dtype=np.float64)
    y = np.array([0.3, 0.1, 0.8, 0.7, 0.0, 1.0], dtype=np.float64)
    m = x.shape[0]
    k = 2
    args: Any
    if name == "topk_block":
        adx = np.abs(x[:, None] - x[None, :])
        ady = np.abs(y[:, None] - y[None, :])
        dist = np.maximum(adx, ady)
        np.fill_diagonal(dist, np.inf)
        args = (
            dist,
            adx,
            ady,
            k,
            np.empty(m),
            np.empty(m),
            np.empty(m),
            np.empty((m, k), dtype=np.int64),
        )
    elif name == "marginal_counts":
        radii = np.full(m, 0.25)
        out = np.empty(m, dtype=np.int64)
        kernel(x, radii, True, np.sort(x), out)
        args = (x, radii, False, np.sort(x), out)
    elif name == "window_counts":
        args = (x, y, k, np.empty(m, dtype=np.int64), np.empty(m, dtype=np.int64))
    elif name == "window_counts_f32":
        args = (
            x,
            y,
            x.astype(np.float32),
            y.astype(np.float32),
            k,
            np.empty(m, dtype=np.int64),
            np.empty(m, dtype=np.int64),
        )
    elif name == "cluster_counts":
        offsets = np.array([0, 1], dtype=np.int64)
        sizes = np.array([4, 5], dtype=np.int64)
        ks = np.array([k, k], dtype=np.int64)
        total = int(sizes.sum())
        args = (
            x,
            y,
            offsets,
            sizes,
            ks,
            np.empty(total, dtype=np.int64),
            np.empty(total, dtype=np.int64),
        )
    elif name == "cluster_counts_f32":
        offsets = np.array([0, 1], dtype=np.int64)
        sizes = np.array([4, 5], dtype=np.int64)
        ks = np.array([k, k], dtype=np.int64)
        total = int(sizes.sum())
        args = (
            x,
            y,
            x.astype(np.float32),
            y.astype(np.float32),
            offsets,
            sizes,
            ks,
            np.empty(total, dtype=np.int64),
            np.empty(total, dtype=np.int64),
        )
    elif name == "grid_knn":
        from repro.mi.backends.numpy_backend import build_grid

        layout = build_grid(x, y)
        assert layout is not None
        args = (
            x,
            y,
            k,
            layout.cell,
            layout.ncx,
            layout.ncy,
            layout.starts,
            layout.order,
            layout.cx,
            layout.cy,
            np.empty(m),
            np.empty(m),
            np.empty(m),
            np.empty((m, k), dtype=np.int64),
        )
    else:
        raise ValueError(f"unknown kernel {name!r}")
    kernel(*args)

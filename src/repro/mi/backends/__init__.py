"""Optional compiled kernel backends for the KSG scoring hot loops.

The TYCOS search spends nearly all its time in three kernels: the
max-norm k-NN selection (workspace blocks and the grid index), the
marginal strip counts over presorted projections, and the fused
delta-ring window-geometry lattice the batched scorer runs per LAHC
neighborhood.  This package hosts the *backend* realizations of those
kernels:

* :mod:`repro.mi.backends.numpy_backend` -- the canonical pure-numpy
  reference.  Every backend kernel is defined by lexicographic
  ``(distance, index)`` neighbor selection, which (unlike
  ``argpartition``) has exactly one correct answer on ties, so a
  compiled implementation can be asserted bit-identical to it.
* :mod:`repro.mi.backends._kernels` -- the same kernels written as
  plain-Python loops that ``numba.njit`` can compile unchanged (and
  tests can run interpreted when numba is absent).
* :mod:`repro.mi.backends.numba_backend` -- the only module in the
  repository allowed to import :mod:`numba` (tycoslint rule TY115);
  applies ``njit`` to the loop kernels.
* :mod:`repro.mi.backends.dispatch` -- the single selection point:
  ``get_kernels(backend, precision)`` resolves a
  :class:`~repro.mi.backends.dispatch.KernelSet` with lazy numba
  import, one-time warm-up compilation and automatic per-kernel
  fallback to the numpy reference.

The default engine configuration (``TycosConfig.backend="numpy"``,
``precision="float64"``) bypasses this package entirely and keeps the
legacy numpy paths bit-for-bit unchanged.
"""

from repro.mi.backends.dispatch import (
    KernelSet,
    backend_metadata,
    get_kernels,
    numba_version,
)

__all__ = ["KernelSet", "backend_metadata", "get_kernels", "numba_version"]

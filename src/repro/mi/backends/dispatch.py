"""Single selection point for compiled kernel backends.

``get_kernels(backend, precision)`` resolves the engine that will serve
the hot kernels for a search:

* ``("numpy", "float64")`` — the default — returns ``None``: callers
  keep the legacy vectorized paths, bit-for-bit unchanged.
* ``("auto", "float64")`` returns the compiled :class:`KernelSet` when
  numba imports and every kernel warm-compiles, and ``None`` (legacy)
  otherwise.
* ``backend="numba"`` or ``precision="float32"`` always returns a
  :class:`KernelSet`.  Kernel *semantics* are host-independent: when
  numba is absent or a kernel fails to compile, that kernel is served
  by the canonical numpy reference in
  :mod:`repro.mi.backends.numpy_backend`, which the compiled kernels
  are asserted bit-identical to — availability affects only speed.

Resolution is memoized per ``(backend, precision)`` so the one-time
numba import and warm-up compile are paid once per process; the memo is
registered in ``tools.tycoslint.registry.CACHE_MODULES`` and is
fork-safe because a child process rebuilds it deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np

from repro._types import FloatArray, IntArray
from repro.mi.backends import numpy_backend

__all__ = [
    "BACKENDS",
    "PRECISIONS",
    "KernelSet",
    "backend_metadata",
    "get_kernels",
    "numba_version",
]

BACKENDS: Tuple[str, ...] = ("auto", "numpy", "numba")
PRECISIONS: Tuple[str, ...] = ("float64", "float32")

KnnTuple = Tuple[FloatArray, FloatArray, FloatArray, IntArray]
TopKCallable = Callable[[FloatArray, FloatArray, FloatArray, int], KnnTuple]
MarginalCallable = Callable[[FloatArray, FloatArray, bool, Optional[FloatArray]], IntArray]
WindowCallable = Callable[[FloatArray, FloatArray, int], Tuple[IntArray, IntArray]]
ClusterCallable = Callable[
    [FloatArray, FloatArray, IntArray, IntArray, IntArray], Tuple[IntArray, IntArray]
]
GridCallable = Callable[[FloatArray, FloatArray, int], KnnTuple]


@dataclass(frozen=True)
class KernelSet:
    """Resolved kernel suite plus the provenance the reports record.

    ``backend`` is what the caller asked for; ``engine`` is what
    actually serves the calls (``"numba"`` only when at least one
    compiled kernel is active).  ``fallbacks`` names kernels that fell
    back to the numpy reference despite a numba request.
    """

    backend: str
    engine: str
    precision: str
    compiled: bool
    fallbacks: Tuple[str, ...]
    topk: TopKCallable
    marginal: MarginalCallable
    window_counts: WindowCallable
    cluster_counts: ClusterCallable
    grid_knn: GridCallable


def _validate(backend: str, precision: str) -> None:
    if backend not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
    if precision not in PRECISIONS:
        raise ValueError(f"precision must be one of {PRECISIONS}, got {precision!r}")


# Lazily probed numba backend module: unset -> [], absent -> [None],
# present -> [module].  No environment reads, no import-time probing.
_NUMBA_MODULE: "list[Optional[Any]]" = []

# Memoized kernel sets; rebuilt identically in every process.
_KERNEL_CACHE: Dict[Tuple[str, str], Optional[KernelSet]] = {}


def _numba_backend() -> Any:
    if not _NUMBA_MODULE:
        try:
            from repro.mi.backends import numba_backend
        except Exception:
            _NUMBA_MODULE.append(None)
        else:
            _NUMBA_MODULE.append(numba_backend)
    return _NUMBA_MODULE[0]


def numba_version() -> Optional[str]:
    """The available numba version, or ``None`` when it cannot import."""

    module = _numba_backend()
    if module is None:
        return None
    return str(module.NUMBA_VERSION)


def _numpy_marginal(
    values: FloatArray, radii: FloatArray, strict: bool, presorted: Optional[FloatArray]
) -> IntArray:
    order = np.sort(values) if presorted is None else presorted
    return numpy_backend.marginal_counts_ref(values, radii, strict, order)


def _numpy_window(precision: str) -> WindowCallable:
    if precision == "float64":
        return numpy_backend.window_counts

    def window(x: FloatArray, y: FloatArray, k: int) -> Tuple[IntArray, IntArray]:
        return numpy_backend.window_counts_f32(
            x, y, x.astype(np.float32), y.astype(np.float32), k
        )

    return window


def _numpy_cluster(precision: str) -> ClusterCallable:
    if precision == "float64":
        return numpy_backend.cluster_counts

    def cluster(
        x: FloatArray,
        y: FloatArray,
        offsets: IntArray,
        sizes: IntArray,
        ks: IntArray,
    ) -> Tuple[IntArray, IntArray]:
        return numpy_backend.cluster_counts_f32(
            x, y, x.astype(np.float32), y.astype(np.float32), offsets, sizes, ks
        )

    return cluster


def _legacy_grid_knn(
    x: FloatArray, y: FloatArray, k: int
) -> Tuple[FloatArray, FloatArray, FloatArray, IntArray]:
    """The uncompiled grid_knn slot: the legacy brute-force search.

    ``numpy_backend.grid_knn_ref`` exists to pin the compiled ring
    search's canonical output, but as a *serving* path it materializes
    the full distance matrix three times over and ran at 0.53x the
    legacy kernel (BENCH_PR8 grid_knn row).  Without a compiled kernel
    the dispatcher therefore serves :func:`chebyshev_knn_bruteforce`,
    whose kth-distance/eps geometry the reference matches exactly --
    asserted per-run by the bench before any timing is recorded.
    """
    from repro.mi.neighbors import chebyshev_knn_bruteforce

    result = chebyshev_knn_bruteforce(x, y, k)
    return result.kth_distance, result.eps_x, result.eps_y, result.indices


def _numpy_callables(precision: str) -> Dict[str, Any]:
    return {
        "topk": numpy_backend.topk_block,
        "marginal": _numpy_marginal,
        "window_counts": _numpy_window(precision),
        "cluster_counts": _numpy_cluster(precision),
        "grid_knn": _legacy_grid_knn,
    }


def _wrap_topk(kernel: Callable[..., None]) -> TopKCallable:
    def topk(dist: FloatArray, adx: FloatArray, ady: FloatArray, k: int) -> KnnTuple:
        m = dist.shape[0]
        kth = np.empty(m)
        eps_x = np.empty(m)
        eps_y = np.empty(m)
        indices = np.empty((m, k), dtype=np.int64)
        kernel(dist, adx, ady, k, kth, eps_x, eps_y, indices)
        return kth, eps_x, eps_y, indices

    return topk


def _wrap_marginal(kernel: Callable[..., None]) -> MarginalCallable:
    def marginal(
        values: FloatArray,
        radii: FloatArray,
        strict: bool,
        presorted: Optional[FloatArray],
    ) -> IntArray:
        order = np.sort(values) if presorted is None else presorted
        out = np.empty(values.shape[0], dtype=np.int64)
        kernel(values, radii, strict, order, out)
        return out

    return marginal


def _wrap_window(kernel: Callable[..., None], precision: str) -> WindowCallable:
    if precision == "float64":

        def window(x: FloatArray, y: FloatArray, k: int) -> Tuple[IntArray, IntArray]:
            m = x.shape[0]
            n_x = np.empty(m, dtype=np.int64)
            n_y = np.empty(m, dtype=np.int64)
            kernel(x, y, k, n_x, n_y)
            return n_x, n_y

    else:

        def window(x: FloatArray, y: FloatArray, k: int) -> Tuple[IntArray, IntArray]:
            m = x.shape[0]
            n_x = np.empty(m, dtype=np.int64)
            n_y = np.empty(m, dtype=np.int64)
            kernel(x, y, x.astype(np.float32), y.astype(np.float32), k, n_x, n_y)
            return n_x, n_y

    return window


def _wrap_cluster(kernel: Callable[..., None], precision: str) -> ClusterCallable:
    if precision == "float64":

        def cluster(
            x: FloatArray,
            y: FloatArray,
            offsets: IntArray,
            sizes: IntArray,
            ks: IntArray,
        ) -> Tuple[IntArray, IntArray]:
            total = int(sizes.sum())
            n_x = np.empty(total, dtype=np.int64)
            n_y = np.empty(total, dtype=np.int64)
            kernel(x, y, offsets, sizes, ks, n_x, n_y)
            return n_x, n_y

    else:

        def cluster(
            x: FloatArray,
            y: FloatArray,
            offsets: IntArray,
            sizes: IntArray,
            ks: IntArray,
        ) -> Tuple[IntArray, IntArray]:
            total = int(sizes.sum())
            n_x = np.empty(total, dtype=np.int64)
            n_y = np.empty(total, dtype=np.int64)
            kernel(
                x, y, x.astype(np.float32), y.astype(np.float32), offsets, sizes, ks, n_x, n_y
            )
            return n_x, n_y

    return cluster


def _wrap_grid(kernel: Callable[..., None]) -> GridCallable:
    def grid_knn(x: FloatArray, y: FloatArray, k: int) -> KnnTuple:
        layout = numpy_backend.build_grid(x, y)
        if layout is None:
            return numpy_backend.grid_knn_ref(x, y, k)
        m = x.shape[0]
        kth = np.empty(m)
        eps_x = np.empty(m)
        eps_y = np.empty(m)
        indices = np.empty((m, k), dtype=np.int64)
        kernel(
            x,
            y,
            k,
            layout.cell,
            layout.ncx,
            layout.ncy,
            layout.starts,
            layout.order,
            layout.cx,
            layout.cy,
            kth,
            eps_x,
            eps_y,
            indices,
        )
        return kth, eps_x, eps_y, indices

    return grid_knn


# Which compiled kernel feeds each KernelSet slot, per precision.
_SLOT_KERNELS = {
    "float64": {
        "topk": "topk_block",
        "marginal": "marginal_counts",
        "window_counts": "window_counts",
        "cluster_counts": "cluster_counts",
        "grid_knn": "grid_knn",
    },
    "float32": {
        "topk": "topk_block",
        "marginal": "marginal_counts",
        "window_counts": "window_counts_f32",
        "cluster_counts": "cluster_counts_f32",
        "grid_knn": "grid_knn",
    },
}


def _build_numba_set(backend: str, precision: str) -> Optional[KernelSet]:
    """Build the compiled set, falling back per kernel on compile failure."""

    module = _numba_backend()
    if module is None:
        if backend == "auto" and precision == "float64":
            return None
        numpy_set = _numpy_callables(precision)
        return KernelSet(
            backend=backend,
            engine="numpy",
            precision=precision,
            compiled=False,
            fallbacks=("numba-unavailable",),
            **numpy_set,
        )
    compiled = module.compiled_kernels()
    slots = _SLOT_KERNELS[precision]
    numpy_set = _numpy_callables(precision)
    resolved: Dict[str, Any] = {}
    fallbacks = []
    wrappers: Dict[str, Callable[[Callable[..., None]], Any]] = {
        "topk": _wrap_topk,
        "marginal": _wrap_marginal,
        "window_counts": lambda fn: _wrap_window(fn, precision),
        "cluster_counts": lambda fn: _wrap_cluster(fn, precision),
        "grid_knn": _wrap_grid,
    }
    for slot, kernel_name in slots.items():
        kernel = compiled[kernel_name]
        try:
            module.warm_up(kernel_name, kernel)
        except Exception:
            fallbacks.append(kernel_name)
            resolved[slot] = numpy_set[slot]
        else:
            resolved[slot] = wrappers[slot](kernel)
    any_compiled = len(fallbacks) < len(slots)
    if backend == "auto" and precision == "float64" and fallbacks:
        # auto promises legacy-identical behavior at full speed or the
        # legacy engine itself; a partially-degraded suite is neither.
        return None
    return KernelSet(
        backend=backend,
        engine="numba" if any_compiled else "numpy",
        precision=precision,
        compiled=any_compiled,
        fallbacks=tuple(fallbacks),
        topk=resolved["topk"],
        marginal=resolved["marginal"],
        window_counts=resolved["window_counts"],
        cluster_counts=resolved["cluster_counts"],
        grid_knn=resolved["grid_knn"],
    )


def get_kernels(backend: str, precision: str = "float64") -> Optional[KernelSet]:
    """Resolve the kernel suite for a backend/precision request.

    Returns ``None`` when the legacy numpy paths should be used
    unchanged (the default configuration, and ``auto`` when numba is
    not available).
    """

    _validate(backend, precision)
    key = (backend, precision)
    if key not in _KERNEL_CACHE:
        if backend == "numpy" and precision == "float64":
            _KERNEL_CACHE[key] = None
        elif backend == "numpy":
            numpy_set = _numpy_callables(precision)
            _KERNEL_CACHE[key] = KernelSet(
                backend=backend,
                engine="numpy",
                precision=precision,
                compiled=False,
                fallbacks=(),
                **numpy_set,
            )
        else:
            _KERNEL_CACHE[key] = _build_numba_set(backend, precision)
    return _KERNEL_CACHE[key]


def backend_metadata(backend: str, precision: str = "float64") -> Dict[str, str]:
    """Provenance strings for reports and the bench ``host`` block."""

    kernels = get_kernels(backend, precision)
    version = numba_version()
    if kernels is None:
        engine = "numpy-legacy"
        compiled = "false"
        fallbacks = ""
    else:
        engine = kernels.engine
        compiled = "true" if kernels.compiled else "false"
        fallbacks = ",".join(kernels.fallbacks)
    return {
        "backend": backend,
        "precision": precision,
        "engine": engine,
        "compiled": compiled,
        "fallbacks": fallbacks,
        "numba": version if version is not None else "absent",
    }

"""Loop-form kernel sources shared by the interpreted and numba engines.

Every public ``make_*`` factory returns a plain-Python function written
in the restricted style ``numba.njit`` compiles unchanged: scalar loops,
preallocated output arrays, no Python containers, no closures other than
already-built kernel functions.  :mod:`repro.mi.backends.numba_backend`
wraps these factories' results in ``njit``; tests run them interpreted
so the exact source that gets compiled is exercised even on hosts
without numba.

Selection semantics are *canonical*: the k nearest neighbors of a point
are the k lexicographically smallest ``(distance, index)`` pairs.  On
tie-free inputs this coincides with the legacy ``argpartition`` paths;
on ties it has exactly one correct answer, which is what makes the
bit-exactness gate against :mod:`repro.mi.backends.numpy_backend`
meaningful.  Neighbor index rows are emitted in ascending index order.

The float32 tier selects *candidates* in float32 (``k`` plus
``F32_CANDIDATE_PAD`` of them) and then re-ranks the candidates with
exact float64 lexicographic selection, so the radii and marginal counts
are always computed in float64; float32 is used only to cut the memory
bandwidth of the O(m^2) distance sweep.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np
import numpy.typing as npt

from repro._types import FloatArray, IntArray

Float32Array = npt.NDArray[np.float32]

__all__ = [
    "F32_CANDIDATE_PAD",
    "GRID_FULL_SCAN_MARGIN",
    "make_bisect_left",
    "make_bisect_right",
    "make_cluster_counts",
    "make_cluster_counts_f32",
    "make_grid_knn",
    "make_marginal_counts",
    "make_topk_block",
    "make_window_counts",
    "make_window_counts_f32",
    "build_interpreted_suite",
]

# Extra float32 candidates kept before the exact float64 re-rank.  A
# wrong final selection needs the true k-th neighbor to fall outside the
# float32 top-(k + pad), i.e. pad+1 simultaneous float32 rank inversions.
F32_CANDIDATE_PAD = 8

# Ring radius slack before the grid search falls back to a full scan,
# mirroring the degenerate-distribution guard in ``GridIndex.knn``.
GRID_FULL_SCAN_MARGIN = 2

BisectFn = Callable[[FloatArray, float], int]


def make_bisect_left() -> BisectFn:
    """Return ``np.searchsorted(a, value, side="left")`` as a scalar loop."""

    def bisect_left(a: FloatArray, value: float) -> int:
        lo = 0
        hi = a.shape[0]
        while lo < hi:
            mid = (lo + hi) // 2
            if a[mid] < value:
                lo = mid + 1
            else:
                hi = mid
        return lo

    return bisect_left


def make_bisect_right() -> BisectFn:
    """Return ``np.searchsorted(a, value, side="right")`` as a scalar loop."""

    def bisect_right(a: FloatArray, value: float) -> int:
        lo = 0
        hi = a.shape[0]
        while lo < hi:
            mid = (lo + hi) // 2
            if a[mid] <= value:
                lo = mid + 1
            else:
                hi = mid
        return lo

    return bisect_right


TopKFn = Callable[
    [FloatArray, FloatArray, FloatArray, int, FloatArray, FloatArray, FloatArray, IntArray],
    None,
]


def make_topk_block() -> TopKFn:
    """Per-row canonical top-k over a precomputed distance block.

    ``dist``/``adx``/``ady`` are ``(m, m)`` float64 arrays (Chebyshev
    distance and per-axis absolute differences) with ``inf`` on the
    diagonal, exactly as ``PairDistanceWorkspace`` lays them out.
    Outputs are the k-th neighbor distance, the per-axis radii and the
    ascending-sorted neighbor index rows.
    """

    def topk_block(
        dist: FloatArray,
        adx: FloatArray,
        ady: FloatArray,
        k: int,
        out_kth: FloatArray,
        out_ex: FloatArray,
        out_ey: FloatArray,
        out_idx: IntArray,
    ) -> None:
        m = dist.shape[0]
        best_d = np.empty(k, dtype=np.float64)
        best_j = np.empty(k, dtype=np.int64)
        for i in range(m):
            count = 0
            for j in range(m):
                d = dist[i, j]
                if count < k:
                    pos = count
                    count += 1
                elif d < best_d[k - 1] or (d == best_d[k - 1] and j < best_j[k - 1]):
                    pos = k - 1
                else:
                    continue
                while pos > 0 and (
                    best_d[pos - 1] > d or (best_d[pos - 1] == d and best_j[pos - 1] > j)
                ):
                    best_d[pos] = best_d[pos - 1]
                    best_j[pos] = best_j[pos - 1]
                    pos -= 1
                best_d[pos] = d
                best_j[pos] = j
            out_kth[i] = best_d[k - 1]
            ex = -math.inf
            ey = -math.inf
            for t in range(k):
                j = best_j[t]
                if adx[i, j] > ex:
                    ex = adx[i, j]
                if ady[i, j] > ey:
                    ey = ady[i, j]
            out_ex[i] = ex
            out_ey[i] = ey
            # Canonical row order for the indices output is ascending.
            for t in range(1, k):
                j = best_j[t]
                pos = t
                while pos > 0 and best_j[pos - 1] > j:
                    best_j[pos] = best_j[pos - 1]
                    pos -= 1
                best_j[pos] = j
            for t in range(k):
                out_idx[i, t] = best_j[t]

    return topk_block


MarginalFn = Callable[[FloatArray, FloatArray, bool, FloatArray, IntArray], None]


def make_marginal_counts(bisect_left: BisectFn, bisect_right: BisectFn) -> MarginalFn:
    """Marginal strip counts over a presorted projection.

    Replicates ``repro.mi.neighbors.marginal_counts`` exactly: strict
    mode counts ``|v_j - v_i| < r_i`` (searchsorted right/left), loose
    mode counts ``|v_j - v_i| <= r_i`` (left/right); the query point
    itself is excluded and counts clamp at zero.
    """

    def marginal_counts_kernel(
        values: FloatArray,
        radii: FloatArray,
        strict: bool,
        order: FloatArray,
        out: IntArray,
    ) -> None:
        n = values.shape[0]
        for i in range(n):
            v = values[i]
            r = radii[i]
            if strict:
                left = bisect_right(order, v - r)
                right = bisect_left(order, v + r)
            else:
                left = bisect_left(order, v - r)
                right = bisect_right(order, v + r)
            c = right - left - 1
            if c < 0:
                c = 0
            out[i] = c

    return marginal_counts_kernel


WindowCountsFn = Callable[[FloatArray, FloatArray, int, IntArray, IntArray], None]


def make_window_counts(bisect_left: BisectFn, bisect_right: BisectFn) -> WindowCountsFn:
    """Fused algorithm-2 window geometry: canonical k-NN + marginal counts.

    One pass over a single window's raw float64 projections; no O(m^2)
    workspace is materialized.  Emits the raw (unclamped) marginal
    counts the estimator reduction expects.
    """

    def window_counts(
        x: FloatArray,
        y: FloatArray,
        k: int,
        out_nx: IntArray,
        out_ny: IntArray,
    ) -> None:
        m = x.shape[0]
        sx = np.sort(x)
        sy = np.sort(y)
        best_d = np.empty(k, dtype=np.float64)
        best_j = np.empty(k, dtype=np.int64)
        for i in range(m):
            xi = x[i]
            yi = y[i]
            count = 0
            for j in range(m):
                if j == i:
                    continue
                dx = abs(x[j] - xi)
                dy = abs(y[j] - yi)
                d = dx if dx > dy else dy
                if count < k:
                    pos = count
                    count += 1
                elif d < best_d[k - 1] or (d == best_d[k - 1] and j < best_j[k - 1]):
                    pos = k - 1
                else:
                    continue
                while pos > 0 and (
                    best_d[pos - 1] > d or (best_d[pos - 1] == d and best_j[pos - 1] > j)
                ):
                    best_d[pos] = best_d[pos - 1]
                    best_j[pos] = best_j[pos - 1]
                    pos -= 1
                best_d[pos] = d
                best_j[pos] = j
            ex = -math.inf
            ey = -math.inf
            for t in range(k):
                j = best_j[t]
                dx = abs(x[j] - xi)
                dy = abs(y[j] - yi)
                if dx > ex:
                    ex = dx
                if dy > ey:
                    ey = dy
            left = bisect_left(sx, xi - ex)
            right = bisect_right(sx, xi + ex)
            c = right - left - 1
            out_nx[i] = c if c > 0 else 0
            left = bisect_left(sy, yi - ey)
            right = bisect_right(sy, yi + ey)
            c = right - left - 1
            out_ny[i] = c if c > 0 else 0

    return window_counts


WindowCountsF32Fn = Callable[
    [FloatArray, FloatArray, Float32Array, Float32Array, int, IntArray, IntArray], None
]


def make_window_counts_f32(
    bisect_left: BisectFn, bisect_right: BisectFn
) -> WindowCountsF32Fn:
    """float32 tier of :func:`make_window_counts`.

    The O(m^2) distance sweep runs on the float32 copies and keeps the
    ``min(k + F32_CANDIDATE_PAD, m - 1)`` lexicographically smallest
    candidates; the final k are then re-selected among the candidates
    with exact float64 lexicographic order, and all radii and counts are
    float64.  Counts therefore match the float64 kernel whenever the
    true k nearest neighbors survive the float32 pruning.
    """

    def window_counts_f32(
        x: FloatArray,
        y: FloatArray,
        x32: Float32Array,
        y32: Float32Array,
        k: int,
        out_nx: IntArray,
        out_ny: IntArray,
    ) -> None:
        m = x.shape[0]
        kc = k + F32_CANDIDATE_PAD
        if kc > m - 1:
            kc = m - 1
        sx = np.sort(x)
        sy = np.sort(y)
        cand_d = np.empty(kc, dtype=np.float32)
        cand_j = np.empty(kc, dtype=np.int64)
        best_d = np.empty(k, dtype=np.float64)
        best_j = np.empty(k, dtype=np.int64)
        for i in range(m):
            xi32 = x32[i]
            yi32 = y32[i]
            count = 0
            for j in range(m):
                if j == i:
                    continue
                dx32 = abs(x32[j] - xi32)
                dy32 = abs(y32[j] - yi32)
                d32 = dx32 if dx32 > dy32 else dy32
                if count < kc:
                    pos = count
                    count += 1
                elif d32 < cand_d[kc - 1] or (d32 == cand_d[kc - 1] and j < cand_j[kc - 1]):
                    pos = kc - 1
                else:
                    continue
                while pos > 0 and (
                    cand_d[pos - 1] > d32 or (cand_d[pos - 1] == d32 and cand_j[pos - 1] > j)
                ):
                    cand_d[pos] = cand_d[pos - 1]
                    cand_j[pos] = cand_j[pos - 1]
                    pos -= 1
                cand_d[pos] = d32
                cand_j[pos] = j
            # Exact float64 re-rank of the float32 candidates.
            xi = x[i]
            yi = y[i]
            bcount = 0
            for t in range(count):
                j = cand_j[t]
                dx = abs(x[j] - xi)
                dy = abs(y[j] - yi)
                d = dx if dx > dy else dy
                if bcount < k:
                    pos = bcount
                    bcount += 1
                elif d < best_d[k - 1] or (d == best_d[k - 1] and j < best_j[k - 1]):
                    pos = k - 1
                else:
                    continue
                while pos > 0 and (
                    best_d[pos - 1] > d or (best_d[pos - 1] == d and best_j[pos - 1] > j)
                ):
                    best_d[pos] = best_d[pos - 1]
                    best_j[pos] = best_j[pos - 1]
                    pos -= 1
                best_d[pos] = d
                best_j[pos] = j
            ex = -math.inf
            ey = -math.inf
            for t in range(k):
                j = best_j[t]
                dx = abs(x[j] - xi)
                dy = abs(y[j] - yi)
                if dx > ex:
                    ex = dx
                if dy > ey:
                    ey = dy
            left = bisect_left(sx, xi - ex)
            right = bisect_right(sx, xi + ex)
            c = right - left - 1
            out_nx[i] = c if c > 0 else 0
            left = bisect_left(sy, yi - ey)
            right = bisect_right(sy, yi + ey)
            c = right - left - 1
            out_ny[i] = c if c > 0 else 0

    return window_counts_f32


ClusterCountsFn = Callable[
    [FloatArray, FloatArray, IntArray, IntArray, IntArray, IntArray, IntArray], None
]


def make_cluster_counts(window_counts: WindowCountsFn) -> ClusterCountsFn:
    """Fused delta-ring lattice: run every same-delay window in one call.

    ``x``/``y`` are the union slices of the raw projections at a fixed
    delay; ``offsets``/``sizes`` describe each window relative to the
    union start, and ``ks`` the per-window effective neighbor count.
    Counts for window ``w`` land at ``out[pos : pos + sizes[w]]`` where
    ``pos`` is the running sum of earlier sizes.
    """

    def cluster_counts(
        x: FloatArray,
        y: FloatArray,
        offsets: IntArray,
        sizes: IntArray,
        ks: IntArray,
        out_nx: IntArray,
        out_ny: IntArray,
    ) -> None:
        pos = 0
        for w in range(offsets.shape[0]):
            off = offsets[w]
            m = sizes[w]
            window_counts(
                x[off : off + m],
                y[off : off + m],
                ks[w],
                out_nx[pos : pos + m],
                out_ny[pos : pos + m],
            )
            pos += m

    return cluster_counts


ClusterCountsF32Fn = Callable[
    [
        FloatArray,
        FloatArray,
        Float32Array,
        Float32Array,
        IntArray,
        IntArray,
        IntArray,
        IntArray,
        IntArray,
    ],
    None,
]


def make_cluster_counts_f32(window_counts_f32: WindowCountsF32Fn) -> ClusterCountsF32Fn:
    """float32 tier of :func:`make_cluster_counts` (union cast once)."""

    def cluster_counts_f32(
        x: FloatArray,
        y: FloatArray,
        x32: Float32Array,
        y32: Float32Array,
        offsets: IntArray,
        sizes: IntArray,
        ks: IntArray,
        out_nx: IntArray,
        out_ny: IntArray,
    ) -> None:
        pos = 0
        for w in range(offsets.shape[0]):
            off = offsets[w]
            m = sizes[w]
            window_counts_f32(
                x[off : off + m],
                y[off : off + m],
                x32[off : off + m],
                y32[off : off + m],
                ks[w],
                out_nx[pos : pos + m],
                out_ny[pos : pos + m],
            )
            pos += m

    return cluster_counts_f32


GridKnnFn = Callable[
    [
        FloatArray,
        FloatArray,
        int,
        float,
        int,
        int,
        IntArray,
        IntArray,
        IntArray,
        IntArray,
        FloatArray,
        FloatArray,
        FloatArray,
        IntArray,
    ],
    None,
]


def make_grid_knn() -> GridKnnFn:
    """Canonical ring-expansion k-NN over a CSR bucket grid.

    The grid layout (cell side, per-point cell coordinates, stable
    CSR ordering) is built by the caller with the same cell math as
    ``GridIndex``.  Rings expand until the worst selected distance is
    *strictly* below ``(r - 1) * cell``: points in unvisited rings sit
    at distance >= r * cell minus at most a few ulps of cell-boundary
    rounding, so the one-cell slack plus the strict comparison
    guarantees no unvisited point can displace a selected one even on
    exact distance ties, keeping the result canonical.  Degenerate
    distributions fall back to a full scan once the ring radius exceeds
    ``2*sqrt(m) + margin``.
    """

    def grid_knn(
        x: FloatArray,
        y: FloatArray,
        k: int,
        cell: float,
        ncx: int,
        ncy: int,
        starts: IntArray,
        order: IntArray,
        cx: IntArray,
        cy: IntArray,
        out_kth: FloatArray,
        out_ex: FloatArray,
        out_ey: FloatArray,
        out_idx: IntArray,
    ) -> None:
        m = x.shape[0]
        limit = 2 * int(math.sqrt(float(m))) + GRID_FULL_SCAN_MARGIN
        best_d = np.empty(k, dtype=np.float64)
        best_j = np.empty(k, dtype=np.int64)
        for i in range(m):
            xi = x[i]
            yi = y[i]
            qcx = cx[i]
            qcy = cy[i]
            count = 0
            r = 0
            full_scan = False
            while True:
                gx_lo = qcx - r
                gx_hi = qcx + r
                for gx in range(gx_lo, gx_hi + 1):
                    if gx < 0 or gx >= ncx:
                        continue
                    ax = gx - qcx
                    if ax < 0:
                        ax = -ax
                    for gy in range(qcy - r, qcy + r + 1):
                        if gy < 0 or gy >= ncy:
                            continue
                        ay = gy - qcy
                        if ay < 0:
                            ay = -ay
                        ring = ax if ax > ay else ay
                        if ring != r:
                            continue
                        cid = gx * ncy + gy
                        for t in range(starts[cid], starts[cid + 1]):
                            j = order[t]
                            if j == i:
                                continue
                            dx = abs(x[j] - xi)
                            dy = abs(y[j] - yi)
                            d = dx if dx > dy else dy
                            if count < k:
                                pos = count
                                count += 1
                            elif d < best_d[k - 1] or (
                                d == best_d[k - 1] and j < best_j[k - 1]
                            ):
                                pos = k - 1
                            else:
                                continue
                            while pos > 0 and (
                                best_d[pos - 1] > d
                                or (best_d[pos - 1] == d and best_j[pos - 1] > j)
                            ):
                                best_d[pos] = best_d[pos - 1]
                                best_j[pos] = best_j[pos - 1]
                                pos -= 1
                            best_d[pos] = d
                            best_j[pos] = j
                if count >= k and best_d[k - 1] < (r - 1) * cell:
                    break
                r += 1
                if r > limit:
                    full_scan = True
                    break
            if full_scan:
                count = 0
                for j in range(m):
                    if j == i:
                        continue
                    dx = abs(x[j] - xi)
                    dy = abs(y[j] - yi)
                    d = dx if dx > dy else dy
                    if count < k:
                        pos = count
                        count += 1
                    elif d < best_d[k - 1] or (d == best_d[k - 1] and j < best_j[k - 1]):
                        pos = k - 1
                    else:
                        continue
                    while pos > 0 and (
                        best_d[pos - 1] > d or (best_d[pos - 1] == d and best_j[pos - 1] > j)
                    ):
                        best_d[pos] = best_d[pos - 1]
                        best_j[pos] = best_j[pos - 1]
                        pos -= 1
                    best_d[pos] = d
                    best_j[pos] = j
            out_kth[i] = best_d[k - 1]
            ex = -math.inf
            ey = -math.inf
            for t in range(k):
                j = best_j[t]
                dx = abs(x[j] - xi)
                dy = abs(y[j] - yi)
                if dx > ex:
                    ex = dx
                if dy > ey:
                    ey = dy
            out_ex[i] = ex
            out_ey[i] = ey
            for t in range(1, k):
                j = best_j[t]
                pos = t
                while pos > 0 and best_j[pos - 1] > j:
                    best_j[pos] = best_j[pos - 1]
                    pos -= 1
                best_j[pos] = j
            for t in range(k):
                out_idx[i, t] = best_j[t]

    return grid_knn


def build_interpreted_suite() -> "dict[str, Callable[..., None]]":
    """Assemble the interpreted (uncompiled) kernel suite.

    Used by the parity tests so the exact loop source handed to numba is
    exercised on hosts where numba is absent; the dispatch layer never
    serves these (the vectorized numpy reference is faster interpreted).
    """

    bisect_left = make_bisect_left()
    bisect_right = make_bisect_right()
    window_counts = make_window_counts(bisect_left, bisect_right)
    window_counts_f32 = make_window_counts_f32(bisect_left, bisect_right)
    return {
        "topk_block": make_topk_block(),
        "marginal_counts": make_marginal_counts(bisect_left, bisect_right),
        "window_counts": window_counts,
        "window_counts_f32": window_counts_f32,
        "cluster_counts": make_cluster_counts(window_counts),
        "cluster_counts_f32": make_cluster_counts_f32(window_counts_f32),
        "grid_knn": make_grid_knn(),
    }

"""Conditional mutual information via the KSG construction.

The paper's conclusion positions TYCOS as "a basis for ... infer[ring]
causal effects from the extracted correlations".  The standard tool for
that step is *conditional* mutual information ``I(X; Y | Z)`` -- e.g.
transfer entropy is ``I(Y_future; X_past | Y_past)`` -- and the natural
estimator is the Frenzel-Pompe extension of KSG:

``I(X; Y | Z) = psi(k) - < psi(n_xz + 1) + psi(n_yz + 1) - psi(n_z + 1) >``

where the k-th neighbor distance is measured in the joint (X, Y, Z) space
under the max norm and the ``n``s count neighbors inside that radius in
the (X,Z), (Y,Z) and Z subspaces.

Used by :mod:`repro.extensions.causality` for lead-lag/transfer-entropy
style direction analysis on top of extracted windows.
"""

from __future__ import annotations

import numpy as np

from repro._types import AnyArray, FloatArray, IntArray
from repro.mi.digamma import shared_digamma_table

__all__ = ["ksg_cmi", "transfer_entropy"]


def _marginal_count_nd(points: FloatArray, radii: FloatArray) -> IntArray:
    """For each row, count other rows within its max-norm radius (strict)."""
    m = points.shape[0]
    counts = np.empty(m, dtype=np.int64)
    for i in range(m):
        d = np.max(np.abs(points - points[i]), axis=1)
        counts[i] = int(np.sum(d < radii[i])) - 1  # exclude self
    return counts


def ksg_cmi(
    x: AnyArray,
    y: AnyArray,
    z: AnyArray,
    k: int = 4,
) -> float:
    """Frenzel-Pompe KSG estimate of I(X; Y | Z) in nats.

    Args:
        x: samples of X, shape ``(m,)``.
        y: paired samples of Y, shape ``(m,)``.
        z: paired conditioning samples, shape ``(m,)`` or ``(m, d)``.
        k: nearest-neighbor count.

    Returns:
        The conditional MI estimate (can be slightly negative around 0).
    """
    x = np.asarray(x, dtype=np.float64).ravel()
    y = np.asarray(y, dtype=np.float64).ravel()
    z = np.asarray(z, dtype=np.float64)
    if z.ndim == 1:
        z = z[:, None]
    m = x.size
    if y.size != m or z.shape[0] != m:
        raise ValueError("x, y and z must have the same number of samples")
    if m <= k + 1:
        raise ValueError(f"need more than k+1={k + 1} samples, got {m}")

    joint = np.column_stack([x, y, z])
    # k-th neighbor distance in the full joint space, max norm.
    dist = np.max(np.abs(joint[:, None, :] - joint[None, :, :]), axis=2)
    np.fill_diagonal(dist, np.inf)
    radius = np.partition(dist, k - 1, axis=1)[:, k - 1]

    xz = np.column_stack([x, z])
    yz = np.column_stack([y, z])
    n_xz = _marginal_count_nd(xz, radius)
    n_yz = _marginal_count_nd(yz, radius)
    n_z = _marginal_count_nd(z, radius)
    table = shared_digamma_table()
    value = table.value(k) - float(
        np.mean(table.values(n_xz + 1) + table.values(n_yz + 1) - table.values(n_z + 1))
    )
    return float(value)


def transfer_entropy(
    source: AnyArray,
    target: AnyArray,
    lag: int = 1,
    k: int = 4,
) -> float:
    """Transfer entropy ``TE(source -> target)`` at a given lag, in nats.

    ``TE = I(target_t ; source_{t-lag} | target_{t-lag})`` -- the
    information the source's past adds about the target's present beyond
    the target's own past.  Positive asymmetry
    ``TE(x -> y) - TE(y -> x)`` indicates x leads y.

    Args:
        source: candidate driver series.
        target: candidate response series.
        lag: history offset in samples (>= 1).
        k: KSG neighbor count.
    """
    source = np.asarray(source, dtype=np.float64).ravel()
    target = np.asarray(target, dtype=np.float64).ravel()
    if source.size != target.size:
        raise ValueError("source and target must have equal length")
    if lag < 1:
        raise ValueError(f"lag must be >= 1, got {lag}")
    if source.size <= lag + k + 1:
        raise ValueError("series too short for the requested lag")
    present = target[lag:]
    source_past = source[:-lag]
    target_past = target[:-lag]
    return ksg_cmi(present, source_past, target_past, k=k)

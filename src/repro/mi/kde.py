"""Kernel density estimation (KDE) mutual information estimator.

The second classical estimator of the paper's Section-3.1 comparison:
estimate the joint and marginal densities with Gaussian kernels and
average ``log[ f(x,y) / (f(x) f(y)) ]`` over the sample (the resubstitution
estimator).  Accurate on smooth densities but O(m^2) per evaluation with a
bandwidth that must be tuned -- the reasons the paper prefers KSG.

Bandwidths follow Silverman's rule per dimension; the joint estimate uses
a product kernel with the same per-dimension bandwidths so that the
marginal and joint estimates are mutually consistent.
"""

from __future__ import annotations

import numpy as np

from repro._types import AnyArray, FloatArray

__all__ = ["kde_mi", "silverman_bandwidth"]


def silverman_bandwidth(values: AnyArray) -> float:
    """Silverman's rule-of-thumb bandwidth for a 1-D Gaussian KDE."""
    values = np.asarray(values, dtype=np.float64).ravel()
    if values.size < 2:
        raise ValueError(f"need at least 2 samples, got {values.size}")
    spread = values.std()
    iqr = np.subtract(*np.percentile(values, [75, 25]))
    scale = min(spread, iqr / 1.349) if iqr > 0 else spread
    if scale <= 0:
        scale = max(abs(values).max(), 1.0) * 1e-3
    return float(0.9 * scale * values.size ** (-0.2))


def _gaussian_kde_1d(values: FloatArray, h: float) -> FloatArray:
    """Leave-none-out resubstitution density of each sample point."""
    diffs = (values[:, None] - values[None, :]) / h
    kernel = np.exp(-0.5 * diffs * diffs)
    return kernel.sum(axis=1) / (values.size * h * np.sqrt(2 * np.pi))


def kde_mi(x: AnyArray, y: AnyArray, bandwidth_scale: float = 1.0) -> float:
    """KDE (resubstitution) estimate of I(X; Y) in nats.

    Args:
        x: samples of the first variable.
        y: paired samples of the second variable.
        bandwidth_scale: multiplier on the Silverman bandwidths (sweeping
            it exposes the estimator's bandwidth sensitivity).

    Returns:
        ``mean log[ f(x,y) / (f(x) f(y)) ]`` over the sample.
    """
    x = np.asarray(x, dtype=np.float64).ravel()
    y = np.asarray(y, dtype=np.float64).ravel()
    if x.size != y.size:
        raise ValueError(f"x and y must have equal length, got {x.size} and {y.size}")
    if x.size < 4:
        raise ValueError(f"need at least 4 samples, got {x.size}")
    if bandwidth_scale <= 0:
        raise ValueError(f"bandwidth_scale must be > 0, got {bandwidth_scale}")
    hx = silverman_bandwidth(x) * bandwidth_scale
    hy = silverman_bandwidth(y) * bandwidth_scale
    fx = _gaussian_kde_1d(x, hx)
    fy = _gaussian_kde_1d(y, hy)
    dx = (x[:, None] - x[None, :]) / hx
    dy = (y[:, None] - y[None, :]) / hy
    kernel = np.exp(-0.5 * (dx * dx + dy * dy))
    fxy = kernel.sum(axis=1) / (x.size * hx * hy * 2 * np.pi)
    tiny = np.finfo(np.float64).tiny
    return float(np.mean(np.log(np.maximum(fxy, tiny)) - np.log(np.maximum(fx * fy, tiny))))

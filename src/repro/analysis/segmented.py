"""Segmented intra-pair search: shard one pair's timeline across cores.

:mod:`repro.analysis.parallel` scales a *collection* scan by giving each
worker whole pairs, but a single long pair still runs one sequential
restart loop.  The segmented strategy shards the pair itself: ``[0, n)``
is covered by ``n_segments`` spans overlapping by
:meth:`~repro.core.config.TycosConfig.segment_overlap` samples, an
independent TYCOS restart loop runs per span, and the per-span results
are stitched deterministically.  The overlap makes every feasible
window's footprint fully contained in at least one span (the containment
lemma of :mod:`repro.core.segmentation`), so no window is lost to a
boundary.

Determinism is the design center:

* Jitter is applied **once**, to the whole pair, before segmentation.
  Every span searches a slice of the *same* jittered arrays, so a window
  evaluated by two different segments sees bit-identical samples.
* The stitcher runs on index-ordered per-span results: exact duplicates
  from overlap zones are dropped (first span wins), every surviving
  overlap-zone window is **rescored on the whole series** by one shared
  scorer, and cross-segment conflicts are resolved through the existing
  :class:`~repro.core.results.ResultSet` machinery in fixed
  ``(score, start, delay)`` priority.
* The sequential path (``n_jobs=1``) is the reference stitcher that
  *defines* the semantics; the process-pool path ships the jittered pair
  once through shared memory and must reproduce the reference bit-exactly
  for every worker count (asserted in ``tests/analysis/test_segmented.py``
  and in the benchmark harness).

Segmenting changes which restarts are attempted -- each span rescans from
its own start -- so ``n_segments=k`` results may legitimately differ from
``n_segments=1`` results; what never changes is the parallel/sequential
equivalence at a fixed segment count, and ``n_segments=1`` reproduces the
classic whole-series search exactly.

Since the planner refactor the machinery itself -- span engines, the
pool fan-out, the stitcher -- lives in :mod:`repro.analysis.planner` as
the executor of a :class:`~repro.analysis.planner.SegmentStage`; this
module is the compatibility entry point that builds the classic
``Segment -> Scan -> Stitch`` plan and executes it, byte-identical to
the pre-planner implementation (pinned by
``tests/analysis/test_planner.py``).  The planner also composes the
stage in ways this surface cannot spell, e.g. a coarse-to-fine search
*inside* each span (:func:`~repro.analysis.planner.composed_plan`).
"""

from __future__ import annotations

from typing import Optional

from repro._types import AnyArray
from repro.core.config import TycosConfig
from repro.core.tycos import Tycos, TycosResult

__all__ = ["search_segmented"]


def search_segmented(
    x: AnyArray,
    y: AnyArray,
    config: Optional[TycosConfig] = None,
    *,
    engine: Optional[Tycos] = None,
    n_segments: Optional[int] = None,
    n_jobs: int = 1,
    use_shared_memory: bool = True,
    force_parallel: bool = False,
) -> TycosResult:
    """Search one pair with its timeline sharded into parallel segments.

    The public entry point is ``Tycos.search(..., n_segments=, n_jobs=)``,
    which builds the same plan; call this directly to reach the transport
    knobs or to drive a preconfigured engine.

    Args:
        x: first time series.
        y: second time series (same length).
        config: search parameters (ignored when ``engine`` is given).
        engine: optional preconfigured engine whose variant flags and
            overlap policy the segments inherit (default: TYCOS_LMN over
            ``config``).
        n_segments: number of overlapping timeline spans (default:
            ``config.n_segments``).  The series may be too short to
            support that many distinct spans, in which case fewer run --
            ``stats.segments`` records the actual count.
        n_jobs: worker processes for the spans (``-1``: all cores).  1
            runs the sequential reference stitcher in-process; any other
            count returns a bit-identical result.
        use_shared_memory: ship the jittered pair to the workers through
            one shared-memory block (the default) rather than pickling it
            into every worker.
        force_parallel: run the pool even on a 1-core host, where the
            default is to fall back to the sequential path (see
            :func:`repro.analysis.parallel.effective_workers`); the
            fallback is recorded in ``stats.serial_fallback``.

    Returns:
        A :class:`~repro.core.tycos.TycosResult` whose ``stats`` carry
        ``segments`` / ``stitch_dedups`` / ``stitch_rescores`` on top of
        the summed per-segment counters.

    Raises:
        ValueError: when neither ``config`` nor ``engine`` is given.
    """
    from repro.analysis.planner import execute_plan, segmented_plan

    if engine is None:
        if config is None:
            raise ValueError("search_segmented needs a config or an engine")
        engine = Tycos(config)
    segments = engine.config.n_segments if n_segments is None else n_segments
    if segments < 1:
        raise ValueError(f"n_segments must be >= 1, got {segments}")
    return execute_plan(
        x,
        y,
        engine=engine,
        plan=segmented_plan(segments),
        n_jobs=n_jobs,
        use_shared_memory=use_shared_memory,
        force_parallel=force_parallel,
    )

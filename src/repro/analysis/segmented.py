"""Segmented intra-pair search: shard one pair's timeline across cores.

:mod:`repro.analysis.parallel` scales a *collection* scan by giving each
worker whole pairs, but a single long pair still runs one sequential
restart loop.  This module shards the pair itself: ``[0, n)`` is covered
by ``n_segments`` spans overlapping by
:meth:`~repro.core.config.TycosConfig.segment_overlap` samples, an
independent TYCOS restart loop runs per span, and the per-span results
are stitched deterministically.  The overlap makes every feasible
window's footprint fully contained in at least one span (the containment
lemma of :mod:`repro.core.segmentation`), so no window is lost to a
boundary.

Determinism is the design center:

* Jitter is applied **once**, to the whole pair, before segmentation.
  Every span searches a slice of the *same* jittered arrays, so a window
  evaluated by two different segments sees bit-identical samples.
* The stitcher runs on index-ordered per-span results: exact duplicates
  from overlap zones are dropped (first span wins), every surviving
  overlap-zone window is **rescored on the whole series** by one shared
  scorer, and cross-segment conflicts are resolved through the existing
  :class:`~repro.core.results.ResultSet` machinery in fixed
  ``(score, start, delay)`` priority.
* The sequential path (``n_jobs=1``) is the reference stitcher that
  *defines* the semantics; the process-pool path ships the jittered pair
  once through shared memory and must reproduce the reference bit-exactly
  for every worker count (asserted in ``tests/analysis/test_segmented.py``
  and in the benchmark harness).

Segmenting changes which restarts are attempted -- each span rescans from
its own start -- so ``n_segments=k`` results may legitimately differ from
``n_segments=1`` results; what never changes is the parallel/sequential
equivalence at a fixed segment count, and ``n_segments=1`` reproduces the
classic whole-series search exactly.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro._types import AnyArray, FloatArray, WindowKey
from repro.analysis.parallel import effective_workers, pooled_map, worker_state
from repro.core.config import TycosConfig
from repro.core.results import ResultSet, WindowResult
from repro.core.segmentation import Span, overlap_zones, segment_spans
from repro.core.thresholds import BatchScorer
from repro.core.tycos import SearchStats, Tycos, TycosResult
from repro.core.window import PairView, TimeDelayWindow

__all__ = ["search_segmented"]

#: One worker task: (submission index, span lo, span hi).
_Task = Tuple[int, int, int]


def _segment_engine(engine: Tycos) -> Tycos:
    """The engine each span runs: same variant, jitter off, unsegmented.

    Jitter is already applied to the whole pair before slicing (so spans
    share bit-identical samples), and a span search must never recurse
    into segmentation or a coarse-to-fine pre-pass.
    """
    return Tycos(
        engine.config.scaled(jitter=0.0, n_segments=1, coarse_factor=1),
        use_noise=engine.use_noise,
        use_incremental=engine.use_incremental,
        overlap_policy=engine.overlap_policy,
        batched_scoring=engine.batched_scoring,
    )


def _search_span(
    engine: Tycos, x: FloatArray, y: FloatArray, lo: int, hi: int
) -> TycosResult:
    """Run one span's restart loop on the jittered slice ``[lo, hi)``."""
    return engine.search(x[lo:hi], y[lo:hi])


def _scan_span_task(task: _Task) -> Tuple[int, TycosResult]:
    """Worker task: search one span, return its index-tagged result.

    The jittered pair and the span engine arrive through the
    :func:`repro.analysis.parallel.pooled_map` transport; this module
    owns no pool or shared-memory lifecycle of its own (tycoslint
    TY101/TY102).
    """
    index, lo, hi = task
    state = worker_state()
    series: Dict[str, FloatArray] = state["series"]
    result = _search_span(state["engine"], series["x"], series["y"], lo, hi)
    return index, result


def _run_segments_parallel(
    seg_engine: Tycos,
    pair: PairView,
    spans: Sequence[Span],
    workers: int,
    use_shared_memory: bool,
) -> List[TycosResult]:
    """Fan the spans over a process pool; results return in span order."""
    tasks: List[_Task] = [(i, lo, hi) for i, (lo, hi) in enumerate(spans)]
    slots: List[Optional[TycosResult]] = [None] * len(tasks)
    for index, result in pooled_map(
        _scan_span_task,
        tasks,
        workers=workers,
        series={"x": pair.x, "y": pair.y},
        extra_state={"engine": seg_engine},
        use_shared_memory=use_shared_memory,
    ):
        slots[index] = result
    out: List[TycosResult] = []
    for slot in slots:
        if slot is None:  # pragma: no cover - map() either fills all or raises
            raise RuntimeError("segmented scan lost a span result")
        out.append(slot)
    return out


def _stitch(
    engine: Tycos,
    pair: PairView,
    spans: Sequence[Span],
    per_segment: Sequence[TycosResult],
    started: float,
) -> TycosResult:
    """Merge per-span results into one deterministic global result.

    Windows are translated to global coordinates in span order; exact
    duplicates (the same window found by two spans sharing an overlap
    zone) are dropped first-span-wins.  Windows whose X interval touches
    an overlap zone -- the only ones that can duplicate or conflict
    across spans, since two spans share no other samples -- are rescored
    on the whole series by one shared scorer, so their reported scores
    and their conflict-resolution values are independent of which span
    found them; the survivors enter the result set in fixed
    ``(score, start, delay)`` priority through
    :meth:`~repro.core.results.ResultSet.insert_prioritized`.  Interior
    windows cannot conflict cross-span (their X interval lies in exactly
    one span, and within-span conflicts were already resolved), so they
    are inserted as-is.
    """
    stitch_started = time.perf_counter()
    stats = SearchStats(segments=len(spans))
    for seg in per_segment:
        s = seg.stats
        stats.windows_evaluated += s.windows_evaluated
        stats.cache_hits += s.cache_hits
        stats.restarts += s.restarts
        stats.lahc_iterations += s.lahc_iterations
        stats.accepted_moves += s.accepted_moves
        stats.noise_prunes += s.noise_prunes
        stats.mi_full_searches += s.mi_full_searches
        stats.mi_incremental_updates += s.mi_incremental_updates
        stats.workspace_builds += s.workspace_builds
        stats.workspace_hits += s.workspace_hits
        stats.full_windows_evaluated += s.full_windows_evaluated
        for phase, seconds in s.phase_seconds.items():
            stats.add_phase(phase, seconds)

    candidates: Dict[WindowKey, WindowResult] = {}
    for (lo, _hi), seg in zip(spans, per_segment):
        for r in seg.windows:
            w = r.window
            global_window = TimeDelayWindow(
                start=w.start + lo, end=w.end + lo, delay=w.delay
            )
            key = global_window.key()
            if key in candidates:
                stats.stitch_dedups += 1
                continue
            candidates[key] = WindowResult(window=global_window, mi=r.mi, nmi=r.nmi)

    zones = overlap_zones(list(spans))

    def touches_zone(w: TimeDelayWindow) -> bool:
        return any(w.start < z_hi and w.end >= z_lo for z_lo, z_hi in zones)

    accepted = ResultSet(policy=engine.overlap_policy)
    boundary: List[WindowResult] = []
    for r in candidates.values():
        if touches_zone(r.window):
            boundary.append(r)
        else:
            accepted.insert(r)
    if boundary:
        rescorer = BatchScorer(pair, engine.config)
        scored: List[Tuple[WindowResult, float]] = []
        for r in boundary:
            score = rescorer.score(r.window)
            value = score.ratio if engine.config.use_normalized else score.mi
            stats.stitch_rescores += 1
            scored.append(
                (WindowResult(window=r.window, mi=score.mi, nmi=score.nmi), value)
            )
        stats.windows_evaluated += rescorer.evaluations
        stats.full_windows_evaluated += rescorer.evaluations
        accepted.insert_prioritized(scored)

    stats.add_phase("stitch", time.perf_counter() - stitch_started)
    stats.runtime_seconds = time.perf_counter() - started
    return TycosResult(windows=accepted.results(), stats=stats)


def search_segmented(
    x: AnyArray,
    y: AnyArray,
    config: Optional[TycosConfig] = None,
    *,
    engine: Optional[Tycos] = None,
    n_segments: Optional[int] = None,
    n_jobs: int = 1,
    use_shared_memory: bool = True,
    force_parallel: bool = False,
) -> TycosResult:
    """Search one pair with its timeline sharded into parallel segments.

    The public entry point is ``Tycos.search(..., n_segments=, n_jobs=)``,
    which delegates here; call this directly to reach the transport knob
    or to drive a preconfigured engine.

    Args:
        x: first time series.
        y: second time series (same length).
        config: search parameters (ignored when ``engine`` is given).
        engine: optional preconfigured engine whose variant flags and
            overlap policy the segments inherit (default: TYCOS_LMN over
            ``config``).
        n_segments: number of overlapping timeline spans (default:
            ``config.n_segments``).  The series may be too short to
            support that many distinct spans, in which case fewer run --
            ``stats.segments`` records the actual count.
        n_jobs: worker processes for the spans (``-1``: all cores).  1
            runs the sequential reference stitcher in-process; any other
            count returns a bit-identical result.
        use_shared_memory: ship the jittered pair to the workers through
            one shared-memory block (the default) rather than pickling it
            into every worker.
        force_parallel: run the pool even on a 1-core host, where the
            default is to fall back to the sequential path (see
            :func:`repro.analysis.parallel.effective_workers`); the
            fallback is recorded in ``stats.serial_fallback``.

    Returns:
        A :class:`~repro.core.tycos.TycosResult` whose ``stats`` carry
        ``segments`` / ``stitch_dedups`` / ``stitch_rescores`` on top of
        the summed per-segment counters.

    Raises:
        ValueError: when neither ``config`` nor ``engine`` is given.
    """
    if engine is None:
        if config is None:
            raise ValueError("search_segmented needs a config or an engine")
        engine = Tycos(config)
    cfg = engine.config
    segments = cfg.n_segments if n_segments is None else n_segments
    if segments < 1:
        raise ValueError(f"n_segments must be >= 1, got {segments}")
    started = time.perf_counter()
    pair = PairView(x, y, jitter=cfg.jitter, seed=cfg.seed)
    spans = segment_spans(pair.n, segments, cfg.segment_overlap())
    seg_engine = _segment_engine(engine)
    workers, fell_back = effective_workers(
        n_jobs, len(spans), force_parallel=force_parallel, what="search_segmented"
    )
    if workers <= 1:
        per_segment = [
            _search_span(seg_engine, pair.x, pair.y, lo, hi) for lo, hi in spans
        ]
    else:
        per_segment = _run_segments_parallel(
            seg_engine, pair, spans, workers, use_shared_memory
        )
    result = _stitch(engine, pair, spans, per_segment, started)
    result.stats.serial_fallback = fell_back
    return result

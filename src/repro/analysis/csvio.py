"""CSV ingestion and the ``tycos-search`` command-line tool.

Real adoption of a correlation-search library starts from files on disk.
This module reads column-oriented CSV time series (header row naming the
columns, one row per time step) and drives either a single-pair search or
a full pairwise scan from the command line::

    tycos-search data.csv --x temperature --y consumption --sigma 0.3
    tycos-search plugs.csv --all-pairs --td-max 48 --s-max 240
    tycos-search long.csv --x a --y b --n-segments 4 --n-jobs 4
    tycos-search long.csv --x a --y b --coarse-factor 8 --profile
    tycos-search long.csv --x a --y b --plan segments=4,coarse=8
    tycos-search long.csv --x a --y b --plan auto --explain-plan

Only the standard library's ``csv`` module is used -- no dataframe
dependency.
"""

from __future__ import annotations

import argparse
import csv
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro._types import FloatArray
from repro.analysis.pairwise import scan_pairs
from repro.core.config import TycosConfig
from repro.core.tycos import SearchStats, Tycos

__all__ = ["read_csv_series", "main"]


def read_csv_series(
    path: str | Path,
    columns: Optional[Sequence[str]] = None,
    delimiter: str = ",",
) -> Dict[str, FloatArray]:
    """Read named time series from a header-row CSV file.

    Args:
        path: file to read.
        columns: subset of columns to load (default: every numeric column).
        delimiter: field separator.

    Returns:
        Mapping of column name -> float array.  Rows where a requested
        column is empty or non-numeric raise, because silently dropping
        samples would desynchronize the series.

    Raises:
        ValueError: on a missing header, an unknown requested column, or a
            non-numeric cell.
    """
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"{path}: empty file, expected a header row") from None
        header = [h.strip() for h in header]
        if columns is None:
            wanted = header
        else:
            missing = [c for c in columns if c not in header]
            if missing:
                raise ValueError(f"{path}: unknown columns {missing}; file has {header}")
            wanted = list(columns)
        idx = {name: header.index(name) for name in wanted}
        data: Dict[str, List[float]] = {name: [] for name in wanted}
        for row_no, row in enumerate(reader, start=2):
            for name, col in idx.items():
                try:
                    data[name].append(float(row[col]))
                except (IndexError, ValueError) as exc:
                    raise ValueError(
                        f"{path}:{row_no}: column {name!r} is not numeric: "
                        f"{row[col] if col < len(row) else '<missing>'!r}"
                    ) from exc
    return {name: np.asarray(values, dtype=np.float64) for name, values in data.items()}


def _build_config(args: argparse.Namespace) -> TycosConfig:
    return TycosConfig(
        sigma=args.sigma,
        epsilon_ratio=args.epsilon_ratio,
        s_min=args.s_min,
        s_max=args.s_max,
        td_max=args.td_max,
        jitter=args.jitter,
        significance_permutations=args.permutations,
        seed=args.seed,
        init_delay_step=args.delay_step,
        n_segments=args.n_segments,
        coarse_factor=args.coarse_factor,
        refine_margin=args.refine_margin,
        backend=args.backend,
        precision=args.precision,
    )


def _print_profile(stats: SearchStats) -> None:
    """Render the per-phase wall-time breakdown of one search.

    Rows follow the canonical :class:`repro.analysis.planner.Phase`
    order: stage walls first (coarse pre-pass, full-resolution
    refinement), then the restart-loop breakdown, then the segment
    stitch.  ``coarse``/``refine`` are stage walls that *contain*
    seeding/scoring/lahc time of their stage, so the rows are a profile,
    not a partition.
    """
    from repro.analysis.planner import ordered_phases

    phases = dict(stats.phase_seconds)
    if not phases:
        print("profile: no phase timings recorded")
        return
    total = stats.runtime_seconds or sum(phases.values())
    print(f"profile ({total:.2f}s wall):")
    for phase in ordered_phases(phases):
        seconds = phases[phase]
        share = 100.0 * seconds / total if total > 0 else 0.0
        print(f"  {phase:<8} {seconds:8.3f}s  {share:5.1f}%")
    if stats.coarse_windows_evaluated:
        print(
            f"  pruning: {stats.coarse_windows_evaluated} coarse evaluations kept "
            f"{stats.refined_cells} cells, pruned {stats.cells_pruned} tiles; "
            f"{stats.full_windows_evaluated} full-resolution evaluations"
        )


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``tycos-search``; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="tycos-search",
        description="Search CSV time series for multi-scale time delay correlations.",
    )
    parser.add_argument("csv", help="CSV file with a header row naming the series")
    parser.add_argument("--x", help="source column (with --y: single-pair mode)")
    parser.add_argument("--y", help="target column")
    parser.add_argument("--all-pairs", action="store_true", help="scan every column pair")
    parser.add_argument("--sigma", type=float, default=0.3)
    parser.add_argument("--epsilon-ratio", type=float, default=0.25)
    parser.add_argument("--s-min", type=int, default=20)
    parser.add_argument("--s-max", type=int, default=200)
    parser.add_argument("--td-max", type=int, default=48)
    parser.add_argument("--jitter", type=float, default=1e-6)
    parser.add_argument("--permutations", type=int, default=10)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--delay-step", type=int, default=None)
    parser.add_argument(
        "--prefilter", type=float, default=0.0,
        help="skip pairs whose quick relatedness probe scores below this",
    )
    parser.add_argument(
        "--n-jobs", type=int, default=1,
        help="worker processes: pairs for --all-pairs, timeline segments for "
             "--x/--y with --n-segments (-1: all cores; default: serial)",
    )
    parser.add_argument(
        "--n-segments", type=int, default=1,
        help="shard a single pair's timeline into this many overlapping "
             "segments searched independently and stitched (default: 1)",
    )
    parser.add_argument(
        "--coarse-factor", type=int, default=1,
        help="PAA aggregation factor of the coarse-to-fine pre-pass: first "
             "locate structure on a 1/N-resolution level, then refine only "
             "the promising regions at full resolution (default: 1, i.e. "
             "exhaustive; reported scores are always full-resolution)",
    )
    parser.add_argument(
        "--refine-margin", type=int, default=None,
        help="full-resolution samples added around each coarse hit before "
             "refinement (default: s_max + td_max, one maximal window "
             "footprint)",
    )
    parser.add_argument(
        "--backend", choices=["auto", "numpy", "numba"], default="numpy",
        help="kernel engine for the KSG hot loops: numpy keeps the legacy "
             "vectorized paths (default), numba requests the compiled "
             "canonical kernels (served by their bit-identical numpy "
             "reference when numba is unavailable), auto compiles when "
             "fully available",
    )
    parser.add_argument(
        "--precision", choices=["float64", "float32"], default="float64",
        help="kernel floating-point tier: float32 prunes neighbor "
             "candidates in float32 and re-ranks them in float64 "
             "(tolerance-gated against float64; see docs/GUIDE.md)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="print a per-phase wall-time breakdown of the search "
             "(single-pair mode only)",
    )
    parser.add_argument(
        "--plan", default=None, metavar="SPEC",
        help="execution plan: 'plain', 'segments=K', 'coarse=F', a "
             "composition ('segments=K,coarse=F' runs coarse-to-fine "
             "inside each segment; 'coarse=F,segments=K' shards the "
             "coarse pre-pass), or 'auto' to pick from the workload "
             "shape; overrides --n-segments/--coarse-factor",
    )
    parser.add_argument(
        "--explain-plan", action="store_true",
        help="print the chosen plan (stages, parameters, rationale) "
             "without running the search",
    )
    args = parser.parse_args(argv)

    if not args.all_pairs and not (args.x and args.y):
        parser.error("either --all-pairs or both --x and --y are required")
    if args.profile and args.all_pairs:
        parser.error("--profile needs single-pair mode (--x/--y)")

    config = _build_config(args)

    if args.explain_plan:
        from repro.analysis.pairwise import resolve_plan
        from repro.analysis.planner import explain_plan, plan_from_config

        if args.all_pairs:
            series = read_csv_series(args.csv)
            names = list(series)
            n_pairs = len(names) * (len(names) - 1) // 2
            series_len = series[names[0]].size if names else 0
        else:
            series = read_csv_series(args.csv, columns=[args.x, args.y])
            n_pairs = 1
            series_len = series[args.x].size
        chosen = resolve_plan(args.plan, config, series_len, n_pairs, args.n_jobs)
        if chosen is None:
            chosen = plan_from_config(config)
        print(explain_plan(chosen, config))
        return 0

    if args.all_pairs:
        series = read_csv_series(args.csv)
        report = scan_pairs(
            series,
            config,
            prefilter_threshold=args.prefilter,
            n_jobs=args.n_jobs,
            plan=args.plan,
        )
        print(report.to_text())
        return 0

    series = read_csv_series(args.csv, columns=[args.x, args.y])
    if args.plan is not None:
        from repro.analysis.pairwise import resolve_plan
        from repro.analysis.planner import execute_plan

        plan = resolve_plan(args.plan, config, series[args.x].size, 1, args.n_jobs)
        result = execute_plan(
            series[args.x], series[args.y], config, plan=plan, n_jobs=args.n_jobs
        )
    else:
        result = Tycos(config).search(
            series[args.x], series[args.y], n_jobs=args.n_jobs
        )
    segmented = f" over {result.stats.segments} segments" if result.stats.segments else ""
    coarse = (
        f", {result.stats.coarse_windows_evaluated} coarse"
        if result.stats.coarse_windows_evaluated
        else ""
    )
    print(f"{len(result.windows)} correlated windows "
          f"({result.stats.windows_evaluated} evaluated{coarse}{segmented}, "
          f"{result.stats.runtime_seconds:.2f}s)")
    for r in result.windows:
        w = r.window
        print(f"  [{w.start}, {w.end}] delay={w.delay:+d} nmi={r.nmi:.2f} mi={r.mi:.3f}")
    if result.stats.serial_fallback:
        print("(note: n_jobs served serially: 1-core host, pool dispatch "
              "would only add overhead)")
    if args.profile:
        _print_profile(result.stats)
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Pairwise correlation scanning across a collection of time series.

The paper's energy study "creates pairwise time series from 72 plugs, and
applies TYCOS ... on each time series pair" (Section 8.3 B).  This module
provides that outer loop as a first-class API: give it a named collection
of series, it runs TYCOS on every (ordered or unordered) pair, ranks the
pairs by their strongest extracted correlation, and reports per-pair
window counts and delay ranges -- the raw material of a Table-3-style
summary over an entire dataset.

A cheap pre-filter (normalized MI over coarse aligned windows) can skip
pairs that are obviously unrelated, which matters when the number of
pairs is quadratic in the number of sensors.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from itertools import combinations
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Tuple,
    Union,
)

from repro._types import FloatArray
from repro.core.config import TycosConfig
from repro.core.tycos import Tycos, TycosResult
from repro.experiments.reporting import format_table, title
from repro.mi.backends.dispatch import backend_metadata

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (planner imports
    # the parallel module, which imports this one, so the runtime imports
    # of planner names below are deferred into the functions that use them)
    from repro.analysis.planner import ExecutionContext, SearchPlan

__all__ = [
    "PairFinding",
    "PairFailure",
    "PairwiseReport",
    "scan_pairs",
    "resolve_plan",
    "prefilter_score",
    "timed",
]


def timed(fn: Callable[[], Any]) -> Tuple[Any, float]:
    """Run ``fn`` and return ``(result, wall seconds)``.

    The one wall-clock helper of the scanning layer: report modules
    (tycoslint TY114, e.g. :mod:`repro.analysis.cascade`) must not call
    clocks themselves, so they time their phases through this function
    and record only the *durations* -- which every serializer already
    excludes from byte-compared payloads -- in
    :attr:`PairwiseReport.phase_seconds`.
    """
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


@dataclass(frozen=True)
class PairFinding:
    """The outcome of one pair's search.

    Attributes:
        source: name of the first series (X side).
        target: name of the second series (Y side).
        windows: number of extracted windows.
        best_nmi: normalized MI of the strongest window (0 when none).
        delay_range: (min, max) delay over the windows, or None.
    """

    source: str
    target: str
    windows: int
    best_nmi: float
    delay_range: Optional[Tuple[int, int]]


@dataclass(frozen=True)
class PairFailure:
    """A pair whose search raised instead of completing.

    One poisoned pair (a NaN column, a degenerate sensor) must not kill a
    quadratic scan hours in, so per-pair errors are contained and reported
    here rather than propagated.

    Attributes:
        source: name of the first series (X side).
        target: name of the second series (Y side).
        error: ``ExceptionType: message`` of what went wrong.
    """

    source: str
    target: str
    error: str


@dataclass
class PairwiseReport:
    """Ranked findings of a pairwise scan.

    ``notes`` records execution advisories that don't affect the results
    themselves -- e.g. that a parallel request was served serially on a
    single-core host -- so a scan's performance is attributable from the
    report alone.  ``metadata`` records the execution environment of the
    scan (kernel backend, precision tier, numba version) so a saved report
    states *how* its numbers were produced; see
    :func:`repro.mi.backends.dispatch.backend_metadata` for the keys.

    The ``pairs_*`` counters are the pruning ledger of a cascade scan
    (:func:`repro.analysis.cascade.cascade_scan`): how many pairs the
    screens looked at, how many each stage rejected, and how many reached
    the full TYCOS search.  A plain :func:`scan_pairs` leaves them at 0.

    ``phase_seconds`` is the wall-clock side of that ledger: per-phase
    durations (``"screen"``, ``"search"``) a cascade records so
    screen-vs-search cost is attributable from the report alone.  Like
    ``notes`` it never affects results; the default :meth:`to_text`
    rendering omits it so byte-compared report payloads stay
    clock-free (pass ``include_timings=True``, or ``--profile`` on the
    CLI, to see it).
    """

    findings: List[PairFinding] = field(default_factory=list)
    skipped: List[Tuple[str, str]] = field(default_factory=list)
    failures: List[PairFailure] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    metadata: Dict[str, str] = field(default_factory=dict)
    pairs_screened: int = 0
    pairs_pruned_fft: int = 0
    pairs_pruned_nmi: int = 0
    pairs_searched: int = 0
    phase_seconds: Dict[str, float] = field(default_factory=dict)

    def correlated(self) -> List[PairFinding]:
        """Pairs with at least one extracted window, strongest first."""
        hits = [f for f in self.findings if f.windows > 0]
        return sorted(hits, key=lambda f: -f.best_nmi)

    def top(self, k: int) -> List[PairFinding]:
        """The ``k`` strongest correlated pairs (ties keep scan order)."""
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        return self.correlated()[:k]

    def finding(self, source: str, target: str) -> PairFinding:
        """The finding of one pair (order-sensitive)."""
        for f in self.findings:
            if (f.source, f.target) == (source, target):
                return f
        raise KeyError(f"pair ({source!r}, {target!r}) was not scanned")

    def to_text(self, include_timings: bool = False) -> str:
        """Render the correlated pairs as a summary table.

        ``include_timings`` appends the :attr:`phase_seconds` ledger;
        the default omits it so the rendering of two identical scans is
        byte-identical however long they took.
        """
        headers = ["pair", "windows", "best nmi", "delay range"]
        rows: List[List[object]] = []
        for f in self.correlated():
            delays = "-" if f.delay_range is None else f"[{f.delay_range[0]}, {f.delay_range[1]}]"
            rows.append([f"{f.source} -> {f.target}", f.windows, f"{f.best_nmi:.2f}", delays])
        body = format_table(headers, rows)
        skipped = f"\n({len(self.skipped)} pairs skipped by the pre-filter)" if self.skipped else ""
        failed = f"\n({len(self.failures)} pairs failed; see report.failures)" if self.failures else ""
        cascade = (
            f"\n(cascade: {self.pairs_screened} pairs screened, "
            f"{self.pairs_pruned_fft} pruned by the FFT screen, "
            f"{self.pairs_pruned_nmi} by the coarse-NMI screen, "
            f"{self.pairs_searched} searched)"
            if self.pairs_screened
            else ""
        )
        notes = "".join(f"\n(note: {note})" for note in self.notes)
        timings = ""
        if include_timings and self.phase_seconds:
            from repro.analysis.planner import ordered_phases

            timings = "".join(
                f"\n(phase {phase}: {self.phase_seconds[phase]:.3f}s)"
                for phase in ordered_phases(self.phase_seconds)
            )
        return (
            title("Pairwise correlation scan")
            + "\n" + body + skipped + failed + cascade + notes + timings
        )


def prefilter_score(
    x: FloatArray,
    y: FloatArray,
    probe: int = 128,
    stride: int = 3,
    td_max: int = 0,
) -> float:
    """A cheap relatedness score: best normalized MI over coarse probes.

    .. deprecated:: PR 8
        This is now a thin wrapper over
        :func:`repro.analysis.cascade.coarse_nmi_score`, the cascade's
        stage-2 screen -- the one coarse-NMI filtering mechanism in the
        repository.  Call that directly in new code; this alias stays for
        compatibility, returns identical values, and emits a
        ``DeprecationWarning`` on every call.

    Not a substitute for the search -- it only sees a few window positions
    -- but a pair whose every probe is flat noise is unlikely to reward a
    full TYCOS run.  When ``td_max`` is positive every delay in
    ``[-td_max, td_max]`` is probed at each position, because a lagged
    coupling carries *no* aligned information at all.

    Args:
        x: first series.
        y: second series.
        probe: probe window size.
        stride: number of probe positions (evenly spaced).
        td_max: largest |delay| to probe.

    Returns:
        The maximum normalized MI over all probes.
    """
    from repro.analysis.cascade import coarse_nmi_score

    warnings.warn(
        "prefilter_score is deprecated; call "
        "repro.analysis.cascade.coarse_nmi_score instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return coarse_nmi_score(x, y, probe=probe, stride=stride, td_max=td_max)


def _evaluate_pair(
    source: str,
    target: str,
    x: FloatArray,
    y: FloatArray,
    config: TycosConfig,
    engine: Tycos,
    prefilter_threshold: float,
    plan: Optional["SearchPlan"] = None,
    context: Optional["ExecutionContext"] = None,
) -> Tuple[str, Optional[PairFinding]]:
    """Score one pair: pre-filter, then search.

    Shared by the serial loop and the parallel workers so both paths apply
    the identical decision procedure.  Without a ``plan`` the pair runs
    ``engine.search`` (the legacy argument-surface dispatch); with one,
    the plan executes through
    :func:`repro.analysis.planner.execute_plan`, reusing the scan-wide
    ``context`` so pair-independent setup (the parsed plan, the derived
    engines) is paid once per scan rather than once per pair.

    Returns:
        ``("skipped", None)`` when the pre-filter rejects the pair, else
        ``("finding", PairFinding)``.
    """
    if prefilter_threshold > 0.0:
        from repro.analysis.cascade import coarse_nmi_score

        if coarse_nmi_score(x, y, td_max=config.td_max) < prefilter_threshold:
            return ("skipped", None)
    if plan is not None:
        from repro.analysis.planner import execute_plan

        result: TycosResult = execute_plan(
            x, y, engine=engine, plan=plan, context=context
        )
    else:
        result = engine.search(x, y)
    best = max((r.nmi for r in result.windows), default=0.0)
    return (
        "finding",
        PairFinding(
            source=source,
            target=target,
            windows=len(result.windows),
            best_nmi=best,
            delay_range=result.delay_range(),
        ),
    )


def resolve_plan(
    plan: Union["SearchPlan", str, None],
    config: TycosConfig,
    series_len: int,
    n_pairs: int,
    n_jobs: Optional[int],
) -> Optional["SearchPlan"]:
    """Resolve a ``plan=`` argument to a concrete plan (or ``None``).

    ``None`` passes through (the legacy ``engine.search`` dispatch); the
    string ``"auto"`` asks :func:`repro.analysis.planner.auto_plan` to
    pick from the workload shape; any other string is parsed as the CLI
    plan shorthand (:func:`repro.analysis.planner.parse_plan_spec`); a
    :class:`~repro.analysis.planner.SearchPlan` is validated and used
    as-is.
    """
    if plan is None:
        return None
    from repro.analysis.planner import SearchPlan, auto_plan, parse_plan_spec

    if isinstance(plan, SearchPlan):
        return plan.validate()
    if plan.strip().lower() == "auto":
        from repro.analysis.parallel import resolve_n_jobs

        cores = 1 if n_jobs is None or n_jobs == 1 else resolve_n_jobs(n_jobs)
        return auto_plan(series_len, n_pairs, cores, config)
    return parse_plan_spec(plan, config)


def scan_pairs(
    series: Dict[str, FloatArray],
    config: TycosConfig,
    pairs: Optional[Iterable[Tuple[str, str]]] = None,
    prefilter_threshold: float = 0.0,
    engine: Optional[Tycos] = None,
    n_jobs: Optional[int] = None,
    store_path: Optional[str] = None,
    plan: Union["SearchPlan", str, None] = None,
) -> PairwiseReport:
    """Run TYCOS over every pair of a series collection.

    Args:
        series: name -> series mapping; all series must share a length.
        config: search parameters applied to every pair.
        pairs: explicit (source, target) pairs; default: all unordered
            combinations of the collection's names.
        prefilter_threshold: skip pairs whose :func:`prefilter_score` falls
            below this (0 disables the pre-filter).
        engine: optional preconfigured engine (default: TYCOS_LMN).
        n_jobs: worker processes.  ``None`` or ``1`` scans serially in this
            process; ``-1`` uses every available core; ``N > 1`` fans the
            pairs over a process pool (see :mod:`repro.analysis.parallel`).
            The effective worker count is clamped to the number of pairs,
            so small scans never pay pool spin-up for idle workers; asking
            for more workers than cores is overhead-only (see
            :func:`repro.analysis.parallel.resolve_n_jobs`).  Results are
            merged in submission order, so the report is identical for
            every worker count.
        store_path: directory of the :class:`repro.analysis.store`
            store ``series`` was attached from, when it has one; parallel
            workers then memory-map the store instead of receiving a
            shared-memory copy.  Ignored by the serial path (the views
            are already zero-copy there).
        plan: how each pair is searched.  ``None`` (the default) runs the
            legacy ``engine.search`` dispatch and leaves the report
            byte-identical to pre-planner scans.  A
            :class:`~repro.analysis.planner.SearchPlan` runs every pair
            through :func:`repro.analysis.planner.execute_plan`; the
            string ``"auto"`` picks a plan from the workload shape
            (:func:`repro.analysis.planner.auto_plan`) and any other
            string is the CLI plan shorthand (e.g. ``"coarse=8"``).
            When a plan runs, its spec and fingerprint land in
            ``report.metadata`` (``plan`` / ``plan_fingerprint``).

    Returns:
        A :class:`PairwiseReport` with one finding per scanned pair.  A
        pair whose search raises is reported in ``report.failures`` instead
        of aborting the scan.
    """
    names = list(series)
    lengths = {series[name].size for name in names}
    if len(lengths) > 1:
        raise ValueError(f"all series must share a length, got {sorted(lengths)}")
    if engine is None:
        engine = Tycos(config)
    pair_list = list(combinations(names, 2)) if pairs is None else list(pairs)
    for source, target in pair_list:
        if source not in series or target not in series:
            raise KeyError(f"unknown series in pair ({source!r}, {target!r})")
    series_len = next(iter(lengths)) if lengths else 0
    resolved = resolve_plan(plan, config, series_len, len(pair_list), n_jobs)

    if n_jobs is not None and n_jobs != 1:
        from repro.analysis.parallel import scan_pairs_parallel

        return scan_pairs_parallel(
            series,
            config,
            pairs=pair_list,
            prefilter_threshold=prefilter_threshold,
            engine=engine,
            n_jobs=n_jobs,
            store_path=store_path,
            plan=resolved,
        )

    report = PairwiseReport(metadata=backend_metadata(config.backend, config.precision))
    context: Optional["ExecutionContext"] = None
    if resolved is not None:
        from repro.analysis.planner import ExecutionContext

        context = ExecutionContext()
        report.metadata["plan"] = resolved.spec()
        report.metadata["plan_fingerprint"] = resolved.fingerprint()
    for source, target in pair_list:
        try:
            tag, finding = _evaluate_pair(
                source,
                target,
                series[source],
                series[target],
                config,
                engine,
                prefilter_threshold,
                plan=resolved,
                context=context,
            )
        except Exception as exc:  # noqa: BLE001 - containment is the point
            report.failures.append(
                PairFailure(source=source, target=target, error=f"{type(exc).__name__}: {exc}")
            )
            continue
        if tag == "skipped" or finding is None:
            report.skipped.append((source, target))
        else:
            report.findings.append(finding)
    return report

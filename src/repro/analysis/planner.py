"""The execution planner: one search, composable strategies.

The paper's speedups (Sections 5-7) come from *stacking* techniques --
approximation, pruning, incremental rescoring -- but through PR 9 each
technique lived behind its own entry point with its own plumbing: plain
``Tycos.search``, the segmented stitcher, the coarse-to-fine pre-pass.
Their wins could not multiply, because no entry point could express
"coarse-to-fine *inside* each segment" or "multiscale refinement on the
cascade's survivors".  This module replaces that ad-hoc dispatch with an
explicit, serializable :class:`SearchPlan` -- a linearized tree of
stages -- and one executor that runs any well-formed composition.  The
legacy entry points (``Tycos.search``, ``search_segmented``,
``search_multiscale``) are now thin wrappers that build a plan and
execute it here, byte-identical to their pre-planner outputs.

**The stage grammar.**  A plan is a tuple of stages read left to right
as a balanced bracket sequence: *opening* stages (:class:`SegmentStage`,
:class:`CoarsenStage`) wrap everything to their right, a single
:class:`ScanStage` terminates the nest, and each opener is closed -- in
reverse order -- by its matching *closing* stage (:class:`StitchStage`
for a segment split, :class:`RescoreStage` for a coarsen):

========================================  =================================
plan (outermost first)                    meaning
========================================  =================================
``Scan``                                  plain whole-series restart loop
``Segment(k) Scan Stitch``                k overlapping spans, stitched
``Coarsen(f) Scan Rescore``               locate on a 1/f PAA level, then
                                          refine at full resolution
``Coarsen(f) Segment(k) Scan              multiscale whose *coarse* pass
Stitch Rescore``                          is segmented (the legacy
                                          ``coarse_factor + n_segments``)
``Segment(k) Coarsen(f) Scan              coarse-to-fine **inside** each
Rescore Stitch``                          segment (new composition)
========================================  =================================

Each opener may appear at most once, so the executor supports exactly
the compositions whose determinism story is understood; anything else is
rejected by :meth:`SearchPlan.validate` with a message naming the rule
it broke.  Execution preserves every invariant the single strategies
established: jitter is applied once by the outermost stage that sees the
raw pair, inner stages run jitter-zero engines over slices or levels of
the same samples, the stitch is first-span-wins with whole-series
rescoring, and coarse refinement replays the exhaustive restart sequence
over the surviving cells (:mod:`repro.analysis.multiscale` documents why
that is bit-exact).

**Serialization.**  Plans are plain frozen dataclasses: they pickle, and
:meth:`SearchPlan.to_json` / :meth:`SearchPlan.from_json` round-trip a
versioned JSON form -- the precondition for shipping plans to pool
workers today and to remote executors later.
:meth:`SearchPlan.fingerprint` hashes the canonical JSON so a report can
state *which* plan produced it (``PairwiseReport.metadata``).

**Auto-selection.**  :func:`auto_plan` picks a strategy from workload
shape -- series length, pair count, core count -- using the decision
table documented in GUIDE section 15.  The cascade
(:mod:`repro.analysis.cascade`) calls it on the prescreen's *survivors*,
which is how PR 5's evaluation pruning finally reaches the all-pairs
workload.

**Phases.**  :class:`Phase` is the one canonical registry of phase
names for both timing ledgers (``SearchStats.phase_seconds`` and
``PairwiseReport.phase_seconds``); renderers order their output through
:func:`ordered_phases` so two ledgers never disagree on spelling or
order again.

Plan construction is confined to this module by tycoslint rule TY117:
everything else builds plans through the builder functions
(:func:`plain_plan` / :func:`segmented_plan` / :func:`multiscale_plan` /
:func:`composed_plan` / :func:`auto_plan` / :func:`parse_plan_spec`).
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from enum import Enum
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro._types import AnyArray, FloatArray, WindowKey
from repro.analysis.parallel import effective_workers, pooled_map, worker_state
from repro.core.config import TycosConfig
from repro.core.pyramid import (
    RefinementCell,
    build_level,
    coarse_config,
    coarse_length,
    refinement_cell,
)
from repro.core.results import ResultSet, WindowResult
from repro.core.segmentation import Span, overlap_zones, segment_spans
from repro.core.thresholds import BatchScorer
from repro.core.tycos import SearchStats, Tycos, TycosResult
from repro.core.window import PairView, TimeDelayWindow

__all__ = [
    "Phase",
    "ordered_phases",
    "CoarsenStage",
    "SegmentStage",
    "ScanStage",
    "StitchStage",
    "RescoreStage",
    "Stage",
    "SearchPlan",
    "plain_plan",
    "segmented_plan",
    "multiscale_plan",
    "composed_plan",
    "plan_from_config",
    "parse_plan_spec",
    "auto_plan",
    "ExecutionContext",
    "execute_plan",
    "explain_plan",
]


class Phase(str, Enum):
    """Canonical phase names of both timing ledgers.

    Declaration order is the canonical display order: stage walls first
    (``coarse`` / ``refine`` contain the restart-loop time of their
    stage, so rows are a profile, not a partition), then the
    restart-loop breakdown, then the segment stitch, then the
    scan-level phases of a cascade report.  ``SearchStats.add_phase``
    writers in :mod:`repro.core.tycos` spell these values as literals
    (core must not import the analysis layer); the planner tests assert
    every recorded phase resolves to a member of this enum.
    """

    COARSE = "coarse"
    REFINE = "refine"
    SEEDING = "seeding"
    LAHC = "lahc"
    SCORING = "scoring"
    STITCH = "stitch"
    SCREEN = "screen"
    SEARCH = "search"


def ordered_phases(phase_seconds: Dict[str, float]) -> List[str]:
    """The ledger's phase names in canonical order.

    Known phases come first, in :class:`Phase` declaration order;
    unknown names (there should be none -- the planner tests enforce
    it) follow alphabetically so a stray phase is rendered rather than
    dropped.
    """
    canon = [p.value for p in Phase if p.value in phase_seconds]
    return canon + sorted(p for p in phase_seconds if p not in set(canon))


# --------------------------------------------------------------------- #
# Stages and the plan


@dataclass(frozen=True)
class CoarsenStage:
    """Opening stage: run the rest of the plan on a 1/``factor`` PAA level.

    Closed by a :class:`RescoreStage`, which maps the coarse hits to
    full-resolution refinement cells and replays the exhaustive restart
    loop over them (:mod:`repro.analysis.multiscale`).

    Attributes:
        factor: full-resolution samples aggregated per coarse cell
            (>= 2; a factor of 1 is spelled as no Coarsen stage at all).
        refine_margin: full-resolution samples added around each coarse
            hit before refinement; ``None`` defers to
            ``config.refinement_margin()`` at execution time, keeping
            the plan config-relative.
    """

    factor: int
    refine_margin: Optional[int] = None

    def __post_init__(self) -> None:
        if self.factor < 2:
            raise ValueError(
                f"CoarsenStage.factor must be >= 2, got {self.factor} "
                "(a plan without a Coarsen stage is the factor-1 search)"
            )
        if self.refine_margin is not None and self.refine_margin < 0:
            raise ValueError(
                f"CoarsenStage.refine_margin must be >= 0, got {self.refine_margin}"
            )


@dataclass(frozen=True)
class SegmentStage:
    """Opening stage: shard the current timeline into overlapping spans.

    Closed by a :class:`StitchStage`.  The rest of the plan runs
    independently per span; ``n_segments=1`` is legal and runs the
    segment machinery over a single span (the sequential reference the
    stitcher tests pin).

    Attributes:
        n_segments: number of overlapping spans (>= 1).  A series too
            short for that many distinct spans runs fewer;
            ``stats.segments`` records the actual count.
    """

    n_segments: int

    def __post_init__(self) -> None:
        if self.n_segments < 1:
            raise ValueError(
                f"SegmentStage.n_segments must be >= 1, got {self.n_segments}"
            )


@dataclass(frozen=True)
class ScanStage:
    """Terminal stage: the plain LAHC restart loop over what it is given --
    the whole pair, one span's slice, or a coarse level."""


@dataclass(frozen=True)
class StitchStage:
    """Closing stage of a :class:`SegmentStage`: translate per-span windows
    to global coordinates, drop exact overlap-zone duplicates
    (first span wins), rescore boundary windows on the whole series, and
    resolve conflicts in fixed ``(score, start, delay)`` priority."""


@dataclass(frozen=True)
class RescoreStage:
    """Closing stage of a :class:`CoarsenStage`: map coarse hits to merged
    full-resolution refinement cells and run the restricted full-resolution
    scan over them, so every reported score is a full-resolution score."""


Stage = Union[CoarsenStage, SegmentStage, ScanStage, StitchStage, RescoreStage]

#: JSON tag of each stage class (and the parse table of :meth:`from_json`).
_STAGE_TAGS: Dict[type, str] = {
    CoarsenStage: "coarsen",
    SegmentStage: "segment",
    ScanStage: "scan",
    StitchStage: "stitch",
    RescoreStage: "rescore",
}

#: The closing stage class each opening stage requires.
_CLOSER_OF: Dict[type, type] = {
    CoarsenStage: RescoreStage,
    SegmentStage: StitchStage,
}


# Internal execution tree: the validated, nested form of a plan.  These
# are module-level dataclasses (not locals) so a plan node can ride the
# pool transport to segment workers.


@dataclass(frozen=True)
class _ScanNode:
    pass


@dataclass(frozen=True)
class _SegmentNode:
    n_segments: int
    inner: "_Node"


@dataclass(frozen=True)
class _CoarsenNode:
    factor: int
    refine_margin: Optional[int]
    inner: "_Node"


_Node = Union[_ScanNode, _SegmentNode, _CoarsenNode]


@dataclass(frozen=True)
class SearchPlan:
    """An explicit, serializable search strategy.

    Attributes:
        stages: the linearized stage sequence (outermost opener first;
            see the grammar table in the module docstring).
        reason: why this plan was chosen -- free text set by
            :func:`auto_plan` and surfaced by ``--explain-plan``; never
            part of the plan's identity (:meth:`fingerprint` ignores
            it).
    """

    stages: Tuple[Stage, ...]
    reason: str = ""

    # -- structure ----------------------------------------------------- #

    def root(self) -> _Node:
        """Parse the stage sequence into the nested execution tree.

        Raises:
            ValueError: when the sequence is not a balanced single-scan
                composition with each opener used at most once.
        """
        stages = list(self.stages)
        openers: List[Stage] = []
        seen: set = set()
        i = 0
        while i < len(stages) and isinstance(stages[i], (CoarsenStage, SegmentStage)):
            kind = type(stages[i])
            if kind in seen:
                raise ValueError(
                    f"invalid plan {self.spec()!r}: {_STAGE_TAGS[kind]} may "
                    "appear at most once"
                )
            seen.add(kind)
            openers.append(stages[i])
            i += 1
        if i >= len(stages) or not isinstance(stages[i], ScanStage):
            raise ValueError(
                f"invalid plan {self.spec()!r}: expected exactly one scan "
                "stage after the opening stages"
            )
        i += 1
        for opener in reversed(openers):
            closer = _CLOSER_OF[type(opener)]
            if i >= len(stages) or not isinstance(stages[i], closer):
                raise ValueError(
                    f"invalid plan {self.spec()!r}: {_STAGE_TAGS[type(opener)]} "
                    f"must be closed by {_STAGE_TAGS[closer]} (closers in "
                    "reverse opener order)"
                )
            i += 1
        if i != len(stages):
            raise ValueError(
                f"invalid plan {self.spec()!r}: trailing stages after the "
                "closers"
            )
        node: _Node = _ScanNode()
        for opener in reversed(openers):
            if isinstance(opener, SegmentStage):
                node = _SegmentNode(n_segments=opener.n_segments, inner=node)
            else:
                assert isinstance(opener, CoarsenStage)
                node = _CoarsenNode(
                    factor=opener.factor,
                    refine_margin=opener.refine_margin,
                    inner=node,
                )
        return node

    def validate(self) -> "SearchPlan":
        """Check the stage grammar; returns ``self`` for chaining."""
        self.root()
        return self

    # -- identity and rendering ---------------------------------------- #

    def spec(self) -> str:
        """Compact strategy spelling, outermost opener first.

        ``plain``, ``segments=4``, ``coarse=8``, ``coarse=8,segments=4``
        (segmented coarse pass), ``segments=4,coarse=8`` (coarse-to-fine
        inside each segment).  The spec is the CLI/round-trip shorthand
        (:func:`parse_plan_spec`); an explicit ``refine_margin`` is part
        of the JSON form and the fingerprint, not of the spec.
        """
        tokens = []
        for stage in self.stages:
            if isinstance(stage, SegmentStage):
                tokens.append(f"segments={stage.n_segments}")
            elif isinstance(stage, CoarsenStage):
                tokens.append(f"coarse={stage.factor}")
        return ",".join(tokens) if tokens else "plain"

    def stage_names(self) -> List[str]:
        """The linearized stage tags (per-stage provenance labels)."""
        return [_STAGE_TAGS[type(stage)] for stage in self.stages]

    def to_json(self) -> str:
        """The versioned canonical JSON form (stable key order)."""
        return json.dumps(self._payload(), sort_keys=True, separators=(",", ":"))

    def _payload(self) -> Dict[str, Any]:
        stages: List[Dict[str, Any]] = []
        for stage in self.stages:
            entry: Dict[str, Any] = {"stage": _STAGE_TAGS[type(stage)]}
            if isinstance(stage, CoarsenStage):
                entry["factor"] = stage.factor
                entry["refine_margin"] = stage.refine_margin
            elif isinstance(stage, SegmentStage):
                entry["n_segments"] = stage.n_segments
            stages.append(entry)
        return {"version": 1, "reason": self.reason, "stages": stages}

    @classmethod
    def from_json(cls, payload: str) -> "SearchPlan":
        """Rebuild (and validate) a plan from :meth:`to_json` output."""
        try:
            data = json.loads(payload)
        except json.JSONDecodeError as exc:
            raise ValueError(f"not a JSON plan: {exc}") from None
        if not isinstance(data, dict) or data.get("version") != 1:
            raise ValueError(
                f"unsupported plan payload (want version 1): {payload!r}"
            )
        stages: List[Stage] = []
        for entry in data.get("stages", []):
            tag = entry.get("stage")
            if tag == "coarsen":
                stages.append(
                    CoarsenStage(
                        factor=int(entry["factor"]),
                        refine_margin=(
                            None
                            if entry.get("refine_margin") is None
                            else int(entry["refine_margin"])
                        ),
                    )
                )
            elif tag == "segment":
                stages.append(SegmentStage(n_segments=int(entry["n_segments"])))
            elif tag == "scan":
                stages.append(ScanStage())
            elif tag == "stitch":
                stages.append(StitchStage())
            elif tag == "rescore":
                stages.append(RescoreStage())
            else:
                raise ValueError(f"unknown plan stage tag {tag!r}")
        return cls(stages=tuple(stages), reason=str(data.get("reason", ""))).validate()

    def fingerprint(self) -> str:
        """12-hex-digit digest of the plan's identity (stages only).

        The ``reason`` is advisory and excluded, so the same strategy
        chosen by hand and by :func:`auto_plan` fingerprints alike.
        """
        payload = self._payload()
        payload.pop("reason")
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]


# --------------------------------------------------------------------- #
# Builders (the sanctioned plan constructors outside this module)


def plain_plan(reason: str = "") -> SearchPlan:
    """The classic whole-series restart loop."""
    return SearchPlan(stages=(ScanStage(),), reason=reason)


def segmented_plan(n_segments: int, reason: str = "") -> SearchPlan:
    """Shard the timeline into ``n_segments`` spans and stitch."""
    return SearchPlan(
        stages=(SegmentStage(n_segments=n_segments), ScanStage(), StitchStage()),
        reason=reason,
    ).validate()


def multiscale_plan(
    coarse_factor: int,
    refine_margin: Optional[int] = None,
    n_segments: int = 1,
    reason: str = "",
) -> SearchPlan:
    """Coarse-to-fine over the whole pair; ``n_segments > 1`` shards the
    *coarse pre-pass* (the legacy ``coarse_factor + n_segments``
    combination of ``Tycos.search``)."""
    coarsen = CoarsenStage(factor=coarse_factor, refine_margin=refine_margin)
    if n_segments > 1:
        stages: Tuple[Stage, ...] = (
            coarsen,
            SegmentStage(n_segments=n_segments),
            ScanStage(),
            StitchStage(),
            RescoreStage(),
        )
    else:
        stages = (coarsen, ScanStage(), RescoreStage())
    return SearchPlan(stages=stages, reason=reason).validate()


def composed_plan(
    n_segments: int,
    coarse_factor: int,
    refine_margin: Optional[int] = None,
    reason: str = "",
) -> SearchPlan:
    """Coarse-to-fine **inside** each segment: the timeline is sharded
    into spans and every span runs its own locate-then-refine search;
    the stitcher merges the per-span full-resolution results."""
    return SearchPlan(
        stages=(
            SegmentStage(n_segments=n_segments),
            CoarsenStage(factor=coarse_factor, refine_margin=refine_margin),
            ScanStage(),
            RescoreStage(),
            StitchStage(),
        ),
        reason=reason,
    ).validate()


def plan_from_config(
    config: TycosConfig,
    n_segments: Optional[int] = None,
    coarse_factor: Optional[int] = None,
    refine_margin: Optional[int] = None,
) -> SearchPlan:
    """The plan the legacy argument surface implies.

    Reproduces the pre-planner dispatch precedence of ``Tycos.search``
    exactly: a real ``coarse_factor`` wins (``n_segments`` then shards
    the coarse pre-pass), a real ``n_segments`` alone is the segmented
    search, and everything else is the plain scan.
    """
    segments = config.n_segments if n_segments is None else n_segments
    if segments < 1:
        raise ValueError(f"n_segments must be >= 1, got {segments}")
    factor = config.coarse_factor if coarse_factor is None else coarse_factor
    if factor < 1:
        raise ValueError(f"coarse_factor must be >= 1, got {factor}")
    if factor > 1:
        return multiscale_plan(factor, refine_margin=refine_margin, n_segments=segments)
    if segments > 1:
        return segmented_plan(segments)
    return plain_plan()


def parse_plan_spec(spec: str, config: Optional[TycosConfig] = None) -> SearchPlan:
    """Parse the CLI plan shorthand (the inverse of :meth:`SearchPlan.spec`).

    Comma-separated tokens, outermost stage first: ``plain``,
    ``segments=K``, ``coarse=F``, and their two compositions
    ``coarse=F,segments=K`` (segmented coarse pass) and
    ``segments=K,coarse=F`` (coarse-to-fine inside each segment).
    ``auto`` is *not* handled here -- it needs the workload shape, so
    the CLIs call :func:`auto_plan` for it.

    Args:
        spec: the shorthand string.
        config: unused today; accepted so config-relative shorthands can
            be added without changing call sites.

    Raises:
        ValueError: on an unknown token or a malformed composition.
    """
    text = spec.strip().lower()
    if text in ("", "plain"):
        return plain_plan()
    segments: Optional[int] = None
    factor: Optional[int] = None
    order: List[str] = []
    for token in text.split(","):
        token = token.strip()
        key, _, value = token.partition("=")
        try:
            number = int(value)
        except ValueError:
            raise ValueError(
                f"bad plan token {token!r} in {spec!r}: want segments=K or coarse=F"
            ) from None
        if key == "segments":
            if segments is not None:
                raise ValueError(f"duplicate segments= token in plan spec {spec!r}")
            segments = number
        elif key == "coarse":
            if factor is not None:
                raise ValueError(f"duplicate coarse= token in plan spec {spec!r}")
            factor = number
        else:
            raise ValueError(
                f"unknown plan token {token!r} in {spec!r}: want plain, "
                "segments=K, coarse=F, or a comma-separated composition"
            )
        order.append(key)
    if factor is not None and segments is not None:
        if order[0] == "segments":
            return composed_plan(segments, factor)
        return multiscale_plan(factor, n_segments=segments)
    if factor is not None:
        return multiscale_plan(factor)
    assert segments is not None
    return segmented_plan(segments)


# --------------------------------------------------------------------- #
# Auto-selection


#: Default PAA factor of auto-selected coarse stages when the config
#: does not request one; 8 is the tracked benchmark's factor, deep
#: enough to prune and shallow enough to keep coarse windows scorable.
_AUTO_COARSE_FACTOR = 8

#: Cap on auto-selected segment counts: past ~8 spans the overlap zones
#: (one maximal window footprint each) start covering a long pair twice.
_AUTO_MAX_SEGMENTS = 8


def _coarse_viable(series_len: int, factor: int, config: TycosConfig) -> bool:
    """Whether a 1/``factor`` level of this series can locate anything.

    Mirrors the executor's degenerate-level guard (a coarse level must
    fit two coarse minimal windows) and additionally requires a timeline
    long enough that pruning has something to prune: at least four
    maximal-footprint tiles, the unit ``stats.cells_pruned`` counts.
    """
    if series_len < 1:
        return False
    c_cfg = coarse_config(config, factor)
    if coarse_length(series_len, factor) < 2 * c_cfg.s_min:
        return False
    tile = max(1, config.s_max + config.td_max)
    return series_len >= 4 * tile


def auto_plan(
    series_len: int,
    n_pairs: int,
    n_cores: int,
    config: TycosConfig,
) -> SearchPlan:
    """Pick a strategy from the workload shape (GUIDE section 15 table).

    The decision in priority order:

    1. **Short series -> plain.**  When no viable coarse level exists
       (the 1/f level cannot fit two coarse minimal windows, or the
       timeline is under four maximal-footprint tiles), approximation
       has nothing to locate and segmentation nothing to amortize.
    2. **Spare cores -> composed.**  With more cores than pairs the
       pair-level pool cannot fill the machine, so the timeline itself
       is sharded -- segments fan over cores and every span still prunes
       through its own coarse pre-pass.
    3. **Otherwise -> coarse.**  On one core, or when the pair count
       already saturates the pool, intra-pair segmentation only adds
       stitch overhead; the coarse-to-fine pre-pass is the win that
       needs no extra cores.  This is the branch the cascade's
       survivors take on the tracked single-core host.

    Args:
        series_len: samples per series.
        n_pairs: pairs the plan will be applied to (a cascade passes its
            survivor count).
        n_cores: cores available to this scan.
        config: search parameters (supplies the coarse factor when it
            requests one, and the geometry of the viability check).

    Returns:
        A validated plan whose ``reason`` states which rule fired.
    """
    factor = config.coarse_factor if config.coarse_factor > 1 else _AUTO_COARSE_FACTOR
    cores = max(1, n_cores)
    pairs = max(1, n_pairs)
    if not _coarse_viable(series_len, factor, config):
        return plain_plan(
            reason=(
                f"series of {series_len} samples has no viable 1/{factor} "
                "coarse level to locate on; searching exhaustively"
            )
        )
    if cores > 1 and pairs < cores:
        k = min(cores, _AUTO_MAX_SEGMENTS)
        return composed_plan(
            k,
            factor,
            reason=(
                f"{pairs} pair(s) cannot fill {cores} cores; sharding the "
                f"timeline into {k} segments with a 1/{factor} coarse "
                "pre-pass inside each"
            ),
        )
    return multiscale_plan(
        factor,
        reason=(
            f"{pairs} pair(s) over {cores} core(s): pair-level dispatch "
            f"already saturates the pool, so each pair prunes through a "
            f"1/{factor} coarse pre-pass and refines sequentially"
        ),
    )


# --------------------------------------------------------------------- #
# Execution


class ExecutionContext:
    """Shared per-scan execution state.

    A collection scan executes the same plan against many pairs; the
    context memoizes everything that is pair-independent -- the parsed
    stage tree and the derived engines (segment, refinement, coarse) --
    so survivors after the first pay only the search itself.  Scorers
    and their distance workspaces bind the pair's samples and are
    rebuilt per pair by construction; what *is* shared across pairs
    (the process-wide digamma table, compiled kernels) already lives in
    process-wide caches.  Reusing a context never changes results: every
    memoized object is a pure function of the plan and the config.
    """

    def __init__(self) -> None:
        self._roots: Dict[SearchPlan, _Node] = {}
        self._engines: Dict[Tuple[Any, ...], Tycos] = {}

    def root_of(self, plan: SearchPlan) -> _Node:
        """The validated execution tree of ``plan`` (parsed once)."""
        node = self._roots.get(plan)
        if node is None:
            node = plan.root()
            self._roots[plan] = node
        return node

    def derived_engine(
        self, role: str, parent: Tycos, build: Callable[[], Tycos]
    ) -> Tycos:
        """A derived engine memoized by role and parent configuration."""
        key = (
            role,
            parent.config,
            parent.use_noise,
            parent.use_incremental,
            parent.overlap_policy,
            parent.batched_scoring,
        )
        engine = self._engines.get(key)
        if engine is None:
            engine = build()
            self._engines[key] = engine
        return engine


def _segment_engine(engine: Tycos) -> Tycos:
    """The engine each span runs: same variant, jitter off, unsegmented.

    Jitter is already applied to the whole pair before slicing (so spans
    share bit-identical samples), and a span search must never recurse
    into segmentation or a coarse-to-fine pre-pass of its own -- the
    span's plan node decides what runs inside.
    """
    return Tycos(
        engine.config.scaled(jitter=0.0, n_segments=1, coarse_factor=1),
        use_noise=engine.use_noise,
        use_incremental=engine.use_incremental,
        overlap_policy=engine.overlap_policy,
        batched_scoring=engine.batched_scoring,
    )


def _refine_engine(engine: Tycos) -> Tycos:
    """The full-resolution engine the restricted scan runs.

    Jitter is already applied to the whole pair, and the refinement must
    never recurse into segmentation or another coarse-to-fine pre-pass.
    Everything else -- variant flags, overlap policy, delay band, the
    significance gate -- is inherited unchanged, because the refinement
    has to *be* the exhaustive search on the regions it visits.
    """
    return Tycos(
        engine.config.scaled(
            jitter=0.0, n_segments=1, coarse_factor=1, refine_margin=None
        ),
        use_noise=engine.use_noise,
        use_incremental=engine.use_incremental,
        overlap_policy=engine.overlap_policy,
        batched_scoring=engine.batched_scoring,
    )


def _cell_scan_hook(
    cells: Sequence[RefinementCell], s_min: int
) -> Callable[[int], Optional[int]]:
    """The restart filter of the restricted scan.

    Maps each prospective scan position to the next allowed one: inside
    a cell the position passes through untouched; in a pruned gap the
    scan jumps forward in whole ``s_min`` strides -- the exact strides
    the exhaustive search's failed restarts would take -- until it lands
    in a cell again, so the restart phase (``scan_from mod s_min``) is
    preserved across every gap.  ``None`` past the last cell ends the
    scan.
    """
    ordered = sorted(cells, key=lambda c: (c.lo, c.hi))

    def hook(scan_from: int) -> Optional[int]:
        for cell in ordered:
            if scan_from >= cell.hi:
                continue
            if scan_from >= cell.lo:
                return scan_from
            strides = -(-(cell.lo - scan_from) // s_min)
            scan_from += strides * s_min
            if scan_from < cell.hi:
                return scan_from
            # The phase-aligned entry overshot this (tiny) cell; keep the
            # advanced position and try the next cell.
        return None

    return hook


def _merge_cells(cells: Sequence[RefinementCell]) -> List[RefinementCell]:
    """Coalesce cells with overlapping (or touching) regions.

    Merging unions both the region and the delay band, so a merged cell
    still contains everything its parts contained; it exists to stop two
    near-identical coarse hits from keeping the scan in the same stretch
    of timeline twice.
    """
    ordered = sorted(cells, key=lambda c: (c.lo, c.hi, c.delay_lo, c.delay_hi))
    merged: List[RefinementCell] = []
    for cell in ordered:
        if merged and cell.lo <= merged[-1].hi:
            merged[-1] = merged[-1].merge(cell)
        else:
            merged.append(cell)
    return merged


def _pruning_accounts(
    merged: Sequence[RefinementCell], n: int, config: TycosConfig
) -> Tuple[int, int]:
    """(refined, pruned) counts over maximal-footprint timeline tiles.

    The timeline is measured in tiles of ``s_max + td_max`` samples (one
    maximal window footprint).  A tile intersecting no refinement cell
    was pruned: the exhaustive search would have scanned it, the
    multiscale search never touches it at full resolution.
    """
    tile = max(1, config.s_max + config.td_max)
    total = max(1, -(-n // tile))
    covered = set()
    for cell in merged:
        first = cell.lo // tile
        last = min(total - 1, (max(cell.lo, cell.hi - 1)) // tile)
        covered.update(range(first, last + 1))
    return len(merged), total - len(covered)


#: One segment worker task: (submission index, span lo, span hi).
_SpanTask = Tuple[int, int, int]


def _span_task(task: _SpanTask) -> Tuple[int, TycosResult]:
    """Worker task: run one span's plan node, return its tagged result.

    The jittered pair, the span engine, and the span's plan node arrive
    through the :func:`repro.analysis.parallel.pooled_map` transport;
    this module owns no pool or shared-memory lifecycle of its own
    (tycoslint TY101/TY102).
    """
    index, lo, hi = task
    state = worker_state()
    series: Dict[str, FloatArray] = state["series"]
    result = _run_node(
        state["plan_node"],
        state["engine"],
        series["x"][lo:hi],
        series["y"][lo:hi],
        n_jobs=1,
        use_shared_memory=True,
        force_parallel=False,
        context=None,
    )
    return index, result


def _run_segments_parallel(
    inner: _Node,
    seg_engine: Tycos,
    pair: PairView,
    spans: Sequence[Span],
    workers: int,
    use_shared_memory: bool,
) -> List[TycosResult]:
    """Fan the spans over a process pool; results return in span order."""
    tasks: List[_SpanTask] = [(i, lo, hi) for i, (lo, hi) in enumerate(spans)]
    slots: List[Optional[TycosResult]] = [None] * len(tasks)
    for index, result in pooled_map(
        _span_task,
        tasks,
        workers=workers,
        series={"x": pair.x, "y": pair.y},
        extra_state={"engine": seg_engine, "plan_node": inner},
        use_shared_memory=use_shared_memory,
    ):
        slots[index] = result
    out: List[TycosResult] = []
    for slot in slots:
        if slot is None:  # pragma: no cover - map() either fills all or raises
            raise RuntimeError("segmented scan lost a span result")
        out.append(slot)
    return out


def _stitch(
    engine: Tycos,
    pair: PairView,
    spans: Sequence[Span],
    per_segment: Sequence[TycosResult],
    started: float,
) -> TycosResult:
    """Merge per-span results into one deterministic global result.

    Windows are translated to global coordinates in span order; exact
    duplicates (the same window found by two spans sharing an overlap
    zone) are dropped first-span-wins.  Windows whose X interval touches
    an overlap zone -- the only ones that can duplicate or conflict
    across spans, since two spans share no other samples -- are rescored
    on the whole series by one shared scorer, so their reported scores
    and their conflict-resolution values are independent of which span
    found them; the survivors enter the result set in fixed
    ``(score, start, delay)`` priority through
    :meth:`~repro.core.results.ResultSet.insert_prioritized`.  Interior
    windows cannot conflict cross-span (their X interval lies in exactly
    one span, and within-span conflicts were already resolved), so they
    are inserted as-is.
    """
    stitch_started = time.perf_counter()
    stats = SearchStats(segments=len(spans))
    for seg in per_segment:
        s = seg.stats
        stats.windows_evaluated += s.windows_evaluated
        stats.cache_hits += s.cache_hits
        stats.restarts += s.restarts
        stats.lahc_iterations += s.lahc_iterations
        stats.accepted_moves += s.accepted_moves
        stats.noise_prunes += s.noise_prunes
        stats.mi_full_searches += s.mi_full_searches
        stats.mi_incremental_updates += s.mi_incremental_updates
        stats.workspace_builds += s.workspace_builds
        stats.workspace_hits += s.workspace_hits
        stats.full_windows_evaluated += s.full_windows_evaluated
        stats.coarse_windows_evaluated += s.coarse_windows_evaluated
        stats.refined_cells += s.refined_cells
        stats.cells_pruned += s.cells_pruned
        for phase, seconds in s.phase_seconds.items():
            stats.add_phase(phase, seconds)

    candidates: Dict[WindowKey, WindowResult] = {}
    for (lo, _hi), seg in zip(spans, per_segment):
        for r in seg.windows:
            w = r.window
            global_window = TimeDelayWindow(
                start=w.start + lo, end=w.end + lo, delay=w.delay
            )
            key = global_window.key()
            if key in candidates:
                stats.stitch_dedups += 1
                continue
            candidates[key] = WindowResult(window=global_window, mi=r.mi, nmi=r.nmi)

    zones = overlap_zones(list(spans))

    def touches_zone(w: TimeDelayWindow) -> bool:
        return any(w.start < z_hi and w.end >= z_lo for z_lo, z_hi in zones)

    accepted = ResultSet(policy=engine.overlap_policy)
    boundary: List[WindowResult] = []
    for r in candidates.values():
        if touches_zone(r.window):
            boundary.append(r)
        else:
            accepted.insert(r)
    if boundary:
        rescorer = BatchScorer(pair, engine.config)
        scored: List[Tuple[WindowResult, float]] = []
        for r in boundary:
            score = rescorer.score(r.window)
            value = score.ratio if engine.config.use_normalized else score.mi
            stats.stitch_rescores += 1
            scored.append(
                (WindowResult(window=r.window, mi=score.mi, nmi=score.nmi), value)
            )
        stats.windows_evaluated += rescorer.evaluations
        stats.full_windows_evaluated += rescorer.evaluations
        accepted.insert_prioritized(scored)

    stats.add_phase(Phase.STITCH.value, time.perf_counter() - stitch_started)
    stats.runtime_seconds = time.perf_counter() - started
    return TycosResult(windows=accepted.results(), stats=stats)


def _run_segment_node(
    node: _SegmentNode,
    engine: Tycos,
    x: AnyArray,
    y: AnyArray,
    n_jobs: int,
    use_shared_memory: bool,
    force_parallel: bool,
    context: Optional[ExecutionContext],
) -> TycosResult:
    """Execute a segment split: per-span inner plans, then the stitch."""
    cfg = engine.config
    started = time.perf_counter()
    pair = PairView(x, y, jitter=cfg.jitter, seed=cfg.seed)
    spans = segment_spans(pair.n, node.n_segments, cfg.segment_overlap())
    if context is not None:
        seg_engine = context.derived_engine(
            "segment", engine, lambda: _segment_engine(engine)
        )
    else:
        seg_engine = _segment_engine(engine)
    workers, fell_back = effective_workers(
        n_jobs, len(spans), force_parallel=force_parallel, what="search_segmented"
    )
    if workers <= 1:
        per_segment = [
            _run_node(
                node.inner,
                seg_engine,
                pair.x[lo:hi],
                pair.y[lo:hi],
                n_jobs=1,
                use_shared_memory=use_shared_memory,
                force_parallel=False,
                context=context,
            )
            for lo, hi in spans
        ]
    else:
        per_segment = _run_segments_parallel(
            node.inner, seg_engine, pair, spans, workers, use_shared_memory
        )
    result = _stitch(engine, pair, spans, per_segment, started)
    result.stats.serial_fallback = fell_back
    return result


def _run_coarsen_node(
    node: _CoarsenNode,
    engine: Tycos,
    x: AnyArray,
    y: AnyArray,
    n_jobs: int,
    use_shared_memory: bool,
    force_parallel: bool,
    context: Optional[ExecutionContext],
) -> TycosResult:
    """Execute a coarse-to-fine stage pair: locate on the PAA level
    through the inner plan, then refine the surviving cells exactly."""
    cfg = engine.config
    factor = node.factor
    margin = cfg.refinement_margin() if node.refine_margin is None else node.refine_margin
    if margin < 0:
        raise ValueError(f"refine_margin must be >= 0, got {margin}")

    started = time.perf_counter()
    pair = PairView(x, y, jitter=cfg.jitter, seed=cfg.seed)
    n = pair.n
    c_cfg = coarse_config(cfg, factor)
    level = build_level(pair, factor)
    if context is not None:
        refine_engine = context.derived_engine(
            "refine", engine, lambda: _refine_engine(engine)
        )
    else:
        refine_engine = _refine_engine(engine)
    if level.n < 2 * c_cfg.s_min:
        # A coarse level that cannot even fit two minimal windows cannot
        # locate anything: nothing to prune, search exhaustively.
        result = refine_engine._search_whole(pair.x, pair.y)
        result.stats.runtime_seconds = time.perf_counter() - started
        return result

    def build_coarse() -> Tycos:
        return Tycos(
            c_cfg,
            use_noise=engine.use_noise,
            use_incremental=engine.use_incremental,
            overlap_policy=engine.overlap_policy,
            batched_scoring=engine.batched_scoring,
        )

    if context is not None:
        c_engine = context.derived_engine("coarse", engine, build_coarse)
    else:
        c_engine = build_coarse()
    coarse_started = time.perf_counter()
    coarse = _run_node(
        node.inner,
        c_engine,
        level.x,
        level.y,
        n_jobs=n_jobs,
        use_shared_memory=use_shared_memory,
        force_parallel=force_parallel,
        context=context,
    )
    coarse_seconds = time.perf_counter() - coarse_started

    cells = [
        refinement_cell(r.window, factor, n, cfg.td_max, margin)
        for r in coarse.windows
    ]
    merged = _merge_cells(cells)

    refine_started = time.perf_counter()
    refined = refine_engine._search_whole(
        pair.x, pair.y, scan_hook=_cell_scan_hook(merged, cfg.s_min)
    )
    refine_seconds = time.perf_counter() - refine_started

    # The refinement's stats already describe all full-resolution work
    # (its scorer saw every probe); layer the coarse ledger on top.
    stats = refined.stats
    stats.segments = coarse.stats.segments
    stats.serial_fallback = coarse.stats.serial_fallback
    stats.coarse_windows_evaluated = coarse.stats.windows_evaluated
    stats.windows_evaluated += coarse.stats.windows_evaluated
    stats.refined_cells, stats.cells_pruned = _pruning_accounts(merged, n, cfg)
    stats.add_phase(Phase.COARSE.value, coarse_seconds)
    stats.add_phase(Phase.REFINE.value, refine_seconds)
    stats.runtime_seconds = time.perf_counter() - started
    return TycosResult(windows=refined.windows, stats=stats)


def _run_node(
    node: _Node,
    engine: Tycos,
    x: AnyArray,
    y: AnyArray,
    n_jobs: int,
    use_shared_memory: bool,
    force_parallel: bool,
    context: Optional[ExecutionContext],
) -> TycosResult:
    """Execute one node of the plan tree on ``(x, y)`` with ``engine``.

    Each structural node applies jitter through its own
    :class:`~repro.core.window.PairView` (so the outermost node that
    sees the raw pair jitters once) and hands jitter-zero engines to its
    children -- the exact discipline the single-strategy modules
    established.
    """
    if isinstance(node, _ScanNode):
        return engine._search_whole(x, y)
    if isinstance(node, _SegmentNode):
        return _run_segment_node(
            node, engine, x, y, n_jobs, use_shared_memory, force_parallel, context
        )
    assert isinstance(node, _CoarsenNode)
    return _run_coarsen_node(
        node, engine, x, y, n_jobs, use_shared_memory, force_parallel, context
    )


def execute_plan(
    x: AnyArray,
    y: AnyArray,
    config: Optional[TycosConfig] = None,
    *,
    engine: Optional[Tycos] = None,
    plan: Optional[SearchPlan] = None,
    n_jobs: int = 1,
    use_shared_memory: bool = True,
    force_parallel: bool = False,
    context: Optional[ExecutionContext] = None,
) -> TycosResult:
    """Execute a search plan against one pair.

    The one doorway from a plan to results; the legacy entry points
    (``Tycos.search``, ``search_segmented``, ``search_multiscale``) all
    build a plan and call this.

    Args:
        x: first time series.
        y: second time series (same length).
        config: search parameters (ignored when ``engine`` is given).
        engine: optional preconfigured engine whose variant flags and
            overlap policy every stage inherits (default: TYCOS_LMN over
            ``config``).
        plan: the strategy to execute (default:
            :func:`plan_from_config` over the engine's config, i.e. the
            legacy argument surface).
        n_jobs: worker processes for a segment split (``-1``: all
            cores); coarse refinement is sequential by design.
        use_shared_memory: ship span slices to pool workers through one
            shared-memory block (the default) rather than pickling.
        force_parallel: run pools even on a 1-core host, where the
            default is the serial fallback recorded in
            ``stats.serial_fallback``.
        context: optional :class:`ExecutionContext` shared across the
            pairs of a collection scan.

    Returns:
        A :class:`~repro.core.tycos.TycosResult`; ``stats.plan`` records
        the executed plan's spec and ``stats.phase_seconds`` its
        per-stage walls under the canonical :class:`Phase` names.

    Raises:
        ValueError: when neither ``config`` nor ``engine`` is given, or
            when the plan's stage sequence is malformed.
    """
    if engine is None:
        if config is None:
            raise ValueError("execute_plan needs a config or an engine")
        engine = Tycos(config)
    if plan is None:
        plan = plan_from_config(engine.config)
    root = context.root_of(plan) if context is not None else plan.root()
    result = _run_node(
        root,
        engine,
        x,
        y,
        n_jobs=n_jobs,
        use_shared_memory=use_shared_memory,
        force_parallel=force_parallel,
        context=context,
    )
    result.stats.plan = plan.spec()
    return result


# --------------------------------------------------------------------- #
# Explanation


def explain_plan(plan: SearchPlan, config: TycosConfig) -> str:
    """Render a plan for ``--explain-plan``: stages, parameters, rationale.

    Resolves the config-relative parameters (segment overlap, coarse
    sigma, refinement margin) so the output states what would actually
    run, without running it.
    """
    plan.validate()
    lines = [f"plan: {plan.spec()} (fingerprint {plan.fingerprint()})"]
    depth = 0
    margin_of = config.refinement_margin()
    for index, stage in enumerate(plan.stages, start=1):
        if isinstance(stage, (StitchStage, RescoreStage)):
            depth -= 1
        pad = "  " * depth
        if isinstance(stage, SegmentStage):
            detail = (
                f"segment: shard the timeline into {stage.n_segments} spans "
                f"overlapping by {config.segment_overlap()} samples"
            )
            depth += 1
        elif isinstance(stage, CoarsenStage):
            margin = (
                config.refinement_margin()
                if stage.refine_margin is None
                else stage.refine_margin
            )
            c_cfg = coarse_config(config, stage.factor)
            detail = (
                f"coarsen: locate structure at 1/{stage.factor} resolution "
                f"(relaxed sigma {c_cfg.sigma:g})"
            )
            depth += 1
            # The margin belongs to the closing rescore but is a Coarsen
            # parameter; stash it for the closer's line.
            margin_of = margin
        elif isinstance(stage, ScanStage):
            detail = "scan: LAHC restart loop (seed/noise-walk/ascent per restart)"
        elif isinstance(stage, StitchStage):
            detail = (
                "stitch: dedupe overlap zones first-span-wins, rescore "
                "boundary windows on the whole series"
            )
        else:
            detail = (
                "rescore: refine surviving coarse cells at full resolution "
                f"(margin {margin_of} samples)"
            )
        lines.append(f"  {index}. {pad}{detail}")
    if plan.reason:
        lines.append(f"reason: {plan.reason}")
    return "\n".join(lines)

"""Coarse-to-fine multi-scale search: prune at low resolution, score at full.

After the kernel work of PRs 2-4 the dominant cost of a search is *how
many* full-resolution KSG estimates it makes, not how fast each one is.
This module attacks that count with a two-stage search:

1. **Coarse pre-pass.**  The jittered pair is PAA-downsampled by
   ``coarse_factor`` (:mod:`repro.core.pyramid`) and the unchanged LAHC
   restart loop runs on the coarse level under a *relaxed* threshold
   (``sigma * coarse_sigma_ratio`` -- block-mean aggregation dilutes MI,
   so the coarse pass must under-bid to avoid false dismissals; KSG
   estimates are rank-stable under this kind of sample reduction, which
   is what makes a coarse ranking trustworthy as a *locator*).
2. **Restricted-scan refinement.**  Each coarse hit maps -- exactly, via
   the pyramid containment lemma -- to a full-resolution
   ``(region, delay band)`` :class:`~repro.core.pyramid.RefinementCell`,
   expanded by ``refine_margin`` to absorb coarse LAHC positioning
   error; overlapping cells merge.  Then **the plain full-resolution
   search itself** runs over the whole pair -- same scorer, same seeds,
   same LAHC, same delay grid -- with one change: restart positions that
   fall outside every cell are skipped, jumping the scan to the next
   cell while preserving the restart phase (``scan_from mod s_min``).
   Everything outside the surviving cells is never probed at full
   resolution; ``stats.cells_pruned`` counts what was skipped and
   ``stats.full_windows_evaluated`` is the quantity the pruning ratio
   is measured on.

**Why the surviving windows are bit-identical to exhaustive search.**
The refinement is not a rescored approximation of the plain search --
it *is* the plain search minus some restarts.  Every restart is a pure
function of its scan position: the seed probe, the noise walk, the LAHC
history generator (seeded per-restart from ``(config.seed,
scan_from)``), and every candidate score are computed against the same
whole-pair scorer the exhaustive search uses.  For the plain-seeded
variants (``use_noise=False``) a restart in a quiet region always
advances the scan by exactly ``s_min``, so the scan phase is invariant
across a pruned gap and the phase-preserving jump lands the refinement
on *precisely* the scan positions the exhaustive search would reach --
the two searches then execute identical restart sequences wherever it
matters.  Exhaustive and multiscale results can therefore differ only
if the exhaustive search *accepts a window from a restart seeded inside
a pruned region*, i.e. only if the coarse level missed structure
entirely (the recall trade ``coarse_factor`` / ``coarse_sigma_ratio``
tune) -- never by windows shifting or scores drifting.  For the noise
variants (``use_noise=True``) the Section-6 initial-window walk crosses
pruned gaps with data-dependent strides, so the same guarantee is
empirical rather than structural; the walk's block grid keeps the same
phase invariant, which in practice keeps the restart sequences aligned.

Determinism and composition mirror :mod:`repro.analysis.segmented`:
jitter is applied once to the whole pair before the pyramid is built,
so the coarse level and the refinement see the same samples; the coarse
pre-pass composes with segmentation (``n_segments``) and the process
pool (``n_jobs``), while the refinement is sequential *by design* --
its restart phase chains through the timeline, which is exactly what
makes it reproduce the exhaustive scan.  With the default margin (one
maximal window footprint, ``s_max + td_max``) the tracked benchmark
recovers 100% of the exhaustive search's findings at identical scores
while evaluating a fraction of the windows (``BENCH_PR5.json``);
``coarse_factor=1`` bypasses both stages and reproduces plain
``Tycos.search`` byte-exactly.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional, Sequence, Tuple

from repro._types import AnyArray
from repro.analysis.segmented import search_segmented
from repro.core.config import TycosConfig
from repro.core.pyramid import RefinementCell, build_level, coarse_config, refinement_cell
from repro.core.tycos import Tycos, TycosResult
from repro.core.window import PairView

__all__ = ["search_multiscale"]


def _refine_engine(engine: Tycos) -> Tycos:
    """The full-resolution engine the restricted scan runs.

    Jitter is already applied to the whole pair, and the refinement must
    never recurse into segmentation or another coarse-to-fine pre-pass.
    Everything else -- variant flags, overlap policy, delay band, the
    significance gate -- is inherited unchanged, because the refinement
    has to *be* the exhaustive search on the regions it visits.
    """
    return Tycos(
        engine.config.scaled(
            jitter=0.0, n_segments=1, coarse_factor=1, refine_margin=None
        ),
        use_noise=engine.use_noise,
        use_incremental=engine.use_incremental,
        overlap_policy=engine.overlap_policy,
        batched_scoring=engine.batched_scoring,
    )


def _cell_scan_hook(
    cells: Sequence[RefinementCell], s_min: int
) -> Callable[[int], Optional[int]]:
    """The restart filter of the restricted scan.

    Maps each prospective scan position to the next allowed one: inside
    a cell the position passes through untouched; in a pruned gap the
    scan jumps forward in whole ``s_min`` strides -- the exact strides
    the exhaustive search's failed restarts would take -- until it lands
    in a cell again, so the restart phase (``scan_from mod s_min``) is
    preserved across every gap.  ``None`` past the last cell ends the
    scan.
    """
    ordered = sorted(cells, key=lambda c: (c.lo, c.hi))

    def hook(scan_from: int) -> Optional[int]:
        for cell in ordered:
            if scan_from >= cell.hi:
                continue
            if scan_from >= cell.lo:
                return scan_from
            strides = -(-(cell.lo - scan_from) // s_min)
            scan_from += strides * s_min
            if scan_from < cell.hi:
                return scan_from
            # The phase-aligned entry overshot this (tiny) cell; keep the
            # advanced position and try the next cell.
        return None

    return hook


def _merge_cells(cells: Sequence[RefinementCell]) -> List[RefinementCell]:
    """Coalesce cells with overlapping (or touching) regions.

    Merging unions both the region and the delay band, so a merged cell
    still contains everything its parts contained; it exists to stop two
    near-identical coarse hits from keeping the scan in the same stretch
    of timeline twice.
    """
    ordered = sorted(cells, key=lambda c: (c.lo, c.hi, c.delay_lo, c.delay_hi))
    merged: List[RefinementCell] = []
    for cell in ordered:
        if merged and cell.lo <= merged[-1].hi:
            merged[-1] = merged[-1].merge(cell)
        else:
            merged.append(cell)
    return merged


def _pruning_accounts(
    merged: Sequence[RefinementCell], n: int, config: TycosConfig
) -> Tuple[int, int]:
    """(refined, pruned) counts over maximal-footprint timeline tiles.

    The timeline is measured in tiles of ``s_max + td_max`` samples (one
    maximal window footprint).  A tile intersecting no refinement cell
    was pruned: the exhaustive search would have scanned it, the
    multiscale search never touches it at full resolution.
    """
    tile = max(1, config.s_max + config.td_max)
    total = max(1, -(-n // tile))
    covered = set()
    for cell in merged:
        first = cell.lo // tile
        last = min(total - 1, (max(cell.lo, cell.hi - 1)) // tile)
        covered.update(range(first, last + 1))
    return len(merged), total - len(covered)


def search_multiscale(
    x: AnyArray,
    y: AnyArray,
    config: Optional[TycosConfig] = None,
    *,
    engine: Optional[Tycos] = None,
    coarse_factor: Optional[int] = None,
    refine_margin: Optional[int] = None,
    n_segments: Optional[int] = None,
    n_jobs: int = 1,
    use_shared_memory: bool = True,
    force_parallel: bool = False,
) -> TycosResult:
    """Search one pair coarse-to-fine: locate on a PAA level, refine exactly.

    The public entry point is ``Tycos.search(..., coarse_factor=N)``,
    which delegates here; call this directly to reach the transport knob
    or to drive a preconfigured engine.

    Args:
        x: first time series.
        y: second time series (same length).
        config: search parameters (ignored when ``engine`` is given).
        engine: optional preconfigured engine whose variant flags and
            overlap policy both stages inherit (default: TYCOS_LMN over
            ``config``).
        coarse_factor: PAA samples per coarse cell (default:
            ``config.coarse_factor``).  1 bypasses both stages and
            reproduces the plain search byte-exactly.
        refine_margin: full-resolution samples added on each side of a
            coarse hit's footprint (default:
            ``config.refinement_margin()``, i.e. ``s_max + td_max``).
            The margin is the refinement's warm-up zone: the restricted
            scan replicates the exhaustive search's restarts throughout
            it, so an exhaustive restart would have to carry an
            acceptance across a full maximal-window footprint of pruned
            noise before the two searches could disagree.  Smaller
            margins prune harder and weaken that guarantee.
        n_segments: shard the *coarse* pre-pass into this many
            overlapping segments (default: ``config.n_segments``),
            composing the pre-pass with :mod:`repro.analysis.segmented`.
        n_jobs: worker processes for the coarse segments (``-1``: all
            cores).  The refinement stage is sequential by design: its
            restart phase chains through the timeline, which is what
            makes it reproduce the exhaustive scan's restart sequence.
        use_shared_memory: ship coarse segments to pool workers through
            one shared-memory block (the default) rather than pickling.
        force_parallel: run pools even on a 1-core host, where the
            default is the serial fallback recorded in
            ``stats.serial_fallback``.

    Returns:
        A :class:`~repro.core.tycos.TycosResult` whose windows carry
        full-resolution scores bit-identical to the exhaustive search's,
        and whose ``stats`` expose the pruning ledger:
        ``coarse_windows_evaluated`` / ``refined_cells`` /
        ``cells_pruned`` / ``full_windows_evaluated`` plus per-phase
        wall time in ``phase_seconds`` (``coarse`` and ``refine`` are
        stage walls; ``seeding`` / ``scoring`` / ``lahc`` break the
        refinement stage down).

    Raises:
        ValueError: when neither ``config`` nor ``engine`` is given.
    """
    if engine is None:
        if config is None:
            raise ValueError("search_multiscale needs a config or an engine")
        engine = Tycos(config)
    cfg = engine.config
    factor = cfg.coarse_factor if coarse_factor is None else coarse_factor
    if factor < 1:
        raise ValueError(f"coarse_factor must be >= 1, got {factor}")
    segments = cfg.n_segments if n_segments is None else n_segments
    if segments < 1:
        raise ValueError(f"n_segments must be >= 1, got {segments}")
    margin = cfg.refinement_margin() if refine_margin is None else refine_margin
    if margin < 0:
        raise ValueError(f"refine_margin must be >= 0, got {margin}")

    if factor == 1:
        flat = Tycos(
            cfg.scaled(coarse_factor=1, refine_margin=None),
            use_noise=engine.use_noise,
            use_incremental=engine.use_incremental,
            overlap_policy=engine.overlap_policy,
            batched_scoring=engine.batched_scoring,
        )
        return flat.search(x, y, n_segments=segments, n_jobs=n_jobs)

    started = time.perf_counter()
    pair = PairView(x, y, jitter=cfg.jitter, seed=cfg.seed)
    n = pair.n
    c_cfg = coarse_config(cfg, factor)
    level = build_level(pair, factor)
    refine_engine = _refine_engine(engine)
    if level.n < 2 * c_cfg.s_min:
        # A coarse level that cannot even fit two minimal windows cannot
        # locate anything: nothing to prune, search exhaustively.
        result = refine_engine.search(pair.x, pair.y)
        result.stats.runtime_seconds = time.perf_counter() - started
        return result

    c_engine = Tycos(
        c_cfg,
        use_noise=engine.use_noise,
        use_incremental=engine.use_incremental,
        overlap_policy=engine.overlap_policy,
        batched_scoring=engine.batched_scoring,
    )
    coarse_started = time.perf_counter()
    if segments > 1:
        coarse = search_segmented(
            level.x,
            level.y,
            engine=c_engine,
            n_segments=segments,
            n_jobs=n_jobs,
            use_shared_memory=use_shared_memory,
            force_parallel=force_parallel,
        )
    else:
        coarse = c_engine.search(level.x, level.y)
    coarse_seconds = time.perf_counter() - coarse_started

    cells = [
        refinement_cell(r.window, factor, n, cfg.td_max, margin)
        for r in coarse.windows
    ]
    merged = _merge_cells(cells)

    refine_started = time.perf_counter()
    refined = refine_engine._search_whole(
        pair.x, pair.y, scan_hook=_cell_scan_hook(merged, cfg.s_min)
    )
    refine_seconds = time.perf_counter() - refine_started

    # The refinement's stats already describe all full-resolution work
    # (its scorer saw every probe); layer the coarse ledger on top.
    stats = refined.stats
    stats.segments = coarse.stats.segments
    stats.serial_fallback = coarse.stats.serial_fallback
    stats.coarse_windows_evaluated = coarse.stats.windows_evaluated
    stats.windows_evaluated += coarse.stats.windows_evaluated
    stats.refined_cells, stats.cells_pruned = _pruning_accounts(merged, n, cfg)
    stats.add_phase("coarse", coarse_seconds)
    stats.add_phase("refine", refine_seconds)
    stats.runtime_seconds = time.perf_counter() - started
    return TycosResult(windows=refined.windows, stats=stats)

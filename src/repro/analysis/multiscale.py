"""Coarse-to-fine multi-scale search: prune at low resolution, score at full.

After the kernel work of PRs 2-4 the dominant cost of a search is *how
many* full-resolution KSG estimates it makes, not how fast each one is.
The multiscale strategy attacks that count with a two-stage search:

1. **Coarse pre-pass.**  The jittered pair is PAA-downsampled by
   ``coarse_factor`` (:mod:`repro.core.pyramid`) and the unchanged LAHC
   restart loop runs on the coarse level under a *relaxed* threshold
   (``sigma * coarse_sigma_ratio`` -- block-mean aggregation dilutes MI,
   so the coarse pass must under-bid to avoid false dismissals; KSG
   estimates are rank-stable under this kind of sample reduction, which
   is what makes a coarse ranking trustworthy as a *locator*).
2. **Restricted-scan refinement.**  Each coarse hit maps -- exactly, via
   the pyramid containment lemma -- to a full-resolution
   ``(region, delay band)`` :class:`~repro.core.pyramid.RefinementCell`,
   expanded by ``refine_margin`` to absorb coarse LAHC positioning
   error; overlapping cells merge.  Then **the plain full-resolution
   search itself** runs over the whole pair -- same scorer, same seeds,
   same LAHC, same delay grid -- with one change: restart positions that
   fall outside every cell are skipped, jumping the scan to the next
   cell while preserving the restart phase (``scan_from mod s_min``).
   Everything outside the surviving cells is never probed at full
   resolution; ``stats.cells_pruned`` counts what was skipped and
   ``stats.full_windows_evaluated`` is the quantity the pruning ratio
   is measured on.

**Why the surviving windows are bit-identical to exhaustive search.**
The refinement is not a rescored approximation of the plain search --
it *is* the plain search minus some restarts.  Every restart is a pure
function of its scan position: the seed probe, the noise walk, the LAHC
history generator (seeded per-restart from ``(config.seed,
scan_from)``), and every candidate score are computed against the same
whole-pair scorer the exhaustive search uses.  For the plain-seeded
variants (``use_noise=False``) a restart in a quiet region always
advances the scan by exactly ``s_min``, so the scan phase is invariant
across a pruned gap and the phase-preserving jump lands the refinement
on *precisely* the scan positions the exhaustive search would reach --
the two searches then execute identical restart sequences wherever it
matters.  Exhaustive and multiscale results can therefore differ only
when the coarse pass dismissed a region outright, and the relaxed
coarse threshold exists to make that rare.  With the default margin (one
maximal window footprint, ``s_max + td_max``) the tracked benchmark
recovers 100% of the exhaustive search's findings at identical scores
while evaluating a fraction of the windows (``BENCH_PR5.json``);
``coarse_factor=1`` bypasses both stages and reproduces plain
``Tycos.search`` byte-exactly.

Since the planner refactor the machinery itself -- the coarse engine,
the cell mapping, the phase-preserving scan hook -- lives in
:mod:`repro.analysis.planner` as the executor of a
:class:`~repro.analysis.planner.CoarsenStage`; this module is the
compatibility entry point that builds the classic
``Coarsen -> Scan -> Rescore`` plan (optionally with a segmented coarse
pre-pass) and executes it, byte-identical to the pre-planner
implementation (pinned by ``tests/analysis/test_planner.py``).  The
planner also composes the stage the other way around -- a coarse-to-fine
search *inside* each timeline segment
(:func:`~repro.analysis.planner.composed_plan`).
"""

from __future__ import annotations

from typing import Optional

from repro._types import AnyArray

# Re-exported for callers and tests that exercise the restricted-scan
# hook directly; the implementation moved to the planner.
from repro.analysis.planner import _cell_scan_hook  # noqa: F401
from repro.analysis.planner import execute_plan, multiscale_plan
from repro.core.config import TycosConfig
from repro.core.tycos import Tycos, TycosResult

__all__ = ["search_multiscale"]


def search_multiscale(
    x: AnyArray,
    y: AnyArray,
    config: Optional[TycosConfig] = None,
    *,
    engine: Optional[Tycos] = None,
    coarse_factor: Optional[int] = None,
    refine_margin: Optional[int] = None,
    n_segments: Optional[int] = None,
    n_jobs: int = 1,
    use_shared_memory: bool = True,
    force_parallel: bool = False,
) -> TycosResult:
    """Search one pair coarse-to-fine: locate on a PAA level, refine exactly.

    The public entry point is ``Tycos.search(..., coarse_factor=N)``,
    which builds the same plan; call this directly to reach the transport
    knobs or to drive a preconfigured engine.

    Args:
        x: first time series.
        y: second time series (same length).
        config: search parameters (ignored when ``engine`` is given).
        engine: optional preconfigured engine whose variant flags and
            overlap policy both stages inherit (default: TYCOS_LMN over
            ``config``).
        coarse_factor: PAA samples per coarse cell (default:
            ``config.coarse_factor``).  1 bypasses both stages and
            reproduces the plain search byte-exactly.
        refine_margin: full-resolution samples added on each side of a
            coarse hit's footprint (default:
            ``config.refinement_margin()``, i.e. ``s_max + td_max``).
            The margin is the refinement's warm-up zone: the restricted
            scan replicates the exhaustive search's restarts throughout
            it, so an exhaustive restart would have to carry an
            acceptance across a full maximal-window footprint of pruned
            noise before the two searches could disagree.  Smaller
            margins prune harder and weaken that guarantee.
        n_segments: shard the *coarse* pre-pass into this many
            overlapping segments (default: ``config.n_segments``),
            composing the pre-pass with the segment stage.
        n_jobs: worker processes for the coarse segments (``-1``: all
            cores).  The refinement stage is sequential by design: its
            restart phase chains through the timeline, which is what
            makes it reproduce the exhaustive scan's restart sequence.
        use_shared_memory: ship coarse segments to pool workers through
            one shared-memory block (the default) rather than pickling.
        force_parallel: run pools even on a 1-core host, where the
            default is the serial fallback recorded in
            ``stats.serial_fallback``.

    Returns:
        A :class:`~repro.core.tycos.TycosResult` whose windows carry
        full-resolution scores bit-identical to the exhaustive search's,
        and whose ``stats`` expose the pruning ledger:
        ``coarse_windows_evaluated`` / ``refined_cells`` /
        ``cells_pruned`` / ``full_windows_evaluated`` plus per-phase
        wall time in ``phase_seconds`` (``coarse`` and ``refine`` are
        stage walls; ``seeding`` / ``scoring`` / ``lahc`` break the
        refinement stage down).

    Raises:
        ValueError: when neither ``config`` nor ``engine`` is given.
    """
    if engine is None:
        if config is None:
            raise ValueError("search_multiscale needs a config or an engine")
        engine = Tycos(config)
    cfg = engine.config
    factor = cfg.coarse_factor if coarse_factor is None else coarse_factor
    if factor < 1:
        raise ValueError(f"coarse_factor must be >= 1, got {factor}")
    segments = cfg.n_segments if n_segments is None else n_segments
    if segments < 1:
        raise ValueError(f"n_segments must be >= 1, got {segments}")
    margin = cfg.refinement_margin() if refine_margin is None else refine_margin
    if margin < 0:
        raise ValueError(f"refine_margin must be >= 0, got {margin}")

    if factor == 1:
        flat = Tycos(
            cfg.scaled(coarse_factor=1, refine_margin=None),
            use_noise=engine.use_noise,
            use_incremental=engine.use_incremental,
            overlap_policy=engine.overlap_policy,
            batched_scoring=engine.batched_scoring,
        )
        return flat.search(x, y, n_segments=segments, n_jobs=n_jobs)

    return execute_plan(
        x,
        y,
        engine=engine,
        plan=multiscale_plan(factor, refine_margin=refine_margin, n_segments=segments),
        n_jobs=n_jobs,
        use_shared_memory=use_shared_memory,
        force_parallel=force_parallel,
    )

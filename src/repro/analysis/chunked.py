"""Chunked search over series too long for one in-memory pass.

The paper positions TYCOS as "memory efficient and suitable for big
datasets" thanks to its bottom-up design.  This driver makes that concrete
for out-of-core settings: the pair is processed in overlapping chunks, a
full TYCOS search runs per chunk, and windows found in the overlap zones
are deduplicated.  The overlap must cover ``s_max + td_max`` so no window
straddling a chunk boundary can be missed -- the same containment lemma
that underwrites the in-memory segmented engine (see
:mod:`repro.core.segmentation`); :func:`default_chunk_overlap` computes
the safe value for a config.  For a pair that *does* fit in memory,
prefer :mod:`repro.analysis.segmented`, which additionally runs the
pieces in parallel and stitches with whole-series rescoring.

The chunk source is an iterator of arrays, so callers can stream from
disk, a database cursor, or an mmap without materializing the series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Tuple

from repro._types import FloatArray
from repro.core.config import TycosConfig
from repro.core.results import ResultSet, WindowResult
from repro.core.tycos import Tycos
from repro.core.window import TimeDelayWindow

__all__ = ["ChunkedResult", "search_chunked", "chunk_pair", "default_chunk_overlap"]


def default_chunk_overlap(config: TycosConfig) -> int:
    """The chunk overlap guaranteeing seam completeness for ``config``.

    Any feasible window's footprint spans at most ``s_max + td_max``
    samples, so chunks overlapping by at least that much contain every
    window whole in some chunk.  Delegates to
    :meth:`~repro.core.config.TycosConfig.segment_overlap`, which adds
    ``segment_margin`` (default ``s_min``) of working context on top.
    """
    return config.segment_overlap()


@dataclass
class ChunkedResult:
    """Windows found by a chunked search, in global coordinates."""

    windows: List[WindowResult] = field(default_factory=list)
    chunks: int = 0

    def __len__(self) -> int:
        return len(self.windows)


def chunk_pair(
    x: FloatArray,
    y: FloatArray,
    chunk: int,
    overlap: int,
) -> Iterator[Tuple[int, FloatArray, FloatArray]]:
    """Split a pair into overlapping chunks ``(offset, x_chunk, y_chunk)``.

    Args:
        x: first series.
        y: second series.
        chunk: chunk length (must exceed ``overlap``).
        overlap: samples shared between consecutive chunks.
    """
    if chunk <= overlap:
        raise ValueError(f"chunk ({chunk}) must exceed overlap ({overlap})")
    n = x.size
    start = 0
    while start < n:
        end = min(n, start + chunk)
        yield start, x[start:end], y[start:end]
        if end == n:
            return
        start = end - overlap


def search_chunked(
    chunks: Iterable[Tuple[int, FloatArray, FloatArray]],
    config: TycosConfig,
    engine: Optional[Tycos] = None,
) -> ChunkedResult:
    """Run TYCOS per chunk and merge the windows globally.

    Args:
        chunks: ``(offset, x_chunk, y_chunk)`` triples; see
            :func:`chunk_pair`.  Chunks must overlap by at least
            ``config.s_max + config.td_max`` for completeness at the seams.
        config: search parameters (shared by all chunks).
        engine: optional preconfigured engine (default TYCOS_LMN).

    Returns:
        A :class:`ChunkedResult` with windows translated to global indices
        and overlap duplicates resolved (highest-scoring version kept).
    """
    if engine is None:
        engine = Tycos(config)
    merged = ResultSet()
    count = 0
    for offset, x_chunk, y_chunk in chunks:
        count += 1
        if x_chunk.size != y_chunk.size:
            raise ValueError("chunk arrays must have equal length")
        if x_chunk.size < config.s_min:
            continue
        result = engine.search(x_chunk, y_chunk)
        for r in result.windows:
            w = r.window
            global_window = TimeDelayWindow(
                start=w.start + offset, end=w.end + offset, delay=w.delay
            )
            merged.insert(WindowResult(window=global_window, mi=r.mi, nmi=r.nmi))
    return ChunkedResult(windows=merged.results(), chunks=count)

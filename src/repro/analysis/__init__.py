"""Analysis layer: dataset-level workflows built on the TYCOS search.

* :mod:`repro.analysis.pairwise` -- scan every pair of a sensor collection
  (the outer loop of the paper's 72-plug energy study).
* :mod:`repro.analysis.parallel` -- fan the pairwise scan over a process
  pool with shared-memory series transfer.
* :mod:`repro.analysis.segmented` -- shard one pair's timeline into
  overlapping segments searched in parallel and stitched deterministically.
* :mod:`repro.analysis.multiscale` -- coarse-to-fine search: locate
  structure on a PAA-downsampled level, refine only the promising cells
  at full resolution.
* :mod:`repro.analysis.chunked` -- chunked search over series too long for
  one in-memory pass.
* :mod:`repro.analysis.cascade` -- all-pairs prescreen cascade (FFT +
  coarse-NMI screens before any KSG estimate) and the ``tycos-scan``
  command-line tool.
* :mod:`repro.analysis.store` -- columnar on-disk series store,
  memory-mapped so pool workers attach collections without copies.
* :mod:`repro.analysis.csvio` -- CSV ingestion and the ``tycos-search``
  command-line tool.
"""

from repro.analysis.cascade import cascade_scan, coarse_nmi_score, fft_screen_score

from repro.analysis.chunked import (
    ChunkedResult,
    chunk_pair,
    default_chunk_overlap,
    search_chunked,
)
from repro.analysis.consolidate import consolidate_windows
from repro.analysis.csvio import read_csv_series
from repro.analysis.inspect import WindowInspection, ascii_scatter, inspect_window
from repro.analysis.pairwise import (
    PairFailure,
    PairFinding,
    PairwiseReport,
    prefilter_score,
    scan_pairs,
)
from repro.analysis.multiscale import search_multiscale
from repro.analysis.parallel import scan_pairs_parallel
from repro.analysis.segmented import search_segmented
from repro.analysis.store import SeriesStore
from repro.analysis.serialization import (
    load_result,
    result_from_dict,
    result_to_dict,
    save_result,
)
from repro.analysis.tuning import SigmaSweep, sigma_sweep, suggest_sigma

__all__ = [
    "scan_pairs",
    "scan_pairs_parallel",
    "PairwiseReport",
    "PairFinding",
    "PairFailure",
    "prefilter_score",
    "cascade_scan",
    "coarse_nmi_score",
    "fft_screen_score",
    "SeriesStore",
    "search_segmented",
    "search_multiscale",
    "search_chunked",
    "chunk_pair",
    "default_chunk_overlap",
    "ChunkedResult",
    "read_csv_series",
    "consolidate_windows",
    "inspect_window",
    "ascii_scatter",
    "WindowInspection",
    "save_result",
    "load_result",
    "result_to_dict",
    "result_from_dict",
    "sigma_sweep",
    "suggest_sigma",
    "SigmaSweep",
]

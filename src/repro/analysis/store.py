"""Columnar on-disk series store, memory-mapped for zero-copy attach.

A thousand-series collection is quadratic trouble twice over: O(N^2)
candidate pairs, and -- under the process pool -- N series shipped to
every worker.  The PR-2 shared-memory block already ships a collection
once per *scan*, but it still materializes a full copy of every series
in RAM and rebuilds that copy for each scan.  This module is the durable
variant: the collection is written **once** to disk as a single
row-major float64 matrix plus a JSON manifest, and every consumer --
serial scans, cascade screens, pool workers -- attaches read-only
``numpy.memmap`` views of the same pages.  The OS page cache does the
sharing, so a thousand-series collection is never copied per worker and
cold pages are only faulted in for the series a task actually touches.

Layout of a store directory::

    <store>/
      manifest.json   {"schema": "tycos-store/1", "series": [...names],
                       "length": n, "dtype": "float64", "order": "C"}
      series.bin      n_series x length float64, C-order, row i = series i

This module is the repository's **only** place that may open memory
maps or touch the store file names (tycoslint rule TY116, registry
``STORE_MODULES``): mmap lifetimes are easy to leak and the manifest is
a format contract, so both get a single audited owner.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

import numpy as np

from repro._types import FloatArray
from repro.analysis.screen_state import (
    ScreenGeometry,
    SeriesScreenState,
    build_screen_state,
    pack_screen_state,
    screen_state_width,
    unpack_screen_state,
)

__all__ = [
    "SeriesStore",
    "STORE_SCHEMA",
    "SCREEN_SCHEMA",
    "MANIFEST_FILENAME",
    "DATA_FILENAME",
    "SCREEN_MANIFEST_FILENAME",
    "SCREEN_DATA_FILENAME",
]

#: Manifest schema identifier; bump on any layout change.
STORE_SCHEMA = "tycos-store/1"

#: Screen-state cache schema identifier; bump on any layout change.
SCREEN_SCHEMA = "tycos-screen/1"

#: File names inside a store directory (format contract, see TY116).
MANIFEST_FILENAME = "manifest.json"
DATA_FILENAME = "series.bin"
SCREEN_MANIFEST_FILENAME = "screen.json"
SCREEN_DATA_FILENAME = "screen.bin"


class SeriesStore:
    """A named collection of equal-length float64 series on disk.

    Open stores are read-only: every view handed out is a non-writeable
    slice of one shared ``numpy.memmap``, so passing a store's series to
    the search engine costs no copies and no per-worker RAM.  Use
    :meth:`write` to build a store from an in-memory collection and
    :meth:`open` to attach an existing one.
    """

    def __init__(self, path: Path, names: List[str], matrix: FloatArray) -> None:
        """Internal -- use :meth:`open` or :meth:`write`."""
        self._path = path
        self._names = names
        self._matrix = matrix

    # ------------------------------------------------------------------ #
    # Construction

    @classmethod
    def write(cls, path: Union[str, Path], series: Dict[str, FloatArray]) -> "SeriesStore":
        """Pack an in-memory collection into a store directory.

        Args:
            path: directory to create (parents included); an existing
                store at this path is overwritten atomically enough for
                single-writer use (manifest last).
            series: name -> series mapping; all series must share a
                length and contain only finite-or-NaN float data (any
                numeric dtype, converted to float64).

        Returns:
            The freshly written store, opened read-only.

        Raises:
            ValueError: on an empty collection or mismatched lengths.
        """
        names = list(series)
        if not names:
            raise ValueError("cannot write an empty series store")
        lengths = sorted({int(np.asarray(series[name]).size) for name in names})
        if len(lengths) != 1:
            raise ValueError(f"all series must share a length, got {lengths}")
        length = lengths[0]
        if length == 0:
            raise ValueError("cannot store zero-length series")
        directory = Path(path)
        directory.mkdir(parents=True, exist_ok=True)
        matrix = np.empty((len(names), length), dtype=np.float64, order="C")
        for row, name in enumerate(names):
            matrix[row, :] = np.asarray(series[name], dtype=np.float64).ravel()
        matrix.tofile(directory / DATA_FILENAME)
        manifest = {
            "schema": STORE_SCHEMA,
            "series": names,
            "length": length,
            "dtype": "float64",
            "order": "C",
        }
        with (directory / MANIFEST_FILENAME).open("w") as handle:
            json.dump(manifest, handle, indent=2)
            handle.write("\n")
        return cls.open(directory)

    @classmethod
    def open(cls, path: Union[str, Path]) -> "SeriesStore":
        """Attach an existing store directory read-only.

        The data file is memory-mapped, not read: opening a store of any
        size is O(1) and the series pages are faulted in on first touch.

        Raises:
            FileNotFoundError: when the directory or its files are missing.
            ValueError: when the manifest is malformed, names an unknown
                schema/dtype/order, repeats a series name, or disagrees
                with the data file's size.
        """
        directory = Path(path)
        manifest_path = directory / MANIFEST_FILENAME
        data_path = directory / DATA_FILENAME
        if not manifest_path.is_file():
            raise FileNotFoundError(f"{directory}: no {MANIFEST_FILENAME}; not a series store")
        if not data_path.is_file():
            raise FileNotFoundError(f"{directory}: no {DATA_FILENAME}; not a series store")
        try:
            with manifest_path.open() as handle:
                manifest = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{manifest_path}: malformed manifest: {exc}") from exc
        cls._validate_manifest(manifest, manifest_path)
        names: List[str] = list(manifest["series"])
        length = int(manifest["length"])
        expected_bytes = len(names) * length * np.dtype(np.float64).itemsize
        actual_bytes = data_path.stat().st_size
        if actual_bytes != expected_bytes:
            raise ValueError(
                f"{data_path}: size {actual_bytes} does not match manifest "
                f"({len(names)} series x {length} samples = {expected_bytes} bytes)"
            )
        matrix = np.memmap(data_path, dtype=np.float64, mode="r", shape=(len(names), length))
        return cls(directory, names, matrix)

    @staticmethod
    def _validate_manifest(manifest: object, source: Path) -> None:
        if not isinstance(manifest, dict):
            raise ValueError(f"{source}: manifest must be a JSON object")
        schema = manifest.get("schema")
        if schema != STORE_SCHEMA:
            raise ValueError(f"{source}: unknown store schema {schema!r} (expected {STORE_SCHEMA!r})")
        if manifest.get("dtype") != "float64":
            raise ValueError(f"{source}: unsupported dtype {manifest.get('dtype')!r}")
        if manifest.get("order") != "C":
            raise ValueError(f"{source}: unsupported order {manifest.get('order')!r}")
        names = manifest.get("series")
        if not isinstance(names, list) or not names or not all(
            isinstance(name, str) for name in names
        ):
            raise ValueError(f"{source}: manifest 'series' must be a non-empty list of names")
        if len(set(names)) != len(names):
            raise ValueError(f"{source}: manifest repeats series names")
        length = manifest.get("length")
        if not isinstance(length, int) or length < 1:
            raise ValueError(f"{source}: manifest 'length' must be a positive integer")

    # ------------------------------------------------------------------ #
    # Access

    @property
    def path(self) -> Path:
        """The store directory."""
        return self._path

    @property
    def names(self) -> List[str]:
        """Series names in manifest (row) order."""
        return list(self._names)

    @property
    def length(self) -> int:
        """Number of samples per series."""
        return int(self._matrix.shape[1])

    def __len__(self) -> int:
        return len(self._names)

    def __contains__(self, name: object) -> bool:
        return name in self._names

    def __iter__(self) -> Iterator[str]:
        return iter(self._names)

    def __getitem__(self, name: str) -> FloatArray:
        """A read-only zero-copy view of one series."""
        try:
            row = self._names.index(name)
        except ValueError:
            raise KeyError(f"store has no series {name!r}") from None
        view: FloatArray = self._matrix[row]
        view.flags.writeable = False
        return view

    def series(self) -> Dict[str, FloatArray]:
        """Read-only zero-copy views of every series, in manifest order.

        The returned mapping is shaped exactly like the in-memory
        collections :func:`repro.analysis.pairwise.scan_pairs` takes, so
        a store drops into any scan entry point unchanged.
        """
        out: Dict[str, FloatArray] = {}
        for row, name in enumerate(self._names):
            view: FloatArray = self._matrix[row]
            view.flags.writeable = False
            out[name] = view
        return out

    # ------------------------------------------------------------------ #
    # Screen-state cache

    def fingerprint(self) -> str:
        """SHA-256 of the series data file, memoized per open store.

        The invalidation key of every derived cache in the directory:
        rewriting the store changes the fingerprint, so stale sidecars
        are recomputed instead of silently served.
        """
        if not hasattr(self, "_fingerprint"):
            digest = hashlib.sha256()
            with (self._path / DATA_FILENAME).open("rb") as handle:
                for chunk in iter(lambda: handle.read(1 << 20), b""):
                    digest.update(chunk)
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    def screen_states(
        self, geometry: ScreenGeometry, write: bool = True
    ) -> Dict[str, SeriesScreenState]:
        """Per-series screen states, served from the on-disk cache.

        The cascade's stage-1 state
        (:mod:`repro.analysis.screen_state`) is a pure function of the
        series matrix and the screen geometry, so it is cached next to
        the data as a second memory-mapped matrix (``screen.bin`` plus
        the ``screen.json`` sidecar manifest).  A valid cache -- same
        schema, same geometry, same series :meth:`fingerprint` -- is
        attached zero-copy, exactly like the series themselves; a
        missing or stale cache is rebuilt from the series and, when
        ``write`` is true and the directory is writable, persisted for
        the next consumer (pool workers attaching through
        ``store_path`` hit the cache the parent just wrote).  Packing
        is lossless, so cached states reproduce freshly built ones
        bit-for-bit -- and therefore the per-pair reference screen too.

        Args:
            geometry: the collection's screen geometry; its ``length``
                must match the store's.
            write: persist a freshly built cache when possible.

        Returns:
            name -> :class:`SeriesScreenState`, in manifest order.
        """
        if geometry.length != self.length:
            raise ValueError(
                f"geometry length {geometry.length} does not match store length {self.length}"
            )
        if geometry.abstains:
            return {
                name: build_screen_state(self._matrix[row], geometry)
                for row, name in enumerate(self._names)
            }
        cached = self._load_screen_cache(geometry)
        if cached is not None:
            return cached
        states = {
            name: build_screen_state(self._matrix[row], geometry)
            for row, name in enumerate(self._names)
        }
        if write:
            try:
                self._write_screen_cache(states, geometry)
            except OSError:
                return states  # read-only directory: serve the in-memory build
            reloaded = self._load_screen_cache(geometry)
            if reloaded is not None:
                return reloaded
        return states

    def _screen_manifest(self, geometry: ScreenGeometry) -> Dict[str, object]:
        return {
            "schema": SCREEN_SCHEMA,
            "fingerprint": self.fingerprint(),
            "geometry": list(geometry.key()),
            "state_width": screen_state_width(geometry),
        }

    def _load_screen_cache(
        self, geometry: ScreenGeometry
    ) -> Optional[Dict[str, SeriesScreenState]]:
        """Attach a valid screen cache read-only, or None on any mismatch."""
        manifest_path = self._path / SCREEN_MANIFEST_FILENAME
        data_path = self._path / SCREEN_DATA_FILENAME
        if not manifest_path.is_file() or not data_path.is_file():
            return None
        try:
            with manifest_path.open() as handle:
                manifest = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        width = screen_state_width(geometry)
        expected = {
            "schema": SCREEN_SCHEMA,
            "fingerprint": self.fingerprint(),
            "geometry": list(geometry.key()),
            "state_width": width,
        }
        if not isinstance(manifest, dict) or {
            key: manifest.get(key) for key in expected
        } != expected:
            return None
        expected_bytes = len(self._names) * width * np.dtype(np.float64).itemsize
        if data_path.stat().st_size != expected_bytes:
            return None
        matrix = np.memmap(
            data_path, dtype=np.float64, mode="r", shape=(len(self._names), width)
        )
        return {
            name: unpack_screen_state(matrix[row], geometry)
            for row, name in enumerate(self._names)
        }

    def _write_screen_cache(
        self, states: Dict[str, SeriesScreenState], geometry: ScreenGeometry
    ) -> None:
        """Persist the cache (data first, manifest last, single-writer)."""
        width = screen_state_width(geometry)
        matrix = np.zeros((len(self._names), width), dtype=np.float64)
        for row, name in enumerate(self._names):
            pack_screen_state(states[name], geometry, matrix[row])
        matrix.tofile(self._path / SCREEN_DATA_FILENAME)
        with (self._path / SCREEN_MANIFEST_FILENAME).open("w") as handle:
            json.dump(self._screen_manifest(geometry), handle, indent=2)
            handle.write("\n")

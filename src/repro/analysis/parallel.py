"""Process-pool pairwise scanning with shared-memory series transfer.

A full pairwise scan runs one independent TYCOS search per pair -- an
embarrassingly parallel workload, but one whose naive parallelisation
ships every series to every worker inside every task.  This module fans
:func:`repro.analysis.pairwise.scan_pairs` over a
:class:`~concurrent.futures.ProcessPoolExecutor` while paying the data
transfer cost exactly once:

* The whole series collection is packed into a single
  :class:`multiprocessing.shared_memory.SharedMemory` block; each worker
  attaches read-only ``float64`` views at process start, so tasks carry
  only pair *names*.  (A pickle fallback covers platforms or sandboxes
  where POSIX shared memory is unavailable.)
* Pairs are dispatched in chunks to amortise task overhead, and results
  are merged by original submission index, so the report -- findings,
  skipped pairs, and failures, each in order -- is byte-identical to the
  serial scan for every worker count.
* Collections that live in a :class:`repro.analysis.store.SeriesStore`
  skip the copy entirely: pass ``store_path`` and each worker attaches
  read-only memory-mapped views of the on-disk matrix, so the kernel
  page cache -- not per-worker RAM -- holds the one shared copy.
* A pair whose search raises is contained: the scan completes and the
  offending pair is reported in ``report.failures`` with its error,
  matching the serial path's containment.
"""

from __future__ import annotations

import logging
import math
import os
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import shared_memory
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro._types import FloatArray
from repro.analysis.pairwise import PairFailure, PairwiseReport, _evaluate_pair
from repro.analysis.store import SeriesStore
from repro.core.config import TycosConfig
from repro.core.tycos import Tycos
from repro.mi.backends.dispatch import backend_metadata

if TYPE_CHECKING:  # pragma: no cover - cycle guard: the planner imports
    # this module for its pool transport, so plan types are annotation-only
    from repro.analysis.planner import SearchPlan

__all__ = [
    "scan_pairs_parallel",
    "pooled_map",
    "worker_state",
    "resolve_n_jobs",
    "effective_workers",
    "pack_series",
    "attach_series",
    "attach_untracked",
]

logger = logging.getLogger(__name__)

# One (name, offset, length) entry per series inside the shared block,
# offsets in *elements* of float64.
_Layout = List[Tuple[str, int, int]]

# Worker-process globals, populated once by the pool initializer.  Each
# worker holds the attached series views plus whatever extra state the
# caller shipped (engine, thresholds); tasks then only need to carry the
# coordinates of the work they cover.  This is the one sanctioned
# process-wide registry for pool transport (tycoslint registry:
# CACHE_MODULES): initializers repopulate it from scratch in every
# worker, so nothing ever depends on a forked snapshot.
_WORKER_STATE: Dict[str, Any] = {}


def worker_state() -> Dict[str, Any]:
    """The calling worker's transport state, as its initializer left it.

    Task functions shipped to :func:`pooled_map` read their series under
    ``worker_state()["series"]`` and any ``extra_state`` entries under
    their own keys.  In the parent process (no initializer ran) the dict
    is empty.
    """
    return _WORKER_STATE


def resolve_n_jobs(n_jobs: int) -> int:
    """Map an ``n_jobs`` request to a concrete worker count.

    ``-1`` means every available core; any other value must be >= 1.

    Note that requesting more workers than physical cores is pure
    overhead: each extra process pays interpreter spin-up, engine
    unpickling and scheduler churn without adding CPU time (the
    ``BENCH_PR2.json`` n_jobs=4 row on a 1-core host ran *slower* than
    serial for exactly this reason).  Callers that know their task count
    should additionally clamp to it, as :func:`scan_pairs_parallel` does.
    """
    if n_jobs == -1:
        return max(1, os.cpu_count() or 1)
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be >= 1 or -1, got {n_jobs}")
    return n_jobs


def effective_workers(
    n_jobs: int, n_tasks: int, *, force_parallel: bool = False, what: str = "scan"
) -> Tuple[int, bool]:
    """Resolve a fan-out's worker count, with the single-core fallback.

    Clamps the :func:`resolve_n_jobs` request to the task count (idle
    workers still pay pool spin-up), then -- when the host has exactly
    one CPU and more than one worker survived the clamp -- falls back to
    one worker: on a single core a process pool adds dispatch and
    unpickling overhead without adding CPU time (the tracked
    ``BENCH_PR4.json`` measured n_jobs=2 at 0.93x serial on a 1-core
    host).  The fallback is logged and reported to the caller so results
    stay attributable; ``force_parallel`` disables it for tests and
    benchmarks that exercise the pool machinery itself.  Results are
    unaffected either way: every parallel path reproduces its serial
    reference bit-exactly.

    Returns:
        ``(workers, fell_back)`` -- the worker count to use and whether
        the single-core fallback fired.
    """
    workers = min(resolve_n_jobs(n_jobs), max(1, n_tasks))
    if workers > 1 and not force_parallel and (os.cpu_count() or 1) == 1:
        logger.warning(
            "%s requested %d workers on a 1-core host; running serially "
            "(pool dispatch would only add overhead; pass force_parallel=True "
            "to override)",
            what,
            workers,
        )
        return 1, True
    return workers, False


def pack_series(series: Dict[str, FloatArray]) -> Tuple[shared_memory.SharedMemory, _Layout]:
    """Copy every series into one shared-memory block.

    Returns the block (owned by the caller, who must close+unlink it) and
    the layout workers need to rebuild their views.
    """
    layout: _Layout = []
    offset = 0
    for name, values in series.items():
        layout.append((name, offset, int(values.size)))
        offset += int(values.size)
    shm = shared_memory.SharedMemory(create=True, size=max(1, offset * 8))
    for (name, start, length), values in zip(layout, series.values()):
        view = np.ndarray((length,), dtype=np.float64, buffer=shm.buf, offset=start * 8)
        view[:] = np.asarray(values, dtype=np.float64)
    return shm, layout


def attach_series(shm: shared_memory.SharedMemory, layout: _Layout) -> Dict[str, FloatArray]:
    """Rebuild read-only series views over an attached shared block."""
    series: Dict[str, FloatArray] = {}
    for name, start, length in layout:
        view = np.ndarray((length,), dtype=np.float64, buffer=shm.buf, offset=start * 8)
        view.flags.writeable = False
        series[name] = view
    return series


def attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing shared block without claiming ownership.

    ``SharedMemory(name=...)`` registers the segment with the attaching
    process's resource tracker even though the parent owns it
    (python/cpython#82300).  On 3.13+ ``track=False`` opts out; earlier,
    when the worker has its *own* tracker (spawn/forkserver) we unregister
    so worker exit doesn't double-unlink the parent's segment.  Under
    ``fork`` the tracker process is shared with the parent and the
    duplicate registration is an idempotent set-add, so unregistering
    there would instead erase the parent's entry.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)  # type: ignore[call-arg]
    except TypeError:
        pass
    shm = shared_memory.SharedMemory(name=name)
    try:
        import multiprocessing
        from multiprocessing import resource_tracker

        if multiprocessing.get_start_method(allow_none=True) != "fork":
            resource_tracker.unregister(f"/{name}", "shared_memory")
    except (ImportError, AttributeError, KeyError, ValueError):
        # No tracker on this platform / already unregistered: the worst
        # case is a spurious tracker warning at interpreter exit.
        return shm
    return shm


def _init_pooled_worker_shm(
    shm_name: str, layout: _Layout, extra: Dict[str, Any]
) -> None:
    """Pool initializer: attach the shared block and build series views."""
    _WORKER_STATE.clear()
    shm = attach_untracked(shm_name)
    _WORKER_STATE["shm"] = shm  # keep the mapping alive for the worker's life
    _WORKER_STATE["series"] = attach_series(shm, layout)
    _WORKER_STATE.update(extra)


def _init_pooled_worker_pickle(
    series: Dict[str, FloatArray], extra: Dict[str, Any]
) -> None:
    """Pool initializer fallback: series arrive pickled with the initargs."""
    _WORKER_STATE.clear()
    _WORKER_STATE["series"] = series
    _WORKER_STATE.update(extra)


def _init_pooled_worker_store(store_path: str, extra: Dict[str, Any]) -> None:
    """Pool initializer: attach memory-mapped views of an on-disk store.

    Only the *path* crosses the process boundary; the worker opens its
    own read-only memmap, so every worker shares the parent's page-cache
    copy instead of materializing the collection again.
    """
    _WORKER_STATE.clear()
    store = SeriesStore.open(store_path)
    _WORKER_STATE["store"] = store  # keep the mapping alive for the worker's life
    _WORKER_STATE["series"] = store.series()
    _WORKER_STATE.update(extra)


def pooled_map(
    fn: Any,
    tasks: Sequence[Any],
    *,
    workers: int,
    series: Dict[str, FloatArray],
    extra_state: Optional[Dict[str, Any]] = None,
    use_shared_memory: bool = True,
    store_path: Optional[Union[str, Path]] = None,
) -> List[Any]:
    """Map ``fn`` over ``tasks`` on a process pool, series shipped once.

    This is the repository's one pool/shared-memory lifecycle: it packs
    ``series`` into a single shared block (pickling them instead when
    shared memory is unavailable), ships ``extra_state`` to every worker
    through the pool initializer, and guarantees the block is closed and
    unlinked whatever happens.  Workers read everything back through
    :func:`worker_state`.

    Args:
        fn: module-level task function (must be picklable); it receives
            one task and reads its inputs from :func:`worker_state`.
        tasks: task payloads, dispatched in order.
        workers: worker process count (resolve via
            :func:`effective_workers` first; this function spawns exactly
            what it is told).
        series: name -> float64 series shipped once to every worker,
            available as ``worker_state()["series"]``.
        extra_state: additional picklable entries merged into the worker
            state (e.g. the engine to scan with).
        use_shared_memory: transport series through shared memory (the
            default) rather than pickling them with the initargs.
        store_path: when the collection lives in a
            :class:`repro.analysis.store.SeriesStore`, its directory.
            Only the path is shipped: each worker memory-maps the store
            read-only, which supersedes both other transports (no copy
            is made anywhere).

    Returns:
        ``[fn(task) for task in tasks]`` -- results in task order,
        regardless of which worker computed what.
    """
    extra = dict(extra_state or {})
    shm: Optional[shared_memory.SharedMemory] = None
    if store_path is None and use_shared_memory:
        try:
            shm, layout = pack_series(series)
        except (OSError, ValueError):
            shm = None  # e.g. /dev/shm unavailable in a sandbox
    try:
        initargs: Tuple[Any, ...]
        if store_path is not None:
            initializer = _init_pooled_worker_store
            initargs = (str(store_path), extra)
        elif shm is not None:
            initializer = _init_pooled_worker_shm  # type: ignore[assignment]
            initargs = (shm.name, layout, extra)
        else:
            initializer = _init_pooled_worker_pickle  # type: ignore[assignment]
            initargs = (series, extra)
        with ProcessPoolExecutor(
            max_workers=workers, initializer=initializer, initargs=initargs
        ) as pool:
            return list(pool.map(fn, tasks))
    finally:
        if shm is not None:
            shm.close()
            shm.unlink()


# Task result payload: (submission index, tag, payload) where the tag is
# "finding" (payload: PairFinding), "skipped" (payload: the pair), or
# "failed" (payload: PairFailure).
_ChunkResult = List[Tuple[int, str, Any]]


def _scan_chunk(chunk: Sequence[Tuple[int, str, str]]) -> _ChunkResult:
    """Worker task: evaluate a chunk of (index, source, target) pairs."""
    state = worker_state()
    series: Dict[str, FloatArray] = state["series"]
    engine: Tycos = state["engine"]
    threshold: float = state["prefilter_threshold"]
    plan = state.get("plan")
    context = state.get("plan_context")
    if plan is not None and context is None:
        # One ExecutionContext per worker process, built on first use and
        # kept in the worker-state registry so every chunk this worker
        # scans reuses the parsed plan and its derived engines.
        from repro.analysis.planner import ExecutionContext

        context = ExecutionContext()
        state["plan_context"] = context
    results: _ChunkResult = []
    for index, source, target in chunk:
        try:
            tag, finding = _evaluate_pair(
                source,
                target,
                series[source],
                series[target],
                engine.config,
                engine,
                threshold,
                plan=plan,
                context=context,
            )
        except Exception as exc:  # noqa: BLE001 - containment is the point
            failure = PairFailure(
                source=source, target=target, error=f"{type(exc).__name__}: {exc}"
            )
            results.append((index, "failed", failure))
            continue
        if tag == "skipped" or finding is None:
            results.append((index, "skipped", (source, target)))
        else:
            results.append((index, "finding", finding))
    return results


def scan_pairs_parallel(
    series: Dict[str, FloatArray],
    config: TycosConfig,
    pairs: Optional[Iterable[Tuple[str, str]]] = None,
    prefilter_threshold: float = 0.0,
    engine: Optional[Tycos] = None,
    n_jobs: int = -1,
    chunk_size: Optional[int] = None,
    use_shared_memory: bool = True,
    force_parallel: bool = False,
    store_path: Optional[Union[str, Path]] = None,
    plan: Optional["SearchPlan"] = None,
) -> PairwiseReport:
    """Fan a pairwise scan over a process pool.

    The public entry point is ``scan_pairs(..., n_jobs=N)``, which
    delegates here; call this directly only to reach the transport knobs.

    Args:
        series: name -> series mapping; all series must share a length.
        config: search parameters applied to every pair.
        pairs: explicit (source, target) pairs; default: all unordered
            combinations of the collection's names.
        prefilter_threshold: skip pairs whose prefilter score falls below
            this (0 disables the pre-filter).
        engine: optional preconfigured engine (default: TYCOS_LMN).  It is
            shipped to the workers once, at pool start.
        n_jobs: worker processes (``-1``: every available core).
        chunk_size: pairs per task; default splits the work into about
            four chunks per worker so stragglers rebalance.
        use_shared_memory: pass series through one shared-memory block
            (the default) rather than pickling them to every worker.
        force_parallel: run the pool even on a 1-core host, where the
            default is to fall back to the serial scan (see
            :func:`effective_workers`).
        store_path: directory of the :class:`repro.analysis.store`
            store the collection lives in, when it has one; workers then
            attach read-only memory maps instead of receiving a copy
            (``series`` should be the same store's views).
        plan: optional :class:`~repro.analysis.planner.SearchPlan` every
            pair executes instead of the legacy ``engine.search``
            dispatch.  The plan ships to the workers once, at pool
            start; each worker builds one
            :class:`~repro.analysis.planner.ExecutionContext` and reuses
            it across its chunks.  Results are bit-identical to the
            serial planned scan.

    Returns:
        A :class:`PairwiseReport` identical to the serial scan's: findings,
        skipped pairs, and failures each in submission order.  When the
        single-core fallback fired, ``report.notes`` records it.
    """
    names = list(series)
    lengths = {series[name].size for name in names}
    if len(lengths) > 1:
        raise ValueError(f"all series must share a length, got {sorted(lengths)}")
    if engine is None:
        engine = Tycos(config)
    if pairs is None:
        from itertools import combinations

        pair_list = list(combinations(names, 2))
    else:
        pair_list = list(pairs)
    for source, target in pair_list:
        if source not in series or target not in series:
            raise KeyError(f"unknown series in pair ({source!r}, {target!r})")

    # Never spawn more workers than there are pairs: idle workers still
    # pay pool spin-up and engine unpickling, which dominates small scans.
    workers, fell_back = effective_workers(
        n_jobs, len(pair_list), force_parallel=force_parallel, what="scan_pairs"
    )
    if workers == 1 or not pair_list:
        from repro.analysis.pairwise import scan_pairs

        report = scan_pairs(
            series,
            config,
            pairs=pair_list,
            prefilter_threshold=prefilter_threshold,
            engine=engine,
            plan=plan,
        )
        if fell_back:
            report.notes.append(
                f"n_jobs={n_jobs} served serially: 1-core host, pool dispatch "
                "would only add overhead"
            )
        return report

    tasks = [(i, s, t) for i, (s, t) in enumerate(pair_list)]
    if chunk_size is None:
        chunk_size = max(1, math.ceil(len(tasks) / (workers * 4)))
    chunks = [tasks[i : i + chunk_size] for i in range(0, len(tasks), chunk_size)]

    slots: List[Optional[Tuple[str, Any]]] = [None] * len(tasks)
    extra_state: Dict[str, Any] = {
        "engine": engine,
        "prefilter_threshold": prefilter_threshold,
    }
    if plan is not None:
        extra_state["plan"] = plan
    for chunk_result in pooled_map(
        _scan_chunk,
        chunks,
        workers=workers,
        series=series,
        extra_state=extra_state,
        use_shared_memory=use_shared_memory,
        store_path=store_path,
    ):
        for index, tag, payload in chunk_result:
            slots[index] = (tag, payload)

    report = PairwiseReport(metadata=backend_metadata(config.backend, config.precision))
    if plan is not None:
        report.metadata["plan"] = plan.spec()
        report.metadata["plan_fingerprint"] = plan.fingerprint()
    for slot in slots:
        if slot is None:  # pragma: no cover - map() either fills all or raises
            raise RuntimeError("parallel scan lost a pair result")
        tag, payload = slot
        if tag == "finding":
            report.findings.append(payload)
        elif tag == "skipped":
            report.skipped.append(payload)
        else:
            report.failures.append(payload)
    return report

"""Threshold tuning: pick sigma from the data instead of guessing.

Section 8.5 B shows how the output shrinks as sigma rises; in practice a
user facing a new dataset wants that curve computed *for* them.  Two
helpers:

* :func:`sigma_sweep` -- run the search across a sigma grid and collect
  the window counts and score distribution (a programmatic Fig 13a).
* :func:`suggest_sigma` -- pick the knee of the count curve: the largest
  sigma below which the output stops changing rapidly, i.e. where the
  windows that remain are the stable, strong ones.

Both operate on a subsample of the pair by default, because tuning on the
full series would cost as much as the search it is meant to configure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro._types import AnyArray
from repro.core.config import TycosConfig
from repro.core.tycos import Tycos
from repro.experiments.reporting import format_table, title

__all__ = ["SigmaSweepPoint", "SigmaSweep", "sigma_sweep", "suggest_sigma"]


@dataclass(frozen=True)
class SigmaSweepPoint:
    """One point of the sigma curve."""

    sigma: float
    windows: int
    mean_nmi: float
    runtime_seconds: float


@dataclass
class SigmaSweep:
    """The full sigma curve."""

    points: List[SigmaSweepPoint] = field(default_factory=list)

    def counts(self) -> List[int]:
        """Window counts along the grid."""
        return [p.windows for p in self.points]

    def to_text(self) -> str:
        """Render the sweep as a table."""
        headers = ["sigma", "windows", "mean nmi", "runtime (s)"]
        rows: List[List[object]] = [
            [f"{p.sigma:.2f}", p.windows, f"{p.mean_nmi:.2f}", f"{p.runtime_seconds:.2f}"]
            for p in self.points
        ]
        return title("Sigma sweep") + "\n" + format_table(headers, rows)


def sigma_sweep(
    x: AnyArray,
    y: AnyArray,
    config: TycosConfig,
    sigmas: Sequence[float] = (0.15, 0.2, 0.25, 0.3, 0.4, 0.5, 0.6),
    subsample: Optional[int] = 2000,
) -> SigmaSweep:
    """Run the search across a sigma grid.

    Args:
        x: first series.
        y: second series.
        config: base parameters; only sigma is varied.
        sigmas: the grid (ascending).
        subsample: tune on at most this prefix of the pair (None = all).

    Returns:
        A :class:`SigmaSweep`.
    """
    if list(sigmas) != sorted(sigmas):
        raise ValueError("sigmas must be ascending")
    if subsample is not None:
        x = np.asarray(x)[:subsample]
        y = np.asarray(y)[:subsample]
    sweep = SigmaSweep()
    for sigma in sigmas:
        result = Tycos(config.scaled(sigma=sigma)).search(x, y)
        scores = [r.nmi for r in result.windows]
        sweep.points.append(
            SigmaSweepPoint(
                sigma=float(sigma),
                windows=len(result.windows),
                mean_nmi=float(np.mean(scores)) if scores else 0.0,
                runtime_seconds=result.stats.runtime_seconds,
            )
        )
    return sweep


def suggest_sigma(sweep: SigmaSweep, stability: float = 0.34) -> Tuple[float, SigmaSweep]:
    """Pick the sigma where the output becomes *stable*.

    The suggestion is the smallest sigma whose window count is already
    within ``stability`` (relative) of the count at the strictest sigma
    swept -- i.e. the cheapest threshold that keeps essentially the same
    window set a much stricter threshold would.  Everything those two
    thresholds disagree on is, by construction, the weak tail.

    Args:
        sweep: output of :func:`sigma_sweep`.
        stability: tolerated relative excess over the strictest count.

    Returns:
        ``(sigma, sweep)`` -- the suggestion plus the curve it came from
        (so callers can render/log the evidence).

    Raises:
        ValueError: on an empty sweep.
    """
    points = sweep.points
    if not points:
        raise ValueError("cannot suggest sigma from an empty sweep")
    final = points[-1].windows
    ceiling = final * (1.0 + stability) if final > 0 else 0.5
    for point in points:
        if point.windows <= ceiling:
            return point.sigma, sweep
    return points[-1].sigma, sweep

"""Window inspection: explain *why* a window was extracted.

A correlation search is only trusted when its findings can be examined.
Given the original pair and one extracted window, :func:`inspect_window`
gathers everything a human needs to judge it -- the paired sample's MI
under several estimators, the linear correlation for contrast, an ASCII
scatter of the dependence shape -- without any plotting dependency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro._types import AnyArray, FloatArray, IntArray
from repro.baselines.pearson import pcc
from repro.core.window import PairView, TimeDelayWindow
from repro.mi.entropy import binned_joint_entropy
from repro.mi.histogram import histogram_mi
from repro.mi.ksg import KSGEstimator
from repro.mi.normalized import normalize_value

__all__ = ["WindowInspection", "inspect_window", "ascii_scatter"]


@dataclass(frozen=True)
class WindowInspection:
    """Everything gathered about one window.

    Attributes:
        window: the inspected window.
        size: its sample count.
        ksg_mi: KSG MI estimate (nats).
        histogram_mi: binned plug-in MI (nats), as a cross-check.
        nmi: normalized MI in [0, 1].
        pearson: linear correlation coefficient of the paired sample --
            a *low* |pearson| next to a high nmi is the signature of a
            non-linear relation.
        scatter: ASCII rendering of the paired sample.
    """

    window: TimeDelayWindow
    size: int
    ksg_mi: float
    histogram_mi: float
    nmi: float
    pearson: float
    scatter: str

    def to_text(self) -> str:
        """Human-readable summary."""
        shape = "non-linear" if self.nmi > 0.3 and abs(self.pearson) < 0.5 else "linear-ish"
        return "\n".join(
            [
                f"window {self.window} ({self.size} samples)",
                f"  KSG MI       : {self.ksg_mi:.3f} nats",
                f"  histogram MI : {self.histogram_mi:.3f} nats",
                f"  normalized MI: {self.nmi:.3f}",
                f"  Pearson r    : {self.pearson:+.3f}   -> {shape} dependence",
                "",
                self.scatter,
            ]
        )


def ascii_scatter(x: AnyArray, y: AnyArray, width: int = 48, height: int = 16) -> str:
    """Render a paired sample as an ASCII scatter plot.

    Args:
        x: horizontal values.
        y: vertical values.
        width: plot width in characters.
        height: plot height in rows.

    Returns:
        The plot as a newline-joined string; denser cells get darker
        glyphs (``. : * #``).
    """
    x = np.asarray(x, dtype=np.float64).ravel()
    y = np.asarray(y, dtype=np.float64).ravel()
    if x.size != y.size or x.size == 0:
        raise ValueError("x and y must be non-empty and paired")
    if width < 2 or height < 2:
        raise ValueError("width and height must be >= 2")

    def bins(values: FloatArray, count: int) -> IntArray:
        lo = values.min()
        span = values.max() - lo
        if span <= 0:
            return np.zeros(values.size, dtype=np.int64)
        idx = ((values - lo) * (count / span)).astype(np.int64)
        return np.minimum(idx, count - 1)

    gx = bins(x, width)
    gy = bins(y, height)
    counts = np.zeros((height, width), dtype=np.int64)
    np.add.at(counts, (gy, gx), 1)
    peak = counts.max()
    glyphs = " .:*#"
    rows: List[str] = []
    for r in range(height - 1, -1, -1):  # y grows upward
        row = "".join(
            glyphs[min(len(glyphs) - 1, int(np.ceil(4 * c / peak)))] if peak else " "
            for c in counts[r]
        )
        rows.append("|" + row + "|")
    border = "+" + "-" * width + "+"
    return "\n".join([border] + rows + [border])


def inspect_window(
    x: AnyArray,
    y: AnyArray,
    window: TimeDelayWindow,
    k: int = 4,
) -> WindowInspection:
    """Gather the evidence behind one extracted window.

    Args:
        x: the original X series the search ran on.
        y: the original Y series.
        window: the window to inspect.
        k: KSG neighbor count.

    Returns:
        A :class:`WindowInspection`.
    """
    pair = PairView(x, y)
    xw, yw = pair.extract(window)
    estimator = KSGEstimator(k=k)
    mi = estimator.mi(xw, yw)
    nmi = normalize_value(mi, binned_joint_entropy(xw, yw))
    return WindowInspection(
        window=window,
        size=window.size,
        ksg_mi=mi,
        histogram_mi=histogram_mi(xw, yw),
        nmi=nmi,
        pearson=pcc(xw, yw),
        scatter=ascii_scatter(xw, yw),
    )

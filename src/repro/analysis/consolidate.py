"""Post-processing: consolidate fragmented search output.

A restart-based local search legitimately reports one long correlation as
several adjacent windows (each restart climbs its own peak).  For
presentation and downstream mining it is often better to consolidate:
windows at (nearly) the same delay whose intervals touch are merged into
one window covering the union, re-scored on the merged extent.

This is distinct from :func:`repro.core.results.merge_overlapping`, which
aggregates *across* delays for grading brute-force output; consolidation
preserves the delay structure -- windows at different lags describe
different physics and are never merged.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro._types import AnyArray
from repro.core.results import WindowResult
from repro.core.thresholds import WindowScore
from repro.core.window import PairView, TimeDelayWindow
from repro.mi.entropy import binned_joint_entropy
from repro.mi.ksg import KSGEstimator
from repro.mi.normalized import normalize_ratio, normalize_value

__all__ = ["consolidate_windows"]


def _rescore(pair: PairView, window: TimeDelayWindow, estimator: KSGEstimator) -> WindowScore:
    xw, yw = pair.extract(window)
    mi = estimator.mi(xw, yw)
    entropy = binned_joint_entropy(xw, yw)
    return WindowScore(
        mi=mi, nmi=normalize_value(mi, entropy), ratio=normalize_ratio(mi, entropy)
    )


def consolidate_windows(
    results: Sequence[WindowResult],
    x: Optional[AnyArray] = None,
    y: Optional[AnyArray] = None,
    delay_tol: int = 2,
    gap_tol: int = 0,
    k: int = 4,
) -> List[WindowResult]:
    """Merge adjacent windows that describe the same lagged correlation.

    Args:
        results: search output (``result.windows``).
        x: the original X series; when given (with ``y``) merged windows
            are re-scored on their full extent, otherwise the strongest
            fragment's scores are carried over.
        y: the original Y series.
        delay_tol: maximum delay difference for two windows to be
            considered the same correlation.
        gap_tol: maximum index gap between fragments that still merges
            (0 = only touching/overlapping fragments).
        k: KSG neighbor count for re-scoring.

    Returns:
        Consolidated results in start order.
    """
    if delay_tol < 0 or gap_tol < 0:
        raise ValueError("delay_tol and gap_tol must be >= 0")
    if (x is None) != (y is None):
        raise ValueError("provide both x and y, or neither")
    if not results:
        return []

    ordered = sorted(results, key=lambda r: (r.window.start, r.window.end))
    groups: List[List[WindowResult]] = [[ordered[0]]]
    for result in ordered[1:]:
        tail = groups[-1]
        span_end = max(r.window.end for r in tail)
        tail_delays = [r.window.delay for r in tail]
        same_delay = any(abs(result.window.delay - d) <= delay_tol for d in tail_delays)
        adjacent = result.window.start <= span_end + 1 + gap_tol
        if same_delay and adjacent:
            tail.append(result)
        else:
            groups.append([result])

    pair = PairView(x, y) if x is not None else None
    estimator = KSGEstimator(k=k)
    out: List[WindowResult] = []
    for group in groups:
        if len(group) == 1:
            out.append(group[0])
            continue
        start = min(r.window.start for r in group)
        end = max(r.window.end for r in group)
        # The consolidated delay is the fragment-strength-weighted choice:
        # the strongest fragment's lag.
        strongest = max(group, key=lambda r: r.nmi)
        merged = TimeDelayWindow(start=start, end=end, delay=strongest.window.delay)
        if pair is not None and merged.y_start >= 0 and merged.y_end < pair.n:
            score = _rescore(pair, merged, estimator)
            out.append(WindowResult(window=merged, mi=score.mi, nmi=score.nmi))
        else:
            out.append(WindowResult(window=merged, mi=strongest.mi, nmi=strongest.nmi))
    out.sort(key=lambda r: r.window.key())
    return out

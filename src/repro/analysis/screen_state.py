"""Collection-level batched stage-1 screening (the cascade's fast path).

The per-pair screen :func:`repro.analysis.cascade.fft_screen_score`
rebuilds both series' FFT spectra, rolling moments and normalized MASS
queries for *every* pair, so across an all-pairs scan each series' O(n)
state is recomputed O(N) times -- pure quadratic waste, since none of
it depends on the partner series.  This module hoists the per-series
work out of the pair loop, MASS-style (one series FFT reused across
every query it will ever meet):

* :class:`ScreenGeometry` freezes the shared shape of one collection's
  screen -- series length, window, delay band, probe count -- so every
  derived quantity (padded FFT size, band slice lengths, probe
  positions) is computed once and agreed on by builders and kernels.
* :func:`build_screen_state` precomputes, per series, everything the
  screen needs from that series alone: the zero-padded delay-band
  blocks with their rolling moments for the windowed-PCC scan, and the
  padded rfft spectrum, normalized query spectra and rolling window
  sigmas for the MASS probes.
* :func:`batched_screen_scores` screens a whole *block* of pairs in a
  few batched numpy kernels: one row-wise cumulative sum over the
  stacked band blocks (the cross moment is the only per-pair rolling
  sum left) and one batched irfft over the stacked spectra products.

Bit-exactness is the contract, not an aspiration: every arithmetic step
replays the reference's expressions on the reference's floats -- the
roll-sum recipe of :func:`repro.baselines.pearson.sliding_pcc_band`,
the distance conversion of
:func:`repro.baselines.mass.mass_distance_profile`, even the Python
scalar ``1.0 - float(d) ** 2 / (2.0 * m)`` tail -- and row-wise numpy
reductions (``cumsum(axis=1)``, ``irfft(axis=1)``) are per-row
identical to their 1-D forms, so every returned score is bit-identical
to ``fft_screen_score`` on the same pair (TY121 gate, asserted by the
tier-1 suite and by the bench before any speedup is recorded).  A
geometry the reference would abstain on (window < 2, series shorter
than the window) abstains here identically: every score is ``inf`` and
no pair is pruned.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro._types import FloatArray
from repro.baselines.mass import mass_fft_size
from repro.baselines.pearson import roll_sum_rows

__all__ = [
    "ScreenGeometry",
    "SeriesScreenState",
    "build_screen_state",
    "build_screen_states",
    "batched_screen_scores",
    "screen_state_width",
    "pack_screen_state",
    "unpack_screen_state",
]


@dataclass(frozen=True)
class ScreenGeometry:
    """Shared shape parameters of one collection's stage-1 screen.

    Every series in a cascade collection shares a length, so the screen
    window, delay band and probe layout -- and everything derived from
    them -- are collection-wide constants.  Freezing them in one value
    keeps the state builder, the batched kernels and the on-disk cache
    (:meth:`repro.analysis.store.SeriesStore.screen_states`) in exact
    agreement about array shapes.

    Attributes:
        length: shared series length ``n``.
        window: screen window size ``m``.
        td_max: largest |delay| of the PCC band.
        mass_probes: number of MASS query positions (evenly spaced).
    """

    length: int
    window: int
    td_max: int
    mass_probes: int = 3

    def __post_init__(self) -> None:
        if self.length < 1:
            raise ValueError(f"length must be >= 1, got {self.length}")
        if self.td_max < 0:
            raise ValueError(f"td_max must be >= 0, got {self.td_max}")
        if self.mass_probes < 0:
            raise ValueError(f"mass_probes must be >= 0, got {self.mass_probes}")

    @property
    def abstains(self) -> bool:
        """Whether the reference screen can produce no evidence here.

        ``fft_screen_score`` raises on ``window < 2`` (the caller's
        try/except abstains) and returns ``inf`` when no window fits;
        both cases map to all-``inf`` batched scores.
        """
        return self.window < 2 or self.length < self.window

    @property
    def band(self) -> List[int]:
        """The PCC delay band ``[-td_max, td_max]``, reference order."""
        return list(range(-self.td_max, self.td_max + 1))

    @property
    def rows(self) -> int:
        """Rows of the band block (one per delay)."""
        return 2 * self.td_max + 1

    @property
    def out_width(self) -> int:
        """Window positions at delay 0: ``n - m + 1`` (requires no abstain)."""
        return self.length - self.window + 1

    @property
    def fft_size(self) -> int:
        """Padded rfft size of the MASS convolution (power of two)."""
        return mass_fft_size(self.length, self.window)

    @property
    def spectrum_bins(self) -> int:
        """Complex bins of an rfft at :attr:`fft_size`."""
        return self.fft_size // 2 + 1

    def band_lengths(self) -> List[int]:
        """Valid sample count of each band row (reference ``lengths``)."""
        n = self.length
        return [max(0, min(n, n - d) - max(0, -d)) for d in self.band]

    def band_out_lengths(self) -> List[int]:
        """Valid window positions of each band row (reference trim)."""
        return [max(0, length - self.window + 1) for length in self.band_lengths()]

    def valid_mask(self) -> np.ndarray:
        """Bool ``(rows, out_width)`` mask of in-range window positions.

        Positions past a row's ``out_length`` cover zero padding; the
        reference trims them away, the batched kernel masks them out.
        """
        mask = np.zeros((self.rows, self.out_width), dtype=bool)
        for j, out_length in enumerate(self.band_out_lengths()):
            mask[j, :out_length] = True
        return mask

    def probe_positions(self) -> np.ndarray:
        """MASS query start positions, the reference's ``linspace`` grid."""
        return np.linspace(0, self.length - self.window, self.mass_probes).astype(int)

    def key(self) -> Tuple[int, int, int, int]:
        """Cache key of this geometry (see the store's screen cache)."""
        return (self.length, self.window, self.td_max, self.mass_probes)


@dataclass(frozen=True)
class SeriesScreenState:
    """Everything the stage-1 screen needs from one series alone.

    Both roles are precomputed because an all-pairs scan uses every
    series as the pair's ``x`` side (band block ``xs``, query spectra)
    and as its ``y`` side (band block ``ys``, series spectrum, rolling
    sigmas) about equally often.

    Attributes:
        xs: zero-padded x-side band block, shape ``(rows, n)``.
        ys: zero-padded y-side band block, shape ``(rows, n)``.
        sx: rolling window sums of ``xs``, shape ``(rows, out_width)``.
        sy: rolling window sums of ``ys``.
        px: clamped x variance term ``max(sxx - sx*sx/m, 0)``.
        py: clamped y variance term.
        spectrum: padded rfft of the series (MASS y side), ``(bins,)``.
        query_spectra: padded rfft of each reversed normalized query
            (MASS x side), shape ``(mass_probes, bins)``; zero rows for
            degenerate probes.
        query_degenerate: per-probe flag for zero-variance queries
            (their profile is the constant ``sqrt(2m)``).
        sigma: rolling window standard deviations of the series (MASS
            y side), shape ``(out_width,)``.
        sigma_ok: the reference's ``sigma > 1e-12`` validity mask.
        msig_safe: ``m * sigma`` with invalid entries replaced by 1.0,
            the safe divisor of the batched distance conversion.
    """

    xs: FloatArray
    ys: FloatArray
    sx: FloatArray
    sy: FloatArray
    px: FloatArray
    py: FloatArray
    spectrum: np.ndarray
    query_spectra: np.ndarray
    query_degenerate: np.ndarray
    sigma: FloatArray
    sigma_ok: np.ndarray
    msig_safe: FloatArray


def _empty_state(geometry: ScreenGeometry) -> SeriesScreenState:
    """The all-abstaining placeholder for unusable geometries."""
    empty = np.empty((0, 0))
    return SeriesScreenState(
        xs=empty, ys=empty, sx=empty, sy=empty, px=empty, py=empty,
        spectrum=np.empty(0, dtype=np.complex128),
        query_spectra=np.empty((0, 0), dtype=np.complex128),
        query_degenerate=np.empty(0, dtype=bool),
        sigma=np.empty(0), sigma_ok=np.empty(0, dtype=bool), msig_safe=np.empty(0),
    )


def build_screen_state(values: FloatArray, geometry: ScreenGeometry) -> SeriesScreenState:
    """Precompute one series' screen state (both pair roles).

    Every array is produced by the reference implementations'
    own expressions on the same float64 inputs, so any pair state
    assembled from two of these states reproduces the per-pair screen
    bit-for-bit.

    Args:
        values: the series, length ``geometry.length``.
        geometry: the collection's screen geometry.

    Returns:
        The series' :class:`SeriesScreenState` (empty placeholders when
        the geometry abstains).
    """
    series = np.asarray(values, dtype=np.float64).ravel()
    if series.size != geometry.length:
        raise ValueError(
            f"series length {series.size} does not match geometry length {geometry.length}"
        )
    if geometry.abstains:
        return _empty_state(geometry)
    n, m = geometry.length, geometry.window

    # -- windowed-PCC band blocks (sliding_pcc_band's construction) ---- #
    rows = geometry.rows
    lengths = geometry.band_lengths()
    xs = np.zeros((rows, n))
    ys = np.zeros((rows, n))
    for j, d in enumerate(geometry.band):
        lo = max(0, -d)
        length = lengths[j]
        if length:
            xs[j, :length] = series[lo : lo + length]
            ys[j, :length] = series[lo + d : lo + d + length]
    sx = roll_sum_rows(xs, m)
    sxx = roll_sum_rows(xs * xs, m)
    px = np.maximum(sxx - sx * sx / m, 0.0)
    sy = roll_sum_rows(ys, m)
    syy = roll_sum_rows(ys * ys, m)
    py = np.maximum(syy - sy * sy / m, 0.0)

    # -- MASS series side (mass_distance_profile's rolling stats) ------ #
    size = geometry.fft_size
    spectrum = np.fft.rfft(series, size)
    cumsum = np.concatenate([[0.0], np.cumsum(series)])
    cumsum2 = np.concatenate([[0.0], np.cumsum(series * series)])
    seg_sum = cumsum[m:] - cumsum[:-m]
    seg_sum2 = cumsum2[m:] - cumsum2[:-m]
    mu = seg_sum / m
    var = np.maximum(seg_sum2 / m - mu * mu, 0.0)
    sigma = np.sqrt(var)
    sigma_ok = sigma > 1e-12
    msig_safe = np.where(sigma_ok, m * sigma, 1.0)

    # -- MASS query side: one spectrum per probe position -------------- #
    probes = geometry.probe_positions()
    query_spectra = np.zeros((geometry.mass_probes, geometry.spectrum_bins), dtype=np.complex128)
    query_degenerate = np.zeros(geometry.mass_probes, dtype=bool)
    for p, s in enumerate(probes):
        query = series[s : s + m]
        sigma_q = query.std()
        if sigma_q == 0.0:
            # The reference short-circuits to the constant sqrt(2m)
            # profile before normalizing, so no spectrum is needed.
            query_degenerate[p] = True
            continue
        q_norm = (query - query.mean()) / sigma_q
        query_spectra[p] = np.fft.rfft(q_norm[::-1], size)

    return SeriesScreenState(
        xs=xs, ys=ys, sx=sx, sy=sy, px=px, py=py,
        spectrum=spectrum, query_spectra=query_spectra,
        query_degenerate=query_degenerate,
        sigma=sigma, sigma_ok=sigma_ok, msig_safe=msig_safe,
    )


def build_screen_states(
    series: Dict[str, FloatArray], geometry: ScreenGeometry
) -> Dict[str, SeriesScreenState]:
    """Screen states for a whole collection, keyed like ``series``."""
    return {name: build_screen_state(values, geometry) for name, values in series.items()}


def _state_layout(geometry: ScreenGeometry) -> List[Tuple[str, int, int]]:
    """Field layout of one packed state row: (field, offset, float64 slots).

    Complex fields come first so their byte offsets are multiples of 16
    (rows are padded to an even slot count), letting a memory-mapped row
    be re-viewed as complex128 without a copy.  Bool fields travel as
    0.0/1.0 floats.
    """
    rows, n = geometry.rows, geometry.length
    out_w, probes, bins = geometry.out_width, geometry.mass_probes, geometry.spectrum_bins
    sizes = [
        ("spectrum", 2 * bins),
        ("query_spectra", probes * 2 * bins),
        ("xs", rows * n),
        ("ys", rows * n),
        ("sx", rows * out_w),
        ("sy", rows * out_w),
        ("px", rows * out_w),
        ("py", rows * out_w),
        ("sigma", out_w),
        ("msig_safe", out_w),
        ("sigma_ok", out_w),
        ("query_degenerate", probes),
    ]
    layout = []
    offset = 0
    for field_name, size in sizes:
        layout.append((field_name, offset, size))
        offset += size
    return layout


def screen_state_width(geometry: ScreenGeometry) -> int:
    """Float64 slots of one packed state row (padded to an even count)."""
    if geometry.abstains:
        return 0
    _, offset, size = _state_layout(geometry)[-1]
    total = offset + size
    return total + (total % 2)


def pack_screen_state(
    state: SeriesScreenState, geometry: ScreenGeometry, out: FloatArray
) -> None:
    """Flatten one state into a float64 row (the store cache's format).

    The packing is lossless: float64 fields are copied verbatim,
    complex fields as their real/imaginary float64 pairs, bool masks as
    0.0/1.0 -- so :func:`unpack_screen_state` reproduces every float of
    the in-memory state bit-for-bit.
    """
    if geometry.abstains:
        return
    for field_name, offset, size in _state_layout(geometry):
        value = getattr(state, field_name)
        if np.iscomplexobj(value):
            flat = np.ascontiguousarray(value).view(np.float64).ravel()
        else:
            flat = np.asarray(value, dtype=np.float64).ravel()
        out[offset : offset + size] = flat


def unpack_screen_state(row: FloatArray, geometry: ScreenGeometry) -> SeriesScreenState:
    """Rebuild a state from a packed row, zero-copy where possible.

    Float and complex fields are *views* of ``row`` (a memory-mapped
    cache row stays memory-mapped); only the two small bool masks are
    materialized.
    """
    if geometry.abstains:
        return _empty_state(geometry)
    rows, n = geometry.rows, geometry.length
    out_w, probes, bins = geometry.out_width, geometry.mass_probes, geometry.spectrum_bins
    fields: Dict[str, np.ndarray] = {}
    for field_name, offset, size in _state_layout(geometry):
        fields[field_name] = row[offset : offset + size]
    return SeriesScreenState(
        xs=fields["xs"].reshape(rows, n),
        ys=fields["ys"].reshape(rows, n),
        sx=fields["sx"].reshape(rows, out_w),
        sy=fields["sy"].reshape(rows, out_w),
        px=fields["px"].reshape(rows, out_w),
        py=fields["py"].reshape(rows, out_w),
        spectrum=fields["spectrum"].view(np.complex128),
        query_spectra=fields["query_spectra"].view(np.complex128).reshape(probes, bins),
        query_degenerate=fields["query_degenerate"] != 0.0,
        sigma=fields["sigma"],
        sigma_ok=fields["sigma_ok"] != 0.0,
        msig_safe=fields["msig_safe"],
    )


def batched_screen_scores(
    states: Sequence[SeriesScreenState],
    pair_indices: Sequence[Tuple[int, int]],
    geometry: ScreenGeometry,
) -> List[float]:
    """Stage-1 screen scores of a block of pairs, batched.

    Args:
        states: per-series screen states (any indexable collection).
        pair_indices: ``(i, j)`` index pairs into ``states``; series
            ``i`` plays the reference's ``x`` role, ``j`` its ``y``.
        geometry: the geometry all states were built with.

    Returns:
        One score per pair, in input order, each bit-identical to
        ``fft_screen_score(series_i, series_j, geometry.window,
        geometry.td_max, geometry.mass_probes)`` -- including the
        ``inf`` abstention when the geometry fits no window.
    """
    if geometry.abstains or not pair_indices:
        return [float("inf")] * len(pair_indices)
    n, m = geometry.length, geometry.window
    rows = geometry.rows
    out_w = geometry.out_width
    block = len(pair_indices)

    # -- windowed PCC: only the cross moment is per-pair --------------- #
    xs = np.concatenate([states[i].xs for i, _ in pair_indices])
    ys = np.concatenate([states[j].ys for _, j in pair_indices])
    sxy = roll_sum_rows(xs * ys, m)
    sx = np.concatenate([states[i].sx for i, _ in pair_indices])
    sy = np.concatenate([states[j].sy for _, j in pair_indices])
    px = np.concatenate([states[i].px for i, _ in pair_indices])
    py = np.concatenate([states[j].py for _, j in pair_indices])
    cov = sxy - sx * sy / m
    denom = np.sqrt(px * py)
    out = np.zeros_like(cov)
    ok = denom > 1e-12
    out[ok] = cov[ok] / denom[ok]
    out = np.clip(out, -1.0, 1.0)
    # Window positions past a band row's valid prefix cover zero padding
    # the reference never sees; mask them to the reference's 0.0 floor.
    valid = np.tile(geometry.valid_mask(), (block, 1))
    magnitude = np.where(valid, np.abs(out), 0.0)
    pcc_best = magnitude.reshape(block, rows * out_w).max(axis=1)

    # -- MASS probes: one batched irfft over all (pair, probe) rows ---- #
    probes = geometry.mass_probes
    if probes:
        bins = geometry.spectrum_bins
        products = np.empty((block, probes, bins), dtype=np.complex128)
        for b, (i, j) in enumerate(pair_indices):
            # Reference operand order: fft(series) * fft(query).
            products[b] = states[j].spectrum[None, :] * states[i].query_spectra
        qt = np.fft.irfft(products.reshape(block * probes, bins), geometry.fft_size, axis=1)
        qt = qt[:, m - 1 : n]
        ok_rows = np.repeat(
            np.stack([states[j].sigma_ok for _, j in pair_indices]), probes, axis=0
        )
        msig = np.repeat(
            np.stack([states[j].msig_safe for _, j in pair_indices]), probes, axis=0
        )
        dist_sq = np.where(ok_rows, 2.0 * m * (1.0 - qt / msig), 2.0 * m)
        profile = np.sqrt(np.maximum(dist_sq, 0.0))
        mins = profile.min(axis=1).reshape(block, probes)
        maxs = profile.max(axis=1).reshape(block, probes)
        flat = float(np.sqrt(2.0 * m))
        for b, (i, _) in enumerate(pair_indices):
            degenerate = states[i].query_degenerate
            if degenerate.any():
                mins[b, degenerate] = flat
                maxs[b, degenerate] = flat

    scores: List[float] = []
    for b in range(block):
        best = float(pcc_best[b])
        if probes:
            # The reference's Python-scalar tail, probe by probe; max()
            # ignores NaN exactly as the per-pair accumulation does.
            for p in range(probes):
                r_hi = 1.0 - float(mins[b, p]) ** 2 / (2.0 * m)
                r_lo = 1.0 - float(maxs[b, p]) ** 2 / (2.0 * m)
                best = max(best, abs(r_hi), abs(r_lo))
        scores.append(best)
    return scores

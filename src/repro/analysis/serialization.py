"""JSON serialization of search results and reports.

A production correlation pipeline runs searches in batch and consumes the
results elsewhere (dashboards, alerting, downstream mining).  This module
round-trips the library's result objects through plain JSON: versioned,
dependency-free, and stable under reordering.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.core.config import TycosConfig
from repro.core.results import WindowResult
from repro.core.tycos import SearchStats, TycosResult
from repro.core.window import TimeDelayWindow

__all__ = [
    "result_to_dict",
    "result_from_dict",
    "save_result",
    "load_result",
    "config_to_dict",
    "config_from_dict",
]

#: Format version written into every payload; bump on breaking changes.
FORMAT_VERSION = 1


def config_to_dict(config: TycosConfig) -> Dict[str, Any]:
    """A JSON-ready mapping of every configuration field."""
    return {
        "sigma": config.sigma,
        "epsilon_ratio": config.epsilon_ratio,
        "s_min": config.s_min,
        "s_max": config.s_max,
        "td_max": config.td_max,
        "delta": config.delta,
        "history_length": config.history_length,
        "max_idle": config.max_idle,
        "k": config.k,
        "use_normalized": config.use_normalized,
        "jitter": config.jitter,
        "seed": config.seed,
        "significance_permutations": config.significance_permutations,
        "init_delay_step": config.init_delay_step,
    }


def config_from_dict(payload: Dict[str, Any]) -> TycosConfig:
    """Rebuild a :class:`TycosConfig`; unknown keys are rejected."""
    known = set(config_to_dict(TycosConfig()))
    unknown = set(payload) - known
    if unknown:
        raise ValueError(f"unknown config fields {sorted(unknown)}")
    return TycosConfig(**payload)


def _window_to_dict(result: WindowResult) -> Dict[str, Any]:
    return {
        "start": result.window.start,
        "end": result.window.end,
        "delay": result.window.delay,
        "mi": result.mi,
        "nmi": result.nmi,
    }


def _window_from_dict(payload: Dict[str, Any]) -> WindowResult:
    return WindowResult(
        window=TimeDelayWindow(
            start=int(payload["start"]), end=int(payload["end"]), delay=int(payload["delay"])
        ),
        mi=float(payload["mi"]),
        nmi=float(payload["nmi"]),
    )


def result_to_dict(result: TycosResult, config: Optional[TycosConfig] = None) -> Dict[str, Any]:
    """A JSON-ready mapping of a search result (optionally with its config)."""
    stats = result.stats
    payload: Dict[str, Any] = {
        "format_version": FORMAT_VERSION,
        "windows": [_window_to_dict(r) for r in result.windows],
        "stats": {
            "windows_evaluated": stats.windows_evaluated,
            "cache_hits": stats.cache_hits,
            "restarts": stats.restarts,
            "lahc_iterations": stats.lahc_iterations,
            "accepted_moves": stats.accepted_moves,
            "noise_prunes": stats.noise_prunes,
            "mi_full_searches": stats.mi_full_searches,
            "mi_incremental_updates": stats.mi_incremental_updates,
            "runtime_seconds": stats.runtime_seconds,
        },
    }
    if config is not None:
        payload["config"] = config_to_dict(config)
    return payload


def result_from_dict(payload: Dict[str, Any]) -> TycosResult:
    """Rebuild a :class:`TycosResult` from :func:`result_to_dict` output."""
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported format_version {version!r}, expected {FORMAT_VERSION}")
    windows: List[WindowResult] = [_window_from_dict(w) for w in payload["windows"]]
    stats_payload = payload.get("stats", {})
    stats = SearchStats(
        windows_evaluated=int(stats_payload.get("windows_evaluated", 0)),
        cache_hits=int(stats_payload.get("cache_hits", 0)),
        restarts=int(stats_payload.get("restarts", 0)),
        lahc_iterations=int(stats_payload.get("lahc_iterations", 0)),
        accepted_moves=int(stats_payload.get("accepted_moves", 0)),
        noise_prunes=int(stats_payload.get("noise_prunes", 0)),
        mi_full_searches=int(stats_payload.get("mi_full_searches", 0)),
        mi_incremental_updates=int(stats_payload.get("mi_incremental_updates", 0)),
        runtime_seconds=float(stats_payload.get("runtime_seconds", 0.0)),
    )
    return TycosResult(windows=windows, stats=stats)


def save_result(
    result: TycosResult, path: str | Path, config: Optional[TycosConfig] = None
) -> None:
    """Write a search result to a JSON file."""
    payload = result_to_dict(result, config=config)
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))


def load_result(path: str | Path) -> TycosResult:
    """Read a search result back from a JSON file."""
    return result_from_dict(json.loads(Path(path).read_text()))

"""Staged all-pairs prescreen cascade (and the ``tycos-scan`` CLI).

The paper's energy study scans 72 plugs -- 2 556 pairs -- but the
production shape in ROADMAP.md is *thousands* of series, where the
quadratic pair count makes the full KSG search per pair the dominant
cost and most pairs are obviously unrelated.  This module prunes pairs
**before** any KSG estimate with a three-stage cascade:

1. **FFT screen** (:func:`fft_screen_score`): cheap linear proxies over
   every pair -- the batched windowed-PCC band scan
   (:func:`repro.baselines.pearson.sliding_pcc_band`) over the delay
   band, plus MASS distance profiles
   (:func:`repro.baselines.mass.mass_distance_profile`) converted to
   correlation scores through ``d^2 = 2m(1 - r)``.  Both are
   O(n log n)-class and touch no KSG machinery.  The scan runs this
   stage *collection-level*: per-series screen state is precomputed
   once (:mod:`repro.analysis.screen_state`, cached on disk for store
   collections) and pairs are scored in batched blocks of
   ``config.screen_block``, optionally fanned over the process pool --
   with scores bit-identical to calling :func:`fft_screen_score` per
   pair, at every block size and worker count.
2. **Coarse NMI screen** (:func:`coarse_nmi_score`): the repository's
   one coarse-NMI filtering mechanism (formerly
   ``pairwise.prefilter_score``, which now wraps this), run only on
   stage-1 survivors.
3. **Full TYCOS search**: :func:`repro.analysis.pairwise.scan_pairs`
   (serial or pooled) on pairs that passed both screens, in the
   original pair order.

The screens are linear/coarse proxies for an information-theoretic
search, so they must under-bid: a pair is pruned only when its score
falls below ``threshold - screen_margin``
(:attr:`repro.core.config.TycosConfig.screen_margin`).  ``margin=0`` is
the explicit opt-out of that conservatism; ``margin=inf`` disables
pruning entirely, making :func:`cascade_scan` byte-identical to the
unscreened :func:`~repro.analysis.pairwise.scan_pairs` -- the bench
recall gate asserts exactly that discipline before any speedup is
reported.  A screen that cannot produce evidence (series shorter than
the screen window) or raises *abstains*: the pair passes to the next
stage rather than being silently dropped.
"""

from __future__ import annotations

import argparse
import logging
import sys
from itertools import combinations
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from repro._types import FloatArray
from repro.analysis.pairwise import PairwiseReport, resolve_plan, scan_pairs, timed
from repro.analysis.parallel import effective_workers, pooled_map, worker_state
from repro.analysis.screen_state import (
    ScreenGeometry,
    SeriesScreenState,
    batched_screen_scores,
    build_screen_states,
)
from repro.baselines.mass import mass_distance_profile
from repro.baselines.pearson import sliding_pcc_band
from repro.core.config import TycosConfig
from repro.core.tycos import Tycos
from repro.mi.normalized import normalized_mi

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.analysis.planner import SearchPlan

__all__ = [
    "coarse_nmi_score",
    "fft_screen_score",
    "cascade_scan",
    "main",
]

logger = logging.getLogger(__name__)


def coarse_nmi_score(
    x: FloatArray,
    y: FloatArray,
    probe: int = 128,
    stride: int = 3,
    td_max: int = 0,
) -> float:
    """A cheap relatedness score: best normalized MI over coarse probes.

    The cascade's stage-2 screen (and the implementation behind the
    deprecated :func:`repro.analysis.pairwise.prefilter_score` wrapper).
    Not a substitute for the search -- it only sees a few window
    positions -- but a pair whose every probe is flat noise is unlikely
    to reward a full TYCOS run.  When ``td_max`` is positive every delay
    in ``[-td_max, td_max]`` is probed at each position, because a
    lagged coupling carries *no* aligned information at all.

    Args:
        x: first series.
        y: second series.
        probe: probe window size.
        stride: number of probe positions (evenly spaced).
        td_max: largest |delay| to probe.

    Returns:
        The maximum normalized MI over all probes.
    """
    n = min(x.size, y.size)
    if n < probe + td_max:
        return normalized_mi(x[:n], y[:n]) if n >= 8 else 0.0
    best = 0.0
    positions = np.linspace(td_max, n - probe - td_max, stride).astype(int)
    for s in positions:
        xw = x[s : s + probe]
        for tau in range(-td_max, td_max + 1):
            best = max(best, normalized_mi(xw, y[s + tau : s + tau + probe]))
    return best


def fft_screen_score(
    x: FloatArray,
    y: FloatArray,
    window: int,
    td_max: int,
    mass_probes: int = 3,
) -> float:
    """Stage-1 screen: the best linear-correlation evidence of a pair.

    Two complementary FFT-class proxies, combined by maximum:

    * the batched windowed-PCC scan over every window start at every
      delay in ``[-td_max, td_max]`` (all starts, bounded delays), and
    * MASS distance profiles of a few query subsequences of ``x``
      against all of ``y`` (few starts, *all* offsets), converted to
      correlation through ``d^2 = 2m(1 - r)``; both the best and the
      worst match are used so anti-correlated shapes score by |r| too.

    Args:
        x: first series.
        y: second series (same length).
        window: screen window size ``m >= 2``.
        td_max: largest |delay| of the PCC band.
        mass_probes: number of MASS query positions (evenly spaced).

    Returns:
        The largest |r| either proxy found, or ``inf`` when the series
        are too short for any window to fit -- an abstaining screen must
        pass the pair, never prune it.
    """
    x = np.asarray(x, dtype=np.float64).ravel()
    y = np.asarray(y, dtype=np.float64).ravel()
    m = window
    best = 0.0
    fitted = False
    band = list(range(-td_max, td_max + 1))
    for row in sliding_pcc_band(x, y, m, band):
        if row.size:
            fitted = True
            best = max(best, float(np.max(np.abs(row))))
    n = min(x.size, y.size)
    if n >= m and mass_probes > 0:
        positions = np.linspace(0, x.size - m, mass_probes).astype(int)
        for s in positions:
            profile = mass_distance_profile(x[s : s + m], y)
            fitted = True
            r_hi = 1.0 - float(np.min(profile)) ** 2 / (2.0 * m)
            r_lo = 1.0 - float(np.max(profile)) ** 2 / (2.0 * m)
            best = max(best, abs(r_hi), abs(r_lo))
    if not fitted:
        return float("inf")
    return best


def _collection_states(
    series: Dict[str, FloatArray],
    names: List[str],
    geometry: ScreenGeometry,
    store_path: Optional[Union[str, Path]],
) -> List[SeriesScreenState]:
    """Per-series screen states, indexed like ``names``.

    Collections that live in a series store are served from the store's
    memory-mapped screen cache
    (:meth:`repro.analysis.store.SeriesStore.screen_states`); any cache
    trouble -- an unwritable directory, a store that doesn't cover the
    collection -- falls back to building in memory rather than failing
    the scan.
    """
    if store_path is not None:
        from repro.analysis.store import SeriesStore

        try:
            by_name = SeriesStore.open(store_path).screen_states(geometry)
            return [by_name[name] for name in names]
        except Exception as exc:  # noqa: BLE001 - cache trouble must not fail the scan
            logger.warning(
                "screen-state cache at %s unavailable (%s: %s); building in memory",
                store_path,
                type(exc).__name__,
                exc,
            )
    by_name = build_screen_states(series, geometry)
    return [by_name[name] for name in names]


def _screen_block_task(
    task: Tuple[int, List[Tuple[int, int]]]
) -> Tuple[int, List[float]]:
    """Worker task: stage-1 scores of one ``(start, index pairs)`` block.

    The per-series states are built once per worker process (from the
    attached store's screen cache when the collection has one, else from
    the shipped series) and memoized in :func:`worker_state`, so every
    later block the worker draws only pays the batched kernels.  A
    block whose screen crashes abstains: every pair scores ``inf`` and
    advances, matching the serial path's containment.
    """
    start, pair_block = task
    state = worker_state()
    geometry: ScreenGeometry = state["screen_geometry"]
    try:
        states = state.get("screen_states")
        if states is None:
            names: List[str] = state["screen_names"]
            store = state.get("store")
            by_name: Optional[Dict[str, SeriesScreenState]] = None
            if store is not None:
                try:
                    by_name = store.screen_states(geometry, write=False)
                    states = [by_name[name] for name in names]
                except Exception:  # noqa: BLE001 - fall back to in-memory build
                    states = None
            if states is None:
                by_name = build_screen_states(
                    {name: state["series"][name] for name in names}, geometry
                )
                states = [by_name[name] for name in names]
            state["screen_states"] = states
        return start, batched_screen_scores(states, pair_block, geometry)
    except Exception:  # noqa: BLE001 - a crashed screen abstains
        return start, [float("inf")] * len(pair_block)


def _screen_scores(
    series: Dict[str, FloatArray],
    pair_list: List[Tuple[str, str]],
    geometry: ScreenGeometry,
    block: int,
    n_jobs: Optional[int],
    store_path: Optional[Union[str, Path]],
    force_parallel: bool,
) -> List[float]:
    """Stage-1 screen scores of every pair, blocked and optionally pooled.

    Pairs are scored in blocks of ``block`` through
    :func:`repro.analysis.screen_state.batched_screen_scores`, fanned
    over the process pool when ``n_jobs`` asks for workers (with the
    usual 1-core serial fallback of
    :func:`repro.analysis.parallel.effective_workers`).  Scores come
    back in original pair order and are bit-identical to per-pair
    :func:`fft_screen_score` at every block size and worker count.  A
    block whose screen raises abstains (all ``inf``) instead of failing
    the scan.
    """
    names = list(series)
    index = {name: k for k, name in enumerate(names)}
    pair_idx = [(index[s], index[t]) for s, t in pair_list]
    blocks = [
        (start, pair_idx[start : start + block])
        for start in range(0, len(pair_idx), block)
    ]
    workers, _ = effective_workers(
        1 if n_jobs is None else n_jobs,
        len(blocks),
        force_parallel=force_parallel,
        what="cascade screen",
    )
    scores = [float("inf")] * len(pair_idx)
    if workers > 1:
        if store_path is not None:
            # Build (and persist) the store's screen cache once in the
            # parent, so every worker just memory-maps it.
            from repro.analysis.store import SeriesStore

            try:
                SeriesStore.open(store_path).screen_states(geometry)
            except Exception as exc:  # noqa: BLE001 - workers rebuild in memory
                logger.warning(
                    "could not pre-build the screen cache at %s (%s: %s); "
                    "workers will build states in memory",
                    store_path,
                    type(exc).__name__,
                    exc,
                )
        for start, block_scores in pooled_map(
            _screen_block_task,
            blocks,
            workers=workers,
            series=series,
            extra_state={"screen_geometry": geometry, "screen_names": names},
            store_path=store_path,
        ):
            scores[start : start + len(block_scores)] = block_scores
        return scores
    states = _collection_states(series, names, geometry, store_path)
    for start, pair_block in blocks:
        try:
            block_scores = batched_screen_scores(states, pair_block, geometry)
        except Exception:  # noqa: BLE001 - a crashed screen abstains
            block_scores = [float("inf")] * len(pair_block)
        scores[start : start + len(block_scores)] = block_scores
    return scores


def cascade_scan(
    series: Dict[str, FloatArray],
    config: TycosConfig,
    pairs: Optional[Iterable[Tuple[str, str]]] = None,
    screen_threshold: float = 0.6,
    nmi_threshold: float = 0.3,
    screen_margin: Optional[float] = None,
    screen_window: Optional[int] = None,
    engine: Optional[Tycos] = None,
    n_jobs: Optional[int] = None,
    store_path: Optional[Union[str, Path]] = None,
    screen_block: Optional[int] = None,
    force_parallel: bool = False,
    plan: Union["SearchPlan", str, None] = None,
) -> PairwiseReport:
    """Run the prescreen cascade over every pair of a collection.

    Stage 1 (the batched collection-level form of
    :func:`fft_screen_score`; see :mod:`repro.analysis.screen_state`)
    and stage 2 (:func:`coarse_nmi_score`) prune pairs whose score falls
    below ``threshold - margin``; stage 3 runs the full TYCOS search on
    the survivors **in the original pair order**, so with nothing pruned
    the result is byte-identical to the unscreened
    :func:`~repro.analysis.pairwise.scan_pairs`.  Pruned pairs are
    reported in ``report.skipped`` (original order) and the per-stage
    ledger in the ``pairs_*`` counters, which always satisfy
    ``pairs_pruned_fft + pairs_pruned_nmi + pairs_searched ==
    pairs_screened`` -- a screen that raises abstains (the pair advances)
    rather than breaking the accounting.  ``report.phase_seconds``
    records the screen and search wall clocks.

    Args:
        series: name -> series mapping; all series must share a length.
        config: search parameters; ``config.td_max`` bounds the screen
            delay band and ``config.screen_margin`` is the default
            conservatism margin.
        pairs: explicit (source, target) pairs; default: all unordered
            combinations of the collection's names.
        screen_threshold: stage-1 nominal threshold on the best |r|.
        nmi_threshold: stage-2 nominal threshold on the coarse NMI.
        screen_margin: conservatism margin subtracted from both nominal
            thresholds before pruning (default
            ``config.screen_margin``).  ``0`` prunes at the nominal
            thresholds; ``inf`` prunes nothing.
        screen_window: stage-1 window size (default
            ``max(config.s_min, min(config.s_max, 64))``).  Larger
            windows suppress the spurious-maximum noise floor of the
            screen (it shrinks like ``sqrt(log(K)/m)``) at the cost of
            diluting couplings much shorter than the window; see GUIDE
            §14 for tuning.
        engine: optional preconfigured engine for stage 3.
        n_jobs: worker processes for both the stage-1 screen blocks and
            the stage-3 searches (see
            :func:`~repro.analysis.pairwise.scan_pairs`).
        store_path: directory of the series store the collection was
            attached from.  Stage 1 then serves its per-series state
            from the store's memory-mapped screen cache (built once,
            reused across scans), and pool workers memory-map instead
            of copying.
        screen_block: pairs per stage-1 batch (default
            ``config.screen_block``).  Any block size produces
            bit-identical scores; larger blocks amortize kernel launch
            overhead against peak memory.
        force_parallel: run requested pools even on a 1-core host,
            where the default falls back to serial (see
            :func:`repro.analysis.parallel.effective_workers`).
        plan: how stage 3 searches the survivors.  ``None`` (the
            default) keeps the plain full-resolution search, preserving
            byte-identity with PR-9 cascades.  A
            :class:`~repro.analysis.planner.SearchPlan` or a plan
            shorthand string (``"coarse=8"``) runs every survivor
            through that plan; the string ``"auto"`` asks
            :func:`repro.analysis.planner.auto_plan` to pick from the
            *post-screen* workload shape -- the survivor count, not the
            all-pairs count, which is the whole point of composing the
            cascade with the planner.

    Returns:
        A :class:`~repro.analysis.pairwise.PairwiseReport` with the
        survivors' findings and the cascade's pruning ledger.
    """
    names = list(series)
    lengths = {series[name].size for name in names}
    if len(lengths) > 1:
        raise ValueError(f"all series must share a length, got {sorted(lengths)}")
    pair_list = list(combinations(names, 2)) if pairs is None else list(pairs)
    for source, target in pair_list:
        if source not in series or target not in series:
            raise KeyError(f"unknown series in pair ({source!r}, {target!r})")

    margin = config.screen_margin if screen_margin is None else float(screen_margin)
    if not margin >= 0:  # also rejects NaN
        raise ValueError(f"screen_margin must be >= 0, got {margin}")
    window = max(config.s_min, min(config.s_max, 64)) if screen_window is None else screen_window
    block = config.screen_block if screen_block is None else int(screen_block)
    if block < 1:
        raise ValueError(f"screen_block must be >= 1, got {block}")
    fft_cut = screen_threshold - margin
    nmi_cut = nmi_threshold - margin

    def _stage2(source: str, target: str) -> str:
        x, y = series[source], series[target]
        if min(x.size, y.size) < 8:
            return "search"  # too short for any NMI probe: the screen abstains
        try:
            nmi_score = coarse_nmi_score(x, y, td_max=config.td_max)
        except Exception:  # noqa: BLE001 - a crashed screen abstains
            nmi_score = float("inf")
        if nmi_score < nmi_cut:
            return "nmi"
        return "search"

    def _decide() -> List[Tuple[Tuple[str, str], str]]:
        if not pair_list:
            return []
        length = series[pair_list[0][0]].size
        if length < 1:
            fft_scores = [float("inf")] * len(pair_list)  # nothing to screen
        else:
            geometry = ScreenGeometry(length=length, window=window, td_max=config.td_max)
            fft_scores = _screen_scores(
                series, pair_list, geometry, block, n_jobs, store_path, force_parallel
            )
        return [
            (pair, "fft" if score < fft_cut else _stage2(*pair))
            for pair, score in zip(pair_list, fft_scores)
        ]

    decisions, screen_seconds = timed(_decide)
    survivors = [pair for pair, stage in decisions if stage == "search"]

    # Resolved against the *survivor* count: an "auto" plan sees the
    # workload stage 3 actually faces, not the all-pairs count.
    series_len = series[pair_list[0][0]].size if pair_list else 0
    stage3_plan = resolve_plan(plan, config, series_len, len(survivors), n_jobs)

    report, search_seconds = timed(
        lambda: scan_pairs(
            series,
            config,
            pairs=survivors,
            prefilter_threshold=0.0,
            engine=engine,
            n_jobs=n_jobs,
            store_path=None if store_path is None else str(store_path),
            plan=stage3_plan,
        )
    )
    report.skipped.extend(pair for pair, stage in decisions if stage != "search")
    report.pairs_screened = len(pair_list)
    report.pairs_pruned_fft = sum(1 for _, stage in decisions if stage == "fft")
    report.pairs_pruned_nmi = sum(1 for _, stage in decisions if stage == "nmi")
    report.pairs_searched = len(survivors)
    report.phase_seconds["screen"] = screen_seconds
    report.phase_seconds["search"] = search_seconds
    return report


def _format_top(report: PairwiseReport, k: int) -> str:
    """Render the top-k ranking of a report as plain lines."""
    lines = [f"top {k} pairs:"]
    for rank, f in enumerate(report.top(k), start=1):
        delays = "-" if f.delay_range is None else f"[{f.delay_range[0]}, {f.delay_range[1]}]"
        lines.append(
            f"  {rank}. {f.source} -> {f.target}: nmi={f.best_nmi:.2f} "
            f"windows={f.windows} delays={delays}"
        )
    if len(lines) == 1:
        lines.append("  (no correlated pairs)")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``tycos-scan``; returns a process exit code.

    Scans every pair of a collection through the prescreen cascade::

        tycos-scan plugs.csv --td-max 48 --n-jobs -1
        tycos-scan plugs.csv --store /tmp/plugs.store --top-k 10
        tycos-scan /tmp/plugs.store --screen-margin 0   # re-scan a store
        tycos-scan plugs.csv --no-screen                # unscreened scan

    The positional input is a header-row CSV file or an existing series
    store directory (:mod:`repro.analysis.store`).  ``--store DIR``
    packs a CSV input into a store first, so pool workers memory-map the
    collection instead of receiving copies.
    """
    parser = argparse.ArgumentParser(
        prog="tycos-scan",
        description="All-pairs TYCOS scan with an FFT + coarse-NMI prescreen cascade.",
    )
    parser.add_argument("input", help="CSV file (header row) or series store directory")
    parser.add_argument(
        "--screen", dest="screen", action="store_true", default=True,
        help="prescreen pairs with the FFT + coarse-NMI cascade (default)",
    )
    parser.add_argument(
        "--no-screen", dest="screen", action="store_false",
        help="disable the cascade and search every pair",
    )
    parser.add_argument(
        "--screen-threshold", type=float, default=0.6,
        help="stage-1 nominal threshold on the best windowed |r| (default 0.6)",
    )
    parser.add_argument(
        "--nmi-threshold", type=float, default=0.3,
        help="stage-2 nominal threshold on the coarse NMI probe (default 0.3)",
    )
    parser.add_argument(
        "--screen-margin", type=float, default=None,
        help="conservatism margin subtracted from both screen thresholds "
             "(default: config screen_margin = 0.25; 0 prunes at the nominal "
             "thresholds, inf prunes nothing)",
    )
    parser.add_argument(
        "--screen-window", type=int, default=None,
        help="stage-1 window size (default: clamp(64, s_min, s_max))",
    )
    parser.add_argument(
        "--screen-block", type=int, default=None,
        help="pairs per batched stage-1 screen block (default: config "
             "screen_block = 256; any size scores bit-identically)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="append the per-phase wall-clock ledger (screen vs search) "
             "to the report",
    )
    parser.add_argument(
        "--plan", default=None, metavar="SPEC",
        help="execution plan of the stage-3 searches: 'plain', "
             "'segments=K', 'coarse=F', a composition "
             "('segments=K,coarse=F' runs coarse-to-fine inside each "
             "segment), or 'auto' to pick from the post-screen workload "
             "shape (default: the plain search, byte-identical to "
             "pre-planner scans)",
    )
    parser.add_argument(
        "--explain-plan", action="store_true",
        help="print the chosen stage-3 plan (stages, parameters, "
             "rationale) without running the scan; with --plan auto the "
             "explanation is computed against the all-pairs count, since "
             "the screen has not run",
    )
    parser.add_argument(
        "--store", default=None, metavar="DIR",
        help="pack a CSV input into a series store at DIR and scan from it "
             "(pool workers then memory-map the collection)",
    )
    parser.add_argument(
        "--top-k", type=int, default=None,
        help="also print the k strongest pairs as a ranked list",
    )
    parser.add_argument("--sigma", type=float, default=0.3)
    parser.add_argument("--epsilon-ratio", type=float, default=0.25)
    parser.add_argument("--s-min", type=int, default=20)
    parser.add_argument("--s-max", type=int, default=200)
    parser.add_argument("--td-max", type=int, default=48)
    parser.add_argument("--jitter", type=float, default=1e-6)
    parser.add_argument("--permutations", type=int, default=10)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--n-jobs", type=int, default=1,
        help="worker processes for the full searches (-1: all cores)",
    )
    parser.add_argument("--backend", choices=["auto", "numpy", "numba"], default="numpy")
    parser.add_argument("--precision", choices=["float64", "float32"], default="float64")
    args = parser.parse_args(argv)

    config = TycosConfig(
        sigma=args.sigma,
        epsilon_ratio=args.epsilon_ratio,
        s_min=args.s_min,
        s_max=args.s_max,
        td_max=args.td_max,
        jitter=args.jitter,
        significance_permutations=args.permutations,
        seed=args.seed,
        backend=args.backend,
        precision=args.precision,
    )

    from repro.analysis.csvio import read_csv_series
    from repro.analysis.store import SeriesStore

    source = Path(args.input)
    store_path: Optional[str] = None
    if source.is_dir():
        if args.store is not None:
            parser.error("--store is for packing a CSV input; the input is already a store")
        store = SeriesStore.open(source)
        series = store.series()
        store_path = str(source)
    else:
        series = read_csv_series(source)
        if args.store is not None:
            store = SeriesStore.write(args.store, series)
            series = store.series()
            store_path = args.store

    if args.explain_plan:
        from repro.analysis.planner import explain_plan, plan_from_config

        names = list(series)
        n_pairs = len(names) * (len(names) - 1) // 2
        series_len = series[names[0]].size if names else 0
        chosen = resolve_plan(args.plan, config, series_len, n_pairs, args.n_jobs)
        if chosen is None:
            chosen = plan_from_config(config)
        print(explain_plan(chosen, config))
        return 0

    if args.screen:
        report = cascade_scan(
            series,
            config,
            screen_threshold=args.screen_threshold,
            nmi_threshold=args.nmi_threshold,
            screen_margin=args.screen_margin,
            screen_window=args.screen_window,
            screen_block=args.screen_block,
            n_jobs=args.n_jobs,
            store_path=store_path,
            plan=args.plan,
        )
    else:
        report, search_seconds = timed(
            lambda: scan_pairs(
                series,
                config,
                n_jobs=args.n_jobs,
                store_path=store_path,
                plan=args.plan,
            )
        )
        report.phase_seconds["search"] = search_seconds

    print(report.to_text(include_timings=args.profile))
    if args.top_k is not None:
        print(_format_top(report, args.top_k))
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Staged all-pairs prescreen cascade (and the ``tycos-scan`` CLI).

The paper's energy study scans 72 plugs -- 2 556 pairs -- but the
production shape in ROADMAP.md is *thousands* of series, where the
quadratic pair count makes the full KSG search per pair the dominant
cost and most pairs are obviously unrelated.  This module prunes pairs
**before** any KSG estimate with a three-stage cascade:

1. **FFT screen** (:func:`fft_screen_score`): cheap linear proxies over
   every pair -- the batched windowed-PCC band scan
   (:func:`repro.baselines.pearson.sliding_pcc_band`) over the delay
   band, plus MASS distance profiles
   (:func:`repro.baselines.mass.mass_distance_profile`) converted to
   correlation scores through ``d^2 = 2m(1 - r)``.  Both are
   O(n log n)-class and touch no KSG machinery.
2. **Coarse NMI screen** (:func:`coarse_nmi_score`): the repository's
   one coarse-NMI filtering mechanism (formerly
   ``pairwise.prefilter_score``, which now wraps this), run only on
   stage-1 survivors.
3. **Full TYCOS search**: :func:`repro.analysis.pairwise.scan_pairs`
   (serial or pooled) on pairs that passed both screens, in the
   original pair order.

The screens are linear/coarse proxies for an information-theoretic
search, so they must under-bid: a pair is pruned only when its score
falls below ``threshold - screen_margin``
(:attr:`repro.core.config.TycosConfig.screen_margin`).  ``margin=0`` is
the explicit opt-out of that conservatism; ``margin=inf`` disables
pruning entirely, making :func:`cascade_scan` byte-identical to the
unscreened :func:`~repro.analysis.pairwise.scan_pairs` -- the bench
recall gate asserts exactly that discipline before any speedup is
reported.  A screen that cannot produce evidence (series shorter than
the screen window) or raises *abstains*: the pair passes to the next
stage rather than being silently dropped.
"""

from __future__ import annotations

import argparse
import sys
from itertools import combinations
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from repro._types import FloatArray
from repro.analysis.pairwise import PairwiseReport, scan_pairs
from repro.baselines.mass import mass_distance_profile
from repro.baselines.pearson import sliding_pcc_band
from repro.core.config import TycosConfig
from repro.core.tycos import Tycos
from repro.mi.normalized import normalized_mi

__all__ = [
    "coarse_nmi_score",
    "fft_screen_score",
    "cascade_scan",
    "main",
]


def coarse_nmi_score(
    x: FloatArray,
    y: FloatArray,
    probe: int = 128,
    stride: int = 3,
    td_max: int = 0,
) -> float:
    """A cheap relatedness score: best normalized MI over coarse probes.

    The cascade's stage-2 screen (and the implementation behind the
    deprecated :func:`repro.analysis.pairwise.prefilter_score` wrapper).
    Not a substitute for the search -- it only sees a few window
    positions -- but a pair whose every probe is flat noise is unlikely
    to reward a full TYCOS run.  When ``td_max`` is positive every delay
    in ``[-td_max, td_max]`` is probed at each position, because a
    lagged coupling carries *no* aligned information at all.

    Args:
        x: first series.
        y: second series.
        probe: probe window size.
        stride: number of probe positions (evenly spaced).
        td_max: largest |delay| to probe.

    Returns:
        The maximum normalized MI over all probes.
    """
    n = min(x.size, y.size)
    if n < probe + td_max:
        return normalized_mi(x[:n], y[:n]) if n >= 8 else 0.0
    best = 0.0
    positions = np.linspace(td_max, n - probe - td_max, stride).astype(int)
    for s in positions:
        xw = x[s : s + probe]
        for tau in range(-td_max, td_max + 1):
            best = max(best, normalized_mi(xw, y[s + tau : s + tau + probe]))
    return best


def fft_screen_score(
    x: FloatArray,
    y: FloatArray,
    window: int,
    td_max: int,
    mass_probes: int = 3,
) -> float:
    """Stage-1 screen: the best linear-correlation evidence of a pair.

    Two complementary FFT-class proxies, combined by maximum:

    * the batched windowed-PCC scan over every window start at every
      delay in ``[-td_max, td_max]`` (all starts, bounded delays), and
    * MASS distance profiles of a few query subsequences of ``x``
      against all of ``y`` (few starts, *all* offsets), converted to
      correlation through ``d^2 = 2m(1 - r)``; both the best and the
      worst match are used so anti-correlated shapes score by |r| too.

    Args:
        x: first series.
        y: second series (same length).
        window: screen window size ``m >= 2``.
        td_max: largest |delay| of the PCC band.
        mass_probes: number of MASS query positions (evenly spaced).

    Returns:
        The largest |r| either proxy found, or ``inf`` when the series
        are too short for any window to fit -- an abstaining screen must
        pass the pair, never prune it.
    """
    x = np.asarray(x, dtype=np.float64).ravel()
    y = np.asarray(y, dtype=np.float64).ravel()
    m = window
    best = 0.0
    fitted = False
    band = list(range(-td_max, td_max + 1))
    for row in sliding_pcc_band(x, y, m, band):
        if row.size:
            fitted = True
            best = max(best, float(np.max(np.abs(row))))
    n = min(x.size, y.size)
    if n >= m and mass_probes > 0:
        positions = np.linspace(0, x.size - m, mass_probes).astype(int)
        for s in positions:
            profile = mass_distance_profile(x[s : s + m], y)
            fitted = True
            r_hi = 1.0 - float(np.min(profile)) ** 2 / (2.0 * m)
            r_lo = 1.0 - float(np.max(profile)) ** 2 / (2.0 * m)
            best = max(best, abs(r_hi), abs(r_lo))
    if not fitted:
        return float("inf")
    return best


def cascade_scan(
    series: Dict[str, FloatArray],
    config: TycosConfig,
    pairs: Optional[Iterable[Tuple[str, str]]] = None,
    screen_threshold: float = 0.6,
    nmi_threshold: float = 0.3,
    screen_margin: Optional[float] = None,
    screen_window: Optional[int] = None,
    engine: Optional[Tycos] = None,
    n_jobs: Optional[int] = None,
    store_path: Optional[Union[str, Path]] = None,
) -> PairwiseReport:
    """Run the prescreen cascade over every pair of a collection.

    Stage 1 (:func:`fft_screen_score`) and stage 2
    (:func:`coarse_nmi_score`) prune pairs whose score falls below
    ``threshold - margin``; stage 3 runs the full TYCOS search on the
    survivors **in the original pair order**, so with nothing pruned the
    result is byte-identical to the unscreened
    :func:`~repro.analysis.pairwise.scan_pairs`.  Pruned pairs are
    reported in ``report.skipped`` (original order) and the per-stage
    ledger in the ``pairs_*`` counters, which always satisfy
    ``pairs_pruned_fft + pairs_pruned_nmi + pairs_searched ==
    pairs_screened`` -- a screen that raises abstains (the pair advances)
    rather than breaking the accounting.

    Args:
        series: name -> series mapping; all series must share a length.
        config: search parameters; ``config.td_max`` bounds the screen
            delay band and ``config.screen_margin`` is the default
            conservatism margin.
        pairs: explicit (source, target) pairs; default: all unordered
            combinations of the collection's names.
        screen_threshold: stage-1 nominal threshold on the best |r|.
        nmi_threshold: stage-2 nominal threshold on the coarse NMI.
        screen_margin: conservatism margin subtracted from both nominal
            thresholds before pruning (default
            ``config.screen_margin``).  ``0`` prunes at the nominal
            thresholds; ``inf`` prunes nothing.
        screen_window: stage-1 window size (default
            ``max(config.s_min, min(config.s_max, 64))``).  Larger
            windows suppress the spurious-maximum noise floor of the
            screen (it shrinks like ``sqrt(log(K)/m)``) at the cost of
            diluting couplings much shorter than the window; see GUIDE
            §14 for tuning.
        engine: optional preconfigured engine for stage 3.
        n_jobs: stage-3 worker processes (see
            :func:`~repro.analysis.pairwise.scan_pairs`).
        store_path: directory of the series store the collection was
            attached from, forwarded to the pool so workers memory-map
            instead of copying.

    Returns:
        A :class:`~repro.analysis.pairwise.PairwiseReport` with the
        survivors' findings and the cascade's pruning ledger.
    """
    names = list(series)
    lengths = {series[name].size for name in names}
    if len(lengths) > 1:
        raise ValueError(f"all series must share a length, got {sorted(lengths)}")
    pair_list = list(combinations(names, 2)) if pairs is None else list(pairs)
    for source, target in pair_list:
        if source not in series or target not in series:
            raise KeyError(f"unknown series in pair ({source!r}, {target!r})")

    margin = config.screen_margin if screen_margin is None else float(screen_margin)
    if not margin >= 0:  # also rejects NaN
        raise ValueError(f"screen_margin must be >= 0, got {margin}")
    window = max(config.s_min, min(config.s_max, 64)) if screen_window is None else screen_window
    fft_cut = screen_threshold - margin
    nmi_cut = nmi_threshold - margin

    def _stage(source: str, target: str) -> str:
        x, y = series[source], series[target]
        try:
            fft_score = fft_screen_score(x, y, window, config.td_max)
        except Exception:  # noqa: BLE001 - a crashed screen abstains
            fft_score = float("inf")
        if fft_score < fft_cut:
            return "fft"
        if min(x.size, y.size) < 8:
            return "search"  # too short for any NMI probe: the screen abstains
        try:
            nmi_score = coarse_nmi_score(x, y, td_max=config.td_max)
        except Exception:  # noqa: BLE001 - a crashed screen abstains
            nmi_score = float("inf")
        if nmi_score < nmi_cut:
            return "nmi"
        return "search"

    decisions = [(pair, _stage(*pair)) for pair in pair_list]
    survivors = [pair for pair, stage in decisions if stage == "search"]

    report = scan_pairs(
        series,
        config,
        pairs=survivors,
        prefilter_threshold=0.0,
        engine=engine,
        n_jobs=n_jobs,
        store_path=None if store_path is None else str(store_path),
    )
    report.skipped.extend(pair for pair, stage in decisions if stage != "search")
    report.pairs_screened = len(pair_list)
    report.pairs_pruned_fft = sum(1 for _, stage in decisions if stage == "fft")
    report.pairs_pruned_nmi = sum(1 for _, stage in decisions if stage == "nmi")
    report.pairs_searched = len(survivors)
    return report


def _format_top(report: PairwiseReport, k: int) -> str:
    """Render the top-k ranking of a report as plain lines."""
    lines = [f"top {k} pairs:"]
    for rank, f in enumerate(report.top(k), start=1):
        delays = "-" if f.delay_range is None else f"[{f.delay_range[0]}, {f.delay_range[1]}]"
        lines.append(
            f"  {rank}. {f.source} -> {f.target}: nmi={f.best_nmi:.2f} "
            f"windows={f.windows} delays={delays}"
        )
    if len(lines) == 1:
        lines.append("  (no correlated pairs)")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``tycos-scan``; returns a process exit code.

    Scans every pair of a collection through the prescreen cascade::

        tycos-scan plugs.csv --td-max 48 --n-jobs -1
        tycos-scan plugs.csv --store /tmp/plugs.store --top-k 10
        tycos-scan /tmp/plugs.store --screen-margin 0   # re-scan a store
        tycos-scan plugs.csv --no-screen                # unscreened scan

    The positional input is a header-row CSV file or an existing series
    store directory (:mod:`repro.analysis.store`).  ``--store DIR``
    packs a CSV input into a store first, so pool workers memory-map the
    collection instead of receiving copies.
    """
    parser = argparse.ArgumentParser(
        prog="tycos-scan",
        description="All-pairs TYCOS scan with an FFT + coarse-NMI prescreen cascade.",
    )
    parser.add_argument("input", help="CSV file (header row) or series store directory")
    parser.add_argument(
        "--screen", dest="screen", action="store_true", default=True,
        help="prescreen pairs with the FFT + coarse-NMI cascade (default)",
    )
    parser.add_argument(
        "--no-screen", dest="screen", action="store_false",
        help="disable the cascade and search every pair",
    )
    parser.add_argument(
        "--screen-threshold", type=float, default=0.6,
        help="stage-1 nominal threshold on the best windowed |r| (default 0.6)",
    )
    parser.add_argument(
        "--nmi-threshold", type=float, default=0.3,
        help="stage-2 nominal threshold on the coarse NMI probe (default 0.3)",
    )
    parser.add_argument(
        "--screen-margin", type=float, default=None,
        help="conservatism margin subtracted from both screen thresholds "
             "(default: config screen_margin = 0.25; 0 prunes at the nominal "
             "thresholds, inf prunes nothing)",
    )
    parser.add_argument(
        "--screen-window", type=int, default=None,
        help="stage-1 window size (default: clamp(64, s_min, s_max))",
    )
    parser.add_argument(
        "--store", default=None, metavar="DIR",
        help="pack a CSV input into a series store at DIR and scan from it "
             "(pool workers then memory-map the collection)",
    )
    parser.add_argument(
        "--top-k", type=int, default=None,
        help="also print the k strongest pairs as a ranked list",
    )
    parser.add_argument("--sigma", type=float, default=0.3)
    parser.add_argument("--epsilon-ratio", type=float, default=0.25)
    parser.add_argument("--s-min", type=int, default=20)
    parser.add_argument("--s-max", type=int, default=200)
    parser.add_argument("--td-max", type=int, default=48)
    parser.add_argument("--jitter", type=float, default=1e-6)
    parser.add_argument("--permutations", type=int, default=10)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--n-jobs", type=int, default=1,
        help="worker processes for the full searches (-1: all cores)",
    )
    parser.add_argument("--backend", choices=["auto", "numpy", "numba"], default="numpy")
    parser.add_argument("--precision", choices=["float64", "float32"], default="float64")
    args = parser.parse_args(argv)

    config = TycosConfig(
        sigma=args.sigma,
        epsilon_ratio=args.epsilon_ratio,
        s_min=args.s_min,
        s_max=args.s_max,
        td_max=args.td_max,
        jitter=args.jitter,
        significance_permutations=args.permutations,
        seed=args.seed,
        backend=args.backend,
        precision=args.precision,
    )

    from repro.analysis.csvio import read_csv_series
    from repro.analysis.store import SeriesStore

    source = Path(args.input)
    store_path: Optional[str] = None
    if source.is_dir():
        if args.store is not None:
            parser.error("--store is for packing a CSV input; the input is already a store")
        store = SeriesStore.open(source)
        series = store.series()
        store_path = str(source)
    else:
        series = read_csv_series(source)
        if args.store is not None:
            store = SeriesStore.write(args.store, series)
            series = store.series()
            store_path = args.store

    if args.screen:
        report = cascade_scan(
            series,
            config,
            screen_threshold=args.screen_threshold,
            nmi_threshold=args.nmi_threshold,
            screen_margin=args.screen_margin,
            screen_window=args.screen_window,
            n_jobs=args.n_jobs,
            store_path=store_path,
        )
    else:
        report = scan_pairs(series, config, n_jobs=args.n_jobs, store_path=store_path)

    print(report.to_text())
    if args.top_k is not None:
        print(_format_top(report, args.top_k))
    return 0


if __name__ == "__main__":
    sys.exit(main())

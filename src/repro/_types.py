"""Shared static-typing aliases for the repro package.

Centralizing the ndarray aliases keeps signatures short and makes the
dtype conventions explicit: the numerical pipeline works in float64
end-to-end, and index arrays are int64.
"""

from __future__ import annotations

from typing import Any, Callable, Tuple

import numpy as np
import numpy.typing as npt

__all__ = ["FloatArray", "IntArray", "AnyArray", "ArrayPair", "WindowKey", "Scorer"]

#: A 1-D or 2-D array of float64 samples.
FloatArray = npt.NDArray[np.float64]

#: An array of int64 indices or counts.
IntArray = npt.NDArray[np.int64]

#: Anything numpy can coerce into an array (accepted at API boundaries).
AnyArray = npt.ArrayLike

#: A paired (x, y) sample extracted from a window.
ArrayPair = Tuple[FloatArray, FloatArray]

#: Hashable identity of a TimeDelayWindow: (start, end, delay).
WindowKey = Tuple[int, int, int]

#: A window -> objective-value callable (the search's scoring interface).
Scorer = Callable[[Any], float]

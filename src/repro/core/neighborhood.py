"""Delta-neighborhoods of a window (paper Definitions 5.1 / 5.2, Fig. 5).

A window lives in the 3-D grid (start, end, delay).  Its delta-neighbors
are the windows reachable by nudging one or more of the three indices by a
``delta`` step; the r-th neighborhood ``N_r`` is the Chebyshev ring at
radius ``r`` (in delta units) around the window -- ``N_1`` is the 26-window
shell of Fig. 5, ``N_2`` the next shell, and so on.

Every generated neighbor carries its *direction* (the sign vector of the
index offsets), which the noise-pruning layer (Section 6.2.2) uses to block
whole exploration directions once their extension is identified as noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from itertools import product
from typing import FrozenSet, Iterator, List, Tuple

from repro.core.window import TimeDelayWindow

__all__ = ["Direction", "Neighbor", "neighborhood"]

# A direction is the sign vector (d_start, d_end, d_delay) in {-1, 0, 1}^3.
Direction = Tuple[int, int, int]


@dataclass(frozen=True)
class Neighbor:
    """A candidate window plus the direction it was generated in."""

    window: TimeDelayWindow
    direction: Direction


def _sign(v: int) -> int:
    return (v > 0) - (v < 0)


@lru_cache(maxsize=None)
def _shell(radius: int) -> Tuple[Tuple[int, int, int, Direction], ...]:
    """The (ds, de, dt, direction) offsets of the radius-r Chebyshev shell.

    The shell depends only on ``radius`` (26 entries for r=1, 98 for r=2,
    ...), so it is enumerated once and reused by every ``neighborhood``
    call, in the same ``itertools.product`` order.
    """
    steps = range(-radius, radius + 1)
    return tuple(
        (ds, de, dt, (_sign(ds), _sign(de), _sign(dt)))
        for ds, de, dt in product(steps, steps, steps)
        if max(abs(ds), abs(de), abs(dt)) == radius
    )


def neighborhood(
    window: TimeDelayWindow,
    radius: int,
    delta: int,
    n: int,
    s_min: int,
    s_max: int,
    td_max: int,
    blocked: FrozenSet[Direction] = frozenset(),
) -> List[Neighbor]:
    """The feasible delta-neighbors of ``window`` on the radius-r shell.

    Args:
        window: the current solution.
        radius: shell index r (``N_r``); offsets range over
            ``{-r*delta, ..., -delta, 0, delta, ..., r*delta}`` with
            Chebyshev norm exactly ``r`` in delta units.
        delta: the delta moving step.
        n: series length (for feasibility checks).
        s_min: minimum window size.
        s_max: maximum window size.
        td_max: maximum absolute delay.
        blocked: directions to omit -- a neighbor is skipped when its
            direction matches a blocked one on every non-zero axis of the
            blocked direction (so blocking ``(0, 1, 0)`` removes all
            end-extending moves, including diagonal ones).

    Returns:
        Feasible :class:`Neighbor` candidates (possibly empty).
    """
    if radius < 1:
        raise ValueError(f"radius must be >= 1, got {radius}")
    out: List[Neighbor] = []
    w_start, w_end, w_delay = window.start, window.end, window.delay
    for ds, de, dt, direction in _shell(radius):
        if blocked and _is_blocked(direction, blocked):
            continue
        start = w_start + ds * delta
        end = w_end + de * delta
        delay = w_delay + dt * delta
        # Feasibility (TimeDelayWindow.is_feasible) checked on plain ints
        # first, so only the feasible neighbors pay window construction.
        if (
            start < 0
            or end >= n
            or not s_min <= end - start + 1 <= s_max
            or abs(delay) > td_max
            or start + delay < 0
            or end + delay >= n
        ):
            continue
        cand = TimeDelayWindow(start=start, end=end, delay=delay)
        out.append(Neighbor(window=cand, direction=direction))
    return out


@lru_cache(maxsize=4096)
def _is_blocked(direction: Direction, blocked: FrozenSet[Direction]) -> bool:
    """A direction is blocked when it moves the same way as a blocked one
    on every axis the blocked direction constrains.

    Memoized: there are only 27 directions and a handful of distinct
    blocked sets per search, but the test runs for every candidate of
    every ring.
    """
    for b in blocked:
        if all(bb == 0 or dd == bb for bb, dd in zip(b, direction)):
            if any(bb != 0 for bb in b):
                return True
    return False


def axis_directions() -> Iterator[Direction]:
    """The six pure single-axis directions (used by the noise detector)."""
    for axis in range(3):
        for sign in (-1, 1):
            d = [0, 0, 0]
            d[axis] = sign
            yield tuple(d)  # type: ignore[misc]

"""Time delay windows (paper Definitions 4.2 - 4.5, 6.2, 6.3).

A :class:`TimeDelayWindow` ``w = ([t_s, t_e], tau)`` pairs the events of
``X_T`` in ``[t_s, t_e]`` with the events of ``Y_T`` in
``[t_s + tau, t_e + tau]``.  Both endpoints are inclusive sample indices.
``tau`` may be zero (synchronous), positive (Y lags X) or negative (X lags
Y), covering all shifting scenarios of Fig. 1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._types import AnyArray, ArrayPair, FloatArray, WindowKey

__all__ = ["TimeDelayWindow", "PairView"]


@dataclass(frozen=True, order=True)
class TimeDelayWindow:
    """A time delay window identified by (start, end, delay).

    Attributes:
        start: first sample index on ``X_T`` (``t_s``), inclusive.
        end: last sample index on ``X_T`` (``t_e``), inclusive.
        delay: the shift ``tau`` of the Y window relative to the X window.
    """

    start: int
    end: int
    delay: int = 0

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError(f"start must be >= 0, got {self.start}")
        if self.end < self.start:
            raise ValueError(f"end ({self.end}) must be >= start ({self.start})")

    @property
    def size(self) -> int:
        """Number of time steps covered, ``|w| = t_e - t_s + 1``."""
        return self.end - self.start + 1

    @property
    def y_start(self) -> int:
        """First sample index of the mapped window on ``Y_T``."""
        return self.start + self.delay

    @property
    def y_end(self) -> int:
        """Last sample index of the mapped window on ``Y_T``."""
        return self.end + self.delay

    def x_indices(self) -> range:
        """Sample indices on ``X_T``."""
        return range(self.start, self.end + 1)

    def is_feasible(self, n: int, s_min: int, s_max: int, td_max: int) -> bool:
        """Check the problem-statement constraints against a series of length n.

        Feasible means: the window fits inside both series, its size lies in
        ``[s_min, s_max]`` and ``|tau| <= td_max``.
        """
        return (
            s_min <= self.size <= s_max
            and abs(self.delay) <= td_max
            and self.start >= 0
            and self.end < n
            and self.y_start >= 0
            and self.y_end < n
        )

    def contains(self, other: "TimeDelayWindow") -> bool:
        """True when this window's X interval contains ``other``'s.

        Containment (the ``w_i (subset) w_j`` of the problem statement) is
        judged on the X-side interval: two windows over the same stretch of
        ``X_T`` describe the same underlying event regardless of the exact
        delay at which the echo on ``Y_T`` was strongest.
        """
        return self.start <= other.start and other.end <= self.end

    def overlaps(self, other: "TimeDelayWindow") -> bool:
        """True when the X intervals of the two windows intersect."""
        return self.start <= other.end and other.start <= self.end

    def overlap_fraction(self, other: "TimeDelayWindow") -> float:
        """Jaccard overlap of the two X intervals, in [0, 1]."""
        inter = min(self.end, other.end) - max(self.start, other.start) + 1
        if inter <= 0:
            return 0.0
        union = max(self.end, other.end) - min(self.start, other.start) + 1
        return inter / union

    def is_consecutive_with(self, other: "TimeDelayWindow") -> bool:
        """Definition 6.2: ``other`` starts right after this window ends,
        with the same delay."""
        return other.start == self.end + 1 and other.delay == self.delay

    def concat(self, other: "TimeDelayWindow") -> "TimeDelayWindow":
        """Definition 6.3: concatenation ``w'' = w (.) w'`` of consecutive windows.

        Raises:
            ValueError: if the windows are not consecutive.
        """
        if not self.is_consecutive_with(other):
            raise ValueError(f"{self} and {other} are not consecutive")
        return TimeDelayWindow(start=self.start, end=other.end, delay=self.delay)

    def shifted(self, d_start: int = 0, d_end: int = 0, d_delay: int = 0) -> "TimeDelayWindow":
        """A copy with the three indices nudged; no feasibility check."""
        return TimeDelayWindow(
            start=self.start + d_start,
            end=self.end + d_end,
            delay=self.delay + d_delay,
        )

    def key(self) -> WindowKey:
        """Hashable identity used by caches."""
        return (self.start, self.end, self.delay)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"([{self.start}, {self.end}], tau={self.delay})"


class PairView:
    """A pair of aligned time series plus window extraction helpers.

    Wraps the raw arrays once (validating and optionally de-tying them) so
    the search can cheaply slice out the sub-series of any feasible window.

    Args:
        x: first series ``X_T``.
        y: second series ``Y_T`` (same length, same observation period).
        jitter: when positive, add deterministic noise of this magnitude
            (relative to each series' standard deviation) to break ties.
            Integer-valued or zero-inflated sensor data otherwise produces
            duplicate points, which degrade the KSG estimator.
        seed: seed for the jitter noise.
    """

    x: FloatArray
    y: FloatArray

    def __init__(
        self,
        x: AnyArray,
        y: AnyArray,
        jitter: float = 0.0,
        seed: int = 0,
    ) -> None:
        x = np.asarray(x, dtype=np.float64).ravel()
        y = np.asarray(y, dtype=np.float64).ravel()
        if x.size != y.size:
            raise ValueError(f"series must have equal length, got {x.size} and {y.size}")
        if x.size == 0:
            raise ValueError("series must be non-empty")
        if not (np.all(np.isfinite(x)) and np.all(np.isfinite(y))):
            raise ValueError("series must be finite")
        if jitter > 0.0:
            rng = np.random.default_rng(seed)
            x = x + rng.normal(scale=jitter * (np.std(x) or 1.0), size=x.size)
            y = y + rng.normal(scale=jitter * (np.std(y) or 1.0), size=y.size)
        self.x = x
        self.y = y

    def __len__(self) -> int:
        return self.x.size

    @property
    def n(self) -> int:
        """Length of the observation period."""
        return self.x.size

    def extract(self, window: TimeDelayWindow) -> ArrayPair:
        """The paired sub-series ``(X_w, Y_w)`` of a window (Def. 4.4/4.5).

        Raises:
            IndexError: if the window does not fit inside the series.
        """
        if window.start < 0 or window.end >= self.n:
            raise IndexError(f"{window} exceeds X bounds [0, {self.n - 1}]")
        if window.y_start < 0 or window.y_end >= self.n:
            raise IndexError(f"{window} exceeds Y bounds [0, {self.n - 1}]")
        xw = self.x[window.start : window.end + 1]
        yw = self.y[window.y_start : window.y_end + 1]
        return xw, yw

"""PAA resolution pyramids for coarse-to-fine search.

The paper's title promises *multi-scale* search, and the companion work
on synchronous correlation search (Ho et al., "A Unified Approach for
Multi-Scale Synchronous Correlation Search in Big Time Series") shows
that correlation structure discovered on *aggregated* series reliably
localizes where fine-resolution structure lives.  This module supplies
the aggregation half of that idea: piecewise-aggregate (PAA)
downsampling of a jittered pair into coarse levels, plus the **exact
coordinate mapping** that turns a coarse search hit back into a
full-resolution search region.

Every geometric claim the coarse-to-fine driver
(:mod:`repro.analysis.multiscale`) relies on reduces to one fact, the
**pyramid containment lemma**:

    Coarse cell ``i`` at factor ``f`` aggregates exactly the
    full-resolution samples ``[i * f, min(n, (i + 1) * f) - 1]``, so
    ``t -> t // f`` maps every full-resolution index into the unique
    coarse cell containing it.  Consequently, for any feasible
    full-resolution window ``w = ([t_s, t_e], tau)``:

    1. The coarse image interval ``[t_s // f, t_e // f]`` expands back
       (:func:`footprint`) to a full-resolution interval **containing**
       ``[t_s, t_e]``.
    2. Any coarse delay ``c`` with ``|c * f - tau| <= f - 1`` -- in
       particular ``round(tau / f)`` -- has ``tau`` inside its
       full-resolution delay band (:func:`delay_band`).

    *Proof.* (1) ``(t_s // f) * f <= t_s`` and
    ``t_e < (t_e // f + 1) * f``, by the definition of floor division.
    (2) is the definition of the band. ∎

Therefore a refinement cell built from the coarse image of ``w`` with
any non-negative margin (:func:`refinement_cell`) contains ``w``'s X
interval and delay outright; the margin only buys slack for the coarse
*search* locating the image inexactly.  The lemma is property-tested in
``tests/core/test_pyramid.py`` across factors and lengths not divisible
by the factor, mirroring the segment containment lemma of
:mod:`repro.core.segmentation`.

Downsampled pairs must be constructed **only** through this module
(:func:`build_level` / :func:`paa_downsample`); hand-rolled
reshape-and-mean pooling elsewhere is rejected by tycoslint rule TY008,
because an off-by-one in the pooling silently breaks every coordinate
mapping above.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro._types import FloatArray
from repro.core.config import TycosConfig
from repro.core.window import PairView, TimeDelayWindow

__all__ = [
    "coarse_length",
    "paa_downsample",
    "PyramidLevel",
    "build_level",
    "build_pyramid",
    "cell_span",
    "footprint",
    "delay_band",
    "RefinementCell",
    "refinement_cell",
    "coarse_config",
]

#: Smallest coarse minimal-window length (in coarse samples) the coarse
#: pre-pass will search with.  Below ~12 samples the KSG estimator's
#: noise floor exceeds any usable relaxed threshold and the locator
#: degenerates into accepting noise everywhere.
_S_MIN_FLOOR = 12


def coarse_length(n: int, factor: int) -> int:
    """Number of coarse cells covering ``n`` samples at ``factor``.

    The last cell may be partial when ``n`` is not divisible by the
    factor; it still counts (its mean aggregates the tail samples).
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if factor < 1:
        raise ValueError(f"factor must be >= 1, got {factor}")
    return -(-n // factor)


def paa_downsample(values: FloatArray, factor: int) -> FloatArray:
    """Piecewise-aggregate approximation: exact block means.

    Cell ``i`` of the result is the arithmetic mean of
    ``values[i * factor : (i + 1) * factor]`` (the trailing cell
    averages only the samples that exist).  No interpolation, no
    smoothing kernel: the aggregation is the plain mean the PAA
    literature defines, so the coordinate mapping of this module is
    exact rather than approximate.

    Args:
        values: full-resolution samples.
        factor: samples per coarse cell; 1 returns a copy.

    Returns:
        A float64 array of :func:`coarse_length` block means.
    """
    values = np.asarray(values, dtype=np.float64).ravel()
    n = values.size
    m = coarse_length(n, factor)
    if factor == 1:
        return values.copy()
    out = np.empty(m, dtype=np.float64)
    full = n // factor
    if full:
        out[:full] = values[: full * factor].reshape(full, factor).mean(axis=1)
    if full < m:
        out[full] = values[full * factor :].mean()
    return out


@dataclass(frozen=True)
class PyramidLevel:
    """One resolution level of a pair's PAA pyramid.

    Attributes:
        factor: full-resolution samples aggregated per coarse cell.
        x: coarse first series (block means of the jittered original).
        y: coarse second series.
        base_n: length of the full-resolution pair the level was built
            from (needed to clip expanded footprints).
    """

    factor: int
    x: FloatArray
    y: FloatArray
    base_n: int

    @property
    def n(self) -> int:
        """Number of coarse cells at this level."""
        return int(self.x.size)


def build_level(pair: PairView, factor: int) -> PyramidLevel:
    """Downsample a (already jittered) pair into one coarse level.

    The sanctioned constructor of downsampled pairs (tycoslint TY008):
    both series pass through :func:`paa_downsample` with the same
    factor, so a coarse index means the same thing on both axes.
    """
    if factor < 1:
        raise ValueError(f"factor must be >= 1, got {factor}")
    return PyramidLevel(
        factor=factor,
        x=paa_downsample(pair.x, factor),
        y=paa_downsample(pair.y, factor),
        base_n=pair.n,
    )


def build_pyramid(pair: PairView, factors: Sequence[int]) -> List[PyramidLevel]:
    """Build one :class:`PyramidLevel` per requested factor.

    Args:
        pair: the full-resolution pair (jitter already applied, so every
            level aggregates bit-identical base samples).
        factors: aggregation factors, typically increasing powers of two;
            duplicates and order are preserved as given.
    """
    return [build_level(pair, factor) for factor in factors]


def cell_span(index: int, factor: int, n: int) -> Tuple[int, int]:
    """Inclusive full-resolution sample range of coarse cell ``index``.

    Raises:
        ValueError: when the cell does not exist for a length-``n`` base.
    """
    if index < 0 or index >= coarse_length(n, factor):
        raise ValueError(f"cell {index} out of range for n={n}, factor={factor}")
    lo = index * factor
    hi = min(n, (index + 1) * factor) - 1
    return lo, hi


def footprint(window: TimeDelayWindow, factor: int, n: int) -> Tuple[int, int]:
    """Inclusive full-resolution X interval a coarse window's cells cover.

    By the pyramid containment lemma, the footprint of the coarse image
    of any full-resolution window contains that window's X interval.
    """
    lo, _ = cell_span(window.start, factor, n)
    _, hi = cell_span(window.end, factor, n)
    return lo, hi


def delay_band(
    coarse_delay: int, factor: int, td_max: int, margin: int = 0
) -> Tuple[int, int]:
    """Full-resolution delays whose coarse image is ``coarse_delay``.

    A full-resolution delay ``tau`` shifts the Y interval by ``tau``
    samples, which at factor ``f`` appears as a coarse shift of
    ``tau / f`` -- any coarse delay ``c`` with ``|c * f - tau| <= f - 1``
    is a faithful image.  The inverse is therefore the inclusive band
    ``[c * f - (f - 1), c * f + (f - 1)]``, widened by ``margin`` for
    coarse-search slack and clipped to the feasible ``[-td_max, td_max]``.

    Returns:
        ``(delay_lo, delay_hi)``; always non-empty for a feasible coarse
        delay (``|c| <= ceil(td_max / f)``), because clipping can at most
        pin the band to an endpoint of the feasible range.
    """
    if margin < 0:
        raise ValueError(f"margin must be >= 0, got {margin}")
    center = coarse_delay * factor
    lo = max(-td_max, center - (factor - 1) - margin)
    hi = min(td_max, center + (factor - 1) + margin)
    if lo > hi:
        raise ValueError(
            f"coarse delay {coarse_delay} at factor {factor} maps outside "
            f"|tau| <= {td_max}"
        )
    return lo, hi


@dataclass(frozen=True)
class RefinementCell:
    """A full-resolution search region distilled from one coarse window.

    Attributes:
        lo: first full-resolution index of the region (inclusive).
        hi: end of the region (exclusive, matching
            :data:`repro.core.segmentation.Span` convention).
        delay_lo: smallest full-resolution delay worth probing.
        delay_hi: largest full-resolution delay worth probing.
    """

    lo: int
    hi: int
    delay_lo: int
    delay_hi: int

    @property
    def span(self) -> Tuple[int, int]:
        """The region as a half-open ``(lo, hi)`` span."""
        return (self.lo, self.hi)

    def merge(self, other: "RefinementCell") -> "RefinementCell":
        """Union of two overlapping cells (region and delay band)."""
        return RefinementCell(
            lo=min(self.lo, other.lo),
            hi=max(self.hi, other.hi),
            delay_lo=min(self.delay_lo, other.delay_lo),
            delay_hi=max(self.delay_hi, other.delay_hi),
        )


def refinement_cell(
    window: TimeDelayWindow,
    factor: int,
    n: int,
    td_max: int,
    margin: int,
) -> RefinementCell:
    """The full-resolution ``(region, delay band)`` cell of a coarse hit.

    The region is the coarse window's exact :func:`footprint` expanded by
    ``margin`` samples on each side (clipped to ``[0, n)``); the delay
    band is :func:`delay_band` of the coarse delay with a slack of
    ``ceil(margin / factor)`` coarse-search steps.  With any
    ``margin >= 0`` the cell contains every full-resolution window whose
    coarse image is the given window (the pyramid containment lemma);
    the margin additionally absorbs the coarse LAHC settling a few cells
    or delay steps away from the true optimum.
    """
    if margin < 0:
        raise ValueError(f"margin must be >= 0, got {margin}")
    foot_lo, foot_hi = footprint(window, factor, n)
    lo = max(0, foot_lo - margin)
    hi = min(n, foot_hi + 1 + margin)
    slack = factor * math.ceil(margin / factor) if margin else 0
    d_lo, d_hi = delay_band(window.delay, factor, td_max, margin=slack)
    return RefinementCell(lo=lo, hi=hi, delay_lo=d_lo, delay_hi=d_hi)


def coarse_config(config: TycosConfig, factor: int) -> TycosConfig:
    """The search configuration of the coarse pre-pass at ``factor``.

    Window-geometry bounds scale down by the factor (floored so the KSG
    estimator stays defined: coarse ``s_min`` never drops below
    ``k + 2``), the delay bound scales to ``ceil(td_max / factor)`` so
    every feasible full-resolution delay keeps a coarse image, and the
    acceptance threshold relaxes to
    ``sigma * coarse_sigma_ratio`` because block-mean aggregation can
    only dilute mutual information (paper Theorem 6.1 applied to the
    averaging mixture) -- the coarse pass must locate structure, not
    grade it.  Jitter is zeroed (the level was built from the already
    jittered pair) and the significance gate is disabled (the
    full-resolution refinement re-applies it); ``coarse_factor`` is
    reset to 1 so the pre-pass can never recurse.
    """
    if factor < 1:
        raise ValueError(f"factor must be >= 1, got {factor}")
    if factor == 1:
        return config
    # Floor the coarse minimal window: the KSG noise floor on tiny
    # windows (< ~12 samples) sits above any usable relaxed threshold,
    # so letting s_min/factor collapse to k+2 would turn the locator
    # into a firehose of spurious cells.  Structure shorter than
    # ``_S_MIN_FLOOR * factor`` full-resolution samples is below this
    # pyramid level's resolution -- use a smaller factor for it.
    s_min_c = max(config.k + 2, min(_S_MIN_FLOOR, config.s_min), -(-config.s_min // factor))
    s_max_c = max(s_min_c, -(-config.s_max // factor) + 1)
    td_max_c = -(-config.td_max // factor)
    step = config.init_delay_step
    band_c = None
    if config.delay_band is not None:
        # Outward-rounded coarse image of the user's band: every full-
        # resolution delay tau in [lo, hi] has all its coarse images c
        # with |c * factor - tau| <= factor - 1 inside [lo_c, hi_c].
        lo, hi = config.delay_band
        band_c = (
            max(-td_max_c, (lo - factor + 1) // factor),
            min(td_max_c, -(-(hi + factor - 1) // factor)),
        )
    return config.scaled(
        sigma=config.sigma * config.coarse_sigma_ratio,
        s_min=s_min_c,
        s_max=s_max_c,
        td_max=td_max_c,
        jitter=0.0,
        significance_permutations=0,
        init_delay_step=None if step is None else max(1, -(-step // factor)),
        n_segments=1,
        coarse_factor=1,
        refine_margin=None,
        delay_band=band_c,
    )

"""The MI-based noise theory (paper Section 6).

Theorem 6.1 shows that mixing independent noise into a correlated pair can
only dilute mutual information: ``I(Z; W) = theta * eta * I(X; Y)``.  The
operational consequence (Definition 6.4) is a cheap test for whether a
segment of data is *noise* with respect to an adjacent window:

    ``w'`` is noise w.r.t. ``w``  iff  ``I(w') < epsilon`` and
    ``I(w (.) w') < I(w)``

i.e. the segment carries almost no dependence of its own *and* appending it
makes the combined window worse.  TYCOS_LN applies the test twice:

* :func:`find_initial_window` -- the Fig.-7 bottom-up procedure that locates
  a promising starting window while discarding leading noise.
* :class:`NoiseDetector` -- during neighborhood exploration, a growth
  direction whose extension segment is noise is blocked outright
  (Section 6.2.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Set

from repro.core.config import TycosConfig
from repro.core.neighborhood import Direction, Neighbor
from repro.core.thresholds import BatchScorer
from repro.core.window import TimeDelayWindow

__all__ = ["is_noise", "find_initial_window", "NoiseDetector"]


def is_noise(
    following_value: float,
    concatenated_value: float,
    followed_value: float,
    epsilon: float,
) -> bool:
    """Definition 6.4 noise predicate.

    Args:
        following_value: score of the following window ``w'``.
        concatenated_value: score of the concatenation ``w (.) w'``.
        followed_value: score of the followed window ``w`` (must be > 0 for
            the definition to apply; callers guard this).
        epsilon: the noise threshold, ``0 <= epsilon < sigma``.

    Returns:
        True when ``w'`` is noise with respect to ``w``.
    """
    return following_value < epsilon and concatenated_value < followed_value


def _best_block_over_delays(
    scorer: BatchScorer,
    config: TycosConfig,
    n: int,
    pos: int,
) -> Optional[tuple[TimeDelayWindow, float]]:
    """The best-scoring minimal block at ``pos`` over the coarse delay grid.

    Algorithm 1 seeds at delay 0 only; probing a coarse delay grid at each
    candidate start is the implementation choice that makes distant delay
    basins reachable (see ``TycosConfig.init_delay_step``).
    """
    best: Optional[tuple[TimeDelayWindow, float]] = None
    for tau in config.delay_grid():
        block = _feasible_or_none(pos, pos + config.s_min - 1, tau, n)
        if block is None:
            continue
        value = scorer.value(block)
        if best is None or value > best[1]:
            best = (block, value)
    return best


def find_initial_window(
    scorer: BatchScorer,
    config: TycosConfig,
    n: int,
    scan_from: int,
) -> Optional[TimeDelayWindow]:
    """Initial noise pruning (Section 6.2.1, Fig. 7).

    Starting at ``scan_from``, minimal windows of size ``s_min`` are
    combined hierarchically.  A combination that scores at least ``epsilon``
    becomes the initial solution.  A minimal window identified as noise
    w.r.t. the running combination causes the combination to be discarded
    (it cannot be extended past the noise) and the scan restarts on the
    noisy block itself.  Each minimal block is probed over the coarse
    delay grid so delayed correlations are reachable starting points.

    Args:
        scorer: window evaluator over the pair being searched.
        config: search parameters (s_min, s_max, epsilon ...).
        n: series length.
        scan_from: first X index still unscanned.

    Returns:
        A feasible window with score >= epsilon, or None when the rest of
        the data holds no promising start.
    """
    s_min = config.s_min
    epsilon = config.epsilon
    current: Optional[TimeDelayWindow] = None
    current_value = 0.0
    pos = scan_from
    while pos + s_min - 1 < n:
        probed = _best_block_over_delays(scorer, config, n, pos)
        if probed is None:
            return None
        best_block, best_block_value = probed
        if current is None:
            if best_block_value >= epsilon:
                return best_block
            current, current_value = best_block, best_block_value
            pos += s_min
            continue
        # The continuation block at the current combination's delay (the
        # only one Def. 6.3 can concatenate).
        cont = _feasible_or_none(pos, pos + s_min - 1, current.delay, n)
        if cont is None or current.end + 1 != cont.start:
            current, current_value = best_block, best_block_value
            pos += s_min
            if current_value >= epsilon:
                return current
            continue
        cont_value = scorer.value(cont)
        combined = current.concat(cont)
        if combined.size > config.s_max:
            # The combination cannot grow further within the size bound;
            # restart the hierarchy from the newest block.
            current, current_value = best_block, best_block_value
            pos += s_min
            if current_value >= epsilon:
                return current
            continue
        combined_value = scorer.value(combined)
        # Fig. 7 step 2: the best of {current, block, combined} survives.
        best_value = max(current_value, best_block_value, combined_value)
        if best_value >= epsilon:
            if combined_value == best_value:
                return combined
            return best_block if best_block_value == best_value else current
        if is_noise(cont_value, combined_value, current_value, epsilon):
            # Steps 3.2/3.3: the block poisons the combination; drop the
            # combination entirely and restart from the block (step 4).
            current, current_value = best_block, best_block_value
        else:
            current, current_value = combined, combined_value
        pos += s_min
    return None


@dataclass
class NoiseDetector:
    """Subsequent noise detection during neighborhood exploration (6.2.2).

    Tracks, for the current LAHC solution, which growth directions have
    been proven noisy.  ``filter_neighbors`` removes candidates lying in a
    blocked direction; ``inspect`` runs the Def.-6.4 test on a growth move
    and blocks its direction on a hit.  The blocked set resets whenever the
    search accepts a new solution (the geometry changed).

    Attributes:
        prunes: number of direction blocks issued (for the stats report).
    """

    scorer: BatchScorer
    config: TycosConfig
    n: int
    blocked: Set[Direction] = field(default_factory=set)
    prunes: int = 0

    def reset(self) -> None:
        """Forget blocked directions (called after each accepted move)."""
        self.blocked.clear()

    def filter_neighbors(self, neighbors: list[Neighbor]) -> list[Neighbor]:
        """Drop candidates whose direction matches a blocked one."""
        if not self.blocked:
            return neighbors
        out = []
        for nb in neighbors:
            if not self._direction_blocked(nb.direction):
                out.append(nb)
        return out

    def _direction_blocked(self, direction: Direction) -> bool:
        for b in self.blocked:
            if all(bb == 0 or dd == bb for bb, dd in zip(b, direction)):
                return True
        return False

    def inspect(self, window: TimeDelayWindow, window_value: float) -> None:
        """Test the two growth directions of ``window`` and block noisy ones.

        Growth along +end concatenates the segment ``[end+1, end+blk]``;
        growth along -start prepends ``[start-blk, start-1]``.  The segment
        length is ``max(delta, s_min)`` so the KSG estimate on the segment
        is well defined even for delta = 1 (an implementation necessity the
        paper's C++ code faces equally: MI of a 1-sample segment does not
        exist).
        """
        if window_value <= 0.0:
            return
        blk = max(self.config.delta, self.config.s_min)
        self._inspect_forward(window, window_value, blk)
        self._inspect_backward(window, window_value, blk)

    def _inspect_forward(self, window: TimeDelayWindow, value: float, blk: int) -> None:
        direction: Direction = (0, 1, 0)
        if direction in self.blocked:
            return
        seg_end = window.end + blk
        segment = _feasible_or_none(window.end + 1, seg_end, window.delay, self.n)
        if segment is None:
            return
        concat = TimeDelayWindow(window.start, segment.end, window.delay)
        if concat.size > self.config.s_max or concat.y_end >= self.n:
            return
        seg_value = self.scorer.value(segment)
        concat_value = self.scorer.value(concat)
        if is_noise(seg_value, concat_value, value, self.config.epsilon):
            self.blocked.add(direction)
            self.prunes += 1

    def _inspect_backward(self, window: TimeDelayWindow, value: float, blk: int) -> None:
        direction: Direction = (-1, 0, 0)
        if direction in self.blocked:
            return
        seg_start = window.start - blk
        segment = _feasible_or_none(seg_start, window.start - 1, window.delay, self.n)
        if segment is None:
            return
        concat = TimeDelayWindow(segment.start, window.end, window.delay)
        if concat.size > self.config.s_max or concat.y_start < 0:
            return
        seg_value = self.scorer.value(segment)
        concat_value = self.scorer.value(concat)
        if is_noise(seg_value, concat_value, value, self.config.epsilon):
            self.blocked.add(direction)
            self.prunes += 1


def _feasible_or_none(start: int, end: int, delay: int, n: int) -> Optional[TimeDelayWindow]:
    """Build a window when it fits inside both series, else None."""
    if start < 0 or end >= n or end < start:
        return None
    if start + delay < 0 or end + delay >= n:
        return None
    return TimeDelayWindow(start=start, end=end, delay=delay)

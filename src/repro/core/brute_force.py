"""Exact brute-force baseline (paper Section 5.1, Lemma 2; Section 8.4).

Enumerates every feasible window, scores it, and returns those above the
correlation threshold.  Used as the accuracy yardstick for TYCOS_L (Table
4) and as the runtime baseline of Fig. 10.

Even the brute force benefits from the Section-7 engine: for a fixed
(start, delay) the end index grows one step at a time, so each new window
is a single point insertion into the sliding KSG engine instead of a fresh
O(m^2) search.  The result remains *exact* -- every feasible window is
still evaluated -- only redundant computation is shared, mirroring how the
paper's C++ brute force is a tight loop rather than a naive recompute.
"""

from __future__ import annotations

import time
from typing import List

import numpy as np

from repro.core.config import TycosConfig
from repro.core.results import WindowResult, merge_overlapping
from repro.core.thresholds import WindowScore
from repro.core.tycos import SearchStats, TycosResult
from repro.core.window import PairView, TimeDelayWindow
from repro.mi.entropy import binned_joint_entropy
from repro.mi.incremental import SlidingKSG
from repro.mi.ksg import KSGEstimator
from repro.mi.normalized import normalize_ratio, normalize_value

__all__ = ["brute_force_search"]


def brute_force_search(
    x: np.ndarray,
    y: np.ndarray,
    config: TycosConfig,
    use_incremental: bool = True,
    aggregate: bool = True,
) -> TycosResult:
    """Exhaustively find every window scoring at least ``config.sigma``.

    Args:
        x: first time series.
        y: second time series.
        config: search parameters (sigma, size and delay bounds, k ...).
        use_incremental: share k-NN work across windows via the sliding
            engine; turning it off recomputes every window from scratch
            (only useful for the Fig.-10 runtime comparison).
        aggregate: merge overlapping above-threshold windows into maximal
            windows, as the paper does before grading accuracy (8.4 B).

    Returns:
        A :class:`TycosResult`; when ``aggregate`` the windows are the
        merged maximal ones, rescored on their merged extent.
    """
    started = time.perf_counter()
    pair = PairView(x, y, jitter=config.jitter, seed=config.seed)
    n = pair.n
    stats = SearchStats()
    raw: List[WindowResult] = []
    estimator = KSGEstimator(k=config.k)

    for delay in range(-config.td_max, config.td_max + 1):
        start_lo = max(0, -delay)
        start_hi = n - config.s_min  # inclusive bound on start
        for start in range(start_lo, start_hi + 1):
            max_end = min(n - 1, n - 1 - delay, start + config.s_max - 1)
            if max_end - start + 1 < config.s_min:
                continue
            if use_incremental:
                engine = SlidingKSG(k=config.k)
                first_end = start + config.s_min - 1
                window = TimeDelayWindow(start, first_end, delay)
                xw, yw = pair.extract(window)
                engine.reset(xw, yw, ids=window.x_indices())
                raw.extend(_evaluate(engine.mi(), pair, window, config, stats))
                for end in range(first_end + 1, max_end + 1):
                    engine.add(end, pair.x[end], pair.y[end + delay])
                    window = TimeDelayWindow(start, end, delay)
                    raw.extend(_evaluate(engine.mi(), pair, window, config, stats))
            else:
                for end in range(start + config.s_min - 1, max_end + 1):
                    window = TimeDelayWindow(start, end, delay)
                    xw, yw = pair.extract(window)
                    raw.extend(_evaluate(estimator.mi(xw, yw), pair, window, config, stats))

    if aggregate and raw:
        merged = merge_overlapping([r.window for r in raw], n=n)
        out: List[WindowResult] = []
        for w in merged:
            score = _score(pair, w, estimator)
            out.append(WindowResult(window=w, mi=score.mi, nmi=score.nmi))
        windows = out
    else:
        windows = sorted(raw, key=lambda r: r.window.key())
    stats.runtime_seconds = time.perf_counter() - started
    return TycosResult(windows=windows, stats=stats)


def _score(pair: PairView, window: TimeDelayWindow, estimator: KSGEstimator) -> WindowScore:
    xw, yw = pair.extract(window)
    mi = estimator.mi(xw, yw)
    entropy = binned_joint_entropy(xw, yw)
    return WindowScore(
        mi=mi, nmi=normalize_value(mi, entropy), ratio=normalize_ratio(mi, entropy)
    )


def _evaluate(
    mi: float,
    pair: PairView,
    window: TimeDelayWindow,
    config: TycosConfig,
    stats: SearchStats,
) -> List[WindowResult]:
    """Score one enumerated window; returns [result] when above sigma."""
    stats.windows_evaluated += 1
    xw, yw = pair.extract(window)
    nmi = normalize_value(mi, binned_joint_entropy(xw, yw))
    value = nmi if config.use_normalized else mi
    if value >= config.sigma:
        return [WindowResult(window=window, mi=mi, nmi=nmi)]
    return []

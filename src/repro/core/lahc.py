"""Late Acceptance Hill Climbing (paper Section 3.2, Algorithm 1 lines 4-18).

LAHC (Burke & Bykov) is hill climbing with a twist: a candidate is accepted
not only when it beats the *current* solution but also when it beats a
solution remembered in a fixed-length history list ``L_h``.  The history
comparison injects controlled randomness that lets the search cross small
plateaus without a full metaheuristic apparatus.

The engine here is generic -- it maximizes an arbitrary objective over an
arbitrary state space -- so TYCOS, AMIC and the ablation benchmarks can all
reuse it.  Following the paper, the history item is chosen *randomly* each
iteration and the history slot is updated with the current solution when it
improves on the drawn item (Algorithm 1 lines 9, 16-18).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generic, List, Optional, Sequence, Tuple, TypeVar

import numpy as np

__all__ = ["LahcResult", "LateAcceptanceHillClimbing"]

S = TypeVar("S")


@dataclass
class LahcResult(Generic[S]):
    """Outcome of one LAHC ascent.

    Attributes:
        best: the locally optimal solution reached.
        best_value: its objective value.
        iterations: number of acceptance rounds executed.
        accepted_moves: number of candidate acceptances.
        trajectory: values of the accepted solutions in order (for
            diagnostics and the Fig.-4-style MI landscape example).
    """

    best: S
    best_value: float
    iterations: int = 0
    accepted_moves: int = 0
    trajectory: List[float] = field(default_factory=list)


class LateAcceptanceHillClimbing(Generic[S]):
    """Generic LAHC maximizer with idle-based stopping.

    Args:
        history_length: length of ``L_h``.
        max_idle: ``T_maxIdle`` -- consecutive non-improving rounds
            tolerated before stopping.
        rng: random generator driving the history policy.
    """

    def __init__(
        self,
        history_length: int,
        max_idle: int,
        rng: Optional[np.random.Generator] = None,
    ):
        if history_length < 1:
            raise ValueError(f"history_length must be >= 1, got {history_length}")
        if max_idle < 1:
            raise ValueError(f"max_idle must be >= 1, got {max_idle}")
        self._history_length = history_length
        self._max_idle = max_idle
        # A fixed-seed fallback keeps standalone ascents deterministic;
        # TYCOS always passes a generator seeded from TycosConfig.seed.
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def search(
        self,
        initial: S,
        initial_value: float,
        candidates_fn: Callable[[S, int], Sequence[Tuple[S, float]]],
    ) -> LahcResult[S]:
        """Run one ascent from an initial solution.

        Args:
            initial: the starting solution (Algorithm 1 line 2).
            initial_value: its objective value.
            candidates_fn: called as ``candidates_fn(current, idle)`` and
                expected to return scored neighbor candidates
                ``[(solution, value), ...]``.  Receiving the idle counter
                lets the caller escalate to larger neighborhoods while the
                search stalls (Section 5.2.2).  An empty return counts as a
                non-improving round.

        Returns:
            A :class:`LahcResult` with the best solution reached.
        """
        current = initial
        current_value = initial_value
        best = initial
        best_value = initial_value
        history: List[float] = [initial_value] * self._history_length
        result: LahcResult[S] = LahcResult(best=best, best_value=best_value)
        result.trajectory.append(initial_value)

        idle = 0
        while idle < self._max_idle:
            result.iterations += 1
            candidates = candidates_fn(current, idle)
            if not candidates:
                idle += 1
                continue
            # Algorithm 1 line 8: the best neighbor in N.
            best_nb, best_nb_value = max(candidates, key=lambda c: c[1])
            # Line 9: draw a random history item.
            slot = int(self._rng.integers(self._history_length))
            history_value = history[slot]
            if best_nb_value > history_value or best_nb_value > current_value:
                # Policy 1 (lines 10-12): accept.
                current = best_nb
                current_value = best_nb_value
                result.accepted_moves += 1
                result.trajectory.append(current_value)
                idle = 0
                if current_value > best_value:
                    best = current
                    best_value = current_value
            else:
                # Policy 2 (lines 14-15): reject, grow the idle counter.
                idle += 1
            # Lines 16-18: refresh the drawn history slot.
            if current_value > history_value:
                history[slot] = current_value

        result.best = best
        result.best_value = best_value
        return result

"""Timeline segmentation for intra-pair parallel search.

The paper scales TYCOS to *big* series, but a single long pair still runs
one sequential restart loop.  This module supplies the geometry that lets
one pair be sharded across cores: ``[0, n)`` is covered by ``n_segments``
overlapping spans, an independent restart loop runs per span, and the
results are stitched (see :mod:`repro.analysis.segmented`).

The correctness of the sharding rests on one fact, the **containment
lemma**:

    Let the spans be ``S_i = [i * stride, i * stride + stride + L)``
    (clipped to ``[0, n)``) with ``stride >= 1`` and overlap ``L``.  Then
    every interval ``[a, b] ⊆ [0, n)`` of length ``b - a + 1 <= L`` is
    fully contained in at least one span.

    *Proof.*  Pick the largest ``i`` with ``i * stride <= a`` (it exists:
    ``i = 0`` qualifies).  If ``S_i`` is clipped at ``n`` it ends at ``n``
    and contains ``[a, b]`` outright.  Otherwise a later span starts at
    ``(i + 1) * stride > a``, so ``a >= i * stride`` and
    ``b <= a + L - 1 < i * stride + stride + L``, i.e. ``[a, b] ⊆ S_i``. ∎

A feasible time delay window ``([t_s, t_e], tau)`` touches the series
only inside its *footprint* -- the union of its X interval and its
shifted Y interval -- whose length is at most
``(t_e - t_s + 1) + |tau| <= s_max + td_max``.  Choosing the overlap
``L = s_max + td_max + margin`` (:meth:`repro.core.config.TycosConfig.
segment_overlap`) therefore guarantees that **every feasible window is
fully contained in at least one span**, so a per-span search sees exactly
the same samples for it as a whole-series search would.  The margin adds
context past the footprint (noise probes and LAHC rings reach slightly
beyond a window); it is not needed for containment itself.
"""

from __future__ import annotations

import math
from typing import List, Tuple

__all__ = ["segment_spans", "overlap_zones", "span_containing"]

#: A half-open ``[lo, hi)`` index span of the timeline.
Span = Tuple[int, int]


def segment_spans(n: int, n_segments: int, overlap: int) -> List[Span]:
    """Cover ``[0, n)`` with up to ``n_segments`` overlapping spans.

    Consecutive spans overlap by exactly ``overlap`` samples (less only at
    the clipped tail), so by the containment lemma above every interval of
    length at most ``overlap`` -- in particular every feasible window
    footprint when ``overlap >= s_max + td_max`` -- lies fully inside at
    least one span.

    Args:
        n: series length.
        n_segments: requested number of spans (the result may hold fewer
            when the series is too short to support that many distinct
            spans; it never holds more).
        overlap: samples shared by consecutive spans; must be >= 1.

    Returns:
        Half-open ``(lo, hi)`` spans, sorted, first starting at 0, last
        ending at ``n``, consecutive spans overlapping by >= ``overlap``
        (when there are at least two).

    Raises:
        ValueError: on a non-positive length, segment count, or overlap.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if n_segments < 1:
        raise ValueError(f"n_segments must be >= 1, got {n_segments}")
    if overlap < 1:
        raise ValueError(f"overlap must be >= 1, got {overlap}")
    if n_segments == 1 or n <= overlap:
        return [(0, n)]
    stride = math.ceil((n - overlap) / n_segments)
    spans: List[Span] = []
    for i in range(n_segments):
        lo = i * stride
        if lo >= n:
            break
        hi = min(n, lo + stride + overlap)
        spans.append((lo, hi))
        if hi == n:
            break
    return spans


def overlap_zones(spans: List[Span]) -> List[Span]:
    """The pairwise intersections of a span cover, merged and sorted.

    A window found by two different segments must have its X interval
    inside one of these zones (two spans only share samples there), so the
    stitcher restricts its cross-segment dedupe/rescore work to windows
    intersecting a zone.
    """
    raw: List[Span] = []
    for i, (lo_i, hi_i) in enumerate(spans):
        for lo_j, hi_j in spans[i + 1 :]:
            lo, hi = max(lo_i, lo_j), min(hi_i, hi_j)
            if lo < hi:
                raw.append((lo, hi))
    raw.sort()
    merged: List[Span] = []
    for lo, hi in raw:
        if merged and lo <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
        else:
            merged.append((lo, hi))
    return merged


def span_containing(spans: List[Span], lo: int, hi: int) -> int:
    """Index of the first span fully containing ``[lo, hi]``, or ``-1``.

    ``hi`` is inclusive, matching window endpoints.  Used by the
    containment-lemma tests: for every feasible window footprint the
    answer must be a valid index.
    """
    for i, (span_lo, span_hi) in enumerate(spans):
        if span_lo <= lo and hi < span_hi:
            return i
    return -1

"""Window scoring: raw MI, normalized MI and adaptive thresholds.

Two interchangeable evaluators turn a :class:`TimeDelayWindow` into a
score:

* :class:`BatchScorer` -- runs the KSG estimator from scratch per window
  (what TYCOS_L / TYCOS_LN use).
* :class:`IncrementalScorer` -- keeps a :class:`repro.mi.SlidingKSG` engine
  warm and evaluates each window as a diff against the previously evaluated
  one (Section 7; what TYCOS_LM / TYCOS_LMN use).

Both memoize by window identity, because LAHC revisits windows across
neighborhood expansions.  The module also hosts :class:`TopKFilter`, the
Section 6.3.2 alternative to a fixed sigma.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro import contracts
from repro._types import FloatArray, WindowKey
from repro.core.config import TycosConfig
from repro.core.window import PairView, TimeDelayWindow
from repro.mi.backends.dispatch import get_kernels
from repro.mi.digamma import shared_digamma_table
from repro.mi.entropy import binned_joint_entropy
from repro.mi.ksg import KSGEstimator
from repro.mi.incremental import SlidingKSG
from repro.mi.neighbors import PairDistanceWorkspace
from repro.mi.normalized import normalize_ratio, normalize_value

__all__ = ["WindowScore", "BatchScorer", "IncrementalScorer", "TopKFilter", "make_scorer"]

#: Widest union span (samples) a single shared distance workspace may
#: cover; wider same-delay clusters are split, because the O(u^2) union
#: broadcast must stay comparable to the windows it amortizes.
_UNION_SPAN_LIMIT = 2048


@dataclass(frozen=True)
class WindowScore:
    """MI readings of one window.

    Attributes:
        mi: raw KSG mutual information (nats).
        nmi: normalized MI, Eq. (18), clamped to [0, 1].
        ratio: the unclamped ``I_w / H_w`` used as the search objective
            (see :func:`repro.mi.normalized.normalize_ratio`).
    """

    mi: float
    nmi: float
    ratio: float


class BatchScorer:
    """Scores windows by running the KSG estimator from scratch each time.

    The memo table is a capped LRU (``config.cache_capacity``): long
    multi-restart searches revisit mostly recent windows, so bounding the
    table costs no meaningful hit rate while keeping memory flat.

    Attributes:
        evaluations: number of windows whose MI was actually computed.
        cache_hits: number of scores served from the memo table.
        workspace_builds: number of shared distance workspaces constructed
            for batched clusters.
        workspace_hits: number of clusters served from the per-delay
            workspace LRU (``config.workspace_cache_size``).
    """

    def __init__(self, pair: PairView, config: TycosConfig) -> None:
        self._pair = pair
        self._config = config
        # None for the default engine (legacy numpy paths, untouched);
        # otherwise the canonical backend suite serves the hot kernels
        # and the delta-ring lattice runs through the fused cluster
        # kernel instead of the Python-side workspace machinery.
        self._kernels = get_kernels(config.backend, config.precision)
        self._estimator = KSGEstimator(
            k=config.k, use_digamma_table=config.use_digamma_table, kernels=self._kernels
        )
        self._cache: "OrderedDict[WindowKey, WindowScore]" = OrderedDict()
        self._cache_capacity = config.cache_capacity
        # Per-delay workspace LRU: delay -> (span_lo, span_hi, workspace).
        # LAHC trajectories revisit the same delay across iterations, so a
        # cluster whose span fits inside a cached union reuses the O(u^2)
        # distance broadcasts (principal submatrices are exact, so the
        # containing span changes nothing about any window's geometry).
        self._workspaces: "OrderedDict[int, Tuple[int, int, PairDistanceWorkspace]]" = (
            OrderedDict()
        )
        self.evaluations = 0
        self.cache_hits = 0
        self.workspace_builds = 0
        self.workspace_hits = 0

    @property
    def estimator(self) -> KSGEstimator:
        """The configured KSG estimator (shared digamma table included).

        Exposed so callers needing a raw MI outside the window-score path
        -- e.g. the permutation significance test -- reuse the scorer's
        estimator instead of constructing a cold one per window.
        """
        return self._estimator

    def score(self, window: TimeDelayWindow) -> WindowScore:
        """MI and normalized MI of a window (memoized)."""
        hit = self._cache_get(window.key())
        if hit is not None:
            self.cache_hits += 1
            return hit
        x, y = self._pair.extract(window)
        mi = self._batch_mi(window, x, y)
        return self._finish(window, mi, x, y)

    def score_many(self, windows: Sequence[TimeDelayWindow]) -> List[WindowScore]:
        """Scores for many windows in one call, batching same-delay groups.

        Windows that share a delay (e.g. the delta-neighbors of one LAHC
        ring) draw their sample pairs from one short union sub-series, so
        their k-NN geometry is computed through a single
        :class:`~repro.mi.neighbors.PairDistanceWorkspace` -- one
        ``O(u^2)`` pairwise-distance broadcast for the whole group instead
        of one per window.  Scores are *exactly* the ones :meth:`score`
        would produce (same floats, same memoization); only the amount of
        redundant kernel work changes.  Windows the batch kernel cannot
        serve (cache hits, non-bruteforce backends, or -- in the
        incremental subclass -- on-trajectory engine evaluations) fall
        back to :meth:`score` in input order.
        """
        out: List[Optional[WindowScore]] = [None] * len(windows)
        grouped: Dict[int, List[int]] = {}
        for i, w in enumerate(windows):
            hit = self._cache_get(w.key())
            if hit is not None:
                self.cache_hits += 1
                out[i] = hit
            elif self._batchable(w):
                grouped.setdefault(w.delay, []).append(i)
            else:
                out[i] = self.score(w)
        for positions in grouped.values():
            for cluster in self._span_clusters(windows, positions):
                if len(cluster) == 1:
                    out[cluster[0]] = self.score(windows[cluster[0]])
                else:
                    self._score_cluster(windows, cluster, out)
        return [s for s in out if s is not None]

    def value(self, window: TimeDelayWindow) -> float:
        """The scalar the search maximizes (unclamped ratio or raw MI)."""
        score = self.score(window)
        return score.ratio if self._config.use_normalized else score.mi

    def value_many(self, windows: Sequence[TimeDelayWindow]) -> List[float]:
        """Objective values of many windows via one batched scoring pass.

        Equivalent to ``[self.value(w) for w in windows]`` -- same floats,
        same cache and stats bookkeeping -- but same-delay groups share one
        distance workspace (see :meth:`score_many`).
        """
        scores = self.score_many(windows)
        if self._config.use_normalized:
            return [s.ratio for s in scores]
        return [s.mi for s in scores]

    def clear_cache(self) -> None:
        """Drop the memo and workspace tables (between independent restarts)."""
        self._cache.clear()
        self._workspaces.clear()

    # -- memo table (capped LRU) --------------------------------------- #

    def _cache_get(self, key: WindowKey) -> Optional[WindowScore]:
        hit = self._cache.get(key)
        if hit is not None:
            self._cache.move_to_end(key)
        return hit

    def _cache_put(self, key: WindowKey, score: WindowScore) -> None:
        self._cache[key] = score
        self._cache.move_to_end(key)
        if len(self._cache) > self._cache_capacity:
            self._cache.popitem(last=False)

    # -- batched scoring ------------------------------------------------ #

    def _batchable(self, window: TimeDelayWindow) -> bool:
        """Can this window's geometry come from a shared workspace?

        Requires the brute-force k-NN backend (the batch kernel replicates
        exactly that math) and in-bounds sample ranges (out-of-bounds
        windows must keep raising through the scalar path).
        """
        n = self._pair.n
        return (
            self._estimator.resolved_backend(window.size) == "bruteforce"
            and 0 <= window.start
            and window.end < n
            and 0 <= window.y_start
            and window.y_end < n
        )

    @staticmethod
    def _span_clusters(
        windows: Sequence[TimeDelayWindow], positions: List[int]
    ) -> List[List[int]]:
        """Split same-delay windows into overlapping-span clusters.

        Windows that do not overlap (or would stretch the union past
        ``_UNION_SPAN_LIMIT``) gain nothing from a shared workspace, so
        each cluster covers one contiguous stretch of the series.
        """
        ordered = sorted(positions, key=lambda i: (windows[i].start, windows[i].end))
        clusters: List[List[int]] = []
        lo = hi = 0
        for i in ordered:
            w = windows[i]
            if (
                clusters
                and w.start <= hi + 1
                and max(hi, w.end) - lo + 1 <= _UNION_SPAN_LIMIT
            ):
                clusters[-1].append(i)
                hi = max(hi, w.end)
            else:
                clusters.append([i])
                lo, hi = w.start, w.end
        return clusters

    def _batch_mi(self, window: TimeDelayWindow, xw: FloatArray, yw: FloatArray) -> float:
        """Batch-path MI of one window (already extracted as ``xw``/``yw``).

        Served through the cached per-delay workspace when a cached union
        span contains the window -- the principal submatrix is exactly the
        brute-force geometry, so the floats are identical to a from-scratch
        estimate -- and by the plain estimator otherwise.  One-off scalar
        evaluations (single-window clusters, noise probes) thereby reuse
        the ring's O(u^2) broadcasts instead of paying O(m^2) each.
        """
        if (
            self._kernels is None
            and self._config.workspace_cache_size > 0
            and self._estimator.resolved_backend(window.size) == "bruteforce"
        ):
            entry = self._workspaces.get(window.delay)
            if entry is not None:
                lo, hi, workspace = entry
                if lo <= window.start and window.end <= hi:
                    self._workspaces.move_to_end(window.delay)
                    self.workspace_hits += 1
                    k = self._estimator.effective_k(window.size)
                    offset = window.start - lo
                    knn = workspace.knn(offset, window.size, k)
                    table = (
                        workspace.digamma_table()
                        if self._config.use_digamma_table
                        else None
                    )
                    sorted_x = sorted_y = None
                    if self._config.use_sorted_marginals:
                        sorted_x, sorted_y = workspace.sorted_window(offset, window.size)
                    return self._estimator.mi_from_geometry(
                        xw,
                        yw,
                        knn,
                        k,
                        digamma_table=table,
                        sorted_x=sorted_x,
                        sorted_y=sorted_y,
                    )
        return self._estimator.mi(xw, yw)

    def _workspace_for(
        self, delay: int, lo: int, hi: int
    ) -> Tuple[int, PairDistanceWorkspace]:
        """A distance workspace covering ``[lo, hi]`` at ``delay``.

        Served from the per-delay LRU when a cached union span contains the
        requested one (every window submatrix is identical either way);
        otherwise built and cached.  Cached builds cover a *wider* span
        than requested: a LAHC ring drifts by at most ``delta`` per
        accepted move and the noise detector's concat probes extend a
        window by ``max(delta, s_min)`` samples, so padding the union by
        the probe reach plus a few moves of drift turns those follow-up
        evaluations into containment hits instead of rebuilds.  Returns
        the workspace with the series index its offset 0 maps to.
        """
        capacity = self._config.workspace_cache_size
        if capacity > 0:
            entry = self._workspaces.get(delay)
            if entry is not None:
                cached_lo, cached_hi, workspace = entry
                if cached_lo <= lo and hi <= cached_hi:
                    self._workspaces.move_to_end(delay)
                    self.workspace_hits += 1
                    return cached_lo, workspace
            margin = max(self._config.delta, self._config.s_min) + 8 * self._config.delta
            room = _UNION_SPAN_LIMIT - (hi - lo + 1)
            if room > 0:
                margin = min(margin, room // 2)
                n = self._pair.n
                lo = max(0, -delay, lo - margin)
                hi = min(n - 1, n - 1 - delay, hi + margin)
        x = self._pair.x
        y = self._pair.y
        workspace = PairDistanceWorkspace(
            x[lo : hi + 1], y[lo + delay : hi + delay + 1]
        )
        self.workspace_builds += 1
        if capacity > 0:
            self._workspaces[delay] = (lo, hi, workspace)
            self._workspaces.move_to_end(delay)
            if len(self._workspaces) > capacity:
                self._workspaces.popitem(last=False)
        return lo, workspace

    def _score_cluster(
        self,
        windows: Sequence[TimeDelayWindow],
        cluster: List[int],
        out: List[Optional[WindowScore]],
    ) -> None:
        """Score one same-delay cluster through a shared workspace."""
        if self._kernels is not None:
            self._score_cluster_kernels(windows, cluster, out)
            return
        lo = min(windows[i].start for i in cluster)
        hi = max(windows[i].end for i in cluster)
        delay = windows[cluster[0]].delay
        base, workspace = self._workspace_for(delay, lo, hi)
        table = workspace.digamma_table() if self._config.use_digamma_table else None
        use_sorted = self._config.use_sorted_marginals
        px = self._pair.x
        py = self._pair.y
        base_k = self._estimator.k
        mi_from_geometry = self._estimator.mi_from_geometry
        for i in cluster:
            w = windows[i]
            hit = self._cache_get(w.key())
            if hit is not None:
                # Duplicate window inside one batch: second occurrence is a
                # cache hit, exactly as in a scalar evaluation sequence.
                self.cache_hits += 1
                out[i] = hit
                continue
            size = w.end - w.start + 1
            k = base_k if size > base_k else size - 1  # == effective_k(size)
            offset = w.start - base
            knn = workspace.knn(offset, size, k)
            sorted_x = sorted_y = None
            if use_sorted:
                sorted_x, sorted_y = workspace.sorted_window(offset, size)
            # _batchable() already verified the bounds extract() re-checks.
            xw = px[w.start : w.end + 1]
            yw = py[w.start + delay : w.end + delay + 1]
            mi = mi_from_geometry(
                xw, yw, knn, k, digamma_table=table, sorted_x=sorted_x, sorted_y=sorted_y
            )
            out[i] = self._finish(w, mi, xw, yw, sorted_x=sorted_x, sorted_y=sorted_y)

    def _score_cluster_kernels(
        self,
        windows: Sequence[TimeDelayWindow],
        cluster: List[int],
        out: List[Optional[WindowScore]],
    ) -> None:
        """Score one same-delay cluster through the fused backend kernel.

        One ``cluster_counts`` call computes every window's k-NN radii
        and marginal counts directly from the raw union slices -- no
        O(u^2) distance workspace is materialized -- and the digamma
        reduction stays in numpy (see ``KSGEstimator.mi_from_counts``),
        so scores are bit-identical to the scalar backend path.  Cache
        bookkeeping mirrors the workspace path: repeated windows inside
        one batch count as cache hits, not evaluations.
        """
        kernels = self._kernels
        assert kernels is not None
        delay = windows[cluster[0]].delay
        lo = min(windows[i].start for i in cluster)
        hi = max(windows[i].end for i in cluster)
        px = self._pair.x
        py = self._pair.y
        x_union = px[lo : hi + 1]
        y_union = py[lo + delay : hi + delay + 1]
        base_k = self._estimator.k
        pending: List[Tuple[int, TimeDelayWindow, int]] = []
        deferred: List[Tuple[int, WindowKey]] = []
        pending_keys: Set[WindowKey] = set()
        for i in cluster:
            w = windows[i]
            key = w.key()
            hit = self._cache_get(key)
            if hit is not None:
                self.cache_hits += 1
                out[i] = hit
            elif key in pending_keys:
                deferred.append((i, key))
            else:
                pending_keys.add(key)
                size = w.end - w.start + 1
                k = base_k if size > base_k else size - 1  # == effective_k(size)
                pending.append((i, w, k))
        if pending:
            offsets = np.array([w.start - lo for _, w, _ in pending], dtype=np.int64)
            sizes = np.array([w.size for _, w, _ in pending], dtype=np.int64)
            ks = np.array([k for _, _, k in pending], dtype=np.int64)
            n_x, n_y = kernels.cluster_counts(x_union, y_union, offsets, sizes, ks)
            table = (
                shared_digamma_table().kernel_view(int(sizes.max()))
                if self._config.use_digamma_table
                else None
            )
            pos = 0
            for i, w, k in pending:
                size = w.size
                mi = self._estimator.mi_from_counts(
                    n_x[pos : pos + size],
                    n_y[pos : pos + size],
                    k,
                    size,
                    digamma_table=table,
                )
                pos += size
                xw = px[w.start : w.end + 1]
                yw = py[w.start + delay : w.end + delay + 1]
                out[i] = self._finish(w, mi, xw, yw)
        for i, key in deferred:
            hit = self._cache_get(key)
            assert hit is not None
            self.cache_hits += 1
            out[i] = hit

    def _finish(
        self,
        window: TimeDelayWindow,
        mi: float,
        xw: FloatArray,
        yw: FloatArray,
        sorted_x: Optional[FloatArray] = None,
        sorted_y: Optional[FloatArray] = None,
    ) -> WindowScore:
        """Normalize, contract-check, memoize and count one evaluation.

        When the window's sorted projections are already in hand, their end
        elements are handed to the entropy binning as the (exact) min/max,
        skipping four reductions per window.
        """
        if sorted_x is not None and sorted_y is not None:
            entropy = binned_joint_entropy(
                xw,
                yw,
                x_bounds=(sorted_x[0], sorted_x[-1]),
                y_bounds=(sorted_y[0], sorted_y[-1]),
            )
        else:
            entropy = binned_joint_entropy(xw, yw)
        score = WindowScore(
            mi=mi, nmi=normalize_value(mi, entropy), ratio=normalize_ratio(mi, entropy)
        )
        if contracts.checks_enabled():
            where = f"{type(self).__name__}.score"
            contracts.check_mi_finite(score.mi, where=where)
            contracts.check_nmi_range(score.nmi, where=where)
        self._cache_put(window.key(), score)
        self.evaluations += 1
        return score


class IncrementalScorer(BatchScorer):
    """Scores windows by diffing against the last evaluated window.

    Windows produced during a LAHC ascent overlap heavily, so instead of a
    fresh O(m^2) neighbor search per window, a :class:`SlidingKSG` engine
    is mutated by the index delta between consecutive evaluations (Lemmas
    3-6).  A delay change re-pairs every sample, which forces a reset.

    The scorer is a hybrid: below ``min_engine_size`` samples the batch
    estimator's single vectorized kernel beats any per-point bookkeeping,
    so small windows take the batch path outright and the engine serves
    only the window sizes where the Section-7 reuse genuinely pays.
    """

    #: Below this window size the O(m^2) batch kernel is cheaper than
    #: engine maintenance (measured crossover of the two Python paths).
    min_engine_size = 96

    def __init__(self, pair: PairView, config: TycosConfig) -> None:
        super().__init__(pair, config)
        self._engine = SlidingKSG(
            k=config.k,
            use_digamma_table=config.use_digamma_table,
            use_sorted_marginals=config.use_sorted_marginals,
            kernels=self._kernels,
        )
        self._base: Optional[TimeDelayWindow] = None
        self._trajectory_delay: Optional[int] = None

    @property
    def engine(self) -> SlidingKSG:
        """The underlying sliding engine (exposed for stats/ablations)."""
        return self._engine

    def follow_delay(self, delay: int) -> None:
        """Pin the engine to the search trajectory's current delay.

        The driver calls this whenever the accepted solution (re)settles on
        a delay.  Only windows at this delay are evaluated through the
        sliding engine; a neighborhood ring probes dozens of other delays
        exactly once each, and paying an engine rebuild for a one-off probe
        costs more than the batch estimate it would save.
        """
        self._trajectory_delay = delay

    def _batchable(self, window: TimeDelayWindow) -> bool:
        """Batch only the windows :meth:`score` serves via the batch path.

        On-trajectory windows of engine size must keep flowing through
        :meth:`score` one at a time, in evaluation order, because they
        mutate the sliding engine (Section 7 diffs).  Off-trajectory
        probes and sub-engine-size windows are pure batch estimates, so
        the shared workspace may compute them in any grouping.
        """
        if not super()._batchable(window):
            return False
        return window.size < self.min_engine_size or (
            self._trajectory_delay is not None and window.delay != self._trajectory_delay
        )

    def score(self, window: TimeDelayWindow) -> WindowScore:
        hit = self._cache_get(window.key())
        if hit is not None:
            self.cache_hits += 1
            return hit
        if window.size < self.min_engine_size or (
            self._trajectory_delay is not None and window.delay != self._trajectory_delay
        ):
            # Small window, or an off-trajectory delay probe: batch path.
            xw, yw = self._pair.extract(window)
            mi = self._batch_mi(window, xw, yw)
            return self._finish(window, mi, xw, yw)
        base = self._base
        x = self._pair.x
        y = self._pair.y
        if base is not None and base.delay == window.delay:
            diff = self._diff_cost(base, window)
            # Engine repair costs ~O(diff * m) with Python constants; the
            # batch estimate costs O(m^2) in one numpy kernel.  The engine
            # wins only while the diff stays well below m.
            if diff > max(4, window.size // 8) and diff < window.size:
                # Large one-off diff (e.g. the noise detector's concat
                # probes): repairing the engine would cost more than a
                # batch estimate, and the engine must stay anchored at the
                # current solution for the ring neighbors that follow.
                xw, yw = self._pair.extract(window)
                return self._finish(window, self._batch_mi(window, xw, yw), xw, yw)
        if (
            base is None
            or base.delay != window.delay
            or self._diff_cost(base, window) >= window.size
        ):
            xw, yw = self._pair.extract(window)
            self._engine.reset(xw, yw, ids=window.x_indices())
        else:
            # Exact delta ranges -- never touch the shared bulk of the two
            # windows.  Shrinks first (cheaper neighbor invalidation).
            delay = window.delay
            for lo, hi in (
                (base.start, min(base.end, window.start - 1)),   # left trim
                (max(base.start, window.end + 1), base.end),     # right trim
            ):
                for i in range(lo, hi + 1):
                    self._engine.remove(i)
            for lo, hi in (
                (window.start, min(window.end, base.start - 1)),  # left grow
                (max(window.start, base.end + 1), window.end),    # right grow
            ):
                for i in range(lo, hi + 1):
                    self._engine.add(i, x[i], y[i + delay])
        self._base = window
        mi = self._engine.mi()
        xw, yw = self._pair.extract(window)
        return self._finish(window, mi, xw, yw)

    @staticmethod
    def _diff_cost(base: TimeDelayWindow, window: TimeDelayWindow) -> int:
        """Number of point insertions + removals to morph base into window."""
        inter_lo = max(base.start, window.start)
        inter_hi = min(base.end, window.end)
        inter = max(0, inter_hi - inter_lo + 1)
        return (base.size - inter) + (window.size - inter)


def make_scorer(pair: PairView, config: TycosConfig, incremental: bool) -> BatchScorer:
    """Factory: pick the scorer matching the TYCOS variant."""
    if incremental:
        return IncrementalScorer(pair, config)
    return BatchScorer(pair, config)


class TopKFilter:
    """Adaptive correlation threshold via a top-K list (Section 6.3.2).

    Maintains the K highest-scoring windows seen so far; the effective
    sigma is the smallest score in the list once it is full, so the search
    progressively tightens its own acceptance bar.
    """

    def __init__(self, capacity: int, initial_sigma: float = 0.0) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._heap: List[Tuple[float, WindowKey, TimeDelayWindow]] = []
        self._initial_sigma = initial_sigma

    @property
    def sigma(self) -> float:
        """Current effective threshold."""
        if len(self._heap) < self.capacity:
            return self._initial_sigma
        return self._heap[0][0]

    def offer(self, window: TimeDelayWindow, value: float) -> bool:
        """Consider a window; returns True when it enters the top-K list."""
        if len(self._heap) < self.capacity:
            heapq.heappush(self._heap, (value, window.key(), window))
            return True
        if value > self._heap[0][0]:
            heapq.heapreplace(self._heap, (value, window.key(), window))
            return True
        return False

    def windows(self) -> List[Tuple[TimeDelayWindow, float]]:
        """The current top-K windows, best first."""
        return [(w, v) for v, _, w in sorted(self._heap, reverse=True)]

    def __len__(self) -> int:
        return len(self._heap)

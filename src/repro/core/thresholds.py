"""Window scoring: raw MI, normalized MI and adaptive thresholds.

Two interchangeable evaluators turn a :class:`TimeDelayWindow` into a
score:

* :class:`BatchScorer` -- runs the KSG estimator from scratch per window
  (what TYCOS_L / TYCOS_LN use).
* :class:`IncrementalScorer` -- keeps a :class:`repro.mi.SlidingKSG` engine
  warm and evaluates each window as a diff against the previously evaluated
  one (Section 7; what TYCOS_LM / TYCOS_LMN use).

Both memoize by window identity, because LAHC revisits windows across
neighborhood expansions.  The module also hosts :class:`TopKFilter`, the
Section 6.3.2 alternative to a fixed sigma.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro import contracts
from repro._types import FloatArray, WindowKey
from repro.core.config import TycosConfig
from repro.core.window import PairView, TimeDelayWindow
from repro.mi.entropy import binned_joint_entropy
from repro.mi.ksg import KSGEstimator
from repro.mi.incremental import SlidingKSG
from repro.mi.normalized import normalize_ratio, normalize_value

__all__ = ["WindowScore", "BatchScorer", "IncrementalScorer", "TopKFilter", "make_scorer"]


@dataclass(frozen=True)
class WindowScore:
    """MI readings of one window.

    Attributes:
        mi: raw KSG mutual information (nats).
        nmi: normalized MI, Eq. (18), clamped to [0, 1].
        ratio: the unclamped ``I_w / H_w`` used as the search objective
            (see :func:`repro.mi.normalized.normalize_ratio`).
    """

    mi: float
    nmi: float
    ratio: float


class BatchScorer:
    """Scores windows by running the KSG estimator from scratch each time.

    Attributes:
        evaluations: number of windows whose MI was actually computed.
        cache_hits: number of scores served from the memo table.
    """

    def __init__(self, pair: PairView, config: TycosConfig) -> None:
        self._pair = pair
        self._config = config
        self._estimator = KSGEstimator(k=config.k)
        self._cache: Dict[WindowKey, WindowScore] = {}
        self.evaluations = 0
        self.cache_hits = 0

    def score(self, window: TimeDelayWindow) -> WindowScore:
        """MI and normalized MI of a window (memoized)."""
        key = window.key()
        hit = self._cache.get(key)
        if hit is not None:
            self.cache_hits += 1
            return hit
        x, y = self._pair.extract(window)
        mi = self._estimator.mi(x, y)
        entropy = binned_joint_entropy(x, y)
        score = WindowScore(
            mi=mi, nmi=normalize_value(mi, entropy), ratio=normalize_ratio(mi, entropy)
        )
        if contracts.checks_enabled():
            contracts.check_mi_finite(score.mi, where="BatchScorer.score")
            contracts.check_nmi_range(score.nmi, where="BatchScorer.score")
        self._cache[key] = score
        self.evaluations += 1
        return score

    def value(self, window: TimeDelayWindow) -> float:
        """The scalar the search maximizes (unclamped ratio or raw MI)."""
        score = self.score(window)
        return score.ratio if self._config.use_normalized else score.mi

    def clear_cache(self) -> None:
        """Drop the memo table (used between independent restarts)."""
        self._cache.clear()


class IncrementalScorer(BatchScorer):
    """Scores windows by diffing against the last evaluated window.

    Windows produced during a LAHC ascent overlap heavily, so instead of a
    fresh O(m^2) neighbor search per window, a :class:`SlidingKSG` engine
    is mutated by the index delta between consecutive evaluations (Lemmas
    3-6).  A delay change re-pairs every sample, which forces a reset.

    The scorer is a hybrid: below ``min_engine_size`` samples the batch
    estimator's single vectorized kernel beats any per-point bookkeeping,
    so small windows take the batch path outright and the engine serves
    only the window sizes where the Section-7 reuse genuinely pays.
    """

    #: Below this window size the O(m^2) batch kernel is cheaper than
    #: engine maintenance (measured crossover of the two Python paths).
    min_engine_size = 96

    def __init__(self, pair: PairView, config: TycosConfig) -> None:
        super().__init__(pair, config)
        self._engine = SlidingKSG(k=config.k)
        self._base: Optional[TimeDelayWindow] = None
        self._trajectory_delay: Optional[int] = None

    @property
    def engine(self) -> SlidingKSG:
        """The underlying sliding engine (exposed for stats/ablations)."""
        return self._engine

    def follow_delay(self, delay: int) -> None:
        """Pin the engine to the search trajectory's current delay.

        The driver calls this whenever the accepted solution (re)settles on
        a delay.  Only windows at this delay are evaluated through the
        sliding engine; a neighborhood ring probes dozens of other delays
        exactly once each, and paying an engine rebuild for a one-off probe
        costs more than the batch estimate it would save.
        """
        self._trajectory_delay = delay

    def score(self, window: TimeDelayWindow) -> WindowScore:
        key = window.key()
        hit = self._cache.get(key)
        if hit is not None:
            self.cache_hits += 1
            return hit
        if window.size < self.min_engine_size or (
            self._trajectory_delay is not None and window.delay != self._trajectory_delay
        ):
            # Small window, or an off-trajectory delay probe: batch path.
            xw, yw = self._pair.extract(window)
            mi = self._estimator.mi(xw, yw)
            return self._finish(window, mi, xw, yw)
        base = self._base
        x = self._pair.x
        y = self._pair.y
        if base is not None and base.delay == window.delay:
            diff = self._diff_cost(base, window)
            # Engine repair costs ~O(diff * m) with Python constants; the
            # batch estimate costs O(m^2) in one numpy kernel.  The engine
            # wins only while the diff stays well below m.
            if diff > max(4, window.size // 8) and diff < window.size:
                # Large one-off diff (e.g. the noise detector's concat
                # probes): repairing the engine would cost more than a
                # batch estimate, and the engine must stay anchored at the
                # current solution for the ring neighbors that follow.
                xw, yw = self._pair.extract(window)
                return self._finish(window, self._estimator.mi(xw, yw), xw, yw)
        if (
            base is None
            or base.delay != window.delay
            or self._diff_cost(base, window) >= window.size
        ):
            xw, yw = self._pair.extract(window)
            self._engine.reset(xw, yw, ids=window.x_indices())
        else:
            # Exact delta ranges -- never touch the shared bulk of the two
            # windows.  Shrinks first (cheaper neighbor invalidation).
            delay = window.delay
            for lo, hi in (
                (base.start, min(base.end, window.start - 1)),   # left trim
                (max(base.start, window.end + 1), base.end),     # right trim
            ):
                for i in range(lo, hi + 1):
                    self._engine.remove(i)
            for lo, hi in (
                (window.start, min(window.end, base.start - 1)),  # left grow
                (max(window.start, base.end + 1), window.end),    # right grow
            ):
                for i in range(lo, hi + 1):
                    self._engine.add(i, x[i], y[i + delay])
        self._base = window
        mi = self._engine.mi()
        xw, yw = self._pair.extract(window)
        return self._finish(window, mi, xw, yw)

    def _finish(
        self, window: TimeDelayWindow, mi: float, xw: FloatArray, yw: FloatArray
    ) -> WindowScore:
        entropy = binned_joint_entropy(xw, yw)
        score = WindowScore(
            mi=mi, nmi=normalize_value(mi, entropy), ratio=normalize_ratio(mi, entropy)
        )
        if contracts.checks_enabled():
            contracts.check_mi_finite(score.mi, where="IncrementalScorer.score")
            contracts.check_nmi_range(score.nmi, where="IncrementalScorer.score")
        self._cache[window.key()] = score
        self.evaluations += 1
        return score

    @staticmethod
    def _diff_cost(base: TimeDelayWindow, window: TimeDelayWindow) -> int:
        """Number of point insertions + removals to morph base into window."""
        inter_lo = max(base.start, window.start)
        inter_hi = min(base.end, window.end)
        inter = max(0, inter_hi - inter_lo + 1)
        return (base.size - inter) + (window.size - inter)


def make_scorer(pair: PairView, config: TycosConfig, incremental: bool) -> BatchScorer:
    """Factory: pick the scorer matching the TYCOS variant."""
    if incremental:
        return IncrementalScorer(pair, config)
    return BatchScorer(pair, config)


class TopKFilter:
    """Adaptive correlation threshold via a top-K list (Section 6.3.2).

    Maintains the K highest-scoring windows seen so far; the effective
    sigma is the smallest score in the list once it is full, so the search
    progressively tightens its own acceptance bar.
    """

    def __init__(self, capacity: int, initial_sigma: float = 0.0) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._heap: List[Tuple[float, WindowKey, TimeDelayWindow]] = []
        self._initial_sigma = initial_sigma

    @property
    def sigma(self) -> float:
        """Current effective threshold."""
        if len(self._heap) < self.capacity:
            return self._initial_sigma
        return self._heap[0][0]

    def offer(self, window: TimeDelayWindow, value: float) -> bool:
        """Consider a window; returns True when it enters the top-K list."""
        if len(self._heap) < self.capacity:
            heapq.heappush(self._heap, (value, window.key(), window))
            return True
        if value > self._heap[0][0]:
            heapq.heapreplace(self._heap, (value, window.key(), window))
            return True
        return False

    def windows(self) -> List[Tuple[TimeDelayWindow, float]]:
        """The current top-K windows, best first."""
        return [(w, v) for v, _, w in sorted(self._heap, reverse=True)]

    def __len__(self) -> int:
        return len(self._heap)

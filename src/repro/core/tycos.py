"""TYCOS: the Time delaY COrrelation Search (paper Sections 5-7).

The four variants evaluated in the paper are all served by one driver with
two switches:

===========  ==========  ===============
Variant      noise theory  incremental MI
===========  ==========  ===============
TYCOS_L      off          off
TYCOS_LN     on           off
TYCOS_LM     off          on
TYCOS_LMN    on           on
===========  ==========  ===============

The driver implements Algorithms 1 and 2: starting from an initial window
(leading-noise-pruned for the N variants), a LAHC ascent maximizes the
window score over delta-neighborhoods that grow while the search idles;
the local optimum is accepted into the result set when it clears sigma;
then the search restarts on the remaining data until the pair is scanned.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro import contracts
from repro._types import AnyArray
from repro.core.config import TycosConfig
from repro.core.lahc import LateAcceptanceHillClimbing
from repro.core.neighborhood import neighborhood
from repro.core.noise import NoiseDetector, find_initial_window
from repro.core.results import OverlapPolicy, ResultSet, WindowResult
from repro.core.thresholds import BatchScorer, IncrementalScorer, TopKFilter, make_scorer
from repro.core.window import PairView, TimeDelayWindow

__all__ = [
    "SearchStats",
    "TycosResult",
    "Tycos",
    "tycos_l",
    "tycos_ln",
    "tycos_lm",
    "tycos_lmn",
]


@dataclass
class SearchStats:
    """Instrumentation of one search run.

    Attributes:
        windows_evaluated: windows whose MI was actually computed.
        cache_hits: window scores served from the memo table.
        restarts: number of LAHC ascents launched.
        lahc_iterations: total acceptance rounds across ascents.
        accepted_moves: total accepted LAHC moves.
        noise_prunes: direction blocks issued by the noise detector.
        mi_full_searches: from-scratch k-NN searches in the sliding engine
            (incremental variants only).
        mi_incremental_updates: constant-time neighbor-set updates
            (incremental variants only).
        workspace_builds: shared distance workspaces constructed for
            batched same-delay clusters (batched scoring only).
        workspace_hits: clusters served from the per-delay workspace LRU
            (``TycosConfig.workspace_cache_size``).
        segments: timeline segments the search ran over (0 for a classic
            unsegmented search, the span count for a segmented one; see
            :mod:`repro.analysis.segmented`).
        stitch_dedups: duplicate windows dropped by the stitcher because
            two segments found the same window in an overlap zone.
        stitch_rescores: overlap-zone windows rescored on the whole
            series by the stitcher for cross-segment conflict resolution.
        coarse_windows_evaluated: windows scored on PAA-downsampled
            levels during a coarse-to-fine pre-pass
            (:mod:`repro.analysis.multiscale`); 0 for exhaustive search.
        refined_cells: full-resolution ``(region, delay band)`` cells the
            refinement stage actually searched (after merging overlaps).
        cells_pruned: coarse timeline tiles the pre-pass ruled out, i.e.
            regions the exhaustive search would have scanned but the
            multiscale search never touched at full resolution.
        full_windows_evaluated: windows scored by the full-resolution
            estimator.  For exhaustive search this equals
            ``windows_evaluated``; for multiscale it is the quantity the
            pruning ratio is measured on.
        serial_fallback: True when a parallel request (``n_jobs > 1``)
            was served serially because the host has a single CPU and
            pool dispatch would only add overhead.
        phase_seconds: wall-clock seconds per search phase, keyed by the
            canonical phase names of
            :class:`repro.analysis.planner.Phase` (``seeding`` /
            ``lahc`` / ``scoring`` / ``stitch`` / ``coarse`` /
            ``refine``), for ``tycos-search --profile``.  This module
            spells the names as literals because core must not import
            the analysis layer; the planner tests pin the spellings.
        plan: compact spec of the executed
            :class:`~repro.analysis.planner.SearchPlan` (e.g.
            ``"segments=4,coarse=8"``), recorded by the plan executor;
            empty for a direct ``_search_whole`` call.
        runtime_seconds: wall-clock time of the search.
    """

    windows_evaluated: int = 0
    cache_hits: int = 0
    restarts: int = 0
    lahc_iterations: int = 0
    accepted_moves: int = 0
    noise_prunes: int = 0
    mi_full_searches: int = 0
    mi_incremental_updates: int = 0
    workspace_builds: int = 0
    workspace_hits: int = 0
    segments: int = 0
    stitch_dedups: int = 0
    stitch_rescores: int = 0
    coarse_windows_evaluated: int = 0
    refined_cells: int = 0
    cells_pruned: int = 0
    full_windows_evaluated: int = 0
    serial_fallback: bool = False
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    plan: str = ""
    runtime_seconds: float = 0.0

    def add_phase(self, name: str, seconds: float) -> None:
        """Accumulate wall-clock time into one named phase."""
        self.phase_seconds[name] = self.phase_seconds.get(name, 0.0) + seconds


@dataclass
class TycosResult:
    """Windows found by a search plus run statistics."""

    windows: List[WindowResult] = field(default_factory=list)
    stats: SearchStats = field(default_factory=SearchStats)

    def __len__(self) -> int:
        return len(self.windows)

    def delays(self) -> List[int]:
        """Delays of all extracted windows."""
        return [r.window.delay for r in self.windows]

    def delay_range(self) -> Optional[Tuple[int, int]]:
        """(min, max) delay over extracted windows, or None when empty."""
        if not self.windows:
            return None
        ds = self.delays()
        return (min(ds), max(ds))


class Tycos:
    """Configurable TYCOS search engine.

    Args:
        config: search parameters.
        use_noise: enable the Section-6 noise theory (the "N" in LN/LMN).
        use_incremental: enable the Section-7 incremental MI computation
            (the "M" in LM/LMN).
        overlap_policy: how the result set resolves overlapping windows.
        batched_scoring: score each delta-neighborhood ring through one
            batched :meth:`BatchScorer.value_many` call (same-delay
            neighbors share a single pairwise-distance workspace) instead
            of one scorer call per candidate.  Scores and results are
            identical either way; the flag exists so benchmarks can
            measure the batched kernel against the scalar path.
    """

    def __init__(
        self,
        config: TycosConfig,
        use_noise: bool = True,
        use_incremental: bool = True,
        overlap_policy: OverlapPolicy = OverlapPolicy.CONTAINMENT,
        batched_scoring: bool = True,
    ) -> None:
        self.config = config
        self.use_noise = use_noise
        self.use_incremental = use_incremental
        self.overlap_policy = overlap_policy
        self.batched_scoring = batched_scoring

    @property
    def name(self) -> str:
        """Paper-style variant name (TYCOS_L / _LN / _LM / _LMN)."""
        suffix = "L"
        if self.use_incremental:
            suffix += "M"
        if self.use_noise:
            suffix += "N"
        return f"TYCOS_{suffix}"

    # ------------------------------------------------------------------ #

    def search(
        self,
        x: AnyArray,
        y: AnyArray,
        *,
        n_segments: Optional[int] = None,
        n_jobs: int = 1,
        coarse_factor: Optional[int] = None,
        refine_margin: Optional[int] = None,
    ) -> TycosResult:
        """Find all correlated time delay windows of a pair (Algorithm 1/2).

        Args:
            x: first time series.
            y: second time series (same length).
            n_segments: shard the timeline into this many overlapping
                segments and run one independent restart loop per segment
                (default: ``config.n_segments``).  1 is the classic
                whole-series search; larger values change which restarts
                are attempted (each segment rescans from its own start)
                but never lose a feasible window to a boundary -- see the
                containment lemma in :mod:`repro.core.segmentation`.
            n_jobs: worker processes for the segments (``-1``: all
                cores).  1 runs the segments sequentially in-process --
                the reference stitcher whose output the parallel path
                reproduces bit-exactly for every worker count.
            coarse_factor: PAA aggregation factor of the coarse-to-fine
                pre-pass (default: ``config.coarse_factor``).  1 searches
                exhaustively; larger values first locate structure on a
                downsampled level and refine only the promising cells at
                full resolution (:mod:`repro.analysis.multiscale`).
                Reported scores are always full-resolution.
            refine_margin: samples added around each coarse hit before
                refining (default: ``config.refinement_margin()``).

        Returns:
            A :class:`TycosResult` whose windows all score at least
            ``config.sigma`` and respect the overlap policy.

        .. note::
            Since the planner refactor this method is a thin wrapper: it
            translates its legacy argument surface into a
            :class:`~repro.analysis.planner.SearchPlan` (via
            :func:`~repro.analysis.planner.plan_from_config`, which
            reproduces the historical dispatch precedence exactly) and
            hands execution to
            :func:`~repro.analysis.planner.execute_plan`.  Outputs are
            byte-identical to the pre-planner dispatch; pass a plan to
            ``execute_plan`` directly to reach the composed strategies
            this surface cannot spell.
        """
        # Imported lazily: core stays importable without the analysis
        # layer, exactly as the pre-planner strategy dispatch did.
        from repro.analysis.planner import execute_plan, plan_from_config

        plan = plan_from_config(
            self.config,
            n_segments=n_segments,
            coarse_factor=coarse_factor,
            refine_margin=refine_margin,
        )
        return execute_plan(x, y, engine=self, plan=plan, n_jobs=n_jobs)

    def _search_whole(
        self,
        x: AnyArray,
        y: AnyArray,
        scan_hook: Optional[Callable[[int], Optional[int]]] = None,
    ) -> TycosResult:
        """One whole-series restart loop (the body of a plain :meth:`search`).

        ``scan_hook`` lets a caller *skip* restart positions: it receives
        each prospective scan position and returns the next allowed one
        (``None`` ends the scan).  The multiscale refinement uses it to
        jump over coarse-pruned regions while keeping every surviving
        restart bit-identical to the exhaustive search's -- see
        :mod:`repro.analysis.multiscale`.
        """
        started = time.perf_counter()
        cfg = self.config
        pair = PairView(x, y, jitter=cfg.jitter, seed=cfg.seed)
        if contracts.checks_enabled():
            contracts.check_series_shape(pair.x, pair.y, where="Tycos.search")
        scorer = make_scorer(pair, cfg, incremental=self.use_incremental)
        detector = NoiseDetector(scorer=scorer, config=cfg, n=pair.n) if self.use_noise else None
        accepted = ResultSet(policy=self.overlap_policy)
        stats = SearchStats()

        def sigma_of(value: float) -> bool:
            return value >= cfg.sigma

        self._drive(pair, scorer, detector, stats, sigma_of, accepted.insert, scan_hook)

        stats.windows_evaluated = scorer.evaluations
        stats.cache_hits = scorer.cache_hits
        stats.workspace_builds = scorer.workspace_builds
        stats.workspace_hits = scorer.workspace_hits
        stats.full_windows_evaluated = scorer.evaluations
        if detector is not None:
            stats.noise_prunes = detector.prunes
        if isinstance(scorer, IncrementalScorer):
            stats.mi_full_searches = scorer.engine.full_searches
            stats.mi_incremental_updates = scorer.engine.incremental_updates
        stats.runtime_seconds = time.perf_counter() - started
        return TycosResult(windows=accepted.results(), stats=stats)

    def search_topk(self, x: AnyArray, y: AnyArray, k_top: int) -> TycosResult:
        """Top-K variant (Section 6.3.2): keep the K best windows found.

        The effective sigma starts at the first window's score and tightens
        as the top-K list fills, so no absolute threshold is needed.
        """
        started = time.perf_counter()
        cfg = self.config
        pair = PairView(x, y, jitter=cfg.jitter, seed=cfg.seed)
        if contracts.checks_enabled():
            contracts.check_series_shape(pair.x, pair.y, where="Tycos.search_topk")
        scorer = make_scorer(pair, cfg, incremental=self.use_incremental)
        detector = NoiseDetector(scorer=scorer, config=cfg, n=pair.n) if self.use_noise else None
        stats = SearchStats()
        topk = TopKFilter(capacity=k_top)

        def sigma_of(value: float) -> bool:
            return value > topk.sigma or len(topk) < k_top

        def accept(result: WindowResult, value: float) -> bool:
            return topk.offer(result.window, value)

        self._drive(pair, scorer, detector, stats, sigma_of, accept)

        stats.windows_evaluated = scorer.evaluations
        stats.cache_hits = scorer.cache_hits
        stats.workspace_builds = scorer.workspace_builds
        stats.workspace_hits = scorer.workspace_hits
        stats.full_windows_evaluated = scorer.evaluations
        if detector is not None:
            stats.noise_prunes = detector.prunes
        if isinstance(scorer, IncrementalScorer):
            stats.mi_full_searches = scorer.engine.full_searches
            stats.mi_incremental_updates = scorer.engine.incremental_updates
        stats.runtime_seconds = time.perf_counter() - started
        windows = []
        for w, _ in topk.windows():
            score = scorer.score(w)
            windows.append(WindowResult(window=w, mi=score.mi, nmi=score.nmi))
        return TycosResult(windows=windows, stats=stats)

    # ------------------------------------------------------------------ #

    def _drive(
        self,
        pair: PairView,
        scorer: BatchScorer,
        detector: Optional[NoiseDetector],
        stats: SearchStats,
        passes_threshold: Callable[[float], bool],
        accept: Callable[[WindowResult, float], bool],
        scan_hook: Optional[Callable[[int], Optional[int]]] = None,
    ) -> None:
        """The restart loop shared by the fixed-sigma and top-K searches.

        Each restart draws a fresh LAHC history generator seeded from
        ``(config.seed, scan_from)``, so an ascent is a pure function of
        its restart position and the pair: skipping some restarts (the
        multiscale refinement's ``scan_hook``) cannot perturb the ones
        that remain.  ``scan_hook`` maps each prospective scan position
        to the next allowed one (monotonically non-decreasing; ``None``
        stops the scan); ``None`` hook means scan everything.
        """
        cfg = self.config
        n = pair.n
        band = cfg.delay_bounds() if cfg.delay_band is not None else None
        seed_base = cfg.seed & 0xFFFFFFFFFFFFFFFF
        scan_from = 0
        while True:
            if scan_hook is not None:
                jumped = scan_hook(scan_from)
                if jumped is None:
                    break
                if jumped < scan_from:
                    raise ValueError(
                        f"scan_hook must not move backwards: {scan_from} -> {jumped}"
                    )
                scan_from = jumped
            if scan_from + cfg.s_min - 1 >= n:
                break
            seed_started = time.perf_counter()
            w0 = self._initial_window(scorer, n, scan_from, detector)
            if w0 is None:
                stats.add_phase("seeding", time.perf_counter() - seed_started)
                break
            v0 = scorer.value(w0)
            stats.add_phase("seeding", time.perf_counter() - seed_started)
            if detector is not None:
                detector.reset()

            if isinstance(scorer, IncrementalScorer):
                scorer.follow_delay(w0.delay)
            last_seen: List[Optional[TimeDelayWindow]] = [None]

            def candidates(
                current: TimeDelayWindow, idle: int
            ) -> List[Tuple[TimeDelayWindow, float]]:
                if last_seen[0] != current:
                    if isinstance(scorer, IncrementalScorer):
                        scorer.follow_delay(current.delay)
                    if detector is not None:
                        detector.reset()
                        detector.inspect(current, scorer.value(current))
                    last_seen[0] = current
                blocked = frozenset(detector.blocked) if detector is not None else frozenset()
                nbs = neighborhood(
                    current,
                    radius=1 + idle,
                    delta=cfg.delta,
                    n=n,
                    s_min=cfg.s_min,
                    s_max=cfg.s_max,
                    td_max=cfg.td_max,
                    blocked=blocked,
                )
                if band is not None:
                    nbs = [nb for nb in nbs if band[0] <= nb.window.delay <= band[1]]
                # Evaluate same-delay candidates consecutively so the
                # incremental scorer's on-trajectory diffs chain between
                # adjacent windows instead of ping-ponging across the ring.
                nbs.sort(key=lambda nb: (nb.window.delay, nb.window.start, nb.window.end))
                score_started = time.perf_counter()
                if self.batched_scoring:
                    ring = [nb.window for nb in nbs]
                    scored = list(zip(ring, scorer.value_many(ring)))
                else:
                    scored = [(nb.window, scorer.value(nb.window)) for nb in nbs]
                stats.add_phase("scoring", time.perf_counter() - score_started)
                return scored

            lahc = LateAcceptanceHillClimbing(
                cfg.history_length,
                cfg.max_idle,
                np.random.default_rng([seed_base, scan_from]),
            )
            scoring_before = stats.phase_seconds.get("scoring", 0.0)
            ascent_started = time.perf_counter()
            ascent = lahc.search(w0, v0, candidates)
            ascent_wall = time.perf_counter() - ascent_started
            scored_during = stats.phase_seconds.get("scoring", 0.0) - scoring_before
            stats.add_phase("lahc", ascent_wall - scored_during)
            stats.restarts += 1
            stats.lahc_iterations += ascent.iterations
            stats.accepted_moves += ascent.accepted_moves

            best, best_value = ascent.best, ascent.best_value
            if passes_threshold(best_value) and self._is_significant(pair, best, scorer):
                score = scorer.score(best)
                if contracts.checks_enabled():
                    contracts.check_window_feasible(
                        best, n=n, s_min=cfg.s_min, s_max=cfg.s_max,
                        td_max=cfg.td_max, where="Tycos accepted window",
                    )
                    contracts.check_mi_finite(score.mi, where="Tycos accepted window")
                    contracts.check_nmi_range(score.nmi, where="Tycos accepted window")
                accept(WindowResult(window=best, mi=score.mi, nmi=score.nmi), best_value)
                scan_from = max(scan_from + cfg.s_min, best.end + 1, w0.end + 1)
            else:
                scan_from = max(scan_from + cfg.s_min, w0.end + 1)

    def _is_significant(
        self, pair: PairView, window: TimeDelayWindow, scorer: BatchScorer
    ) -> bool:
        """Permutation test: the window's MI must beat every within-window
        shuffle of Y (disabled when ``significance_permutations`` is 0)."""
        b = self.config.significance_permutations
        if b == 0:
            return True
        xw, yw = pair.extract(window)
        # Reuse the scorer's estimator: it already carries the configured
        # k and the process-wide digamma table, so the permutation MIs
        # need no cold per-window estimator.
        estimator = scorer.estimator
        observed = scorer.score(window).mi
        rng = np.random.default_rng(self.config.seed + window.start)
        for _ in range(b):
            if estimator.mi(xw, rng.permutation(yw)) >= observed:
                return False
        return True

    def _initial_window(
        self,
        scorer: BatchScorer,
        n: int,
        scan_from: int,
        detector: Optional[NoiseDetector],
    ) -> Optional[TimeDelayWindow]:
        cfg = self.config
        if detector is not None:
            return find_initial_window(scorer, cfg, n, scan_from)
        if scan_from + cfg.s_min - 1 >= n:
            return None
        # Plain variants seed with the best minimal window at scan_from over
        # the coarse delay grid (see TycosConfig.init_delay_step), scored in
        # one batched pass; ties keep the earliest grid delay, exactly as
        # the scalar loop did.
        end = scan_from + cfg.s_min - 1
        candidates = [
            TimeDelayWindow(start=scan_from, end=end, delay=tau)
            for tau in cfg.delay_grid()
            if scan_from + tau >= 0 and end + tau < n
        ]
        if not candidates:
            return None
        if self.batched_scoring:
            values = scorer.value_many(candidates)
        else:
            values = [scorer.value(cand) for cand in candidates]
        best: Optional[TimeDelayWindow] = None
        best_value = -np.inf
        for cand, value in zip(candidates, values):
            if value > best_value:
                best, best_value = cand, value
        return best


# Variant factories matching the paper's naming -------------------------- #


def tycos_l(config: TycosConfig) -> Tycos:
    """Plain LAHC search (Section 5.2)."""
    return Tycos(config, use_noise=False, use_incremental=False)


def tycos_ln(config: TycosConfig) -> Tycos:
    """LAHC + noise theory (Section 6)."""
    return Tycos(config, use_noise=True, use_incremental=False)


def tycos_lm(config: TycosConfig) -> Tycos:
    """LAHC + efficient incremental MI computation (Section 7)."""
    return Tycos(config, use_noise=False, use_incremental=True)


def tycos_lmn(config: TycosConfig) -> Tycos:
    """LAHC + noise theory + incremental MI (the full system)."""
    return Tycos(config, use_noise=True, use_incremental=True)

"""Core TYCOS search: windows, LAHC, noise theory and the search variants."""

from repro.core.brute_force import brute_force_search
from repro.core.config import ENERGY_CONFIG, SMARTCITY_CONFIG, TycosConfig
from repro.core.lahc import LahcResult, LateAcceptanceHillClimbing
from repro.core.neighborhood import Neighbor, neighborhood
from repro.core.noise import NoiseDetector, find_initial_window, is_noise
from repro.core.pyramid import (
    PyramidLevel,
    RefinementCell,
    build_level,
    build_pyramid,
    coarse_config,
    paa_downsample,
    refinement_cell,
)
from repro.core.results import OverlapPolicy, ResultSet, WindowResult, merge_overlapping
from repro.core.search_space import enumerate_feasible, exact_count, paper_count
from repro.core.segmentation import overlap_zones, segment_spans, span_containing
from repro.core.thresholds import (
    BatchScorer,
    IncrementalScorer,
    TopKFilter,
    WindowScore,
    make_scorer,
)
from repro.core.tycos import (
    SearchStats,
    Tycos,
    TycosResult,
    tycos_l,
    tycos_lm,
    tycos_lmn,
    tycos_ln,
)
from repro.core.window import PairView, TimeDelayWindow

__all__ = [
    "TycosConfig",
    "ENERGY_CONFIG",
    "SMARTCITY_CONFIG",
    "TimeDelayWindow",
    "PairView",
    "Tycos",
    "TycosResult",
    "SearchStats",
    "tycos_l",
    "tycos_ln",
    "tycos_lm",
    "tycos_lmn",
    "brute_force_search",
    "LateAcceptanceHillClimbing",
    "LahcResult",
    "Neighbor",
    "neighborhood",
    "NoiseDetector",
    "find_initial_window",
    "is_noise",
    "ResultSet",
    "WindowResult",
    "OverlapPolicy",
    "merge_overlapping",
    "enumerate_feasible",
    "exact_count",
    "paper_count",
    "segment_spans",
    "overlap_zones",
    "span_containing",
    "PyramidLevel",
    "RefinementCell",
    "paa_downsample",
    "build_level",
    "build_pyramid",
    "refinement_cell",
    "coarse_config",
    "BatchScorer",
    "IncrementalScorer",
    "WindowScore",
    "TopKFilter",
    "make_scorer",
]

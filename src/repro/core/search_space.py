"""The TYCOS search space (paper Section 5.1, Lemma 1).

The search space is the set of *feasible* windows: every
``w = ([t_s, t_e], tau)`` with ``s_min <= |w| <= s_max``, ``|tau| <= td_max``
and both mapped intervals inside the observation period.  Lemma 1 bounds its
size by Eq. (4); this module provides both the paper's closed form and an
exact enumerator (used by the brute-force baseline and by tests that
cross-check the formula).
"""

from __future__ import annotations

from typing import Iterator

from repro.core.window import TimeDelayWindow

__all__ = ["paper_count", "exact_count", "enumerate_feasible"]


def paper_count(n: int, s_min: int, s_max: int, td_max: int) -> int:
    """Eq. (4): ``(n - s_min + 1) * (s_max - s_min + 1) * 2 * td_max``.

    This is the paper's (slight over-)count: it ignores that large windows
    cannot start near the end of the series and that shifted windows must
    stay inside ``Y_T``.  Kept verbatim so the Lemma-1 worked example
    (136,870,440 windows for n=9000, s in [20, 400], td_max=20) reproduces.
    """
    if n < s_min:
        return 0
    return (n - s_min + 1) * (s_max - s_min + 1) * 2 * td_max


def enumerate_feasible(
    n: int, s_min: int, s_max: int, td_max: int
) -> Iterator[TimeDelayWindow]:
    """Yield every feasible window of a length-n pair, in scan order.

    Order: by start index, then by size, then by delay from ``-td_max`` to
    ``td_max``.  The zero-delay window is included once.
    """
    if s_min < 1:
        raise ValueError(f"s_min must be >= 1, got {s_min}")
    for start in range(0, n - s_min + 1):
        max_size = min(s_max, n - start)
        for size in range(s_min, max_size + 1):
            end = start + size - 1
            for delay in range(-td_max, td_max + 1):
                if start + delay >= 0 and end + delay < n:
                    yield TimeDelayWindow(start=start, end=end, delay=delay)


def exact_count(n: int, s_min: int, s_max: int, td_max: int) -> int:
    """Exact number of feasible windows (closed form, no enumeration).

    For a window of size ``s`` starting at ``t_s`` the delay must satisfy
    ``-t_s <= tau <= n - 1 - (t_s + s - 1)`` intersected with
    ``[-td_max, td_max]``.
    """
    if s_min < 1 or n < s_min:
        return 0
    total = 0
    for start in range(0, n - s_min + 1):
        max_size = min(s_max, n - start)
        for size in range(s_min, max_size + 1):
            end = start + size - 1
            lo = max(-td_max, -start)
            hi = min(td_max, n - 1 - end)
            if hi >= lo:
                total += hi - lo + 1
    return total

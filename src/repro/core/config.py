"""TYCOS configuration (paper Section 8.2, Table 2).

TYCOS takes five search parameters -- the correlation threshold ``sigma``,
the noise threshold ``epsilon`` (a hyper-parameter fixed at ``sigma / 4``
in the paper), the window size bounds ``s_min``/``s_max`` and the maximum
delay ``td_max`` -- plus a handful of engine knobs (LAHC history length and
idle budget, the delta moving step, the KSG ``k``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, List, Optional, Tuple

__all__ = ["TycosConfig", "ENERGY_CONFIG", "SMARTCITY_CONFIG"]

# Kept as literals (mirrored by repro.mi.backends.dispatch) so the config
# layer does not import the backend machinery it merely selects.
_BACKENDS = ("auto", "numpy", "numba")
_PRECISIONS = ("float64", "float32")


@dataclass(frozen=True)
class TycosConfig:
    """All knobs of a TYCOS search.

    Attributes:
        sigma: correlation threshold on the window score, in (0, 1] when
            ``use_normalized`` (the default, per Section 6.3.1) or in nats
            otherwise.
        epsilon_ratio: the noise threshold as a fraction of sigma;
            the paper's empirical best trade-off is 0.25 (Section 8.5 A).
        s_min: minimum window size (samples).  Must be at least ``k + 2`` so
            every evaluated window supports a KSG estimate.
        s_max: maximum window size (samples).
        td_max: maximum absolute time delay (samples).
        delta: the delta moving step of the neighborhood (Def. 5.1).
        history_length: length of the LAHC history list ``L_h``.
        max_idle: ``T_maxIdle``, consecutive non-improvements before the
            local search stops.
        k: nearest-neighbor count of the KSG estimator.
        use_normalized: score windows by normalized MI (Eq. 18) rather than
            raw MI; keeps sigma on a dataset-independent [0, 1] scale.
        jitter: relative magnitude of deterministic tie-breaking noise
            applied to the input series (0 disables).
        seed: seed for the LAHC history policy and the jitter noise.
        significance_permutations: when positive, a window is only accepted
            into the result set if its MI exceeds the MI of this many
            within-window shuffles of Y (a permutation test against the
            independence null).  Guards against the small-window false
            positives any finite-sample MI estimator produces; 0 disables.
        cache_capacity: upper bound on entries in a scorer's window-score
            memo table.  The table is an LRU: long multi-restart searches
            revisit mostly *recent* windows, so a generous cap keeps the
            hit rate intact while bounding memory on big inputs.
        use_digamma_table: serve every digamma evaluation in the KSG kernel
            from the process-wide lookup table
            (:func:`repro.mi.digamma.shared_digamma_table`).  Table entries
            are exact scipy evaluations, so results are bit-identical either
            way; the switch exists so benchmarks can measure the table
            against direct scipy calls.  Memory: one float64 per integer
            ever seen (rounded up to a power of two), shared process-wide.
        use_sorted_marginals: reuse presorted marginal projections for
            KSG marginal counts -- the workspace's cached union argsort in
            batched scoring, the incrementally maintained
            :class:`repro.mi.neighbors.MarginalIndex` in the sliding engine
            (Lemmas 5/6) -- instead of re-sorting both axes per estimate.
            Counts are exactly equal either way.  Memory: two sorted
            float64 copies of each live union span / engine window.
        workspace_cache_size: number of per-delay
            :class:`repro.mi.neighbors.PairDistanceWorkspace` entries a
            batched scorer keeps in its LRU, so LAHC iterations revisiting
            a delay reuse the O(u^2) distance broadcasts instead of
            rebuilding them.  0 disables the cache (a workspace is still
            built per cluster, as before).  Memory per entry is
            O(u^2) float64 for the cached span, so the bound matters on
            big inputs; 8 covers a typical LAHC delay trajectory.
        n_segments: number of timeline segments a single-pair search is
            sharded into (:mod:`repro.analysis.segmented`).  1 (the
            default) keeps the classic whole-series restart loop; larger
            values split ``[0, n)`` into that many overlapping spans, run
            an independent restart loop per span, and stitch the results
            deterministically.  Segments can execute in parallel
            (``Tycos.search(..., n_jobs=)``), which is the only way one
            huge pair can use more than one core.
        segment_margin: extra overlap between consecutive segments on top
            of the ``s_max + td_max`` the containment lemma requires
            (:mod:`repro.core.segmentation`).  Defaults to ``s_min`` so
            noise probes and LAHC rings near a window's footprint keep
            some context past it.
        coarse_factor: PAA aggregation factor of the coarse-to-fine
            pre-pass (:mod:`repro.analysis.multiscale`).  1 (the default)
            searches exhaustively at full resolution; larger values first
            run the restart loop on a :mod:`repro.core.pyramid` level that
            aggregates this many samples per cell, then refine only the
            promising ``(region, delay band)`` cells at full resolution.
            Reported scores are always full-resolution
            :class:`~repro.core.thresholds.BatchScorer` values.
        refine_margin: full-resolution samples added on each side of a
            coarse hit's footprint before refinement, absorbing coarse
            LAHC positioning error.  Defaults to ``s_max + td_max`` (one
            maximal window footprint), which empirically preserves 100%
            recall on the tracked bench; smaller values prune harder at
            some recall risk.
        coarse_sigma_ratio: fraction of ``sigma`` used as the acceptance
            threshold of the coarse pre-pass.  Block-mean aggregation
            dilutes MI, so the coarse pass must under-bid the final
            threshold to avoid false dismissals; refinement re-applies the
            full ``sigma``.
        delay_band: when set, restricts the search to delays in this
            inclusive ``(lo, hi)`` range (intersected with
            ``[-td_max, td_max]``).  The multiscale refinement uses it to
            confine each cell's search to the delays its coarse hit maps
            to; it composes with every engine feature because both the
            initial-window grid and the LAHC neighborhood respect it.
        init_delay_step: stride of the coarse delay grid probed when
            choosing an initial window (default ``max(1, s_min // 2)``).
            Algorithm 1 seeds the search at delay 0 only, but the MI
            landscape is flat along the delay axis away from a true lag, so
            a local search seeded at 0 can never reach a distant delay;
            probing a coarse grid of delays at each restart makes every
            delay basin reachable while LAHC still does the fine
            positioning.  (Without this, TYCOS_L could not approach the
            brute-force recall Table 4 reports on delayed data.)
        screen_margin: safety margin the all-pairs prescreen cascade
            (:mod:`repro.analysis.cascade`) subtracts from its screen
            thresholds before pruning a pair.  The FFT screens are linear
            proxies for an information-theoretic search, so they must
            under-bid: a pair is only pruned when its screen score falls
            below ``threshold - screen_margin``.  ``0`` is the explicit
            opt-out of that conservatism (prune exactly at the nominal
            thresholds); ``inf`` disables pruning entirely, making a
            cascade scan byte-identical to the unscreened scan.
        screen_block: pairs per batched stage-1 screen block
            (:mod:`repro.analysis.screen_state`).  Each block is scored
            by a few batched numpy kernels over the stacked per-series
            states, so larger blocks amortize more dispatch overhead at
            the cost of a larger working set (roughly ``block_size x
            (2 td_max + 1) x n`` floats for the band product plus the
            stacked spectra).  Block boundaries never change results:
            batched scores are bit-identical to the per-pair screen at
            every block size.
        backend: which kernel engine serves the KSG hot loops
            (:mod:`repro.mi.backends`).  ``"numpy"`` (the default) keeps
            the legacy vectorized paths bit-for-bit unchanged;
            ``"numba"`` requests the compiled canonical kernels (served
            by their bit-identical numpy reference when numba is absent
            or a kernel fails to compile); ``"auto"`` uses the compiled
            kernels when fully available and the legacy paths otherwise.
        precision: floating-point tier of the backend kernels.
            ``"float64"`` (the default) is exact; ``"float32"`` is an
            opt-in bandwidth optimization that prunes neighbor
            candidates in float32 and re-ranks them in float64, so radii
            and marginal counts stay float64 quantities (tolerance-gated
            against float64 on the tracked workloads).  Any backend may
            combine with it; ``backend="numpy"`` with
            ``precision="float32"`` runs the numpy *canonical* kernels.
    """

    sigma: float = 0.3
    epsilon_ratio: float = 0.25
    s_min: int = 8
    s_max: int = 200
    td_max: int = 20
    delta: int = 1
    history_length: int = 5
    max_idle: int = 3
    k: int = 4
    use_normalized: bool = True
    jitter: float = 0.0
    seed: int = 0
    significance_permutations: int = 0
    cache_capacity: int = 100_000
    use_digamma_table: bool = True
    use_sorted_marginals: bool = True
    workspace_cache_size: int = 8
    n_segments: int = 1
    segment_margin: Optional[int] = None
    coarse_factor: int = 1
    refine_margin: Optional[int] = None
    coarse_sigma_ratio: float = 0.5
    delay_band: Optional[Tuple[int, int]] = None
    init_delay_step: Optional[int] = None
    screen_margin: float = 0.25
    screen_block: int = 256
    backend: str = "numpy"
    precision: str = "float64"

    def __post_init__(self) -> None:
        if self.backend not in _BACKENDS:
            raise ValueError(f"backend must be one of {_BACKENDS}, got {self.backend!r}")
        if self.precision not in _PRECISIONS:
            raise ValueError(
                f"precision must be one of {_PRECISIONS}, got {self.precision!r}"
            )
        if self.init_delay_step is not None and self.init_delay_step < 1:
            raise ValueError(f"init_delay_step must be >= 1, got {self.init_delay_step}")
        if self.significance_permutations < 0:
            raise ValueError(
                f"significance_permutations must be >= 0, got {self.significance_permutations}"
            )
        if not self.sigma > 0:
            raise ValueError(f"sigma must be > 0, got {self.sigma}")
        if not 0 <= self.epsilon_ratio < 1:
            raise ValueError(f"epsilon_ratio must be in [0, 1), got {self.epsilon_ratio}")
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        if self.s_min < self.k + 2:
            raise ValueError(
                f"s_min must be >= k + 2 = {self.k + 2} for the KSG estimator "
                f"to be defined on minimal windows, got {self.s_min}"
            )
        if self.s_max < self.s_min:
            raise ValueError(f"s_max ({self.s_max}) must be >= s_min ({self.s_min})")
        if self.td_max < 0:
            raise ValueError(f"td_max must be >= 0, got {self.td_max}")
        if self.delta < 1:
            raise ValueError(f"delta must be >= 1, got {self.delta}")
        if self.history_length < 1:
            raise ValueError(f"history_length must be >= 1, got {self.history_length}")
        if self.max_idle < 1:
            raise ValueError(f"max_idle must be >= 1, got {self.max_idle}")
        if self.jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {self.jitter}")
        if self.cache_capacity < 1:
            raise ValueError(f"cache_capacity must be >= 1, got {self.cache_capacity}")
        if self.workspace_cache_size < 0:
            raise ValueError(
                f"workspace_cache_size must be >= 0, got {self.workspace_cache_size}"
            )
        if self.n_segments < 1:
            raise ValueError(f"n_segments must be >= 1, got {self.n_segments}")
        if self.segment_margin is not None and self.segment_margin < 0:
            raise ValueError(f"segment_margin must be >= 0, got {self.segment_margin}")
        if self.coarse_factor < 1:
            raise ValueError(f"coarse_factor must be >= 1, got {self.coarse_factor}")
        if self.refine_margin is not None and self.refine_margin < 0:
            raise ValueError(f"refine_margin must be >= 0, got {self.refine_margin}")
        if not 0 < self.coarse_sigma_ratio <= 1:
            raise ValueError(
                f"coarse_sigma_ratio must be in (0, 1], got {self.coarse_sigma_ratio}"
            )
        if not self.screen_margin >= 0:  # also rejects NaN
            raise ValueError(f"screen_margin must be >= 0, got {self.screen_margin}")
        if self.screen_block < 1:
            raise ValueError(f"screen_block must be >= 1, got {self.screen_block}")
        if self.delay_band is not None:
            lo, hi = self.delay_band
            if lo > hi:
                raise ValueError(f"delay_band lo must be <= hi, got {self.delay_band}")
            if hi < -self.td_max or lo > self.td_max:
                raise ValueError(
                    f"delay_band {self.delay_band} does not intersect "
                    f"[-td_max, td_max] = [{-self.td_max}, {self.td_max}]"
                )

    @property
    def epsilon(self) -> float:
        """The noise threshold ``epsilon = epsilon_ratio * sigma`` (Def. 6.4)."""
        return self.epsilon_ratio * self.sigma

    def delay_bounds(self) -> Tuple[int, int]:
        """The inclusive delay range the search may visit.

        ``[-td_max, td_max]`` intersected with ``delay_band`` when one is
        set; ``__post_init__`` guarantees the intersection is non-empty.
        """
        lo, hi = -self.td_max, self.td_max
        if self.delay_band is not None:
            lo = max(lo, self.delay_band[0])
            hi = min(hi, self.delay_band[1])
        return lo, hi

    def delay_grid(self) -> List[int]:
        """The coarse delay grid probed for initial windows.

        Always contains both extremes of :meth:`delay_bounds` and 0 when
        in range; interior points are spaced ``init_delay_step`` apart
        (default ``s_min // 2``), measured from 0 so the grid is
        unchanged by a band that merely clips it.
        """
        step = self.init_delay_step if self.init_delay_step is not None else max(1, self.s_min // 2)
        lo, hi = self.delay_bounds()
        grid = {lo, hi}
        if lo <= 0 <= hi:
            grid.add(0)
        tau = step
        while tau < hi or -tau > lo:
            if tau < hi:
                grid.add(tau)
            if -tau > lo:
                grid.add(-tau)
            tau += step
        return sorted(d for d in grid if lo <= d <= hi)

    def segment_overlap(self) -> int:
        """Overlap (samples) between consecutive timeline segments.

        ``s_max + td_max`` is the largest footprint a feasible window can
        have, so that much overlap makes every feasible window fully
        contained in at least one segment (the containment lemma of
        :mod:`repro.core.segmentation`); ``segment_margin`` (default
        ``s_min``) adds working context on top.
        """
        margin = self.segment_margin if self.segment_margin is not None else self.s_min
        return self.s_max + self.td_max + margin

    def refinement_margin(self) -> int:
        """Samples added around a coarse hit's footprint before refining.

        Defaults to ``s_max + td_max`` -- one maximal window footprint --
        so a coarse LAHC that settled a whole window away from the true
        optimum still leaves the optimum inside the refinement cell.
        ``refine_margin`` overrides the default outright.
        """
        if self.refine_margin is not None:
            return self.refine_margin
        return self.s_max + self.td_max

    def scaled(self, **changes: Any) -> "TycosConfig":
        """A copy with some fields replaced (convenience for sweeps)."""
        return replace(self, **changes)


# Paper Table 2, rescaled from wall-clock durations to the sample counts of
# our simulators (energy: minute resolution, smart city: 5-minute
# resolution).  The paper's absolute sizes (s_max = 10080 samples = 7 days)
# target a year of minute data; our simulated traces are shorter, so the
# bounds are scaled down proportionally while keeping the Table-2 ratios.
ENERGY_CONFIG = TycosConfig(
    sigma=0.3,
    epsilon_ratio=0.25,
    s_min=8,
    s_max=360,
    td_max=60,
    jitter=1e-6,
)

SMARTCITY_CONFIG = TycosConfig(
    sigma=0.2,
    epsilon_ratio=0.25,
    s_min=8,
    s_max=288,
    td_max=24,
    jitter=1e-6,
)

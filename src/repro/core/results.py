"""Result containers for correlation search.

The TYCOS problem statement asks for a set ``S`` of windows with
``I_w >= sigma`` in which no window contains another.  :class:`ResultSet`
enforces that invariant on insertion and additionally supports the stricter
non-overlap policy the paper's prose describes, plus the overlapped-window
aggregation used when grading the brute-force baseline (Section 8.4 B).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Tuple

from repro.core.window import TimeDelayWindow

__all__ = ["WindowResult", "OverlapPolicy", "ResultSet", "merge_overlapping"]


@dataclass(frozen=True)
class WindowResult:
    """A correlated window together with its scores.

    Attributes:
        window: the time delay window.
        mi: raw KSG mutual information (nats).
        nmi: normalized MI in [0, 1].
    """

    window: TimeDelayWindow
    mi: float
    nmi: float

    @property
    def delay(self) -> int:
        """Convenience accessor for the window's delay."""
        return self.window.delay


class OverlapPolicy(enum.Enum):
    """How aggressively a :class:`ResultSet` rejects overlapping windows."""

    #: Only forbid containment (the problem statement's formal constraint).
    CONTAINMENT = "containment"
    #: Forbid any X-interval intersection (the paper's "non-overlapping").
    STRICT = "strict"
    #: Forbid Jaccard overlap above a threshold.
    JACCARD = "jaccard"


class ResultSet:
    """Windows accepted by a search, kept consistent under an overlap policy.

    On a conflict the higher-scoring window wins: inserting a better window
    evicts the worse conflicting ones; inserting a worse one is a no-op.

    Args:
        policy: the overlap policy (default: the formal containment rule).
        jaccard_threshold: maximum tolerated overlap for
            :attr:`OverlapPolicy.JACCARD`.
    """

    def __init__(
        self,
        policy: OverlapPolicy = OverlapPolicy.CONTAINMENT,
        jaccard_threshold: float = 0.5,
    ):
        self._policy = policy
        self._jaccard_threshold = jaccard_threshold
        self._items: List[WindowResult] = []

    def _conflicts(self, a: TimeDelayWindow, b: TimeDelayWindow) -> bool:
        if self._policy is OverlapPolicy.CONTAINMENT:
            return a.contains(b) or b.contains(a)
        if self._policy is OverlapPolicy.STRICT:
            return a.overlaps(b)
        return a.overlap_fraction(b) > self._jaccard_threshold

    def insert(self, result: WindowResult, value: Optional[float] = None) -> bool:
        """Insert a result, resolving conflicts in favor of higher scores.

        Args:
            result: the candidate.
            value: score used for conflict resolution (defaults to nmi).

        Returns:
            True when the candidate ended up in the set.
        """
        if value is None:
            value = result.nmi
        conflicting = [r for r in self._items if self._conflicts(r.window, result.window)]
        if conflicting:
            best_existing = max(r.nmi for r in conflicting)
            if value <= best_existing:
                return False
            self._items = [r for r in self._items if r not in conflicting]
        self._items.append(result)
        return True

    def insert_prioritized(self, items: Iterable[Tuple[WindowResult, float]]) -> int:
        """Insert many scored results in fixed ``(score, start, delay)`` priority.

        The segmented-search stitcher collects candidates from segments
        that finish in arbitrary order; inserting them as they arrive
        would make conflict resolution depend on scheduling.  Sorting by
        descending score with ``(start, delay, end)`` as the tie-break
        fixes the priority, so the surviving set is identical no matter
        which segment produced a candidate first (ties are kept
        first-wins by :meth:`insert`'s ``value <= best_existing`` test).

        Returns:
            The number of candidates that ended up in the set.
        """
        ordered = sorted(
            items,
            key=lambda item: (
                -item[1],
                item[0].window.start,
                item[0].window.delay,
                item[0].window.end,
            ),
        )
        inserted = 0
        for result, value in ordered:
            if self.insert(result, value):
                inserted += 1
        return inserted

    def windows(self) -> List[TimeDelayWindow]:
        """The accepted windows in start order."""
        return [r.window for r in sorted(self._items, key=lambda r: r.window.key())]

    def results(self) -> List[WindowResult]:
        """The accepted results in start order."""
        return sorted(self._items, key=lambda r: r.window.key())

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[WindowResult]:
        return iter(self.results())

    def delays(self) -> List[int]:
        """Delays of the accepted windows (for Table-3 style summaries)."""
        return [r.window.delay for r in self.results()]


def merge_overlapping(
    windows: Iterable[TimeDelayWindow], n: Optional[int] = None
) -> List[TimeDelayWindow]:
    """Aggregate overlapping windows into maximal covering windows.

    The brute-force baseline reports every feasible window above threshold,
    which floods the output with near-duplicates; Section 8.4 B aggregates
    them before comparing against TYCOS.  Windows whose X intervals overlap
    are unioned; the merged window keeps the delay of the largest
    contributing window (the dominant correlation), clamped -- when the
    series length ``n`` is given -- so its Y interval fits the series.
    """
    items = sorted(windows, key=lambda w: (w.start, w.end))
    merged: List[TimeDelayWindow] = []
    for w in items:
        if merged and merged[-1].overlaps(w):
            prev = merged[-1]
            dominant = prev if prev.size >= w.size else w
            merged[-1] = TimeDelayWindow(
                start=min(prev.start, w.start),
                end=max(prev.end, w.end),
                delay=dominant.delay,
            )
        else:
            merged.append(w)
    if n is not None:
        merged = [
            TimeDelayWindow(
                start=w.start,
                end=w.end,
                delay=max(-w.start, min(w.delay, n - 1 - w.end)),
            )
            for w in merged
            if w.end < n
        ]
    return merged

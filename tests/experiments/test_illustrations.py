"""Tests for the Fig 4 / Fig 6 illustration generators."""

import numpy as np

from repro.experiments.illustrations import (
    illustration_pair,
    mi_fluctuation,
    noise_prefix_effect,
)


class TestMiFluctuation:
    def test_peaks_align_with_planted_relations(self):
        pair = illustration_pair(seed=1)
        starts, values = mi_fluctuation(pair, window=60, step=15)
        values = np.asarray(values)
        starts = np.asarray(starts)
        inside = np.zeros(len(starts), dtype=bool)
        for p in pair.planted:
            inside |= (starts >= p.start - 10) & (starts + 60 <= p.end + 10)
        # Mean MI inside the relations dwarfs the outside mean (Fig 4's
        # hills vs valleys).
        assert values[inside].mean() > 3 * values[~inside].mean()

    def test_series_lengths_match(self):
        pair = illustration_pair()
        starts, values = mi_fluctuation(pair)
        assert len(starts) == len(values) > 10


class TestNoisePrefixEffect:
    def test_monotone_increase_as_noise_excluded(self):
        pair = illustration_pair(seed=1)
        prefixes, values = noise_prefix_effect(pair, prefixes=(60, 40, 20, 0))
        # Fig 6: dropping the noise prefix raises the MI, monotonically.
        assert values == sorted(values)
        assert values[-1] > values[0]

    def test_prefixes_echoed(self):
        pair = illustration_pair()
        prefixes, values = noise_prefix_effect(pair, prefixes=(30, 0))
        assert prefixes == [30, 0]
        assert len(values) == 2

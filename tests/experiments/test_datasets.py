"""Tests for the shared dataset builders of the efficiency experiments."""

import numpy as np
import pytest

from repro.experiments.datasets import (
    city_pair,
    dataset_pair,
    energy_pair,
    synthetic_pair,
)
from repro.mi.normalized import normalized_mi


class TestSyntheticPairs:
    def test_unknown_mix_rejected(self):
        with pytest.raises(KeyError, match="unknown synthetic"):
            synthetic_pair("synthetic9", 300)

    def test_planted_delay_carries_signal(self):
        x, y = synthetic_pair("synthetic1", 600, seed=0, delay=10)
        # Somewhere in the pair, a window at delay 10 must be strongly
        # dependent while the aligned version is not.
        starts = range(0, x.size - 75, 20)
        best_shifted = max(
            normalized_mi(x[s : s + 60], y[s + 10 : s + 70]) for s in starts
        )
        best_aligned = max(
            normalized_mi(x[s : s + 60], y[s : s + 60]) for s in starts
        )
        assert best_shifted > 0.5
        assert best_shifted > best_aligned

    def test_deterministic(self):
        a = synthetic_pair("synthetic2", 400, seed=3)
        b = synthetic_pair("synthetic2", 400, seed=3)
        np.testing.assert_array_equal(a[0], b[0])

    def test_requested_length_honored_approximately(self):
        for n in (300, 700):
            x, y = synthetic_pair("synthetic3", n, seed=0)
            assert x.size <= n
            assert x.size == y.size


class TestSimulatedPairs:
    def test_energy_pair_builds(self):
        x, y = energy_pair(400, seed=0)
        assert x.size == 400
        assert np.all(x >= 0)

    def test_city_pair_builds(self):
        x, y = city_pair(500, seed=0)
        assert x.size == 500

    def test_dispatch(self):
        for name in ("synthetic1", "energy", "smartcity"):
            x, y = dataset_pair(name, 300, seed=1)
            assert x.size == y.size

"""Tests for the one-call summary report."""

import pytest

from repro.experiments import summary as summary_module
from repro.experiments.summary import generate_summary


class TestGenerateSummary:
    def test_unknown_experiment_rejected(self):
        with pytest.raises(ValueError, match="unknown experiments"):
            generate_summary(experiments=["table9"])

    def test_collects_sections_and_durations(self, monkeypatch):
        monkeypatch.setitem(
            summary_module.EXPERIMENTS, "table1", lambda scale, seed: "TABLE ONE BODY"
        )
        report = generate_summary(experiments=["table1"], scale="quick", seed=3)
        assert report.sections["table1"] == "TABLE ONE BODY"
        assert report.durations["table1"] >= 0.0
        assert report.failures == {}

    def test_failure_recorded_not_raised(self, monkeypatch):
        def boom(scale, seed):
            raise RuntimeError("synthetic failure")

        monkeypatch.setitem(summary_module.EXPERIMENTS, "fig9", boom)
        report = generate_summary(experiments=["fig9"])
        assert "fig9" in report.failures
        assert "synthetic failure" in report.failures["fig9"]

    def test_markdown_rendering(self, monkeypatch, tmp_path):
        monkeypatch.setitem(
            summary_module.EXPERIMENTS, "table1", lambda scale, seed: "BODY"
        )
        path = tmp_path / "report.md"
        report = generate_summary(experiments=["table1"], output_path=path)
        text = report.to_markdown()
        assert "# TYCOS evaluation report" in text
        assert "## table1" in text and "BODY" in text
        assert path.read_text() == text

    def test_failures_section_in_markdown(self, monkeypatch):
        def boom(scale, seed):
            raise ValueError("nope")

        monkeypatch.setitem(summary_module.EXPERIMENTS, "fig10", boom)
        text = generate_summary(experiments=["fig10"]).to_markdown()
        assert "## failures" in text and "nope" in text

"""Tests for the window-set comparison metrics."""

import pytest

from repro.core.window import TimeDelayWindow
from repro.experiments.similarity import covers, detects, window_set_similarity


class TestCovers:
    def test_small_candidate_inside_large_truth(self):
        truth = TimeDelayWindow(100, 250)
        candidate = TimeDelayWindow(150, 170)
        assert covers(candidate, truth)

    def test_large_candidate_around_small_truth(self):
        truth = TimeDelayWindow(100, 120)
        candidate = TimeDelayWindow(80, 200)
        assert covers(candidate, truth)

    def test_marginal_overlap_rejected(self):
        truth = TimeDelayWindow(100, 200)
        candidate = TimeDelayWindow(190, 260)  # 11 of 71 samples inside
        assert not covers(candidate, truth)

    def test_delay_tolerance(self):
        truth = TimeDelayWindow(100, 200, delay=10)
        inside = TimeDelayWindow(120, 160, delay=12)
        assert covers(inside, truth, delay_tol=3)
        assert not covers(inside, truth, delay_tol=1)
        assert covers(inside, truth)  # no tolerance -> delay ignored

    def test_disjoint(self):
        assert not covers(TimeDelayWindow(0, 10), TimeDelayWindow(50, 60))


class TestDetects:
    def test_any_window_suffices(self):
        truth = TimeDelayWindow(100, 200)
        windows = [TimeDelayWindow(0, 20), TimeDelayWindow(120, 150)]
        assert detects(windows, truth)

    def test_empty_set(self):
        assert not detects([], TimeDelayWindow(0, 10))


class TestWindowSetSimilarity:
    def test_identical_sets(self):
        ws = [TimeDelayWindow(0, 10), TimeDelayWindow(50, 80)]
        assert window_set_similarity(ws, ws) == 1.0

    def test_partial_recall(self):
        reference = [TimeDelayWindow(0, 10), TimeDelayWindow(50, 80), TimeDelayWindow(200, 240)]
        test = [TimeDelayWindow(0, 10), TimeDelayWindow(55, 75)]
        assert window_set_similarity(test, reference) == pytest.approx(2 / 3)

    def test_peak_inside_region_counts(self):
        # Aggregated BF window spans the region; the heuristic reports the
        # peak inside it: agreement.
        reference = [TimeDelayWindow(0, 100)]
        test = [TimeDelayWindow(40, 60)]
        assert window_set_similarity(test, reference) == 1.0

    def test_empty_reference(self):
        assert window_set_similarity([], []) == 1.0
        assert window_set_similarity([TimeDelayWindow(0, 5)], []) == 0.0

    def test_empty_test(self):
        assert window_set_similarity([], [TimeDelayWindow(0, 5)]) == 0.0

"""Tests for the text reporting helpers."""

import pytest

from repro.experiments.reporting import check, format_series, format_table, title


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["name", "v"], [["a", 1], ["long-name", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)
        assert "long-name" in lines[3]

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError, match="columns"):
            format_table(["a", "b"], [["only-one"]])

    def test_empty_rows(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestSmallHelpers:
    def test_check(self):
        assert check(True) == "Y"
        assert check(False) == "x"

    def test_title_boxed(self):
        boxed = title("Hello")
        lines = boxed.splitlines()
        assert lines[0] == "=====" and lines[2] == "====="

    def test_format_series(self):
        out = format_series("s", [1, 2], ["a", "b"])
        assert out == "s: 1:a, 2:b"

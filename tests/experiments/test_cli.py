"""Tests for the tycos-experiments command-line entry point."""

import pytest

from repro.experiments.runner import EXPERIMENTS, main


class TestCli:
    def test_experiment_registry_complete(self):
        assert set(EXPERIMENTS) == {
            "table1",
            "table3",
            "table4",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
        }

    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["table7"])

    def test_bad_scale_rejected(self):
        with pytest.raises(SystemExit):
            main(["table1", "--scale", "huge"])

    def test_help_lists_choices(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        out = capsys.readouterr().out
        assert "table1" in out and "fig13" in out

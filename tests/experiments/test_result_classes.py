"""Unit tests for the experiment result containers (no searches run)."""

import pytest

from repro.experiments.fig9 import Fig9Result, VARIANTS
from repro.experiments.fig10 import Fig10Result, METHODS as FIG10_METHODS
from repro.experiments.fig11 import Fig11Result
from repro.experiments.fig12 import Fig12Result
from repro.experiments.fig13 import Fig13Result, SweepPoint
from repro.experiments.table1 import METHODS, Table1Result
from repro.experiments.table3 import Table3Result, Table3Row
from repro.experiments.table4 import Table4Result, Table4Row


class TestFig9Result:
    def _sample(self):
        r = Fig9Result()
        r.runtimes["ds"] = {
            "TYCOS_L": 8.0, "TYCOS_LN": 2.0, "TYCOS_LM": 6.0, "TYCOS_LMN": 1.0
        }
        r.windows["ds"] = {v: 3 for v in VARIANTS}
        r.evaluations["ds"] = {v: 100 for v in VARIANTS}
        return r

    def test_speedup(self):
        r = self._sample()
        assert r.speedup("ds", "TYCOS_LMN") == pytest.approx(8.0)
        assert r.speedup("ds", "TYCOS_LN") == pytest.approx(4.0)

    def test_to_text_contains_all_variants(self):
        text = self._sample().to_text()
        for v in VARIANTS:
            assert v in text
        assert "8.0x" in text


class TestFig10Result:
    def test_speedup_series(self):
        r = Fig10Result(sizes=[100, 200])
        r.runtimes["BruteForce"] = [10.0, 40.0]
        r.runtimes["MatrixProfile"] = [1.0, 2.0]
        r.runtimes["TYCOS_LMN"] = [0.1, 0.2]
        assert r.speedup("BruteForce") == pytest.approx([100.0, 200.0])
        text = r.to_text()
        for m in FIG10_METHODS:
            assert m in text


class TestFig11And12:
    def test_fig12_wraps_fig11(self):
        sweep = Fig11Result(ratios=[0.1, 0.5])
        sweep.error_rate["ds"] = [0.0, 0.2]
        sweep.runtime_gain["ds"] = [0.3, 0.6]
        joint = Fig12Result(sweep=sweep)
        assert joint.accuracy("ds") == [1.0, 0.8]
        assert joint.runtime_gain("ds") == [0.3, 0.6]
        assert "0.80" in joint.to_text()

    def test_fig11_text(self):
        sweep = Fig11Result(ratios=[0.25])
        sweep.error_rate["ds"] = [0.05]
        sweep.runtime_gain["ds"] = [0.5]
        text = sweep.to_text()
        assert "error-rate" in text and "runtime-gain" in text


class TestFig13Result:
    def test_accessors(self):
        r = Fig13Result(parameter="sigma")
        r.points = [SweepPoint(0.2, 10, 1.0), SweepPoint(0.4, 4, 0.5)]
        assert r.window_counts() == [10, 4]
        assert r.runtimes() == [1.0, 0.5]
        assert "sigma" in r.to_text()


class TestTable1Result:
    def test_methods_reflect_cells(self):
        r = Table1Result(delays=(0,))
        for rel in ("independent", "linear", "exponential", "quadratic",
                    "circle", "sine", "cross", "quartic", "square_root"):
            r.cells[("TYCOS", rel, 0)] = True
            r.cells[("PCC", rel, 0)] = False
        assert r.methods() == ["PCC", "TYCOS"]
        assert r.detected("TYCOS", "sine", 0)
        assert not r.detected("PCC", "sine", 0)
        text = r.to_text()
        assert "MASS" not in text


class TestTable3Result:
    def test_cells_and_lookup(self):
        row = Table3Row(
            label="C3",
            pair_name="washer vs dryer",
            lag_minutes=(10, 30),
            tycos_count=3,
            tycos_delay_minutes=(12, 28),
            amic_count=0,
        )
        r = Table3Result(rows=[row])
        assert r.row("C3").tycos_cell() == "3, [12-28m]"
        assert r.row("C3").amic_cell() == "x"
        with pytest.raises(KeyError):
            r.row("C11")

    def test_empty_tycos_cell(self):
        row = Table3Row("C9", "p", (30, 120), 0, None, 2)
        assert row.tycos_cell() == "x"
        assert row.amic_cell() == "2, 0m"


class TestTable4Result:
    def test_rendering(self):
        r = Table4Result(rows=[Table4Row(300, 0.9, 0.95, 1.0, 0.97)])
        text = r.to_text()
        assert "90.0" in text and "100.0" in text

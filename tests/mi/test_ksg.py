"""Tests for the KSG mutual information estimator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mi.ksg import KSGEstimator, ksg_mi


class TestKsgAccuracy:
    def test_gaussian_ground_truth(self, rng):
        # I = -0.5 * ln(1 - rho^2) for a bivariate Gaussian.
        n = 4000
        rho = 0.8
        x = rng.normal(size=n)
        y = rho * x + np.sqrt(1 - rho**2) * rng.normal(size=n)
        truth = -0.5 * np.log(1 - rho**2)
        assert ksg_mi(x, y) == pytest.approx(truth, abs=0.06)

    def test_independent_near_zero(self, independent_pair):
        x, y = independent_pair
        assert abs(ksg_mi(x, y)) < 0.1

    def test_nonlinear_dependence_detected(self, rng):
        x = rng.uniform(-3, 3, size=800)
        y = np.sin(2 * x) + 0.05 * rng.normal(size=800)
        assert ksg_mi(x, y) > 0.5

    def test_non_functional_dependence_detected(self, rng):
        # The circle relation: one x maps to two ys; PCC sees nothing,
        # MI must not.
        x = rng.uniform(-1, 1, size=800)
        y = np.sign(rng.normal(size=800)) * np.sqrt(np.maximum(1 - x * x, 0))
        assert ksg_mi(x, y) > 0.3

    def test_invariance_under_monotone_transform(self, correlated_gaussian):
        x, y = correlated_gaussian
        base = ksg_mi(x, y)
        transformed = ksg_mi(np.exp(x / 3.0), y)
        assert transformed == pytest.approx(base, abs=0.12)

    def test_algorithms_agree_on_large_samples(self, rng):
        n = 3000
        x = rng.normal(size=n)
        y = 0.6 * x + 0.8 * rng.normal(size=n)
        a1 = ksg_mi(x, y, algorithm=1)
        a2 = ksg_mi(x, y, algorithm=2)
        assert a1 == pytest.approx(a2, abs=0.05)

    def test_backends_agree(self, correlated_gaussian):
        x, y = correlated_gaussian
        assert ksg_mi(x, y, backend="bruteforce") == pytest.approx(
            ksg_mi(x, y, backend="grid"), abs=1e-10
        )


class TestKsgValidation:
    def test_rejects_bad_k(self):
        with pytest.raises(ValueError, match="k must be"):
            KSGEstimator(k=0)

    def test_rejects_bad_algorithm(self):
        with pytest.raises(ValueError, match="algorithm"):
            KSGEstimator(algorithm=3)

    def test_rejects_bad_backend(self):
        with pytest.raises(ValueError, match="backend"):
            KSGEstimator(backend="quantum")

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError, match="equal length"):
            ksg_mi(np.arange(5.0), np.arange(6.0))

    def test_rejects_single_sample(self):
        with pytest.raises(ValueError, match="at least 2"):
            ksg_mi(np.array([1.0]), np.array([1.0]))

    def test_small_sample_uses_reduced_k(self):
        # 4 samples with default k=4: effective k shrinks to m-1 = 3.
        est = KSGEstimator(k=4)
        assert est.effective_k(4) == 3
        value = est.mi(np.array([0.0, 1.0, 2.0, 3.0]), np.array([0.0, 1.1, 1.9, 3.2]))
        assert np.isfinite(value)


class TestKsgProperties:
    @given(st.integers(min_value=0, max_value=100))
    @settings(max_examples=20, deadline=None)
    def test_property_estimate_is_finite(self, seed):
        rng = np.random.default_rng(seed)
        m = int(rng.integers(8, 120))
        x = rng.normal(size=m)
        y = rng.normal(size=m)
        assert np.isfinite(ksg_mi(x, y))

    @given(st.floats(min_value=0.0, max_value=0.95))
    @settings(max_examples=15, deadline=None)
    def test_property_mi_increases_with_correlation(self, rho):
        # On the same sample size, stronger linear coupling -> larger MI
        # (compared against the independent estimate of the same draw).
        rng = np.random.default_rng(int(rho * 1000) + 1)
        n = 500
        x = rng.normal(size=n)
        noise = rng.normal(size=n)
        y_dep = rho * x + np.sqrt(1 - rho**2) * noise
        dep = ksg_mi(x, y_dep)
        indep = ksg_mi(x, noise)
        if rho > 0.4:
            assert dep > indep

    def test_deterministic(self, correlated_gaussian):
        x, y = correlated_gaussian
        assert ksg_mi(x, y) == ksg_mi(x, y)

"""Tests for the 2-D k-d tree backend."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mi.kdtree import KDTree, chebyshev_knn_kdtree
from repro.mi.ksg import ksg_mi
from repro.mi.neighbors import chebyshev_knn_bruteforce


class TestKdTreeQueries:
    def test_matches_bruteforce_uniform(self, rng):
        x = rng.uniform(-5, 5, 250)
        y = rng.uniform(-5, 5, 250)
        a = chebyshev_knn_bruteforce(x, y, 4)
        b = chebyshev_knn_kdtree(x, y, 4)
        np.testing.assert_allclose(a.kth_distance, b.kth_distance)
        np.testing.assert_allclose(a.eps_x, b.eps_x)
        np.testing.assert_allclose(a.eps_y, b.eps_y)

    def test_matches_bruteforce_clustered(self, rng):
        x = np.concatenate([rng.normal(scale=0.001, size=150), rng.normal(100, 1, 80)])
        y = np.concatenate([rng.normal(scale=0.001, size=150), rng.normal(-50, 1, 80)])
        a = chebyshev_knn_bruteforce(x, y, 6)
        b = chebyshev_knn_kdtree(x, y, 6)
        np.testing.assert_allclose(a.kth_distance, b.kth_distance)

    def test_single_query_with_exclusion(self, rng):
        x = rng.normal(size=80)
        y = rng.normal(size=80)
        tree = KDTree(x, y)
        idx, dist = tree.knn(float(x[10]), float(y[10]), 3, exclude=10)
        assert 10 not in idx
        full = np.maximum(np.abs(x - x[10]), np.abs(y - y[10]))
        full[10] = np.inf
        np.testing.assert_allclose(sorted(dist), np.sort(full)[:3])

    def test_query_without_exclusion_finds_self(self, rng):
        x = rng.normal(size=50)
        y = rng.normal(size=50)
        tree = KDTree(x, y)
        idx, dist = tree.knn(float(x[7]), float(y[7]), 1)
        assert idx[0] == 7
        assert dist[0] == 0.0

    def test_leaf_only_tree(self, rng):
        # Fewer points than the leaf size: the root is a leaf.
        x = rng.normal(size=8)
        y = rng.normal(size=8)
        tree = KDTree(x, y)
        idx, dist = tree.knn(0.0, 0.0, 3)
        assert len(idx) == 3

    def test_duplicate_points(self):
        x = np.array([1.0] * 20 + [2.0] * 20)
        y = np.array([1.0] * 20 + [2.0] * 20)
        result = chebyshev_knn_kdtree(x, y, 3)
        np.testing.assert_allclose(result.kth_distance[:20], 0.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="zero points"):
            KDTree(np.empty(0), np.empty(0))

    def test_rejects_k_too_large(self, rng):
        tree = KDTree(rng.normal(size=5), rng.normal(size=5))
        with pytest.raises(ValueError, match="only"):
            tree.knn(0.0, 0.0, 10)

    def test_rejects_bad_k(self, rng):
        tree = KDTree(rng.normal(size=5), rng.normal(size=5))
        with pytest.raises(ValueError, match="k must be"):
            tree.knn(0.0, 0.0, 0)

    @given(st.integers(0, 100), st.integers(1, 6))
    @settings(max_examples=25, deadline=None)
    def test_property_matches_bruteforce(self, seed, k):
        rng = np.random.default_rng(seed)
        m = int(rng.integers(k + 2, 120))
        x = rng.normal(size=m)
        y = rng.normal(size=m)
        a = chebyshev_knn_bruteforce(x, y, k)
        b = chebyshev_knn_kdtree(x, y, k)
        np.testing.assert_allclose(a.kth_distance, b.kth_distance)


class TestKsgWithKdTree:
    def test_ksg_backend_agreement(self, correlated_gaussian):
        x, y = correlated_gaussian
        assert ksg_mi(x, y, backend="kdtree") == pytest.approx(
            ksg_mi(x, y, backend="bruteforce"), abs=1e-10
        )

"""Parity suite for the compiled kernel backend (``repro.mi.backends``).

This is the bit-exactness gate (tycoslint TY121) of both backend fast
paths: every kernel of the interpreted suite -- the exact loop source
handed to numba -- must agree bit-for-bit with the canonical numpy
reference on a pinned workload grid (window sizes straddling the
256-sample sort hybrid, k in {3, 5}, ties, duplicate points), and the
numpy reference must agree with the legacy selection end to end on
tie-free data.  When numba is installed the compiled kernels are run
through the same assertions; without it the compiled cases skip cleanly
and the interpreted suite keeps the source honest.

The float32 tier is tolerance-gated rather than bit-gated: candidate
pruning happens in float32, the final ranking and all radii in float64,
and the resulting MI must sit within 1e-6 of the float64 value on the
tracked workload.
"""

import numpy as np
import pytest

from repro.core.config import TycosConfig
from repro.core.thresholds import BatchScorer
from repro.core.tycos import Tycos
from repro.core.window import PairView, TimeDelayWindow
from repro.mi.backends import _kernels
from repro.mi.backends import numpy_backend as ref
from repro.mi.backends.dispatch import KernelSet, backend_metadata, get_kernels, numba_version
from repro.mi.ksg import KSGEstimator
from repro.mi.neighbors import (
    PairDistanceWorkspace,
    chebyshev_knn_bruteforce,
    chebyshev_knn_grid,
)

SUITE = _kernels.build_interpreted_suite()

HAS_NUMBA = numba_version() is not None

needs_numba = pytest.mark.skipif(not HAS_NUMBA, reason="numba not installed")


def kernel_suites():
    """The kernel suites under test: always interpreted, compiled if possible."""
    suites = [("interpreted", SUITE)]
    if HAS_NUMBA:
        from repro.mi.backends import numba_backend

        suites.append(("compiled", numba_backend.compiled_kernels()))
    return suites


def _workload(m, seed, ties=False):
    """A pinned (x, y) window; ``ties`` discretizes to force duplicates."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=m)
    y = 0.7 * x + 0.5 * rng.normal(size=m)
    if ties:
        x = np.round(x, 1)
        y = np.round(y, 1)
        x[: m // 4] = x[0]  # duplicate points, identical in both coords
        y[: m // 4] = y[0]
    return np.ascontiguousarray(x), np.ascontiguousarray(y)


#: Sizes straddling the 256-sample sort hybrid of the marginal counting.
SIZES = (40, 255, 257)
KS = (3, 5)


class TestKernelParity:
    """Each loop kernel is bit-identical to the canonical numpy reference."""

    @pytest.mark.parametrize("suite_name,suite", kernel_suites())
    @pytest.mark.parametrize("m", SIZES)
    @pytest.mark.parametrize("k", KS)
    @pytest.mark.parametrize("ties", [False, True])
    def test_topk_block(self, suite_name, suite, m, k, ties):
        x, y = _workload(m, seed=m * 31 + k, ties=ties)
        adx = np.abs(x[:, None] - x[None, :])
        ady = np.abs(y[:, None] - y[None, :])
        dist = np.maximum(adx, ady)
        np.fill_diagonal(dist, np.inf)
        want = ref.topk_block(dist, adx, ady, k)
        kth = np.empty(m)
        ex = np.empty(m)
        ey = np.empty(m)
        idx = np.empty((m, k), dtype=np.int64)
        suite["topk_block"](dist, adx, ady, k, kth, ex, ey, idx)
        assert np.array_equal(kth, want[0])
        assert np.array_equal(ex, want[1])
        assert np.array_equal(ey, want[2])
        assert np.array_equal(idx, want[3])

    @pytest.mark.parametrize("suite_name,suite", kernel_suites())
    @pytest.mark.parametrize("m", SIZES)
    @pytest.mark.parametrize("strict", [False, True])
    def test_marginal_counts(self, suite_name, suite, m, strict):
        x, _ = _workload(m, seed=m, ties=True)
        radii = np.abs(_workload(m, seed=m + 1)[0]) * 0.3
        order = np.sort(x)
        want = ref.marginal_counts_ref(x, radii, strict, order)
        out = np.empty(m, dtype=np.int64)
        suite["marginal_counts"](x, radii, strict, order, out)
        assert np.array_equal(out, want)

    @pytest.mark.parametrize("suite_name,suite", kernel_suites())
    @pytest.mark.parametrize("m", SIZES)
    @pytest.mark.parametrize("k", KS)
    @pytest.mark.parametrize("ties", [False, True])
    def test_window_counts(self, suite_name, suite, m, k, ties):
        x, y = _workload(m, seed=m * 7 + k, ties=ties)
        want = ref.window_counts(x, y, k)
        n_x = np.empty(m, dtype=np.int64)
        n_y = np.empty(m, dtype=np.int64)
        suite["window_counts"](x, y, k, n_x, n_y)
        assert np.array_equal(n_x, want[0])
        assert np.array_equal(n_y, want[1])

    @pytest.mark.parametrize("suite_name,suite", kernel_suites())
    @pytest.mark.parametrize("m", SIZES)
    @pytest.mark.parametrize("k", KS)
    def test_window_counts_f32(self, suite_name, suite, m, k):
        x, y = _workload(m, seed=m * 13 + k)
        x32 = x.astype(np.float32)
        y32 = y.astype(np.float32)
        want = ref.window_counts_f32(x, y, x32, y32, k)
        n_x = np.empty(m, dtype=np.int64)
        n_y = np.empty(m, dtype=np.int64)
        suite["window_counts_f32"](x, y, x32, y32, k, n_x, n_y)
        assert np.array_equal(n_x, want[0])
        assert np.array_equal(n_y, want[1])

    @pytest.mark.parametrize("suite_name,suite", kernel_suites())
    def test_cluster_counts(self, suite_name, suite):
        x, y = _workload(300, seed=5)
        offsets = np.array([0, 10, 40, 44], dtype=np.int64)
        sizes = np.array([40, 255, 257, 12], dtype=np.int64)
        ks = np.array([3, 5, 3, 5], dtype=np.int64)
        want = ref.cluster_counts(x, y, offsets, sizes, ks)
        total = int(sizes.sum())
        n_x = np.empty(total, dtype=np.int64)
        n_y = np.empty(total, dtype=np.int64)
        suite["cluster_counts"](x, y, offsets, sizes, ks, n_x, n_y)
        assert np.array_equal(n_x, want[0])
        assert np.array_equal(n_y, want[1])
        x32 = x.astype(np.float32)
        y32 = y.astype(np.float32)
        want32 = ref.cluster_counts_f32(x, y, x32, y32, offsets, sizes, ks)
        suite["cluster_counts_f32"](x, y, x32, y32, offsets, sizes, ks, n_x, n_y)
        assert np.array_equal(n_x, want32[0])
        assert np.array_equal(n_y, want32[1])

    @pytest.mark.parametrize("suite_name,suite", kernel_suites())
    @pytest.mark.parametrize("m", SIZES)
    @pytest.mark.parametrize("k", KS)
    @pytest.mark.parametrize("ties", [False, True])
    def test_grid_knn(self, suite_name, suite, m, k, ties):
        x, y = _workload(m, seed=m * 3 + k, ties=ties)
        layout = ref.build_grid(x, y)
        assert layout is not None
        want = ref.grid_knn_ref(x, y, k)
        kth = np.empty(m)
        ex = np.empty(m)
        ey = np.empty(m)
        idx = np.empty((m, k), dtype=np.int64)
        suite["grid_knn"](
            x, y, k,
            layout.cell, layout.ncx, layout.ncy,
            layout.starts, layout.order, layout.cx, layout.cy,
            kth, ex, ey, idx,
        )
        assert np.array_equal(kth, want[0])
        assert np.array_equal(ex, want[1])
        assert np.array_equal(ey, want[2])
        assert np.array_equal(idx, want[3])


class TestNumpyReferenceVsLegacy:
    """The canonical numpy reference reproduces the legacy geometry.

    On tie-free (jittered) data the canonical lexicographic selection
    picks the same neighbor *sets* as the legacy argpartition selection,
    so distances, radii and counts are bit-identical end to end.
    """

    @pytest.mark.parametrize("m", SIZES)
    @pytest.mark.parametrize("k", KS)
    def test_geometry_matches_bruteforce(self, m, k):
        x, y = _workload(m, seed=m + k)
        legacy = chebyshev_knn_bruteforce(x, y, k)
        adx = np.abs(x[:, None] - x[None, :])
        ady = np.abs(y[:, None] - y[None, :])
        dist = np.maximum(adx, ady)
        np.fill_diagonal(dist, np.inf)
        kth, ex, ey, idx = ref.topk_block(dist, adx, ady, k)
        assert np.array_equal(kth, legacy.kth_distance)
        assert np.array_equal(ex, legacy.eps_x)
        assert np.array_equal(ey, legacy.eps_y)
        assert np.array_equal(np.sort(idx, axis=1), np.sort(legacy.indices, axis=1))

    @pytest.mark.parametrize("m", SIZES)
    @pytest.mark.parametrize("k", KS)
    def test_grid_ref_matches_bruteforce(self, m, k):
        x, y = _workload(m, seed=m * 2 + k)
        legacy = chebyshev_knn_bruteforce(x, y, k)
        kth, ex, ey, _ = ref.grid_knn_ref(x, y, k)
        assert np.array_equal(kth, legacy.kth_distance)
        assert np.array_equal(ex, legacy.eps_x)
        assert np.array_equal(ey, legacy.eps_y)

    def test_mi_from_window_counts_matches_estimator(self):
        estimator = KSGEstimator(k=3, algorithm=2, backend="bruteforce")
        for m in SIZES:
            x, y = _workload(m, seed=m)
            n_x, n_y = ref.window_counts(x, y, 3)
            fused = estimator.mi_from_counts(n_x, n_y, 3, m)
            assert fused == estimator.mi(x, y)


class TestKernelRouting:
    """The kernels= parameter routes neighbor calls through the backend."""

    @pytest.mark.parametrize("backend,precision", [("numpy", "float32"), ("numba", "float64")])
    def test_workspace_knn(self, backend, precision):
        kernels = get_kernels(backend, precision)
        assert isinstance(kernels, KernelSet)
        x, y = _workload(120, seed=9)
        ws = PairDistanceWorkspace(x, y)
        legacy = ws.knn(10, 80, 3)
        routed = ws.knn(10, 80, 3, kernels=kernels)
        assert np.array_equal(routed.kth_distance, legacy.kth_distance)
        assert np.array_equal(routed.eps_x, legacy.eps_x)
        assert np.array_equal(routed.eps_y, legacy.eps_y)
        assert np.array_equal(
            np.sort(routed.indices, axis=1), np.sort(legacy.indices, axis=1)
        )

    @pytest.mark.parametrize("backend,precision", [("numpy", "float32"), ("numba", "float64")])
    def test_grid_knn_routing(self, backend, precision):
        kernels = get_kernels(backend, precision)
        x, y = _workload(400, seed=11)
        legacy = chebyshev_knn_grid(x, y, 4)
        routed = chebyshev_knn_grid(x, y, 4, kernels=kernels)
        assert np.array_equal(routed.kth_distance, legacy.kth_distance)
        assert np.array_equal(routed.eps_x, legacy.eps_x)
        assert np.array_equal(routed.eps_y, legacy.eps_y)


def _tracked_search(backend, precision, batched):
    """The tracked gate workload: one full search, distilled to numbers."""
    rng = np.random.default_rng(2024)
    n = 400
    x = np.cumsum(rng.normal(size=n))
    y = np.roll(x, 7) + 0.1 * rng.normal(size=n)
    config = TycosConfig(
        sigma=0.3,
        s_min=8,
        s_max=40,
        td_max=8,
        jitter=1e-6,
        seed=7,
        backend=backend,
        precision=precision,
    )
    result = Tycos(config, batched_scoring=batched).search(x, y)
    return [
        (r.window.start, r.window.end, r.window.delay, r.mi, r.nmi)
        for r in result.windows
    ]


class TestEndToEnd:
    """Whole searches agree across engines on the tracked workload."""

    @pytest.mark.parametrize("batched", [False, True])
    def test_numba_request_bit_identical_to_legacy(self, batched):
        # With numba absent the numba request is served by the numpy
        # reference -- the contract is engine-independent either way.
        legacy = _tracked_search("numpy", "float64", batched)
        assert legacy, "tracked workload must extract windows"
        assert _tracked_search("numba", "float64", batched) == legacy
        assert _tracked_search("auto", "float64", batched) == legacy

    @pytest.mark.parametrize("backend", ["numpy", "numba"])
    def test_float32_within_tolerance(self, backend):
        legacy = _tracked_search("numpy", "float64", True)
        tiered = _tracked_search(backend, "float32", True)
        assert [w[:3] for w in tiered] == [w[:3] for w in legacy]
        worst = max(
            abs(a[3] - b[3]) for a, b in zip(tiered, legacy)
        )
        assert worst <= 1e-6, f"float32 MI drifted {worst} from float64"

    def test_scorer_counters_match_legacy(self):
        x, y = _workload(300, seed=21)
        pair = PairView(x, y, jitter=1e-6, seed=3)
        base = TycosConfig(s_min=8, s_max=40, td_max=6)
        routed = TycosConfig(s_min=8, s_max=40, td_max=6, backend="numba")
        a = BatchScorer(pair, base)
        b = BatchScorer(pair, routed)
        windows = [
            TimeDelayWindow(start=s, end=s + 30, delay=d)
            for s in (10, 40, 40, 80)
            for d in (-2, 0, 3)
        ]
        sa = a.score_many(windows)
        sb = b.score_many(windows)
        assert sa == sb
        assert a.evaluations == b.evaluations
        assert a.cache_hits == b.cache_hits


class TestDispatch:
    """Resolution and provenance semantics of get_kernels()."""

    def test_default_is_legacy_none(self):
        assert get_kernels("numpy", "float64") is None

    def test_numba_request_always_resolves(self):
        kernels = get_kernels("numba", "float64")
        assert isinstance(kernels, KernelSet)
        if not HAS_NUMBA:
            assert kernels.engine == "numpy"
            assert kernels.fallbacks == ("numba-unavailable",)
            assert not kernels.compiled

    def test_auto_without_numba_is_legacy(self):
        if HAS_NUMBA:
            kernels = get_kernels("auto", "float64")
            assert kernels is None or kernels.compiled
        else:
            assert get_kernels("auto", "float64") is None

    def test_float32_always_resolves(self):
        for backend in ("numpy", "numba", "auto"):
            kernels = get_kernels(backend, "float32")
            assert isinstance(kernels, KernelSet)
            assert kernels.precision == "float32"

    def test_invalid_names_rejected(self):
        with pytest.raises(ValueError):
            get_kernels("cuda")
        with pytest.raises(ValueError):
            get_kernels("numpy", "float16")

    def test_metadata_keys(self):
        meta = backend_metadata("numpy", "float64")
        assert meta["backend"] == "numpy"
        assert meta["precision"] == "float64"
        assert meta["engine"] == "numpy-legacy"
        assert meta["compiled"] == "false"
        if not HAS_NUMBA:
            assert meta["numba"] == "absent"
        meta = backend_metadata("numba", "float32")
        assert meta["engine"] in ("numpy", "numba")

    @needs_numba
    def test_compiled_engine_reports_numba(self):
        kernels = get_kernels("numba", "float64")
        assert kernels is not None
        assert kernels.compiled
        assert kernels.engine == "numba"
        assert kernels.fallbacks == ()

"""Tests for the entropy estimators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mi.entropy import binned_joint_entropy, default_bins, discrete_entropy, kl_entropy


class TestDiscreteEntropy:
    def test_uniform_two_symbols(self):
        labels = np.array([0, 1] * 50)
        assert discrete_entropy(labels) == pytest.approx(np.log(2))

    def test_single_symbol_is_zero(self):
        assert discrete_entropy(np.zeros(10)) == 0.0

    def test_uniform_k_symbols(self):
        k = 8
        labels = np.repeat(np.arange(k), 25)
        assert discrete_entropy(labels) == pytest.approx(np.log(k))

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            discrete_entropy(np.empty(0))

    @given(st.integers(min_value=1, max_value=200))
    @settings(max_examples=25, deadline=None)
    def test_property_bounded_by_log_support(self, m):
        rng = np.random.default_rng(m)
        labels = rng.integers(0, 5, size=m)
        h = discrete_entropy(labels)
        support = len(np.unique(labels))
        assert -1e-12 <= h <= np.log(support) + 1e-12


class TestBinnedJointEntropy:
    def test_non_negative_and_bounded(self, rng):
        x = rng.normal(size=200)
        y = rng.normal(size=200)
        bins = default_bins(200)
        h = binned_joint_entropy(x, y, bins=bins)
        assert 0.0 <= h <= 2 * np.log(bins) + 1e-9

    def test_deterministic_relation_has_lower_entropy(self, rng):
        x = rng.uniform(0, 1, size=500)
        y_dep = x.copy()
        y_indep = rng.uniform(0, 1, size=500)
        assert binned_joint_entropy(x, y_dep) < binned_joint_entropy(x, y_indep)

    def test_constant_input(self):
        x = np.ones(50)
        y = np.ones(50)
        assert binned_joint_entropy(x, y) == pytest.approx(0.0)

    def test_rejects_mismatched(self):
        with pytest.raises(ValueError, match="equal length"):
            binned_joint_entropy(np.arange(3.0), np.arange(4.0))

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            binned_joint_entropy(np.empty(0), np.empty(0))


class TestKlEntropy:
    def test_gaussian_ground_truth_1d(self, rng):
        # H = 0.5 * ln(2*pi*e*sigma^2); sigma=1 -> about 1.4189.
        x = rng.normal(size=5000)
        truth = 0.5 * np.log(2 * np.pi * np.e)
        assert kl_entropy(x, k=4) == pytest.approx(truth, abs=0.05)

    def test_gaussian_ground_truth_2d(self, rng):
        pts = rng.normal(size=(5000, 2))
        truth = 2 * 0.5 * np.log(2 * np.pi * np.e)
        assert kl_entropy(pts, k=4) == pytest.approx(truth, abs=0.08)

    def test_scaling_shifts_entropy(self, rng):
        x = rng.normal(size=2000)
        # H(aX) = H(X) + ln a.
        assert kl_entropy(3.0 * x) == pytest.approx(kl_entropy(x) + np.log(3.0), abs=0.05)

    def test_rejects_too_few_samples(self):
        with pytest.raises(ValueError, match="more than k"):
            kl_entropy(np.arange(4.0), k=4)


class TestDefaultBins:
    def test_monotone_in_m(self):
        values = [default_bins(m) for m in (10, 100, 1000, 10000)]
        assert values == sorted(values)

    def test_minimum_two(self):
        assert default_bins(1) >= 2

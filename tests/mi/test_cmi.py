"""Tests for conditional MI and transfer entropy."""

import numpy as np
import pytest

from repro.mi.cmi import ksg_cmi, transfer_entropy


class TestKsgCmi:
    def test_conditioning_on_mediator_kills_mi(self, rng):
        n = 400
        z = rng.normal(size=n)
        x = z + 0.3 * rng.normal(size=n)
        y = z + 0.3 * rng.normal(size=n)
        assert abs(ksg_cmi(x, y, z)) < 0.15

    def test_conditioning_on_irrelevant_keeps_mi(self, rng):
        n = 400
        z = rng.normal(size=n)
        x = z + 0.3 * rng.normal(size=n)
        y = z + 0.3 * rng.normal(size=n)
        w = rng.normal(size=n)
        assert ksg_cmi(x, y, w) > 0.4

    def test_multidimensional_conditioning(self, rng):
        n = 400
        z1 = rng.normal(size=n)
        z2 = rng.normal(size=n)
        x = z1 + z2 + 0.3 * rng.normal(size=n)
        y = z1 + z2 + 0.3 * rng.normal(size=n)
        z = np.column_stack([z1, z2])
        assert abs(ksg_cmi(x, y, z)) < 0.2
        assert ksg_cmi(x, y, rng.normal(size=(n, 2))) > 0.4

    def test_independent_triple_is_zero(self, rng):
        x = rng.normal(size=300)
        y = rng.normal(size=300)
        z = rng.normal(size=300)
        assert abs(ksg_cmi(x, y, z)) < 0.1

    def test_rejects_mismatched_lengths(self, rng):
        with pytest.raises(ValueError, match="same number"):
            ksg_cmi(rng.normal(size=10), rng.normal(size=10), rng.normal(size=9))

    def test_rejects_tiny_sample(self):
        with pytest.raises(ValueError, match="more than"):
            ksg_cmi(np.arange(4.0), np.arange(4.0), np.arange(4.0), k=4)


class TestTransferEntropy:
    def test_detects_directed_coupling(self, rng):
        n = 500
        x = rng.normal(size=n)
        y = np.zeros(n)
        for t in range(2, n):
            y[t] = 0.8 * x[t - 2] + 0.4 * rng.normal()
        forward = transfer_entropy(x, y, lag=2)
        backward = transfer_entropy(y, x, lag=2)
        assert forward > 0.3
        assert forward > backward + 0.2

    def test_no_coupling_no_transfer(self, rng):
        x = rng.normal(size=400)
        y = rng.normal(size=400)
        assert abs(transfer_entropy(x, y, lag=1)) < 0.1

    def test_autocorrelated_target_controlled_for(self, rng):
        # y depends only on its own past: TE from an unrelated x is ~0
        # even though naive lagged MI between x and y would be fooled by
        # nothing here -- the point is the conditioning works.
        n = 500
        y = np.zeros(n)
        for t in range(1, n):
            y[t] = 0.9 * y[t - 1] + 0.2 * rng.normal()
        x = rng.normal(size=n)
        assert abs(transfer_entropy(x, y, lag=1)) < 0.1

    def test_rejects_bad_lag(self, rng):
        with pytest.raises(ValueError, match="lag"):
            transfer_entropy(rng.normal(size=50), rng.normal(size=50), lag=0)

    def test_rejects_short_series(self, rng):
        with pytest.raises(ValueError, match="too short"):
            transfer_entropy(rng.normal(size=6), rng.normal(size=6), lag=3)

"""Tests for discrete MI and the Theorem-6.1 mixture machinery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mi.discrete import discrete_entropy_from_joint, discrete_mi, empirical_joint
from repro.mi.mixture import mix_samples, mixture_joint, theorem61_gap


def _random_joint(rng, rows=3, cols=4):
    table = rng.uniform(0.1, 1.0, size=(rows, cols))
    return table / table.sum()


class TestDiscreteMi:
    def test_independent_joint_is_zero(self):
        joint = np.outer([0.3, 0.7], [0.2, 0.5, 0.3])
        assert discrete_mi(joint) == pytest.approx(0.0, abs=1e-12)

    def test_perfectly_dependent(self):
        joint = np.diag([0.25, 0.25, 0.25, 0.25])
        assert discrete_mi(joint) == pytest.approx(np.log(4))

    def test_known_binary_value(self):
        joint = np.array([[0.4, 0.1], [0.1, 0.4]])
        px = joint.sum(axis=1)
        py = joint.sum(axis=0)
        expected = sum(
            joint[i, j] * np.log(joint[i, j] / (px[i] * py[j]))
            for i in range(2)
            for j in range(2)
        )
        assert discrete_mi(joint) == pytest.approx(expected)

    def test_rejects_unnormalized(self):
        with pytest.raises(ValueError, match="sum to 1"):
            discrete_mi(np.array([[0.5, 0.2], [0.1, 0.1]]))

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            discrete_mi(np.array([[1.2, -0.2], [0.0, 0.0]]))

    @given(st.integers(min_value=0, max_value=500))
    @settings(max_examples=30, deadline=None)
    def test_property_mi_non_negative_and_bounded(self, seed):
        rng = np.random.default_rng(seed)
        joint = _random_joint(rng)
        mi = discrete_mi(joint)
        h = discrete_entropy_from_joint(joint)
        assert -1e-12 <= mi <= h + 1e-12


class TestEmpiricalJoint:
    def test_counts_correctly(self):
        x = np.array([0, 0, 1, 1])
        y = np.array(["a", "b", "a", "a"])
        joint = empirical_joint(x, y)
        np.testing.assert_allclose(joint, [[0.25, 0.25], [0.5, 0.0]])

    def test_sums_to_one(self, rng):
        x = rng.integers(0, 4, size=100)
        y = rng.integers(0, 3, size=100)
        assert empirical_joint(x, y).sum() == pytest.approx(1.0)

    def test_rejects_mismatched(self):
        with pytest.raises(ValueError, match="paired"):
            empirical_joint(np.arange(3), np.arange(4))


class TestTheorem61:
    """Exact verification of the paper's noise theorem."""

    def test_exact_identity(self):
        # I(Z;W) = theta * eta * I(X;Y), Eq. (17).
        joint = np.array([[0.4, 0.1], [0.1, 0.4]])
        pu = np.array([0.5, 0.5])
        pv = np.array([0.3, 0.7])
        for theta, eta in [(1.0, 1.0), (0.7, 0.6), (0.5, 0.9), (0.0, 0.5)]:
            i_xy, i_zw = theorem61_gap(joint, pu, pv, theta, eta)
            assert i_zw == pytest.approx(theta * eta * i_xy, abs=1e-10)

    @given(
        st.integers(min_value=0, max_value=300),
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_mixing_never_increases_mi(self, seed, theta, eta):
        rng = np.random.default_rng(seed)
        joint = _random_joint(rng)
        pu = rng.dirichlet(np.ones(3))
        pv = rng.dirichlet(np.ones(2))
        i_xy, i_zw = theorem61_gap(joint, pu, pv, theta, eta)
        assert i_zw <= i_xy + 1e-10

    def test_mixture_joint_normalized(self, rng):
        joint = _random_joint(rng)
        mixed = mixture_joint(joint, rng.dirichlet(np.ones(2)), rng.dirichlet(np.ones(4)), 0.3, 0.8)
        assert mixed.sum() == pytest.approx(1.0)
        assert np.all(mixed >= 0)

    def test_empirical_mixture_dilutes_mi(self, rng):
        # Sampled counterpart: mixing in independent labels lowers MI.
        n = 5000
        x = rng.integers(0, 3, size=n)
        y = x.copy()  # perfectly dependent
        u = rng.integers(0, 3, size=n)
        v = rng.integers(0, 3, size=n)
        z, _ = mix_samples(x, u, 0.5, rng)
        w, _ = mix_samples(y, v, 0.5, rng)
        full = discrete_mi(empirical_joint(x, y))
        mixed = discrete_mi(empirical_joint(z, w))
        assert mixed < full

    def test_mix_samples_extremes(self, rng):
        x = np.arange(100)
        u = -np.arange(100)
        z_all_x, chose = mix_samples(x, u, 1.0, rng)
        np.testing.assert_array_equal(z_all_x, x)
        assert chose.all()
        z_all_u, chose = mix_samples(x, u, 0.0, rng)
        np.testing.assert_array_equal(z_all_u, u)
        assert not chose.any()

    def test_mix_samples_rejects_bad_theta(self, rng):
        with pytest.raises(ValueError, match="theta"):
            mix_samples(np.arange(4), np.arange(4), 1.5, rng)

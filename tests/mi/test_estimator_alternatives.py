"""Tests for the histogram and KDE MI estimators (Section 3.1 comparison)."""

import numpy as np
import pytest

from repro.mi.histogram import histogram_mi
from repro.mi.kde import kde_mi, silverman_bandwidth
from repro.mi.ksg import ksg_mi


class TestHistogramMi:
    def test_gaussian_ground_truth(self, rng):
        n = 8000
        x = rng.normal(size=n)
        y = 0.8 * x + 0.6 * rng.normal(size=n)
        truth = -0.5 * np.log(1 - 0.64)
        assert histogram_mi(x, y) == pytest.approx(truth, abs=0.12)

    def test_independent_near_zero(self, independent_pair):
        x, y = independent_pair
        assert abs(histogram_mi(x, y)) < 0.15

    def test_non_negative(self, rng):
        for _ in range(5):
            x = rng.normal(size=100)
            y = rng.normal(size=100)
            assert histogram_mi(x, y) >= 0.0

    def test_bin_sensitivity(self, correlated_gaussian):
        # The classic histogram weakness: the estimate moves with the bins.
        x, y = correlated_gaussian
        coarse = histogram_mi(x, y, bins=3)
        fine = histogram_mi(x, y, bins=40)
        assert abs(coarse - fine) > 0.1

    def test_rejects_bad_bins(self, correlated_gaussian):
        x, y = correlated_gaussian
        with pytest.raises(ValueError, match="bins"):
            histogram_mi(x, y, bins=1)

    def test_rejects_mismatched(self):
        with pytest.raises(ValueError, match="equal length"):
            histogram_mi(np.arange(4.0), np.arange(5.0))


class TestKdeMi:
    def test_gaussian_ground_truth(self, rng):
        n = 1200
        x = rng.normal(size=n)
        y = 0.8 * x + 0.6 * rng.normal(size=n)
        truth = -0.5 * np.log(1 - 0.64)
        assert kde_mi(x, y) == pytest.approx(truth, abs=0.15)

    def test_independent_near_zero(self, rng):
        x = rng.normal(size=600)
        y = rng.normal(size=600)
        assert abs(kde_mi(x, y)) < 0.15

    def test_detects_nonlinear(self, rng):
        x = rng.uniform(-2, 2, 600)
        y = x * x + 0.05 * rng.normal(size=600)
        assert kde_mi(x, y) > 0.4

    def test_bandwidth_scale_changes_estimate(self, correlated_gaussian):
        x, y = correlated_gaussian
        assert kde_mi(x, y, bandwidth_scale=0.3) != pytest.approx(
            kde_mi(x, y, bandwidth_scale=3.0), abs=0.01
        )

    def test_rejects_bad_bandwidth(self, correlated_gaussian):
        x, y = correlated_gaussian
        with pytest.raises(ValueError, match="bandwidth_scale"):
            kde_mi(x, y, bandwidth_scale=0.0)

    def test_rejects_tiny_sample(self):
        with pytest.raises(ValueError, match="at least 4"):
            kde_mi(np.arange(3.0), np.arange(3.0))


class TestSilverman:
    def test_scales_with_spread(self, rng):
        x = rng.normal(size=500)
        assert silverman_bandwidth(3 * x) == pytest.approx(3 * silverman_bandwidth(x), rel=1e-9)

    def test_degenerate_input(self):
        h = silverman_bandwidth(np.ones(50))
        assert h > 0


class TestEstimatorComparison:
    """The Section-3.1 claim: KSG wins on efficiency *and* accuracy.

    KDE with Gaussian kernels is ideally matched to Gaussian data, so the
    accuracy comparison against it uses a non-linear relation; the
    efficiency comparison holds everywhere (KDE is O(m^2) with heavy
    constants).
    """

    def test_ksg_beats_histogram_on_gaussian(self):
        truth = -0.5 * np.log(1 - 0.64)
        errors = {"ksg": [], "hist": []}
        for seed in range(8):
            rng = np.random.default_rng(seed)
            x = rng.normal(size=200)
            y = 0.8 * x + 0.6 * rng.normal(size=200)
            errors["ksg"].append(abs(ksg_mi(x, y) - truth))
            errors["hist"].append(abs(histogram_mi(x, y) - truth))
        mean = {k: float(np.mean(v)) for k, v in errors.items()}
        assert mean["ksg"] <= mean["hist"] + 0.02, mean

    def test_ksg_stable_on_nonlinear_where_kde_is_bandwidth_bound(self):
        # On a sharp non-linear relation the fixed Silverman bandwidth
        # oversmooths; KSG adapts per point.  Compare the *spread* of the
        # two estimators across resamples of the same relation.
        ksg_vals, kde_vals = [], []
        for seed in range(6):
            rng = np.random.default_rng(seed)
            x = rng.uniform(-1, 1, 250)
            y = np.sin(8 * x) + 0.02 * rng.normal(size=250)
            ksg_vals.append(ksg_mi(x, y))
            kde_vals.append(kde_mi(x, y))
        # Both must see strong dependence ...
        assert min(ksg_vals) > 0.5
        # ... and KSG's estimates vary no more than KDE's.
        assert np.std(ksg_vals) <= np.std(kde_vals) + 0.05

    def test_ksg_much_faster_than_kde(self):
        import time

        rng = np.random.default_rng(0)
        x = rng.normal(size=600)
        y = 0.7 * x + 0.7 * rng.normal(size=600)
        t0 = time.perf_counter()
        for _ in range(3):
            ksg_mi(x, y)
        t_ksg = time.perf_counter() - t0
        t0 = time.perf_counter()
        for _ in range(3):
            kde_mi(x, y)
        t_kde = time.perf_counter() - t0
        assert t_ksg < t_kde

"""Tests for the Chebyshev k-NN backends and marginal counting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mi.neighbors import (
    GridIndex,
    chebyshev_knn_bruteforce,
    chebyshev_knn_grid,
    marginal_counts,
)


def _reference_knn(x, y, k):
    """O(n^2) reference with explicit loops (independent of the impl)."""
    m = len(x)
    kth = np.empty(m)
    for i in range(m):
        d = [max(abs(x[i] - x[j]), abs(y[i] - y[j])) for j in range(m) if j != i]
        kth[i] = sorted(d)[k - 1]
    return kth


class TestBruteforceKnn:
    def test_matches_loop_reference(self, rng):
        x = rng.normal(size=40)
        y = rng.normal(size=40)
        result = chebyshev_knn_bruteforce(x, y, 3)
        expected = _reference_knn(x, y, 3)
        np.testing.assert_allclose(result.kth_distance, expected)

    def test_eps_bounds_kth_distance(self, rng):
        x = rng.normal(size=60)
        y = rng.normal(size=60)
        r = chebyshev_knn_bruteforce(x, y, 4)
        # The rectangle extents can never exceed the Chebyshev radius.
        assert np.all(r.eps_x <= r.kth_distance + 1e-12)
        assert np.all(r.eps_y <= r.kth_distance + 1e-12)
        # And the radius is the max of the two extents.
        np.testing.assert_allclose(np.maximum(r.eps_x, r.eps_y), r.kth_distance)

    def test_neighbor_indices_exclude_self(self, rng):
        x = rng.normal(size=30)
        y = rng.normal(size=30)
        r = chebyshev_knn_bruteforce(x, y, 2)
        for i in range(30):
            assert i not in r.indices[i]

    def test_k_equals_one(self):
        x = np.array([0.0, 1.0, 3.0])
        y = np.array([0.0, 0.0, 0.0])
        r = chebyshev_knn_bruteforce(x, y, 1)
        np.testing.assert_allclose(r.kth_distance, [1.0, 1.0, 2.0])

    def test_rejects_k_too_large(self):
        with pytest.raises(ValueError, match="more than k"):
            chebyshev_knn_bruteforce(np.arange(3.0), np.arange(3.0), 3)

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError, match="equal length"):
            chebyshev_knn_bruteforce(np.arange(4.0), np.arange(5.0), 2)

    def test_rejects_non_finite(self):
        x = np.array([0.0, np.nan, 1.0, 2.0])
        with pytest.raises(ValueError, match="finite"):
            chebyshev_knn_bruteforce(x, np.arange(4.0), 2)


class TestGridKnn:
    def test_matches_bruteforce_on_random_data(self, rng):
        x = rng.normal(size=200)
        y = rng.normal(size=200)
        a = chebyshev_knn_bruteforce(x, y, 4)
        b = chebyshev_knn_grid(x, y, 4)
        np.testing.assert_allclose(a.kth_distance, b.kth_distance)
        np.testing.assert_allclose(a.eps_x, b.eps_x)
        np.testing.assert_allclose(a.eps_y, b.eps_y)

    def test_matches_bruteforce_on_clustered_data(self, rng):
        # Heavy clustering stresses the ring-expansion stopping rule.
        x = np.concatenate([rng.normal(scale=0.01, size=100), rng.normal(10, 1, size=50)])
        y = np.concatenate([rng.normal(scale=0.01, size=100), rng.normal(-5, 1, size=50)])
        a = chebyshev_knn_bruteforce(x, y, 5)
        b = chebyshev_knn_grid(x, y, 5)
        np.testing.assert_allclose(a.kth_distance, b.kth_distance)

    def test_single_query(self, rng):
        x = rng.normal(size=50)
        y = rng.normal(size=50)
        index = GridIndex(x, y)
        idx, dist = index.knn(7, 3)
        assert len(idx) == 3
        full = np.maximum(np.abs(x - x[7]), np.abs(y - y[7]))
        full[7] = np.inf
        np.testing.assert_allclose(sorted(dist), sorted(np.sort(full)[:3]))

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            GridIndex(np.empty(0), np.empty(0))

    @given(st.integers(min_value=10, max_value=80), st.integers(min_value=1, max_value=5))
    @settings(max_examples=25, deadline=None)
    def test_property_grid_equals_bruteforce(self, m, k):
        rng = np.random.default_rng(m * 31 + k)
        x = rng.uniform(-5, 5, size=m)
        y = rng.uniform(-5, 5, size=m)
        if m <= k:
            return
        a = chebyshev_knn_bruteforce(x, y, k)
        b = chebyshev_knn_grid(x, y, k)
        np.testing.assert_allclose(a.kth_distance, b.kth_distance)


class TestMarginalCounts:
    def test_simple_counts(self):
        values = np.array([0.0, 1.0, 2.0, 5.0])
        radii = np.array([1.5, 1.5, 1.5, 1.5])
        # Non-strict: |v_j - v_i| <= 1.5, excluding self.
        counts = marginal_counts(values, radii, strict=False)
        np.testing.assert_array_equal(counts, [1, 2, 1, 0])

    def test_strict_excludes_boundary(self):
        values = np.array([0.0, 1.0, 2.0])
        radii = np.array([1.0, 1.0, 1.0])
        strict = marginal_counts(values, radii, strict=True)
        loose = marginal_counts(values, radii, strict=False)
        np.testing.assert_array_equal(strict, [0, 0, 0])
        np.testing.assert_array_equal(loose, [1, 2, 1])

    def test_duplicates_with_zero_radius(self):
        values = np.array([1.0, 1.0, 1.0])
        radii = np.zeros(3)
        assert np.all(marginal_counts(values, radii, strict=True) == 0)
        # Non-strict counts the coincident points (self excluded).
        assert np.all(marginal_counts(values, radii, strict=False) == 2)

    def test_matches_loop_reference(self, rng):
        values = rng.normal(size=80)
        radii = np.abs(rng.normal(size=80))
        got = marginal_counts(values, radii, strict=False)
        for i in range(80):
            expected = np.sum(np.abs(values - values[i]) <= radii[i]) - 1
            assert got[i] == expected

    @given(st.integers(min_value=2, max_value=60))
    @settings(max_examples=25, deadline=None)
    def test_property_counts_bounded(self, m):
        rng = np.random.default_rng(m)
        values = rng.normal(size=m)
        radii = np.abs(rng.normal(size=m)) + 0.01
        counts = marginal_counts(values, radii, strict=False)
        assert np.all(counts >= 0)
        assert np.all(counts <= m - 1)

"""Tests for the shared digamma lookup table (bit-exactness, growth)."""

import numpy as np
import pytest
from scipy.special import digamma as scipy_digamma

from repro.mi.digamma import DigammaTable, digamma_direct, shared_digamma_table
from repro.mi.ksg import KSGEstimator


def test_table_bit_matches_scipy():
    table = DigammaTable(initial=16)
    for n in (1, 2, 3, 7, 16, 100, 5000):
        assert table.value(n) == float(scipy_digamma(float(n)))


def test_values_bit_match_scipy_vectorized():
    table = DigammaTable(initial=8)
    ns = np.array([1, 5, 12, 300, 2, 2, 999], dtype=np.int64)
    expected = scipy_digamma(ns.astype(np.float64))
    assert np.array_equal(table.values(ns), expected)


def test_prefix_covers_and_indexes_by_argument_minus_one():
    table = DigammaTable(initial=4)
    prefix = table.prefix(10)
    assert prefix.size >= 10
    for n in range(1, 11):
        assert prefix[n - 1] == float(scipy_digamma(float(n)))


def test_growth_doubles_lazily():
    table = DigammaTable(initial=4)
    assert table.size == 4
    table.value(5)
    assert table.size == 8
    table.values(np.array([100]))
    assert table.size >= 100
    # Growth preserves earlier entries bit-for-bit.
    assert table.value(3) == float(scipy_digamma(3.0))


def test_prefix_is_read_only():
    table = DigammaTable(initial=4)
    with pytest.raises((ValueError, RuntimeError)):
        table.prefix(4)[0] = 0.0


def test_kernel_view_contract():
    table = DigammaTable(initial=8)
    view = table.kernel_view(8)
    assert view.flags["C_CONTIGUOUS"]
    assert not view.flags.writeable
    assert np.array_equal(view[:8], scipy_digamma(np.arange(1.0, 9.0)))


def test_kernel_view_survives_growth_unmutated():
    """Growth never invalidates or mutates views already handed out.

    A backend kernel holds its digamma view across many scorer calls; if
    ``prefix`` growth reallocated in place, that view would dangle or
    silently change values.  Growth must instead rebind a fresh array,
    leaving the old one intact byte for byte.
    """
    table = DigammaTable(initial=8)
    view = table.kernel_view(8)
    snapshot = view.copy()
    table.prefix(10_000)  # forces several doublings
    assert table.size >= 10_000
    assert np.array_equal(view, snapshot)  # old view: same values
    assert not view.flags.writeable  # ...and still read-only
    grown = table.kernel_view(10_000)
    assert grown is not view  # growth rebound, not resized
    assert np.array_equal(grown[: view.size], snapshot)


def test_value_rejects_non_positive():
    table = DigammaTable(initial=4)
    with pytest.raises(ValueError):
        table.value(0)
    with pytest.raises(ValueError):
        DigammaTable(initial=0)


def test_values_empty_input():
    table = DigammaTable(initial=4)
    out = table.values(np.empty(0, dtype=np.int64))
    assert out.size == 0


def test_shared_table_is_a_singleton():
    assert shared_digamma_table() is shared_digamma_table()


def test_digamma_direct_is_plain_scipy():
    ns = np.array([1.0, 2.5, 7.0])
    assert np.array_equal(digamma_direct(ns), scipy_digamma(ns))


@pytest.mark.parametrize("algorithm", [1, 2])
def test_estimator_identical_with_and_without_table(algorithm, correlated_gaussian):
    """The table never changes an estimate: exact float equality."""
    x, y = correlated_gaussian
    on = KSGEstimator(k=4, algorithm=algorithm, use_digamma_table=True)
    off = KSGEstimator(k=4, algorithm=algorithm, use_digamma_table=False)
    assert on.mi(x, y) == off.mi(x, y)

"""Tests for the Section-7 incremental KSG engine.

The central invariant: after ANY sequence of adds/removes, the engine's
estimate equals the batch estimator's on the same point set, bit for bit.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mi.incremental import SlidingKSG
from repro.mi.ksg import ksg_mi


def _batch(x, y, ids, k=4):
    xs = np.array([x[i] for i in sorted(ids)])
    ys = np.array([y[i] for i in sorted(ids)])
    return ksg_mi(xs, ys, k=k, backend="bruteforce")


class TestSlidingBasics:
    def test_reset_matches_batch(self, correlated_gaussian):
        x, y = correlated_gaussian
        eng = SlidingKSG(k=4)
        eng.reset(x[:150], y[:150])
        assert eng.mi() == pytest.approx(ksg_mi(x[:150], y[:150]), abs=1e-12)

    def test_grow_matches_batch(self, correlated_gaussian):
        x, y = correlated_gaussian
        eng = SlidingKSG(k=4)
        eng.reset(x[:60], y[:60], ids=range(60))
        for i in range(60, 120):
            eng.add(i, x[i], y[i])
        assert eng.mi() == pytest.approx(ksg_mi(x[:120], y[:120]), abs=1e-12)

    def test_shrink_matches_batch(self, correlated_gaussian):
        x, y = correlated_gaussian
        eng = SlidingKSG(k=4)
        eng.reset(x[:120], y[:120], ids=range(120))
        for i in range(40):
            eng.remove(i)
        assert eng.mi() == pytest.approx(ksg_mi(x[40:120], y[40:120]), abs=1e-12)

    def test_slide_matches_batch(self, correlated_gaussian):
        x, y = correlated_gaussian
        eng = SlidingKSG(k=4)
        eng.reset(x[:100], y[:100], ids=range(100))
        for step in range(100, 200):
            eng.add(step, x[step], y[step])
            eng.remove(step - 100)
            expected = ksg_mi(x[step - 99 : step + 1], y[step - 99 : step + 1])
            assert eng.mi() == pytest.approx(expected, abs=1e-12)

    def test_len_and_contains(self, correlated_gaussian):
        x, y = correlated_gaussian
        eng = SlidingKSG()
        eng.reset(x[:30], y[:30], ids=range(30))
        assert len(eng) == 30
        assert 7 in eng
        eng.remove(7)
        assert 7 not in eng
        assert len(eng) == 29

    def test_neighbor_ids_are_current_points(self, correlated_gaussian):
        x, y = correlated_gaussian
        eng = SlidingKSG(k=3)
        eng.reset(x[:50], y[:50], ids=range(50))
        eng.remove(10)
        for pid in eng.ids:
            for nb in eng.neighbor_ids(pid):
                assert nb in eng
                assert nb != pid


class TestSlidingValidation:
    def test_add_duplicate_id_rejected(self, correlated_gaussian):
        x, y = correlated_gaussian
        eng = SlidingKSG()
        eng.reset(x[:20], y[:20], ids=range(20))
        with pytest.raises(KeyError, match="already present"):
            eng.add(5, 0.0, 0.0)

    def test_remove_missing_id_rejected(self):
        eng = SlidingKSG()
        eng.reset([0.0, 1.0], [0.0, 1.0], ids=[0, 1])
        with pytest.raises(KeyError, match="not present"):
            eng.remove(99)

    def test_duplicate_ids_rejected_in_reset(self):
        eng = SlidingKSG()
        with pytest.raises(ValueError, match="unique"):
            eng.reset([0.0, 1.0], [0.0, 1.0], ids=[3, 3])

    def test_mi_requires_enough_points(self):
        eng = SlidingKSG(k=4)
        eng.reset([0.0, 1.0, 2.0], [0.0, 1.0, 2.0])
        with pytest.raises(ValueError, match="at least"):
            eng.mi()

    def test_rebuild_after_dipping_below_k(self, correlated_gaussian):
        # Shrink below k+2, then grow back: the lazy rebuild must recover.
        x, y = correlated_gaussian
        eng = SlidingKSG(k=4)
        eng.reset(x[:10], y[:10], ids=range(10))
        for i in range(7):
            eng.remove(i)
        for i in range(20, 40):
            eng.add(i, x[i], y[i])
        ids = sorted(eng.ids)
        assert eng.mi() == pytest.approx(_batch(x, y, ids), abs=1e-12)


class TestSlidingProperty:
    @given(st.integers(min_value=0, max_value=200))
    @settings(max_examples=15, deadline=None)
    def test_property_random_op_sequences_match_batch(self, seed):
        rng = np.random.default_rng(seed)
        n = 250
        x = rng.normal(size=n)
        y = 0.5 * x + rng.normal(size=n)
        eng = SlidingKSG(k=3)
        live = list(range(30))
        eng.reset(x[:30], y[:30], ids=live)
        next_id = 30
        for _ in range(60):
            if live and rng.random() < 0.45 and len(live) > 6:
                victim = live.pop(int(rng.integers(len(live))))
                eng.remove(victim)
            elif next_id < n:
                eng.add(next_id, x[next_id], y[next_id])
                live.append(next_id)
                next_id += 1
        assert eng.mi() == pytest.approx(_batch(x, y, live, k=3), abs=1e-12)

    def test_incremental_updates_counted(self, correlated_gaussian):
        x, y = correlated_gaussian
        eng = SlidingKSG(k=4)
        eng.reset(x[:100], y[:100], ids=range(100))
        before = eng.full_searches
        for i in range(100, 130):
            eng.add(i, x[i], y[i])
        # Each add triggers exactly one full search (the new point's own),
        # plus Lemma-3 constant-time updates -- never a global recompute.
        assert eng.full_searches - before == 30
        assert eng.incremental_updates > 0

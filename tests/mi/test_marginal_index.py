"""Exactness tests for presorted marginals and the incremental MarginalIndex."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mi.neighbors import MarginalIndex, PairDistanceWorkspace, marginal_counts


def test_presorted_counts_exactly_equal_scratch_path(rng):
    values = rng.normal(size=200)
    radii = np.abs(rng.normal(size=200)) * 0.5
    presorted = np.sort(values)
    for strict in (True, False):
        direct = marginal_counts(values, radii, strict=strict)
        fast = marginal_counts(values, radii, strict=strict, presorted=presorted)
        assert np.array_equal(direct, fast)


def test_presorted_counts_with_duplicates(rng):
    values = rng.integers(0, 10, size=120).astype(np.float64)
    radii = np.full(120, 1.0)
    presorted = np.sort(values)
    for strict in (True, False):
        assert np.array_equal(
            marginal_counts(values, radii, strict=strict),
            marginal_counts(values, radii, strict=strict, presorted=presorted),
        )


def test_marginal_index_reset_matches_sort(rng):
    values = rng.normal(size=333)
    index = MarginalIndex(values)
    assert len(index) == 333
    assert np.array_equal(index.sorted_values(), np.sort(values))


def test_marginal_index_add_remove_basics():
    index = MarginalIndex(np.array([3.0, 1.0, 2.0]))
    index.add(2.5)
    assert np.array_equal(index.sorted_values(), [1.0, 2.0, 2.5, 3.0])
    index.remove(2.0)
    assert np.array_equal(index.sorted_values(), [1.0, 2.5, 3.0])
    with pytest.raises(KeyError):
        index.remove(7.0)


def test_marginal_index_duplicates_remove_one_occurrence():
    index = MarginalIndex(np.array([1.0, 2.0, 2.0, 3.0]))
    index.remove(2.0)
    assert np.array_equal(index.sorted_values(), [1.0, 2.0, 3.0])
    index.remove(2.0)
    assert np.array_equal(index.sorted_values(), [1.0, 3.0])
    with pytest.raises(KeyError):
        index.remove(2.0)


def test_marginal_index_growth_beyond_initial_capacity(rng):
    index = MarginalIndex()
    reference = []
    for value in rng.normal(size=500):
        index.add(float(value))
        reference.append(float(value))
    assert np.array_equal(index.sorted_values(), np.sort(reference))


@settings(max_examples=40, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["add", "remove"]), st.integers(0, 9)),
        min_size=1,
        max_size=120,
    )
)
def test_marginal_index_randomized_churn_matches_sort(ops):
    """Property (ISSUE satellite): after ANY add/remove sequence, the
    maintained array is exactly np.sort of the live multiset."""
    index = MarginalIndex()
    live = []
    for op, raw in ops:
        value = float(raw) * 0.25  # small grid forces heavy duplication
        if op == "add":
            index.add(value)
            live.append(value)
        elif live:
            if value in live:
                index.remove(value)
                live.remove(value)
            else:
                with pytest.raises(KeyError):
                    index.remove(value)
        assert np.array_equal(index.sorted_values(), np.sort(live))
        # The maintained array serves marginal_counts identically to the
        # from-scratch sort at every intermediate state.
        if len(live) >= 2:
            values = np.asarray(live, dtype=np.float64)
            radii = np.full(values.size, 0.3)
            for strict in (True, False):
                assert np.array_equal(
                    marginal_counts(values, radii, strict=strict),
                    marginal_counts(
                        values, radii, strict=strict, presorted=index.sorted_values()
                    ),
                )


def test_workspace_sorted_window_matches_np_sort(rng):
    x = rng.normal(size=64)
    y = rng.normal(size=64)
    workspace = PairDistanceWorkspace(x, y)
    for offset, m in ((0, 64), (5, 20), (40, 24), (10, 2)):
        sorted_x, sorted_y = workspace.sorted_window(offset, m)
        assert np.array_equal(sorted_x, np.sort(x[offset : offset + m]))
        assert np.array_equal(sorted_y, np.sort(y[offset : offset + m]))


def test_workspace_sorted_window_with_duplicates():
    x = np.array([2.0, 1.0, 2.0, 0.0, 1.0, 1.0])
    y = np.array([0.0, 0.0, 1.0, 1.0, 2.0, 0.5])
    workspace = PairDistanceWorkspace(x, y)
    sorted_x, sorted_y = workspace.sorted_window(1, 4)
    assert np.array_equal(sorted_x, np.sort(x[1:5]))
    assert np.array_equal(sorted_y, np.sort(y[1:5]))

"""Tests for the normalized MI (Eq. 18)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mi.normalized import normalize_ratio, normalize_value, normalized_mi


class TestNormalizeValue:
    def test_in_unit_interval(self):
        assert normalize_value(0.5, 1.0) == 0.5
        assert normalize_value(2.0, 1.0) == 1.0  # clamped
        assert normalize_value(-0.3, 1.0) == 0.0  # clamped

    def test_zero_entropy_maps_to_zero(self):
        assert normalize_value(5.0, 0.0) == 0.0
        assert normalize_value(5.0, 1e-12) == 0.0

    def test_ratio_unclamped_above_one(self):
        assert normalize_ratio(2.0, 1.0) == 2.0
        assert normalize_ratio(-1.0, 1.0) == 0.0

    @given(
        st.floats(min_value=-5, max_value=20),
        st.floats(min_value=0, max_value=10),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_value_is_clamped_ratio(self, mi, h):
        value = normalize_value(mi, h)
        ratio = normalize_ratio(mi, h)
        assert 0.0 <= value <= 1.0
        assert value == pytest.approx(min(ratio, 1.0))


class TestNormalizedMi:
    def test_strong_relation_scores_high(self, rng):
        x = rng.uniform(0, 1, size=400)
        y = x + 0.01 * rng.normal(size=400)
        assert normalized_mi(x, y) > 0.5

    def test_independence_scores_low(self, independent_pair):
        x, y = independent_pair
        assert normalized_mi(x, y) < 0.1

    def test_ordering_by_noise_level(self, rng):
        # More noise -> weaker normalized MI, monotonically (on average).
        x = rng.uniform(0, 1, size=500)
        scores = []
        for noise in (0.01, 0.2, 1.0):
            y = np.sin(6 * x) + noise * rng.normal(size=500)
            scores.append(normalized_mi(x, y))
        assert scores[0] > scores[1] > scores[2]

    def test_range(self, rng):
        for _ in range(5):
            m = int(rng.integers(10, 200))
            a = rng.normal(size=m)
            b = rng.normal(size=m)
            assert 0.0 <= normalized_mi(a, b) <= 1.0

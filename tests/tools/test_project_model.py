"""Tests for pass 1 of the whole-program analyzer: the project model."""

import textwrap

from tools.tycoslint.project import (
    build_module_info,
    build_project,
    module_name_for,
)


def write_tree(root, files):
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return root


class TestModuleNames:
    def test_src_layout(self, tmp_path):
        path = tmp_path / "src" / "repro" / "mi" / "digamma.py"
        assert module_name_for(path) == "repro.mi.digamma"

    def test_package_init_maps_to_package(self, tmp_path):
        path = tmp_path / "src" / "repro" / "analysis" / "__init__.py"
        assert module_name_for(path) == "repro.analysis"

    def test_tests_and_tools_anchors(self, tmp_path):
        assert (
            module_name_for(tmp_path / "tests" / "mi" / "test_digamma.py")
            == "tests.mi.test_digamma"
        )
        assert (
            module_name_for(tmp_path / "tools" / "tycoslint" / "engine.py")
            == "tools.tycoslint.engine"
        )


class TestModuleInfo:
    def test_state_inventory_kinds(self, tmp_path):
        source = textwrap.dedent(
            """
            import functools

            _MEMO = {}
            _ITEMS: list = []
            NAMES = set()
            _MODE = None

            @functools.lru_cache(maxsize=None)
            def cached(n):
                return n * 2

            def set_mode(mode):
                global _MODE
                _MODE = mode
            """
        )
        info = build_module_info(tmp_path / "src" / "repro" / "core" / "m.py", source)
        kinds = {name: record.kind for name, record in info.state.items()}
        assert kinds == {
            "_MEMO": "dict",
            "_ITEMS": "list",
            "NAMES": "set",
            "cached": "lru_cache",
            "_MODE": "rebound-global",
        }

    def test_dunder_all_not_counted_as_state(self, tmp_path):
        info = build_module_info(
            tmp_path / "src" / "repro" / "core" / "m.py", "__all__ = []\n"
        )
        assert info.state == {}

    def test_import_bindings(self, tmp_path):
        source = textwrap.dedent(
            """
            import numpy as np
            from repro.analysis import parallel
            from repro.analysis.parallel import worker_state as ws
            from .config import TycosConfig
            """
        )
        info = build_module_info(tmp_path / "src" / "repro" / "core" / "m.py", source)
        assert info.bindings["np"] == ("numpy", None)
        assert info.bindings["parallel"] == ("repro.analysis", "parallel")
        assert info.bindings["ws"] == ("repro.analysis.parallel", "worker_state")
        # Relative import resolves against the containing package.
        assert info.bindings["TycosConfig"] == ("repro.core.config", "TycosConfig")
        assert "repro.analysis.parallel" in info.imported_modules


class TestProjectModel:
    def test_tests_importing_and_state_index(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "src/repro/mi/fast.py": """
                    _CACHE = {}
                    __all__ = []
                    """,
                "tests/mi/test_fast.py": """
                    from repro.mi.fast import thing

                    def test_thing():
                        assert thing() == 1
                    """,
            },
        )
        model = build_project([tmp_path])
        assert model.has_tests
        assert ("repro.mi.fast", "_CACHE") in model.state
        importers = model.tests_importing("repro.mi.fast")
        assert [info.name for info in importers] == ["tests.mi.test_fast"]
        assert model.tests_importing("repro.mi.other") == []

    def test_parse_errors_recorded(self, tmp_path):
        write_tree(tmp_path, {"src/repro/bad.py": "def f(:\n"})
        model = build_project([tmp_path])
        assert model.parse_errors and "bad.py" in model.parse_errors[0]

    def test_disk_cache_roundtrip_and_invalidation(self, tmp_path):
        root = write_tree(
            tmp_path / "proj", {"src/repro/core/m.py": "_MEMO = {}\n__all__ = []\n"}
        )
        cache = tmp_path / "model.cache"

        first = build_project([root], cache_path=cache)
        assert cache.exists()
        warm = build_project([root], cache_path=cache)
        assert set(warm.modules) == set(first.modules)
        assert ("repro.core.m", "_MEMO") in warm.state

        # Changing the file (mtime/size) must invalidate its entry.
        target = root / "src" / "repro" / "core" / "m.py"
        target.write_text("_OTHER = []\n__all__ = []\n")
        updated = build_project([root], cache_path=cache)
        assert ("repro.core.m", "_OTHER") in updated.state
        assert ("repro.core.m", "_MEMO") not in updated.state

    def test_corrupt_cache_is_ignored(self, tmp_path):
        root = write_tree(
            tmp_path / "proj", {"src/repro/core/m.py": "__all__ = []\n"}
        )
        cache = tmp_path / "model.cache"
        cache.write_bytes(b"not a pickle")
        model = build_project([root], cache_path=cache)
        assert "repro.core.m" in model.modules

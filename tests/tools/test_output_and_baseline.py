"""Tests for JSON output, the baseline mechanism, and inline pragmas."""

import json
from pathlib import Path

from tools.tycoslint.baseline import (
    BaselineEntry,
    apply_baseline,
    format_baseline,
    load_baseline,
)
from tools.tycoslint.cli import main
from tools.tycoslint.engine import Violation, lint_source, resolve_rules


def make_fixture(tmp_path):
    """One file firing TY001 (error) so the CLI has something to report."""
    bad = tmp_path / "src" / "repro" / "core" / "mod.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("flag = x == 0.5\n__all__ = ['flag']\n")
    return bad


# --------------------------------------------------------------------- #
# JSON output


class TestJsonOutput:
    def test_one_json_object_per_line_with_schema(self, tmp_path, capsys):
        make_fixture(tmp_path)
        code = main(["--output", "json", "--no-baseline", "--no-cache", str(tmp_path)])
        assert code == 1
        lines = [line for line in capsys.readouterr().out.splitlines() if line]
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert set(record) == {"code", "path", "line", "col", "message", "severity"}
        assert record["code"] == "TY001"
        assert record["severity"] == "error"
        assert record["path"].endswith("src/repro/core/mod.py")
        assert isinstance(record["line"], int) and isinstance(record["col"], int)

    def test_text_output_remains_default(self, tmp_path, capsys):
        make_fixture(tmp_path)
        assert main(["--no-baseline", "--no-cache", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "TY001" in out and "{" not in out

    def test_severity_field_reflects_rule(self, tmp_path, capsys):
        warn = tmp_path / "src" / "repro" / "core" / "warny.py"
        warn.parent.mkdir(parents=True)
        warn.write_text(
            "def f():\n    return list({'a', 'b'})\n__all__ = ['f']\n"
        )
        main(
            ["--output", "json", "--select", "TY111", "--no-baseline", "--no-cache", str(tmp_path)]
        )
        record = json.loads(capsys.readouterr().out.splitlines()[0])
        assert record["code"] == "TY111"
        assert record["severity"] == "warning"


# --------------------------------------------------------------------- #
# Baseline


class TestBaseline:
    def test_load_and_suffix_matching(self, tmp_path):
        baseline = tmp_path / "baseline.txt"
        baseline.write_text(
            "# comment line\n"
            "\n"
            "TY001 src/repro/core/mod.py  # trailing comment\n"
        )
        entries = load_baseline(baseline)
        assert entries == [BaselineEntry(code="TY001", path="src/repro/core/mod.py")]
        violation = Violation(
            code="TY001", message="m", path="/abs/src/repro/core/mod.py", line=1, col=0
        )
        kept, suppressed, stale = apply_baseline([violation], entries)
        assert kept == [] and suppressed == 1 and stale == []

    def test_mismatches_kept_and_stale_reported(self, tmp_path):
        entries = [
            BaselineEntry(code="TY001", path="src/repro/core/mod.py"),
            BaselineEntry(code="TY099", path="src/never/seen.py"),
        ]
        other = Violation(code="TY002", message="m", path="src/repro/core/mod.py", line=1, col=0)
        kept, suppressed, stale = apply_baseline([other], entries)
        assert kept == [other] and suppressed == 0
        assert stale == entries  # neither entry matched anything

    def test_malformed_baseline_rejected(self, tmp_path):
        baseline = tmp_path / "baseline.txt"
        baseline.write_text("TY001 too many fields here\n")
        try:
            load_baseline(baseline)
        except ValueError as exc:
            assert "expected 'CODE path'" in str(exc)
        else:  # pragma: no cover
            raise AssertionError("malformed baseline must raise")

    def test_cli_baseline_suppresses_and_warns_stale(self, tmp_path, capsys):
        make_fixture(tmp_path)
        baseline = tmp_path / "baseline.txt"
        baseline.write_text("TY001 src/repro/core/mod.py\nTY008 src/ghost.py\n")
        code = main(["--baseline", str(baseline), "--no-cache", str(tmp_path)])
        captured = capsys.readouterr()
        assert code == 0
        assert "TY001" not in captured.out
        assert "stale baseline entry TY008" in captured.err

    def test_cli_no_baseline_restores_findings(self, tmp_path, capsys):
        make_fixture(tmp_path)
        baseline = tmp_path / "baseline.txt"
        baseline.write_text("TY001 src/repro/core/mod.py\n")
        code = main(
            ["--baseline", str(baseline), "--no-baseline", "--no-cache", str(tmp_path)]
        )
        assert code == 1
        assert "TY001" in capsys.readouterr().out

    def test_write_baseline_roundtrip(self, tmp_path, capsys):
        make_fixture(tmp_path)
        baseline = tmp_path / "baseline.txt"
        assert (
            main(
                ["--write-baseline", "--baseline", str(baseline), "--no-cache", str(tmp_path)]
            )
            == 0
        )
        capsys.readouterr()
        assert "TY001" in baseline.read_text()
        # The run is clean against the baseline it just wrote.
        assert main(["--baseline", str(baseline), "--no-cache", str(tmp_path)]) == 0

    def test_format_baseline_dedupes(self):
        violations = [
            Violation(code="TY001", message="a", path="src/m.py", line=1, col=0),
            Violation(code="TY001", message="b", path="src/m.py", line=9, col=0),
        ]
        text = format_baseline(violations)
        assert text.count("TY001 src/m.py") == 1


# --------------------------------------------------------------------- #
# Pragmas


class TestPragmas:
    def test_pragma_suppresses_on_flagged_line(self):
        src = (
            "flag = x == 0.5  # tycoslint: disable=TY001\n"
            "__all__ = ['flag']\n"
        )
        found = lint_source(src, Path("src/repro/core/m.py"), resolve_rules())
        assert [v.code for v in found] == []

    def test_pragma_is_code_specific(self):
        src = (
            "flag = x == 0.5  # tycoslint: disable=TY006\n"
            "__all__ = ['flag']\n"
        )
        found = lint_source(src, Path("src/repro/core/m.py"), resolve_rules())
        assert [v.code for v in found] == ["TY001"]

    def test_pragma_accepts_multiple_codes(self):
        src = (
            "flag = x == 0.5  # tycoslint: disable=TY006, TY001\n"
            "__all__ = ['flag']\n"
        )
        found = lint_source(src, Path("src/repro/core/m.py"), resolve_rules())
        assert found == []


def test_cache_speeds_reruns_and_is_correct(tmp_path, capsys):
    """A cached second run reports exactly what the cold run reported."""
    make_fixture(tmp_path)
    cache = tmp_path / "model.cache"
    args = ["--no-baseline", "--cache", str(cache), str(tmp_path)]
    assert main(args) == 1
    cold = capsys.readouterr().out
    assert cache.exists()
    assert main(args) == 1
    warm = capsys.readouterr().out
    assert warm == cold

"""Unit tests for the tycoslint rule engine and every rule.

Each rule is exercised twice: a minimal bad snippet that must fire and a
minimal good snippet that must stay silent.  The engine and CLI are
tested on top of that (selection, scoping, exit codes).
"""

from pathlib import Path

import pytest

from tools.tycoslint.cli import main
from tools.tycoslint.engine import (
    is_test_path,
    lint_paths,
    lint_source,
    registered_rules,
    resolve_rules,
)

CORE_PATH = Path("src/repro/core/example.py")
MI_PATH = Path("src/repro/mi/example.py")
OTHER_PATH = Path("src/repro/data/example.py")
TEST_PATH = Path("tests/core/test_example.py")


def codes(source, path):
    return [v.code for v in lint_source(source, path, resolve_rules())]


# --------------------------------------------------------------------- #
# TY001 float equality


def test_ty001_fires_on_float_literal_comparison():
    assert "TY001" in codes("ok = value == 0.5\n__all__ = ['ok']\n", MI_PATH)


def test_ty001_fires_on_negative_float_and_noteq():
    assert "TY001" in codes("ok = x != -1.0\n__all__ = ['ok']\n", CORE_PATH)


def test_ty001_silent_on_int_comparison_and_tolerance():
    good = "import math\nok = x == 3 or math.isclose(x, 0.5)\n__all__ = ['ok']\n"
    assert "TY001" not in codes(good, MI_PATH)


def test_ty001_scoped_to_numerical_packages():
    assert "TY001" not in codes("ok = x == 0.5\n__all__ = ['ok']\n", OTHER_PATH)


# --------------------------------------------------------------------- #
# TY002 unseeded randomness


def test_ty002_fires_on_unseeded_default_rng():
    src = "import numpy as np\nrng = np.random.default_rng()\n__all__ = ['rng']\n"
    assert "TY002" in codes(src, OTHER_PATH)


def test_ty002_fires_on_legacy_global_rng():
    src = "import numpy as np\nsample = np.random.normal(size=3)\n__all__ = ['sample']\n"
    assert "TY002" in codes(src, OTHER_PATH)


def test_ty002_silent_on_seeded_rng():
    src = (
        "import numpy as np\n"
        "rng = np.random.default_rng(42)\n"
        "rng2 = np.random.default_rng(seed=7)\n"
        "sample = rng.normal(size=3)\n"
        "__all__ = ['rng', 'rng2', 'sample']\n"
    )
    assert "TY002" not in codes(src, OTHER_PATH)


def test_ty002_exempts_tests():
    src = "import numpy as np\nrng = np.random.default_rng()\n"
    assert "TY002" not in codes(src, TEST_PATH)


def test_ty002_fires_on_none_seed():
    src = "import numpy as np\nrng = np.random.default_rng(None)\n__all__ = ['rng']\n"
    assert "TY002" in codes(src, OTHER_PATH)


# --------------------------------------------------------------------- #
# TY003 mutable defaults


def test_ty003_fires_on_list_literal_default():
    assert "TY003" in codes("def f(xs=[]):\n    return xs\n__all__ = ['f']\n", OTHER_PATH)


def test_ty003_fires_on_dict_call_default():
    src = "def f(*, opts=dict()):\n    return opts\n__all__ = ['f']\n"
    assert "TY003" in codes(src, OTHER_PATH)


def test_ty003_silent_on_none_default():
    src = "def f(xs=None):\n    return list(xs or [])\n__all__ = ['f']\n"
    assert "TY003" not in codes(src, OTHER_PATH)


# --------------------------------------------------------------------- #
# TY004 __all__ discipline


def test_ty004_fires_on_missing_dunder_all():
    assert "TY004" in codes("def f():\n    return 1\n", OTHER_PATH)


def test_ty004_fires_on_phantom_export():
    src = "def f():\n    return 1\n__all__ = ['f', 'ghost']\n"
    found = lint_source(src, OTHER_PATH, resolve_rules(select=["TY004"]))
    assert len(found) == 1
    assert "ghost" in found[0].message


def test_ty004_silent_on_honest_exports():
    src = (
        "from collections import deque\n"
        "CONST = 3\n"
        "def f():\n    return CONST\n"
        "class C:\n    pass\n"
        "__all__ = ['f', 'C', 'CONST', 'deque']\n"
    )
    assert "TY004" not in codes(src, OTHER_PATH)


def test_ty004_exempts_private_modules_and_non_repro_paths():
    assert "TY004" not in codes("def f():\n    return 1\n", Path("src/repro/core/_util.py"))
    assert "TY004" not in codes("def f():\n    return 1\n", Path("examples/demo.py"))


# --------------------------------------------------------------------- #
# TY005 silent excepts


def test_ty005_fires_on_bare_except():
    src = "try:\n    f()\nexcept:\n    handle()\n__all__ = []\n"
    assert "TY005" in codes(src, OTHER_PATH)


def test_ty005_fires_on_swallowed_exception():
    src = "try:\n    f()\nexcept Exception:\n    pass\n__all__ = []\n"
    assert "TY005" in codes(src, OTHER_PATH)


def test_ty005_silent_on_narrow_or_handled_except():
    src = (
        "try:\n    f()\n"
        "except ValueError:\n    pass\n"
        "except Exception as exc:\n    log(exc)\n"
        "__all__ = []\n"
    )
    assert "TY005" not in codes(src, OTHER_PATH)


# --------------------------------------------------------------------- #
# TY006 wall-clock timing


def test_ty006_fires_on_time_time():
    src = "import time\nstamp = time.time()\n__all__ = ['stamp']\n"
    assert "TY006" in codes(src, OTHER_PATH)


def test_ty006_silent_on_perf_counter_and_sanctioned_site():
    good = "import time\nstamp = time.perf_counter()\n__all__ = ['stamp']\n"
    assert "TY006" not in codes(good, OTHER_PATH)
    sanctioned = "import time\nstamp = time.time()\n__all__ = ['stamp']\n"
    assert "TY006" not in codes(sanctioned, Path("src/repro/core/tycos.py"))


# --------------------------------------------------------------------- #
# TY007 direct digamma


def test_ty007_fires_on_scipy_special_import():
    src = "from scipy.special import digamma\nval = digamma(3)\n__all__ = ['val']\n"
    assert "TY007" in codes(src, MI_PATH)


def test_ty007_fires_on_attribute_calls():
    src = (
        "import scipy.special\n"
        "val = scipy.special.digamma(3)\n"
        "__all__ = ['val']\n"
    )
    assert "TY007" in codes(src, OTHER_PATH)
    src2 = (
        "from scipy import special\n"
        "val = special.digamma(3)\n"
        "__all__ = ['val']\n"
    )
    assert "TY007" in codes(src2, OTHER_PATH)


def test_ty007_silent_on_sanctioned_module_tests_and_table_use():
    bad = "from scipy.special import digamma\nval = digamma(3)\n__all__ = ['val']\n"
    assert "TY007" not in codes(bad, Path("src/repro/mi/digamma.py"))
    assert "TY007" not in codes(bad, TEST_PATH)
    good = (
        "from repro.mi.digamma import shared_digamma_table\n"
        "val = shared_digamma_table().value(3)\n"
        "__all__ = ['val']\n"
    )
    assert "TY007" not in codes(good, MI_PATH)
    # Other scipy.special members stay allowed.
    other = "from scipy.special import gammaln\nval = gammaln(3.0)\n__all__ = ['val']\n"
    assert "TY007" not in codes(other, MI_PATH)


# --------------------------------------------------------------------- #
# TY008 PAA outside pyramid


def test_ty008_fires_on_reshape_mean_chain():
    src = (
        "import numpy as np\n"
        "def down(v, f):\n"
        "    return v[: v.size // f * f].reshape(-1, f).mean(axis=1)\n"
        "__all__ = ['down']\n"
    )
    assert "TY008" in codes(src, OTHER_PATH)


def test_ty008_fires_on_add_reduceat():
    src = (
        "import numpy as np\n"
        "def down(v, idx):\n"
        "    return np.add.reduceat(v, idx)\n"
        "__all__ = ['down']\n"
    )
    assert "TY008" in codes(src, OTHER_PATH)


def test_ty008_silent_in_pyramid_and_tests():
    bad = (
        "import numpy as np\n"
        "def down(v, f):\n"
        "    return v.reshape(-1, f).mean(axis=1)\n"
        "__all__ = ['down']\n"
    )
    assert "TY008" not in codes(bad, Path("src/repro/core/pyramid.py"))
    assert "TY008" not in codes(bad, TEST_PATH)


def test_ty008_allows_plain_reshape_and_plain_mean():
    src = (
        "import numpy as np\n"
        "def stats(v, f):\n"
        "    grid = v.reshape(-1, f)\n"
        "    return v.mean()\n"
        "__all__ = ['stats']\n"
    )
    assert "TY008" not in codes(src, OTHER_PATH)


# --------------------------------------------------------------------- #
# engine behavior


ALL_CODES = [
    "TY001", "TY002", "TY003", "TY004", "TY005", "TY006", "TY007", "TY008",
    "TY101", "TY102", "TY103", "TY111", "TY112", "TY113", "TY114", "TY115",
    "TY116", "TY117", "TY121",
]


def test_registry_contains_all_rules():
    assert sorted(registered_rules()) == ALL_CODES


def test_resolve_rules_select_and_ignore():
    assert [r.code for r in resolve_rules(select=["TY005", "TY001"])] == ["TY005", "TY001"]
    assert [r.code for r in resolve_rules(ignore=["TY004"])] == [
        code for code in ALL_CODES if code != "TY004"
    ]
    with pytest.raises(KeyError):
        resolve_rules(select=["TY042"])


def test_is_test_path():
    assert is_test_path(Path("tests/core/test_x.py"))
    assert is_test_path(Path("pkg/conftest.py"))
    assert not is_test_path(Path("src/repro/core/tycos.py"))


def test_violations_sorted_by_location():
    src = (
        "def f(xs=[]):\n    return xs\n"
        "def g(ys=[]):\n    return ys\n"
        "__all__ = ['f', 'g']\n"
    )
    found = lint_source(src, OTHER_PATH, resolve_rules(select=["TY003"]))
    assert [v.line for v in found] == sorted(v.line for v in found)
    assert len(found) == 2


def test_lint_paths_reports_parse_errors(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def f(:\n")
    report = lint_paths([tmp_path], resolve_rules())
    assert report.parse_errors and not report.clean


# --------------------------------------------------------------------- #
# CLI


def test_cli_exit_codes(tmp_path, capsys):
    bad = tmp_path / "src" / "repro" / "core" / "mod.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("flag = x == 0.5\n__all__ = ['flag']\n")

    assert main([str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "TY001" in out and "mod.py" in out

    # Ignoring the only firing rule turns the run clean.
    assert main(["--ignore", "TY001", str(tmp_path)]) == 0

    # Usage errors: unknown rule, missing path, no paths.
    assert main(["--select", "TY042", str(tmp_path)]) == 2
    assert main([str(tmp_path / "nope")]) == 2
    assert main([]) == 2


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ALL_CODES:
        assert code in out


def test_repo_is_lint_clean():
    """Both passes over src+tests are clean modulo the checked-in baseline."""
    from tools.tycoslint.baseline import DEFAULT_BASELINE, apply_baseline, load_baseline

    root = Path(__file__).resolve().parents[2]
    report = lint_paths([root / "src", root / "tests"], resolve_rules())
    kept, _, stale = apply_baseline(report.violations, load_baseline(DEFAULT_BASELINE))
    assert not kept, "\n".join(v.render() for v in kept)
    assert not report.parse_errors, report.parse_errors
    assert not stale, f"stale baseline entries: {stale}"

"""Tests for the runtime determinism sanitizer."""

import json
import os
import subprocess
import sys

import pytest

from tools.tycoslint.sanitize import (
    REPO_ROOT,
    build_payload,
    canonical_bytes,
    field_diff,
    main,
)

WORKER_LENGTH = 300


def run_worker(out, *, hashseed, n_jobs=1, n_segments=1, inject=False):
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = str(hashseed)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )
    command = [
        sys.executable,
        "-m",
        "tools.tycoslint.sanitize",
        "--worker",
        "--out",
        str(out),
        "--length",
        str(WORKER_LENGTH),
        "--seed",
        "0",
        "--n-segments",
        str(n_segments),
        "--n-jobs",
        str(n_jobs),
    ]
    if inject:
        command.append("--inject")
    subprocess.run(command, cwd=REPO_ROOT, env=env, check=True, timeout=300)
    return out.read_bytes()


class TestFieldDiff:
    def test_equal_payloads_produce_no_diff(self):
        payload = {"a": [1, 2], "b": {"c": "x"}}
        assert field_diff(payload, dict(payload)) == []

    def test_value_mismatch_names_the_path(self):
        lines = field_diff({"scan": {"findings": [1, 2]}}, {"scan": {"findings": [1, 3]}})
        assert lines == ["$.scan.findings[1]: 2 != 3"]

    def test_missing_keys_reported_on_both_sides(self):
        lines = field_diff({"a": 1}, {"b": 2})
        assert "$.a: only in first" in lines
        assert "$.b: only in second" in lines

    def test_length_mismatch_reported(self):
        lines = field_diff([1, 2, 3], [1, 2])
        assert lines[0] == "$: length 3 != 2"

    def test_type_mismatch_short_circuits(self):
        assert field_diff({"a": 1}, [1]) == ["$: type dict != list"]


class TestCanonicalBytes:
    def test_key_order_does_not_matter(self):
        first = canonical_bytes({"b": 1, "a": [2.5]})
        second = canonical_bytes({"a": [2.5], "b": 1})
        assert first == second

    def test_roundtrips_through_json(self):
        payload = {"x": [1, 2.0, "s"], "y": None}
        assert json.loads(canonical_bytes(payload)) == payload


class TestPayload:
    def test_in_process_build_is_repeatable(self):
        first = build_payload(WORKER_LENGTH, 0, 1, 1, inject=False)
        second = build_payload(WORKER_LENGTH, 0, 1, 1, inject=False)
        assert canonical_bytes(first) == canonical_bytes(second)
        assert first["search"]["windows"], "workload must find coupled windows"
        assert {f["source"] for f in first["scan"]["findings"]} <= {"a", "b", "c"}

    def test_timing_fields_are_excluded(self):
        payload = build_payload(WORKER_LENGTH, 0, 1, 1, inject=False)
        text = canonical_bytes(payload).decode()
        assert "runtime_seconds" not in text
        assert "phase_seconds" not in text
        assert "n_jobs" not in text


@pytest.mark.slow
class TestSubprocessMatrix:
    def test_reports_identical_across_hashseed_and_n_jobs(self, tmp_path):
        reference = run_worker(tmp_path / "ref.json", hashseed=0, n_jobs=1)
        across_seed = run_worker(tmp_path / "seed.json", hashseed=4242, n_jobs=1)
        across_jobs = run_worker(tmp_path / "jobs.json", hashseed=0, n_jobs=2)
        assert across_seed == reference
        assert across_jobs == reference

    def test_injected_nondeterminism_is_caught_with_field_diff(self, tmp_path):
        first = run_worker(tmp_path / "h0.json", hashseed=0, inject=True)
        second = run_worker(tmp_path / "h1.json", hashseed=4242, inject=True)
        assert first != second
        lines = field_diff(json.loads(first), json.loads(second))
        assert lines and all(line.startswith("$.hash_probe") for line in lines)


def test_worker_mode_requires_out():
    with pytest.raises(SystemExit) as excinfo:
        main(["--worker"])
    assert excinfo.value.code == 2

"""Fixture tests for every whole-program rule (TY101 - TY121).

Each rule gets at least one firing fixture tree and one silent one,
built under ``tmp_path`` with the same ``src/repro`` / ``tests`` layout
as the real repository so module-name anchoring works unchanged.
"""

import textwrap

from tools.tycoslint.engine import lint_paths, resolve_rules

ALL_EXPORTS = "__all__ = []\n"


def lint_tree(tmp_path, files, select):
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    report = lint_paths([tmp_path], resolve_rules(select=select))
    assert not report.parse_errors, report.parse_errors
    return report.violations


# --------------------------------------------------------------------- #
# TY101 unregistered cache state


class TestTY101:
    def test_fires_on_local_mutation_in_unregistered_module(self, tmp_path):
        found = lint_tree(
            tmp_path,
            {
                "src/repro/core/memo.py": """
                    _MEMO = {}

                    def remember(key, value):
                        _MEMO[key] = value
                    __all__ = ["remember"]
                    """
            },
            ["TY101"],
        )
        assert [v.code for v in found] == ["TY101"]
        assert "repro.core.memo._MEMO" in found[0].message

    def test_fires_on_cross_module_mutation(self, tmp_path):
        found = lint_tree(
            tmp_path,
            {
                "src/repro/core/owner.py": "_REGISTRY = {}\n__all__ = []\n",
                "src/repro/core/writer.py": """
                    from repro.core import owner

                    def poke():
                        owner._REGISTRY.clear()
                    __all__ = ["poke"]
                    """,
            },
            ["TY101"],
        )
        assert [v.code for v in found] == ["TY101"]
        assert "owner.py" not in found[0].path  # reported at the mutation site
        assert "writer.py" in found[0].path

    def test_fires_on_global_rebind_and_stray_lru_cache(self, tmp_path):
        found = lint_tree(
            tmp_path,
            {
                "src/repro/core/toggle.py": """
                    import functools

                    _MODE = None

                    @functools.lru_cache(maxsize=8)
                    def lookup(n):
                        return n

                    def set_mode(mode):
                        global _MODE
                        _MODE = mode
                    __all__ = ["lookup", "set_mode"]
                    """
            },
            ["TY101"],
        )
        assert sorted(v.code for v in found) == ["TY101", "TY101"]
        messages = " ".join(v.message for v in found)
        assert "_MODE" in messages and "lru_cache" in messages

    def test_silent_in_registered_module_and_on_import_time_init(self, tmp_path):
        found = lint_tree(
            tmp_path,
            {
                # repro.mi.digamma is registered in CACHE_MODULES.
                "src/repro/mi/digamma.py": """
                    _TABLE = {}

                    def grow(n):
                        _TABLE[n] = n
                    __all__ = ["grow"]
                    """,
                # Import-time population is pre-fork, hence exempt.
                "src/repro/core/const.py": """
                    _LOOKUP = {}
                    for key in ("a", "b"):
                        _LOOKUP[key] = key.upper()
                    __all__ = []
                    """,
            },
            ["TY101"],
        )
        assert found == []


# --------------------------------------------------------------------- #
# TY102 multiprocessing outside the parallel module


class TestTY102:
    def test_fires_on_multiprocessing_and_executor_imports(self, tmp_path):
        found = lint_tree(
            tmp_path,
            {
                "src/repro/core/a.py": "import multiprocessing\n" + ALL_EXPORTS,
                "src/repro/core/b.py": "from multiprocessing import shared_memory\n"
                + ALL_EXPORTS,
                "src/repro/core/c.py": "from concurrent.futures import ProcessPoolExecutor\n"
                + ALL_EXPORTS,
            },
            ["TY102"],
        )
        assert [v.code for v in found] == ["TY102", "TY102", "TY102"]

    def test_silent_in_registered_parallel_module_and_on_threads(self, tmp_path):
        found = lint_tree(
            tmp_path,
            {
                # repro.analysis.parallel is registered in PARALLEL_MODULES.
                "src/repro/analysis/parallel.py": """
                    from concurrent.futures import ProcessPoolExecutor
                    from multiprocessing import shared_memory
                    __all__ = []
                    """,
                # Thread pools do not fork; they are not this rule's business.
                "src/repro/core/t.py": "from concurrent.futures import ThreadPoolExecutor\n"
                + ALL_EXPORTS,
            },
            ["TY102"],
        )
        assert found == []


# --------------------------------------------------------------------- #
# TY103 state writes after pool spawn


class TestTY103:
    def test_fires_on_write_after_spawn(self, tmp_path):
        found = lint_tree(
            tmp_path,
            {
                "src/repro/analysis/parallel.py": """
                    from concurrent.futures import ProcessPoolExecutor

                    _WORKER_STATE = {}

                    def run(tasks):
                        with ProcessPoolExecutor(max_workers=2) as pool:
                            out = list(pool.map(str, tasks))
                        _WORKER_STATE["last"] = out
                        return out
                    __all__ = ["run"]
                    """
            },
            ["TY103"],
        )
        assert [v.code for v in found] == ["TY103"]
        assert "after a pool spawn" in found[0].message

    def test_silent_when_write_precedes_spawn(self, tmp_path):
        found = lint_tree(
            tmp_path,
            {
                "src/repro/analysis/parallel.py": """
                    from concurrent.futures import ProcessPoolExecutor

                    _WORKER_STATE = {}

                    def run(tasks):
                        _WORKER_STATE["pending"] = list(tasks)
                        with ProcessPoolExecutor(max_workers=2) as pool:
                            return list(pool.map(str, tasks))
                    __all__ = ["run"]
                    """
            },
            ["TY103"],
        )
        assert found == []


# --------------------------------------------------------------------- #
# TY111 unsorted set iteration


class TestTY111:
    def test_fires_on_set_loop_comprehension_and_list_call(self, tmp_path):
        found = lint_tree(
            tmp_path,
            {
                "src/repro/core/m.py": """
                    def names(series):
                        pending = {"b", "a"}
                        for name in pending:
                            print(name)
                        squares = [n for n in {1, 2}]
                        return list(set(series)), squares
                    __all__ = ["names"]
                    """
            },
            ["TY111"],
        )
        assert [v.code for v in found] == ["TY111", "TY111", "TY111"]
        assert all(v.severity == "warning" for v in found)

    def test_fires_on_module_level_set_state_iteration(self, tmp_path):
        found = lint_tree(
            tmp_path,
            {
                "src/repro/core/owner.py": "KNOWN = {'x', 'y'}\n__all__ = ['KNOWN']\n",
                "src/repro/core/user.py": """
                    from repro.core.owner import KNOWN

                    def dump():
                        return [k for k in KNOWN]
                    __all__ = ["dump"]
                    """,
            },
            ["TY111"],
        )
        assert [v.code for v in found] == ["TY111"]

    def test_silent_on_sorted_membership_and_order_insensitive_sinks(self, tmp_path):
        found = lint_tree(
            tmp_path,
            {
                "src/repro/core/m.py": """
                    def names(series):
                        pending = {"b", "a"}
                        ordered = sorted(pending)
                        grid = {1, 2, 3}
                        top = sorted(g for g in grid if g > 1)
                        biggest = max(g for g in grid)
                        has = "b" in pending
                        count = len(pending)
                        return ordered, top, biggest, has, count
                    __all__ = ["names"]
                    """
            },
            ["TY111"],
        )
        assert found == []


# --------------------------------------------------------------------- #
# TY112 unstable argsort


class TestTY112:
    def test_fires_without_stable_kind(self, tmp_path):
        found = lint_tree(
            tmp_path,
            {
                "src/repro/core/rank.py": """
                    import numpy as np

                    def order(scores):
                        return np.argsort(scores), scores.argsort(kind="quicksort")
                    __all__ = ["order"]
                    """
            },
            ["TY112"],
        )
        assert [v.code for v in found] == ["TY112", "TY112"]

    def test_silent_with_stable_kind_and_in_tests(self, tmp_path):
        found = lint_tree(
            tmp_path,
            {
                "src/repro/core/rank.py": """
                    import numpy as np

                    def order(scores):
                        return scores.argsort(kind="stable")
                    __all__ = ["order"]
                    """,
                "tests/core/test_rank.py": """
                    import numpy as np

                    def test_order():
                        assert np.argsort([1, 2]) is not None
                    """,
            },
            ["TY112"],
        )
        assert found == []


# --------------------------------------------------------------------- #
# TY113 import-time environment reads


class TestTY113:
    def test_fires_on_top_level_reads(self, tmp_path):
        found = lint_tree(
            tmp_path,
            {
                "src/repro/core/cfg.py": """
                    import os

                    DEBUG = os.environ.get("DEBUG", "")
                    HOME = os.getenv("HOME")
                    __all__ = ["DEBUG", "HOME"]
                    """
            },
            ["TY113"],
        )
        assert [v.code for v in found] == ["TY113", "TY113"]

    def test_silent_inside_functions_and_with_pragma(self, tmp_path):
        found = lint_tree(
            tmp_path,
            {
                "src/repro/core/cfg.py": """
                    import os

                    FROZEN = os.environ.get(  # tycoslint: disable=TY113
                        "REPRO_CHECKS", ""
                    )

                    def debug_enabled():
                        return bool(os.environ.get("DEBUG"))
                    __all__ = ["FROZEN", "debug_enabled"]
                    """
            },
            ["TY113"],
        )
        assert found == []


# --------------------------------------------------------------------- #
# TY114 wall clock in report modules


class TestTY114:
    def test_fires_in_registered_report_module(self, tmp_path):
        found = lint_tree(
            tmp_path,
            {
                "src/repro/experiments/summary.py": """
                    import time
                    from datetime import datetime

                    def build():
                        return {"at": datetime.now(), "t": time.perf_counter()}
                    __all__ = ["build"]
                    """
            },
            ["TY114"],
        )
        assert [v.code for v in found] == ["TY114", "TY114"]

    def test_silent_outside_report_modules(self, tmp_path):
        found = lint_tree(
            tmp_path,
            {
                "src/repro/core/bench.py": """
                    import time

                    def measure():
                        return time.perf_counter()
                    __all__ = ["measure"]
                    """
            },
            ["TY114"],
        )
        assert found == []


# --------------------------------------------------------------------- #
# TY115 numba / backend-internal confinement


class TestTY115:
    def test_fires_on_numba_imports_outside_backends(self, tmp_path):
        found = lint_tree(
            tmp_path,
            {
                "src/repro/core/fast.py": "import numba\n" + ALL_EXPORTS,
                "src/repro/mi/jit.py": "from numba import njit\n" + ALL_EXPORTS,
            },
            ["TY115"],
        )
        assert [v.code for v in found] == ["TY115", "TY115"]
        messages = " ".join(v.message for v in found)
        assert "BACKEND_MODULES" in messages

    def test_fires_on_backend_internal_imports(self, tmp_path):
        found = lint_tree(
            tmp_path,
            {
                "src/repro/core/a.py": "import repro.mi.backends.numba_backend\n"
                + ALL_EXPORTS,
                "src/repro/core/b.py": "from repro.mi.backends._kernels import make_topk_block\n"
                + ALL_EXPORTS,
                "src/repro/core/c.py": "from repro.mi.backends import numba_backend\n"
                + ALL_EXPORTS,
            },
            ["TY115"],
        )
        assert [v.code for v in found] == ["TY115", "TY115", "TY115"]
        messages = " ".join(v.message for v in found)
        assert "dispatch.get_kernels" in messages

    def test_silent_in_registered_backend_modules_and_on_dispatch_use(self, tmp_path):
        found = lint_tree(
            tmp_path,
            {
                # The registered backend modules own the numba import and
                # the kernel internals.
                "src/repro/mi/backends/numba_backend.py": "import numba\n" + ALL_EXPORTS,
                "src/repro/mi/backends/dispatch.py": """
                    from repro.mi.backends import _kernels

                    def get_kernels(backend):
                        return _kernels
                    __all__ = ["get_kernels"]
                    """,
                # Consumers go through the dispatch doorway: sanctioned.
                "src/repro/core/thresholds.py": """
                    from repro.mi.backends.dispatch import get_kernels

                    def scorer():
                        return get_kernels("auto")
                    __all__ = ["scorer"]
                    """,
                # Tests may exercise internals directly.
                "tests/mi/test_backends.py": "from numba import njit\n",
            },
            ["TY115"],
        )
        assert found == []


# --------------------------------------------------------------------- #
# TY116 mmap / store-file confinement


class TestTY116:
    def test_fires_on_mmap_imports_outside_store(self, tmp_path):
        found = lint_tree(
            tmp_path,
            {
                "src/repro/core/maps.py": "import mmap\n" + ALL_EXPORTS,
                "src/repro/analysis/sneaky.py": "from mmap import ACCESS_READ\n"
                + ALL_EXPORTS,
            },
            ["TY116"],
        )
        assert [v.code for v in found] == ["TY116", "TY116"]
        messages = " ".join(v.message for v in found)
        assert "STORE_MODULES" in messages

    def test_fires_on_memmap_call_and_store_filenames(self, tmp_path):
        found = lint_tree(
            tmp_path,
            {
                "src/repro/analysis/reader.py": """
                    import numpy as np

                    def attach(path):
                        return np.memmap(path, dtype="float64", mode="r")
                    __all__ = ["attach"]
                    """,
                "src/repro/core/peek.py": """
                    def manifest_path(directory):
                        return directory / "manifest.json"
                    __all__ = ["manifest_path"]
                    """,
                "src/repro/core/raw.py": """
                    DATA = "series.bin"
                    __all__ = ["DATA"]
                    """,
            },
            ["TY116"],
        )
        assert [v.code for v in found] == ["TY116", "TY116", "TY116"]
        messages = " ".join(v.message for v in found)
        assert "SeriesStore" in messages

    def test_silent_in_store_module_and_tests(self, tmp_path):
        found = lint_tree(
            tmp_path,
            {
                # The registered store module owns the map and the names.
                "src/repro/analysis/store.py": """
                    import numpy as np

                    MANIFEST_FILENAME = "manifest.json"
                    DATA_FILENAME = "series.bin"

                    def attach(path):
                        return np.memmap(path, dtype="float64", mode="r")
                    __all__ = ["MANIFEST_FILENAME", "DATA_FILENAME", "attach"]
                    """,
                # Consumers go through the store API: sanctioned.
                "src/repro/analysis/cascade.py": """
                    from repro.analysis.store import attach
                    __all__ = ["attach"]
                    """,
                # Tests may poke the files directly.
                "tests/analysis/test_store.py": """
                    import mmap

                    NAME = "manifest.json"
                    """,
            },
            ["TY116"],
        )
        assert found == []


# --------------------------------------------------------------------- #
# TY117 plan construction confinement


class TestTY117:
    def test_fires_on_stage_and_plan_constructors_outside_planner(self, tmp_path):
        found = lint_tree(
            tmp_path,
            {
                "src/repro/analysis/adhoc.py": """
                    from repro.analysis.planner import ScanStage, SearchPlan, SegmentStage

                    def sneaky_plan():
                        return SearchPlan(stages=(SegmentStage(4), ScanStage()))
                    __all__ = ["sneaky_plan"]
                    """,
            },
            ["TY117"],
        )
        assert [v.code for v in found] == ["TY117", "TY117", "TY117"]
        messages = " ".join(v.message for v in found)
        assert "SearchPlan" in messages and "SegmentStage" in messages
        assert "plan_from_config" in messages

    def test_fires_on_attribute_style_construction(self, tmp_path):
        found = lint_tree(
            tmp_path,
            {
                "src/repro/core/dispatch.py": """
                    from repro.analysis import planner

                    def build():
                        return planner.CoarsenStage(8)
                    __all__ = ["build"]
                    """,
            },
            ["TY117"],
        )
        assert [v.code for v in found] == ["TY117"]
        assert "CoarsenStage" in found[0].message

    def test_silent_in_planner_module_builders_and_tests(self, tmp_path):
        found = lint_tree(
            tmp_path,
            {
                # The registered planner module owns the constructors.
                "src/repro/analysis/planner.py": """
                    class SegmentStage:
                        def __init__(self, n_segments):
                            self.n_segments = n_segments

                    class ScanStage:
                        pass

                    class SearchPlan:
                        def __init__(self, stages):
                            self.stages = stages

                    def segmented_plan(n_segments):
                        return SearchPlan(stages=(SegmentStage(n_segments), ScanStage()))
                    __all__ = ["SearchPlan", "SegmentStage", "ScanStage", "segmented_plan"]
                    """,
                # Consumers go through the builder functions: sanctioned.
                "src/repro/analysis/segmented.py": """
                    from repro.analysis.planner import segmented_plan

                    def search(n_segments):
                        return segmented_plan(n_segments)
                    __all__ = ["search"]
                    """,
                # Tests may construct stages directly.
                "tests/analysis/test_planner.py": """
                    from repro.analysis.planner import ScanStage, SearchPlan

                    def test_plan():
                        assert SearchPlan(stages=(ScanStage(),)) is not None
                    """,
            },
            ["TY117"],
        )
        assert found == []


# --------------------------------------------------------------------- #
# TY121 bit-exactness gate coverage


class TestTY121:
    def test_fires_when_no_test_asserts_equality(self, tmp_path):
        found = lint_tree(
            tmp_path,
            {
                # repro.mi.digamma is registered in FAST_PATH_GATES.
                "src/repro/mi/digamma.py": "def table():\n    return 1\n__all__ = ['table']\n",
                # A test exists, but it never imports the fast path.
                "tests/mi/test_other.py": """
                    def test_other():
                        assert 1 == 1
                    """,
            },
            ["TY121"],
        )
        assert [v.code for v in found] == ["TY121"]
        assert "repro.mi.digamma" in found[0].message

    def test_importing_test_without_equality_assert_does_not_count(self, tmp_path):
        found = lint_tree(
            tmp_path,
            {
                "src/repro/mi/digamma.py": "def table():\n    return 1\n__all__ = ['table']\n",
                "tests/mi/test_digamma.py": """
                    from repro.mi.digamma import table

                    def test_smoke():
                        assert table() is not None
                    """,
            },
            ["TY121"],
        )
        assert [v.code for v in found] == ["TY121"]

    def test_silent_with_equality_gate(self, tmp_path):
        found = lint_tree(
            tmp_path,
            {
                "src/repro/mi/digamma.py": "def table():\n    return 1\n__all__ = ['table']\n",
                "tests/mi/test_digamma.py": """
                    from repro.mi.digamma import table

                    def test_matches_reference():
                        assert table() == 1
                    """,
            },
            ["TY121"],
        )
        assert found == []

    def test_skipped_entirely_without_tests_in_scope(self, tmp_path):
        found = lint_tree(
            tmp_path,
            {"src/repro/mi/digamma.py": "def table():\n    return 1\n__all__ = ['table']\n"},
            ["TY121"],
        )
        assert found == []

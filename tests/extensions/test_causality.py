"""Tests for the lead-lag direction analysis."""

import numpy as np

from repro.core.config import TycosConfig
from repro.core.results import WindowResult
from repro.core.tycos import TycosResult, tycos_lmn
from repro.core.window import TimeDelayWindow
from repro.extensions.causality import (
    UNDECIDED,
    X_LEADS,
    Y_LEADS,
    analyze_directions,
)


def _driven_pair(rng, n=600, lag=4):
    """y is driven by x's past: x clearly leads."""
    x = rng.normal(size=n)
    y = np.zeros(n)
    for t in range(lag, n):
        y[t] = 0.9 * x[t - lag] + 0.3 * rng.normal()
    return x, y


class TestAnalyzeDirections:
    def test_x_leading_detected(self, rng):
        x, y = _driven_pair(rng)
        cfg = TycosConfig(
            sigma=0.2, s_min=48, s_max=200, td_max=8, init_delay_step=1, seed=0
        )
        result = tycos_lmn(cfg).search(x, y)
        assert result.windows, "search must find the coupling first"
        report = analyze_directions(x, y, result)
        assert report.consensus() == X_LEADS

    def test_y_leading_detected(self, rng):
        x, y = _driven_pair(rng)
        # Swap roles: now the 'x' series is the driven one.
        cfg = TycosConfig(
            sigma=0.2, s_min=48, s_max=200, td_max=8, init_delay_step=1, seed=0
        )
        result = tycos_lmn(cfg).search(y, x)
        report = analyze_directions(y, x, result)
        assert report.consensus() == Y_LEADS

    def test_small_windows_undecided(self, rng):
        x = rng.normal(size=200)
        y = rng.normal(size=200)
        tiny = TycosResult(
            windows=[WindowResult(window=TimeDelayWindow(10, 25, delay=0), mi=1.0, nmi=0.9)]
        )
        report = analyze_directions(x, y, tiny, min_window=30)
        assert report.directions[0].verdict == UNDECIDED

    def test_empty_result(self, rng):
        x = rng.normal(size=100)
        y = rng.normal(size=100)
        report = analyze_directions(x, y, TycosResult())
        assert report.directions == []
        assert report.consensus() == UNDECIDED

    def test_report_rendering(self, rng):
        x, y = _driven_pair(rng)
        cfg = TycosConfig(
            sigma=0.2, s_min=48, s_max=200, td_max=8, init_delay_step=1, seed=0
        )
        result = tycos_lmn(cfg).search(x, y)
        text = analyze_directions(x, y, result).to_text()
        assert "consensus" in text
        assert "not proof of causation" in text

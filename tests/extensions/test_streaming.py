"""Tests for the streaming correlation monitor."""

import pytest

from repro.extensions.streaming import StreamingMonitor
from repro.mi.ksg import ksg_mi


def _episode_feed(rng, n=600, start=250, length=150, delay=5):
    x = rng.uniform(0, 1, n)
    y = rng.uniform(0, 1, n)
    seg = rng.uniform(0, 1, length)
    x[start : start + length] = seg
    y[start + delay : start + delay + length] = seg + 0.01 * rng.normal(size=length)
    return x, y


class TestStreamingDetection:
    def test_detects_episode_on_right_lane(self, rng):
        x, y = _episode_feed(rng, delay=5)
        monitor = StreamingMonitor(scales=(48,), delays=(0, 5), sigma=0.5)
        for xv, yv in zip(x, y):
            monitor.push(xv, yv)
        assert monitor.events
        best = max(monitor.events, key=lambda e: e.nmi)
        assert best.delay == 5
        # The event fires once the window fills inside the episode.
        assert 250 <= best.time <= 420

    def test_hysteresis_yields_one_event_per_episode(self, rng):
        x, y = _episode_feed(rng, delay=0)
        monitor = StreamingMonitor(scales=(48,), delays=(0,), sigma=0.5)
        for xv, yv in zip(x, y):
            monitor.push(xv, yv)
        assert len(monitor.events) == 1

    def test_silent_on_noise(self, rng):
        monitor = StreamingMonitor(scales=(48,), delays=(0, 3), sigma=0.6)
        for _ in range(500):
            monitor.push(rng.uniform(), rng.uniform())
        assert monitor.events == []

    def test_reactivates_on_second_episode(self, rng):
        n = 1100
        x = rng.uniform(0, 1, n)
        y = rng.uniform(0, 1, n)
        for start in (200, 700):
            seg = rng.uniform(0, 1, 150)
            x[start : start + 150] = seg
            y[start : start + 150] = seg + 0.01 * rng.normal(size=150)
        monitor = StreamingMonitor(scales=(48,), delays=(0,), sigma=0.5)
        for xv, yv in zip(x, y):
            monitor.push(xv, yv)
        times = [e.time for e in monitor.events]
        assert len(times) == 2
        assert times[0] < 450 < times[1]

    def test_engine_matches_batch_on_trailing_window(self, rng):
        # The lane's engine state must equal a batch KSG on the trailing
        # window at every step (spot-checked).
        x = rng.normal(size=200)
        y = 0.7 * x + 0.7 * rng.normal(size=200)
        monitor = StreamingMonitor(scales=(32,), delays=(0,), sigma=5.0)  # never fires
        for t, (xv, yv) in enumerate(zip(x, y)):
            monitor.push(xv, yv)
            if t in (50, 120, 199):
                lane = monitor._lanes[0]
                expected = ksg_mi(x[t - 31 : t + 1], y[t - 31 : t + 1])
                assert lane.engine.mi() == pytest.approx(expected, abs=1e-12)


class TestStreamingValidation:
    def test_rejects_empty_scales(self):
        with pytest.raises(ValueError, match="at least one scale"):
            StreamingMonitor(scales=())

    def test_rejects_tiny_scale(self):
        with pytest.raises(ValueError, match="every scale"):
            StreamingMonitor(scales=(4,), k=4)

    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError, match="delays"):
            StreamingMonitor(scales=(32,), delays=(-1,))

    def test_rejects_bad_sigma(self):
        with pytest.raises(ValueError, match="sigma"):
            StreamingMonitor(scales=(32,), sigma=0.0)

    def test_time_tracking(self, rng):
        monitor = StreamingMonitor(scales=(8,), delays=(0,), sigma=5.0, k=4)
        assert monitor.time == -1
        monitor.push(0.1, 0.2)
        assert monitor.time == 0

"""Tests for the spatial correlation extension."""

import pytest

from repro.core.config import TycosConfig
from repro.data.spatial import Station, simulate_moving_front
from repro.extensions.spatial import estimate_propagation, spatial_scan


STATIONS = {"west": (0.0, 0.0), "mid": (10.0, 0.0), "east": (20.0, 0.0), "north": (10.0, 10.0)}


def _config(**kwargs):
    defaults = dict(
        sigma=0.3,
        s_min=24,
        s_max=200,
        td_max=50,
        init_delay_step=4,
        significance_permutations=10,
        seed=0,
    )
    defaults.update(kwargs)
    return TycosConfig(**defaults)


@pytest.fixture(scope="module")
def front_data():
    return simulate_moving_front(STATIONS, n=800, events=3, velocity=(0.5, 0.0), seed=0)


class TestSimulator:
    def test_expected_delays_follow_geometry(self, front_data):
        # Moving east at 0.5/sample: east sees events 40 samples after west.
        assert front_data.expected_delay("west", "east") == pytest.approx(40.0)
        assert front_data.expected_delay("west", "mid") == pytest.approx(20.0)
        # Motion is purely eastward: north/mid share the arrival time.
        assert front_data.expected_delay("mid", "north") == pytest.approx(0.0)

    def test_front_times_match_expected_delays(self, front_data):
        for ta, tb in zip(front_data.front_times["west"], front_data.front_times["east"]):
            assert tb - ta == pytest.approx(40, abs=1)

    def test_station_distance(self):
        assert Station("a", 0, 0).distance_to(Station("b", 3, 4)) == pytest.approx(5.0)

    def test_rejects_empty_network(self):
        with pytest.raises(ValueError, match="at least one station"):
            simulate_moving_front({}, n=100)

    def test_rejects_too_short_series(self):
        with pytest.raises(ValueError, match="too short"):
            simulate_moving_front(STATIONS, n=60, velocity=(0.2, 0.0), seed=0)


class TestSpatialScan:
    def test_all_pairs_correlated(self, front_data):
        report = spatial_scan(front_data, _config())
        assert len(report.correlated()) == 6  # C(4,2), all share the front

    def test_distance_pruning(self, front_data):
        report = spatial_scan(front_data, _config(), max_distance=12.0)
        assert ("east", "west") in report.pruned or ("west", "east") in report.pruned
        searched = {(f.source, f.target) for f in report.findings}
        assert all(
            front_data.stations[a].distance_to(front_data.stations[b]) <= 12.0
            for a, b in searched
        )

    def test_delays_track_geometry(self, front_data):
        report = spatial_scan(front_data, _config())
        for f in report.correlated():
            expected = front_data.expected_delay(f.source, f.target)
            assert f.median_delay == pytest.approx(expected, abs=8), (f.source, f.target)

    def test_report_rendering(self, front_data):
        text = spatial_scan(front_data, _config(), max_distance=12.0).to_text()
        assert "Spatial correlation scan" in text
        assert "beyond the distance bound" in text


class TestPropagationEstimate:
    def test_recovers_velocity(self, front_data):
        report = spatial_scan(front_data, _config())
        velocity = estimate_propagation(report)
        assert velocity is not None
        assert velocity[0] == pytest.approx(0.5, abs=0.15)
        assert velocity[1] == pytest.approx(0.0, abs=0.15)

    def test_insufficient_pairs(self):
        from repro.extensions.spatial import SpatialFinding, SpatialReport

        report = SpatialReport(
            findings=[
                SpatialFinding("a", "b", 10.0, (10.0, 0.0), windows=1, median_delay=20.0)
            ]
        )
        assert estimate_propagation(report) is None

    def test_collinear_pairs_rejected(self):
        from repro.extensions.spatial import SpatialFinding, SpatialReport

        report = SpatialReport(
            findings=[
                SpatialFinding("a", "b", 10.0, (10.0, 0.0), windows=1, median_delay=20.0),
                SpatialFinding("b", "c", 10.0, (20.0, 0.0), windows=1, median_delay=40.0),
            ]
        )
        assert estimate_propagation(report) is None

"""Tests for recurring-pattern mining."""

import pytest

from repro.core.results import WindowResult
from repro.core.window import TimeDelayWindow
from repro.extensions.recurrence import mine_recurrence


def _result(start, size, delay=3, nmi=0.7):
    return WindowResult(
        window=TimeDelayWindow(start, start + size - 1, delay=delay), mi=nmi, nmi=nmi
    )


class TestMineRecurrence:
    def test_daily_morning_band_found(self):
        # "Every morning": windows at phase ~360 of a 1440-sample day.
        period = 1440
        windows = [_result(day * period + 360 + jitter, 40) for day, jitter in
                   [(0, 0), (1, 10), (2, -5), (3, 15)]]
        report = mine_recurrence(windows, period=period)
        assert len(report.patterns) == 1
        band = report.patterns[0]
        assert band.support == 4
        assert 350 <= band.phase_start <= 360
        assert band.median_delay == pytest.approx(3)

    def test_one_off_window_below_support(self):
        period = 1440
        windows = [_result(360, 40), _result(2 * period + 900, 40)]
        report = mine_recurrence(windows, period=period, min_support=2)
        assert report.patterns == []

    def test_two_distinct_bands(self):
        period = 1000
        windows = []
        for day in range(3):
            windows.append(_result(day * period + 100, 30, delay=2))
            windows.append(_result(day * period + 600, 30, delay=8))
        report = mine_recurrence(windows, period=period)
        assert len(report.patterns) == 2
        phases = sorted(p.phase_start for p in report.patterns)
        assert phases[0] == 100 and phases[1] == 600
        delays = {p.median_delay for p in report.patterns}
        assert delays == {2.0, 8.0}

    def test_gap_tolerance_merges_close_windows(self):
        period = 1000
        windows = [
            _result(0 * period + 100, 30),
            _result(1 * period + 140, 30),  # 10 past the previous band end
        ]
        merged = mine_recurrence(windows, period=period, gap_tolerance=20)
        split = mine_recurrence(windows, period=period, gap_tolerance=5, min_support=1)
        assert len(merged.patterns) == 1
        assert len(split.patterns) == 2

    def test_empty_input(self):
        report = mine_recurrence([], period=100)
        assert report.patterns == []

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError, match="period"):
            mine_recurrence([], period=1)
        with pytest.raises(ValueError, match="min_support"):
            mine_recurrence([], period=10, min_support=0)

    def test_rendering_with_clock(self):
        period = 1440
        windows = [_result(day * period + 360, 40) for day in range(3)]
        text = mine_recurrence(windows, period=period).to_text(samples_per_hour=60)
        assert "h-" in text  # clock annotation present
        assert "support" in text

"""Tests for the PCC baseline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.pearson import pcc, pcc_scan, sliding_pcc, sliding_pcc_band


class TestPcc:
    def test_perfect_positive(self):
        x = np.arange(10.0)
        assert pcc(x, 2 * x + 1) == pytest.approx(1.0)

    def test_perfect_negative(self):
        x = np.arange(10.0)
        assert pcc(x, -x) == pytest.approx(-1.0)

    def test_independent_near_zero(self, independent_pair):
        x, y = independent_pair
        assert abs(pcc(x, y)) < 0.1

    def test_blind_to_symmetric_nonlinear(self, rng):
        # The classic failure: y = x^2 on symmetric x has r ~ 0.
        x = rng.uniform(-1, 1, 2000)
        assert abs(pcc(x, x * x)) < 0.1

    def test_degenerate_input_returns_zero(self):
        assert pcc(np.ones(10), np.arange(10.0)) == 0.0

    def test_rejects_short_input(self):
        with pytest.raises(ValueError, match="at least 2"):
            pcc(np.array([1.0]), np.array([1.0]))

    @given(st.integers(0, 100))
    @settings(max_examples=25, deadline=None)
    def test_property_bounded(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=50)
        y = rng.normal(size=50)
        assert -1.0 <= pcc(x, y) <= 1.0


class TestSlidingPcc:
    def test_matches_pointwise_pcc(self, rng):
        x = rng.normal(size=100)
        y = rng.normal(size=100)
        coeffs = sliding_pcc(x, y, window=20)
        for s in range(0, 81, 13):
            assert coeffs[s] == pytest.approx(pcc(x[s : s + 20], y[s : s + 20]), abs=1e-9)

    def test_delay_alignment(self, rng):
        x = rng.normal(size=200)
        y = np.roll(x, 7)  # y[i] = x[i - 7] -> x leads y by 7
        coeffs = sliding_pcc(x, y, window=30, delay=7)
        assert np.abs(coeffs[:150]).max() == pytest.approx(1.0, abs=1e-9)

    def test_negative_delay(self, rng):
        x = rng.normal(size=200)
        y = np.roll(x, -5)
        coeffs = sliding_pcc(x, y, window=30, delay=-5)
        assert np.abs(coeffs[10:150]).max() == pytest.approx(1.0, abs=1e-9)

    def test_window_too_large_returns_empty(self, rng):
        assert sliding_pcc(rng.normal(size=10), rng.normal(size=10), window=20).size == 0

    def test_rejects_window_below_two(self, rng):
        with pytest.raises(ValueError, match="window"):
            sliding_pcc(rng.normal(size=10), rng.normal(size=10), window=1)


class TestSlidingPccBand:
    """The batched band kernel is an amortization, never an approximation:
    every row must be bit-identical to its per-delay reference."""

    def test_bit_exact_vs_per_delay_path(self, rng):
        x = np.cumsum(rng.normal(size=300))
        y = np.roll(x, 6) + rng.normal(scale=0.1, size=300)
        delays = list(range(-9, 10))
        band = sliding_pcc_band(x, y, window=40, delays=delays)
        assert len(band) == len(delays)
        for delay, row in zip(delays, band):
            reference = sliding_pcc(x, y, window=40, delay=delay)
            assert row.shape == reference.shape
            assert np.array_equal(row, reference)

    def test_bit_exact_with_degenerate_stretches(self, rng):
        # Flat (zero-variance) stretches exercise the denom==0 branch.
        x = rng.normal(size=200)
        x[40:120] = 2.5
        y = rng.normal(size=200)
        y[60:100] = -1.0
        delays = [-5, -1, 0, 3, 7]
        for delay, row in zip(delays, sliding_pcc_band(x, y, window=25, delays=delays)):
            assert np.array_equal(row, sliding_pcc(x, y, window=25, delay=delay))

    def test_mixed_fit_delays(self, rng):
        # Delays large enough that some rows fit nothing come back empty,
        # exactly like their per-delay reference.
        x = rng.normal(size=30)
        y = rng.normal(size=30)
        delays = [0, 12, 25, -25, 29]
        band = sliding_pcc_band(x, y, window=10, delays=delays)
        for delay, row in zip(delays, band):
            reference = sliding_pcc(x, y, window=10, delay=delay)
            assert row.shape == reference.shape
            assert np.array_equal(row, reference)

    def test_empty_delay_list(self, rng):
        assert sliding_pcc_band(rng.normal(size=50), rng.normal(size=50), 10, []) == []

    def test_rejects_window_below_two(self, rng):
        with pytest.raises(ValueError, match="window"):
            sliding_pcc_band(rng.normal(size=10), rng.normal(size=10), 1, [0])

    @given(st.integers(0, 60))
    @settings(max_examples=20, deadline=None)
    def test_property_bit_exact(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(12, 80))
        window = int(rng.integers(2, 14))
        x = rng.normal(size=n)
        y = rng.normal(size=n)
        delays = sorted(int(d) for d in rng.integers(-n, n, size=5))
        for delay, row in zip(delays, sliding_pcc_band(x, y, window, delays)):
            assert np.array_equal(row, sliding_pcc(x, y, window, delay))


class TestPccScan:
    def test_locates_delayed_linear_segment(self, rng):
        n = 400
        x = rng.normal(size=n)
        y = rng.normal(size=n)
        seg = rng.normal(size=80)
        x[100:180] = seg
        y[120:200] = 3 * seg + 0.05 * rng.normal(size=80)
        hits = pcc_scan(x, y, window=40, td_max=25, threshold=0.9)
        assert hits
        best = max(hits, key=lambda h: abs(h.coefficient))
        assert best.delay == 20
        assert 90 <= best.start <= 150

    def test_no_hits_on_noise(self, independent_pair):
        x, y = independent_pair
        assert pcc_scan(x, y, window=50, td_max=3, threshold=0.95) == []

    def test_picked_windows_non_overlapping(self, rng):
        x = np.sin(np.linspace(0, 20, 300))
        y = np.sin(np.linspace(0, 20, 300))
        hits = pcc_scan(x, y, window=30, td_max=0, threshold=0.8)
        for i, a in enumerate(hits):
            for b in hits[i + 1 :]:
                assert a.end < b.start or b.end < a.start

"""Tests for the AMIC top-down baseline."""

import numpy as np

from repro.baselines.amic import amic_search
from repro.core.config import TycosConfig
from repro.core.window import TimeDelayWindow
from repro.experiments.similarity import detects


def _config(**kwargs):
    defaults = dict(sigma=0.35, s_min=16, s_max=128, td_max=0, significance_permutations=0)
    defaults.update(kwargs)
    return TycosConfig(**defaults)


def _pair_with_relation(rng, n=512, start=128, m=128, delay=0):
    x = rng.uniform(0, 1, n)
    y = rng.uniform(0, 1, n)
    seg = rng.uniform(0, 1, m)
    x[start : start + m] = seg
    y[start + delay : start + delay + m] = np.cos(5 * seg) / 2 + 0.5 + 0.02 * rng.normal(size=m)
    return x, y


class TestAmic:
    def test_finds_aligned_relation(self, rng):
        x, y = _pair_with_relation(rng)
        result = amic_search(x, y, _config())
        truth = TimeDelayWindow(128, 255)
        assert detects([r.window for r in result.windows], truth)

    def test_all_windows_zero_delay(self, rng):
        x, y = _pair_with_relation(rng)
        result = amic_search(x, y, _config())
        assert result.windows
        assert all(r.window.delay == 0 for r in result.windows)

    def test_blind_to_delayed_relation(self, rng):
        # The paper's central AMIC limitation: shift the echo and the
        # zero-delay windows see nothing.
        x, y = _pair_with_relation(rng, delay=140, n=640)
        result = amic_search(x, y, _config(sigma=0.3))
        truth = TimeDelayWindow(128, 255, delay=140)
        assert not detects([r.window for r in result.windows], truth, delay_tol=10)

    def test_silent_on_noise(self, rng):
        x = rng.uniform(0, 1, 400)
        y = rng.uniform(0, 1, 400)
        result = amic_search(x, y, _config(sigma=0.6))
        assert len(result.windows) == 0

    def test_respects_size_bounds(self, rng):
        x, y = _pair_with_relation(rng)
        cfg = _config()
        result = amic_search(x, y, cfg)
        for r in result.windows:
            assert cfg.s_min <= r.window.size <= cfg.s_max

    def test_stats_recorded(self, rng):
        x, y = _pair_with_relation(rng)
        result = amic_search(x, y, _config())
        assert result.stats.windows_evaluated > 0
        assert result.stats.runtime_seconds > 0

    def test_multiscale_descends_to_smaller_windows(self, rng):
        # Two short relations far apart force the recursion below the top
        # levels.
        n = 512
        x = rng.uniform(0, 1, n)
        y = rng.uniform(0, 1, n)
        for start in (64, 384):
            seg = rng.uniform(0, 1, 64)
            x[start : start + 64] = seg
            y[start : start + 64] = seg + 0.01 * rng.normal(size=64)
        result = amic_search(x, y, _config())
        found = [r.window for r in result.windows]
        assert detects(found, TimeDelayWindow(64, 127))
        assert detects(found, TimeDelayWindow(384, 447))

"""Tests for the STOMP matrix profile baseline."""

import numpy as np
import pytest

from repro.baselines.mass import mass_distance_profile
from repro.baselines.matrix_profile import matrix_profile_ab, matrix_profile_scan


class TestStompCorrectness:
    def test_equals_repeated_mass(self, rng):
        # STOMP's O(1) update must reproduce a fresh MASS pass per row.
        a = rng.normal(size=120)
        b = rng.normal(size=150)
        m = 20
        profile, index = matrix_profile_ab(a, b, m)
        for i in range(0, 101, 10):
            reference = mass_distance_profile(a[i : i + m], b)
            assert profile[i] == pytest.approx(reference.min(), abs=1e-6)
            assert reference[index[i]] == pytest.approx(reference.min(), abs=1e-6)

    def test_planted_cross_match(self, rng):
        a = rng.normal(size=200)
        b = rng.normal(size=200)
        shape = rng.normal(size=30)
        a[40:70] = shape
        b[120:150] = 2.0 * shape + 1.0  # affine copy at an offset
        profile, index = matrix_profile_ab(a, b, 30)
        assert profile[40] == pytest.approx(0.0, abs=1e-5)
        assert index[40] == 120

    def test_rejects_small_m(self, rng):
        with pytest.raises(ValueError, match="m must be"):
            matrix_profile_ab(rng.normal(size=50), rng.normal(size=50), 1)

    def test_rejects_short_series(self, rng):
        with pytest.raises(ValueError, match="at least m"):
            matrix_profile_ab(rng.normal(size=5), rng.normal(size=50), 10)

    def test_handles_flat_regions(self, rng):
        a = np.concatenate([np.zeros(40), rng.normal(size=60)])
        b = np.concatenate([rng.normal(size=60), np.zeros(40)])
        profile, _ = matrix_profile_ab(a, b, 15)
        assert np.all(np.isfinite(profile))


class TestScan:
    def test_detects_delayed_linear_relation(self, rng):
        # The Table-1 claim: MatrixProfile sees linear relations even when
        # the echo is shifted, because the join searches all offsets.
        n = 300
        a = rng.normal(size=n)
        b = rng.normal(size=n)
        seg = rng.normal(size=60)
        a[50:110] = seg
        b[130:190] = 3.0 * seg + 0.005 * rng.normal(size=60)
        matches = matrix_profile_scan(a, b, lengths=(30,), threshold_factor=0.15)
        assert any(50 <= m.start_a <= 80 and abs(m.delay - 80) <= 5 for m in matches)

    def test_misses_nonlinear_relation(self, rng):
        # ... and the complementary claim: a quadratic echo has a different
        # shape, so no match survives a tight threshold.
        n = 300
        a = rng.normal(size=n)
        b = rng.normal(size=n)
        seg = rng.uniform(-2, 2, 60)
        a[50:110] = seg
        b[50:110] = seg**2
        matches = matrix_profile_scan(a, b, lengths=(30,), threshold_factor=0.15)
        assert not any(40 <= m.start_a <= 110 for m in matches)

    def test_multiple_lengths_scanned(self, rng):
        a = rng.normal(size=200)
        b = a + 0.001 * rng.normal(size=200)
        matches = matrix_profile_scan(a, b, lengths=(16, 32), threshold_factor=0.2)
        assert {m.length for m in matches} == {16, 32}

    def test_matches_sorted_by_relative_distance(self, rng):
        a = rng.normal(size=200)
        b = a + 0.01 * rng.normal(size=200)
        matches = matrix_profile_scan(a, b, lengths=(16, 32), threshold_factor=0.3)
        rel = [m.distance / np.sqrt(2 * m.length) for m in matches]
        assert rel == sorted(rel)

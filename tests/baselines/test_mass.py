"""Tests for the MASS subsequence search baseline."""

import numpy as np
import pytest

from repro.baselines.mass import mass_distance_profile, mass_top_matches


def _znorm_dist(q, s):
    q = (q - q.mean()) / q.std()
    s = (s - s.mean()) / s.std()
    return np.sqrt(np.sum((q - s) ** 2))


class TestDistanceProfile:
    def test_matches_naive_computation(self, rng):
        series = rng.normal(size=200)
        query = rng.normal(size=25)
        profile = mass_distance_profile(query, series)
        assert profile.size == 176
        for pos in (0, 50, 175):
            expected = _znorm_dist(query, series[pos : pos + 25])
            assert profile[pos] == pytest.approx(expected, abs=1e-6)

    def test_exact_match_is_zero(self, rng):
        series = rng.normal(size=300)
        query = series[120:160].copy()
        profile = mass_distance_profile(query, series)
        assert profile[120] == pytest.approx(0.0, abs=1e-5)
        assert np.argmin(profile) == 120

    def test_affine_invariance(self, rng):
        # z-normalization absorbs scale and offset: a scaled copy matches.
        series = rng.normal(size=300)
        query = 5.0 * series[80:120] - 3.0
        profile = mass_distance_profile(query, series)
        assert profile[80] == pytest.approx(0.0, abs=1e-5)

    def test_flat_query_handled(self):
        profile = mass_distance_profile(np.ones(10), np.arange(50.0))
        np.testing.assert_allclose(profile, np.sqrt(20.0))

    def test_flat_subsequence_handled(self, rng):
        series = np.concatenate([np.ones(30), rng.normal(size=50)])
        profile = mass_distance_profile(rng.normal(size=10), series)
        assert np.all(np.isfinite(profile))

    def test_rejects_query_longer_than_series(self, rng):
        with pytest.raises(ValueError, match="at least as long"):
            mass_distance_profile(rng.normal(size=20), rng.normal(size=10))

    def test_rejects_tiny_query(self, rng):
        with pytest.raises(ValueError, match="at least 2"):
            mass_distance_profile(np.array([1.0]), rng.normal(size=10))


class TestTopMatches:
    def test_returns_requested_count(self, rng):
        series = rng.normal(size=400)
        matches = mass_top_matches(rng.normal(size=30), series, top=3)
        assert len(matches) == 3
        distances = [m.distance for m in matches]
        assert distances == sorted(distances)

    def test_exclusion_zone_enforced(self, rng):
        series = rng.normal(size=400)
        query = series[100:140].copy()
        matches = mass_top_matches(query, series, top=2)
        assert abs(matches[0].position - matches[1].position) >= 20

    def test_finds_repeated_motif(self, rng):
        motif = rng.normal(size=30)
        series = rng.normal(size=300)
        series[50:80] = motif
        series[200:230] = motif + 0.01 * rng.normal(size=30)
        matches = mass_top_matches(motif, series, top=2)
        positions = sorted(m.position for m in matches)
        assert positions == [50, 200]

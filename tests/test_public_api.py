"""Tests for the package's public surface."""

import numpy as np

import repro


class TestExports:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_headline_api(self):
        # The four names a reader of the README will try first.
        assert callable(repro.Tycos)
        assert callable(repro.TycosConfig)
        assert callable(repro.ksg_mi)
        assert callable(repro.normalized_mi)


class TestReadmeSnippet:
    def test_readme_example_works(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(size=600)
        y = rng.uniform(size=600)
        driver = rng.uniform(size=100)
        x[300:400] = driver
        y[310:410] = np.sin(6 * driver) / 2 + 0.5

        config = repro.TycosConfig(
            sigma=0.4, s_min=20, s_max=150, td_max=15,
            init_delay_step=1, significance_permutations=10,
        )
        result = repro.Tycos(config).search(x, y)
        assert any(
            280 <= r.window.start <= 400 and r.window.delay == 10 for r in result.windows
        )


class TestEdgeCases:
    def test_constant_series_with_jitter(self):
        # Zero-variance input: jitter uses scale 1.0 fallback, search runs.
        x = np.ones(120)
        y = np.ones(120)
        pair = repro.PairView(x, y, jitter=1e-6, seed=0)
        assert np.std(pair.x) > 0

    def test_raw_mi_mode(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(size=300)
        y = rng.uniform(size=300)
        seg = rng.uniform(size=80)
        x[100:180] = seg
        y[100:180] = seg + 0.01 * rng.normal(size=80)
        config = repro.TycosConfig(
            sigma=1.0,  # in nats now
            s_min=20,
            s_max=120,
            td_max=2,
            use_normalized=False,
            seed=0,
        )
        result = repro.Tycos(config).search(x, y)
        assert result.windows
        assert all(r.mi >= 1.0 for r in result.windows)

    def test_series_shorter_than_s_min(self):
        config = repro.TycosConfig(sigma=0.3, s_min=50, s_max=60, td_max=2)
        rng = np.random.default_rng(0)
        result = repro.Tycos(config).search(rng.normal(size=30), rng.normal(size=30))
        assert result.windows == []

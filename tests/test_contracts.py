"""Tests for the runtime contract layer (``repro.contracts``)."""

import numpy as np
import pytest

from repro import contracts
from repro.contracts import (
    ContractViolation,
    check_mi_finite,
    check_nmi_range,
    check_series_shape,
    check_window_feasible,
    checks_enabled,
    override_checks,
)
from repro.core.config import TycosConfig
from repro.core.thresholds import BatchScorer, IncrementalScorer
from repro.core.tycos import Tycos
from repro.core.window import PairView, TimeDelayWindow


class TestToggle:
    def test_disabled_by_default(self, monkeypatch):
        # The test runner may itself export REPRO_CHECKS; neutralize the
        # cached env value and check the override-free default.
        monkeypatch.setattr(contracts, "_ENV_ENABLED", False)
        assert not checks_enabled()

    def test_override_wins_over_env(self, monkeypatch):
        monkeypatch.setattr(contracts, "_ENV_ENABLED", False)
        with override_checks(True):
            assert checks_enabled()
        assert not checks_enabled()

    def test_override_restores_on_exit(self):
        before = checks_enabled()
        with override_checks(not before):
            assert checks_enabled() is (not before)
        assert checks_enabled() is before

    def test_override_nests(self):
        with override_checks(True):
            with override_checks(False):
                assert not checks_enabled()
            assert checks_enabled()

    def test_env_spellings(self):
        truthy = ["1", "true", "yes", " 1 "]
        falsy = ["", "0", "false", "off", "  "]
        for raw in truthy:
            assert raw.strip() not in ("", "0", "false", "off")
        for raw in falsy:
            assert raw.strip() in ("", "0", "false", "off")


class TestValidators:
    def test_mi_finite_passes_through(self):
        assert check_mi_finite(0.5) == 0.5
        assert check_mi_finite(-0.01) == -0.01  # KSG can dip below zero

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_mi_finite_rejects(self, bad):
        with pytest.raises(ContractViolation, match="finite"):
            check_mi_finite(bad, where="unit-test")

    def test_nmi_range_passes_through(self):
        assert check_nmi_range(0.0) == 0.0
        assert check_nmi_range(1.0) == 1.0
        assert check_nmi_range(0.37) == 0.37

    @pytest.mark.parametrize("bad", [-0.001, 1.001, 1.5, float("nan"), float("inf")])
    def test_nmi_range_rejects(self, bad):
        with pytest.raises(ContractViolation, match=r"\[0, 1\]"):
            check_nmi_range(bad, where="unit-test")

    def test_window_feasible_accepts(self):
        w = TimeDelayWindow(start=10, end=29, delay=5)
        assert check_window_feasible(w, n=100, s_min=8, s_max=50, td_max=10) is w

    def test_window_feasible_rejects_oversized(self):
        w = TimeDelayWindow(start=0, end=99, delay=0)
        with pytest.raises(ContractViolation, match="infeasible"):
            check_window_feasible(w, n=200, s_min=8, s_max=50, td_max=10)

    def test_window_feasible_rejects_out_of_range_delay(self):
        w = TimeDelayWindow(start=10, end=29, delay=50)
        with pytest.raises(ContractViolation, match="infeasible"):
            check_window_feasible(w, n=100, s_min=8, s_max=50, td_max=10)

    def test_series_shape_accepts(self):
        x = np.zeros(16)
        check_series_shape(x, x + 1.0)  # no raise

    def test_series_shape_rejects_2d(self):
        with pytest.raises(ContractViolation, match="1-D"):
            check_series_shape(np.zeros((4, 4)), np.zeros(16))

    def test_series_shape_rejects_length_mismatch(self):
        with pytest.raises(ContractViolation, match="equal length"):
            check_series_shape(np.zeros(10), np.zeros(11))

    def test_series_shape_rejects_empty(self):
        with pytest.raises(ContractViolation, match="non-empty"):
            check_series_shape(np.zeros(0), np.zeros(0))

    def test_series_shape_rejects_nan(self):
        x = np.zeros(8)
        y = np.zeros(8)
        y[3] = np.nan
        with pytest.raises(ContractViolation, match="finite"):
            check_series_shape(x, y)

    def test_violation_is_assertion_error(self):
        # Callers treating contracts as assertions can catch AssertionError.
        assert issubclass(ContractViolation, AssertionError)


def _pair(n=300, seed=7):
    rng = np.random.default_rng(seed)
    x = rng.uniform(0, 1, n)
    return x, np.sin(5 * x) + 0.05 * rng.normal(size=n)


class TestScorerIntegration:
    """REPRO_CHECKS must catch a corrupted score inside the scorers."""

    @pytest.mark.parametrize("scorer_cls", [BatchScorer, IncrementalScorer])
    def test_out_of_range_nmi_is_caught(self, scorer_cls, monkeypatch):
        # Corrupt the normalization step so the scorer produces nmi > 1.
        import repro.core.thresholds as thresholds

        monkeypatch.setattr(thresholds, "normalize_value", lambda mi, h: 1.5)
        x, y = _pair()
        scorer = scorer_cls(PairView(x, y), TycosConfig())
        window = TimeDelayWindow(start=0, end=49, delay=0)
        with override_checks(True):
            with pytest.raises(ContractViolation, match=r"\[0, 1\]"):
                scorer.score(window)

    @pytest.mark.parametrize("scorer_cls", [BatchScorer, IncrementalScorer])
    def test_corruption_passes_silently_when_disabled(self, scorer_cls, monkeypatch):
        # Without the flag the corrupted score flows through unchecked --
        # the zero-overhead guarantee cuts both ways.
        import repro.core.thresholds as thresholds

        monkeypatch.setattr(thresholds, "normalize_value", lambda mi, h: 1.5)
        x, y = _pair()
        scorer = scorer_cls(PairView(x, y), TycosConfig())
        window = TimeDelayWindow(start=0, end=49, delay=0)
        with override_checks(False):
            score = scorer.score(window)
        assert score.nmi == 1.5

    def test_full_search_passes_with_checks_on(self):
        x, y = _pair()
        config = TycosConfig(sigma=0.4, s_min=20, s_max=120, td_max=4, seed=0)
        with override_checks(True):
            result = Tycos(config).search(x, y)
        assert result.stats.windows_evaluated > 0

    def test_search_rejects_nan_input_with_checks_on(self):
        x, y = _pair()
        y[10] = np.nan
        config = TycosConfig(sigma=0.4, s_min=20, s_max=120, td_max=4, seed=0)
        with override_checks(True):
            with pytest.raises((ContractViolation, ValueError)):
                Tycos(config).search(x, y)

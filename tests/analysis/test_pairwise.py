"""Tests for the pairwise dataset scanner."""

import numpy as np
import pytest

from repro.analysis.pairwise import prefilter_score, scan_pairs
from repro.core.config import TycosConfig


@pytest.fixture
def sensor_collection(rng):
    """Four 'sensors': a/b coupled at lag 5, c/d independent noise."""
    n = 400
    seg = rng.uniform(0, 1, 120)
    a = rng.uniform(0, 1, n)
    b = rng.uniform(0, 1, n)
    a[100:220] = seg
    b[105:225] = seg + 0.01 * rng.normal(size=120)
    return {
        "a": a,
        "b": b,
        "c": rng.uniform(0, 1, n),
        "d": rng.uniform(0, 1, n),
    }


def _config(**kwargs):
    defaults = dict(
        sigma=0.45,
        s_min=20,
        s_max=160,
        td_max=8,
        init_delay_step=1,
        significance_permutations=15,
        seed=0,
    )
    defaults.update(kwargs)
    return TycosConfig(**defaults)


class TestScanPairs:
    def test_finds_the_coupled_pair(self, sensor_collection):
        report = scan_pairs(sensor_collection, _config())
        hits = report.correlated()
        assert hits
        top = hits[0]
        assert {top.source, top.target} == {"a", "b"}
        assert top.delay_range is not None

    def test_all_combinations_scanned(self, sensor_collection):
        report = scan_pairs(sensor_collection, _config())
        assert len(report.findings) == 6  # C(4, 2)

    def test_explicit_pairs(self, sensor_collection):
        report = scan_pairs(sensor_collection, _config(), pairs=[("a", "b"), ("c", "d")])
        assert len(report.findings) == 2
        assert report.finding("a", "b").windows > 0
        assert report.finding("c", "d").windows == 0

    def test_unknown_pair_name(self, sensor_collection):
        with pytest.raises(KeyError, match="unknown series"):
            scan_pairs(sensor_collection, _config(), pairs=[("a", "zz")])

    def test_mismatched_lengths_rejected(self, rng):
        series = {"a": rng.normal(size=100), "b": rng.normal(size=99)}
        with pytest.raises(ValueError, match="share a length"):
            scan_pairs(series, _config())

    def test_prefilter_skips_noise_pairs(self, sensor_collection):
        report = scan_pairs(sensor_collection, _config(), prefilter_threshold=0.3)
        skipped = {frozenset(p) for p in report.skipped}
        assert frozenset(("c", "d")) in skipped
        # The coupled pair survives the pre-filter.
        assert any({f.source, f.target} == {"a", "b"} for f in report.findings)

    def test_report_rendering(self, sensor_collection):
        report = scan_pairs(sensor_collection, _config(), pairs=[("a", "b")])
        text = report.to_text()
        assert "a -> b" in text

    def test_missing_finding_raises(self, sensor_collection):
        report = scan_pairs(sensor_collection, _config(), pairs=[("a", "b")])
        with pytest.raises(KeyError, match="not scanned"):
            report.finding("c", "d")


class TestPrefilter:
    def test_emits_deprecation_warning(self, rng):
        x = rng.normal(size=300)
        y = rng.normal(size=300)
        with pytest.warns(DeprecationWarning, match="coarse_nmi_score"):
            prefilter_score(x, y)

    def test_internal_prefiltering_does_not_warn(self, rng, recwarn):
        # scan_pairs' own pre-filtering calls coarse_nmi_score directly;
        # only the deprecated public alias warns.
        series = {"a": rng.normal(size=200), "b": rng.normal(size=200)}
        config = TycosConfig(
            sigma=0.5, s_min=24, s_max=48, td_max=2, jitter=1e-6, seed=1,
            significance_permutations=0,
        )
        scan_pairs(series, config, prefilter_threshold=0.9)
        assert not [w for w in recwarn if w.category is DeprecationWarning]

    def test_related_scores_higher(self, rng):
        x = rng.uniform(0, 1, 400)
        related = x + 0.05 * rng.normal(size=400)
        unrelated = rng.uniform(0, 1, 400)
        assert prefilter_score(x, related) > prefilter_score(x, unrelated)

    def test_lagged_coupling_needs_delay_probes(self, rng):
        x = rng.uniform(0, 1, 400)
        y = np.empty(400)
        y[6:] = x[:-6]
        y[:6] = rng.uniform(0, 1, 6)
        assert prefilter_score(x, y, td_max=0) < 0.2
        assert prefilter_score(x, y, td_max=8) > 0.5

    def test_short_series_handled(self, rng):
        x = rng.normal(size=30)
        y = rng.normal(size=30)
        assert prefilter_score(x, y, probe=128) >= 0.0

    def test_tiny_series_scores_zero(self, rng):
        assert prefilter_score(rng.normal(size=4), rng.normal(size=4)) == 0.0

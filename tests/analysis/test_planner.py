"""Tests for the execution planner.

The contracts under test: the plan grammar accepts exactly the five
strategy shapes and rejects malformed stage sequences; plans round-trip
through pickle and the versioned JSON form with stable fingerprints; the
legacy entry points (``Tycos.search`` with ``n_segments`` /
``coarse_factor``) are byte-identical to executing the equivalent
explicit plan; the composed plan (coarse-to-fine inside each segment)
equals its sequential definition; ``auto_plan`` picks the documented
strategy at each workload boundary; and the per-stage provenance
(canonical phase names, plan spec, report metadata) is recorded.
"""

import json
import pickle

import numpy as np
import pytest

from repro.analysis.pairwise import resolve_plan, scan_pairs
from repro.analysis.planner import (
    CoarsenStage,
    ExecutionContext,
    Phase,
    RescoreStage,
    ScanStage,
    SearchPlan,
    SegmentStage,
    StitchStage,
    _segment_engine,
    _stitch,
    auto_plan,
    composed_plan,
    execute_plan,
    explain_plan,
    multiscale_plan,
    ordered_phases,
    parse_plan_spec,
    plain_plan,
    plan_from_config,
    segmented_plan,
)
from repro.core.config import TycosConfig
from repro.core.segmentation import segment_spans
from repro.core.tycos import Tycos, tycos_lmn
from repro.core.window import PairView


def _ar1(rng, n, phi=0.9):
    """A smooth AR(1) series: the structure PAA aggregation preserves."""
    shocks = rng.normal(size=n)
    out = np.empty(n)
    acc = 0.0
    for i in range(n):
        acc = phi * acc + shocks[i]
        out[i] = acc
    return out


def _episode_pair(n=6000, seed=11, episodes=((900, 300, 5), (3100, 280, -7), (5000, 320, -3))):
    """Independent AR(1) pair with planted delayed-copy episodes."""
    rng = np.random.default_rng(seed)
    x = _ar1(rng, n)
    y = _ar1(rng, n)
    for start, length, delay in episodes:
        y[start + delay : start + delay + length] = (
            x[start : start + length] + 0.2 * rng.normal(size=length)
        )
    return x, y


def _config(**kwargs):
    defaults = dict(
        sigma=0.75,
        s_min=32,
        s_max=96,
        td_max=8,
        jitter=1e-6,
        seed=3,
        init_delay_step=1,
        coarse_sigma_ratio=0.85,
    )
    defaults.update(kwargs)
    return TycosConfig(**defaults)


def _signature(result):
    return [(r.window.key(), r.mi, r.nmi) for r in result.windows]


ALL_SHAPES = [
    plain_plan(),
    segmented_plan(4),
    multiscale_plan(8),
    multiscale_plan(8, n_segments=4),
    composed_plan(4, 8),
    multiscale_plan(8, refine_margin=64),
]


# --------------------------------------------------------------------- #
# Grammar


class TestPlanGrammar:
    def test_builder_specs_cover_the_five_shapes(self):
        assert plain_plan().spec() == "plain"
        assert segmented_plan(4).spec() == "segments=4"
        assert multiscale_plan(8).spec() == "coarse=8"
        assert multiscale_plan(8, n_segments=4).spec() == "coarse=8,segments=4"
        assert composed_plan(4, 8).spec() == "segments=4,coarse=8"

    def test_stage_names_linearize_the_composition(self):
        assert plain_plan().stage_names() == ["scan"]
        assert segmented_plan(2).stage_names() == ["segment", "scan", "stitch"]
        assert multiscale_plan(8).stage_names() == ["coarsen", "scan", "rescore"]
        assert composed_plan(2, 8).stage_names() == [
            "segment", "coarsen", "scan", "rescore", "stitch",
        ]
        assert multiscale_plan(8, n_segments=2).stage_names() == [
            "coarsen", "segment", "scan", "stitch", "rescore",
        ]

    def test_rejects_missing_scan(self):
        with pytest.raises(ValueError, match="exactly one scan"):
            SearchPlan(stages=(SegmentStage(2), StitchStage())).validate()

    def test_rejects_unclosed_opener(self):
        with pytest.raises(ValueError, match="must be closed by stitch"):
            SearchPlan(stages=(SegmentStage(2), ScanStage())).validate()

    def test_rejects_mismatched_closer_order(self):
        with pytest.raises(ValueError, match="must be closed by"):
            SearchPlan(
                stages=(
                    SegmentStage(2),
                    CoarsenStage(8),
                    ScanStage(),
                    StitchStage(),
                    RescoreStage(),
                )
            ).validate()

    def test_rejects_duplicate_opener(self):
        with pytest.raises(ValueError, match="at most once"):
            SearchPlan(
                stages=(
                    SegmentStage(2),
                    SegmentStage(3),
                    ScanStage(),
                    StitchStage(),
                    StitchStage(),
                )
            ).validate()

    def test_rejects_trailing_stages(self):
        with pytest.raises(ValueError, match="trailing stages"):
            SearchPlan(stages=(ScanStage(), RescoreStage())).validate()

    def test_stage_parameter_validation(self):
        with pytest.raises(ValueError, match="n_segments"):
            SegmentStage(0)
        with pytest.raises(ValueError, match="factor"):
            CoarsenStage(1)
        with pytest.raises(ValueError, match="refine_margin"):
            CoarsenStage(8, refine_margin=-1)

    def test_plan_from_config_reproduces_legacy_precedence(self):
        cfg = _config()
        assert plan_from_config(cfg).spec() == "plain"
        assert plan_from_config(cfg, n_segments=4).spec() == "segments=4"
        assert plan_from_config(cfg, coarse_factor=8).spec() == "coarse=8"
        # A real coarse factor wins; n_segments then shards the pre-pass.
        assert (
            plan_from_config(cfg, n_segments=4, coarse_factor=8).spec()
            == "coarse=8,segments=4"
        )
        assert plan_from_config(_config(coarse_factor=8)).spec() == "coarse=8"
        assert plan_from_config(_config(n_segments=4)).spec() == "segments=4"
        with pytest.raises(ValueError, match="n_segments"):
            plan_from_config(cfg, n_segments=0)
        with pytest.raises(ValueError, match="coarse_factor"):
            plan_from_config(cfg, coarse_factor=0)


# --------------------------------------------------------------------- #
# Serialization


class TestSerialization:
    @pytest.mark.parametrize("plan", ALL_SHAPES, ids=lambda p: p.spec())
    def test_json_round_trip(self, plan):
        clone = SearchPlan.from_json(plan.to_json())
        assert clone == plan
        assert clone.fingerprint() == plan.fingerprint()
        assert clone.spec() == plan.spec()

    @pytest.mark.parametrize("plan", ALL_SHAPES, ids=lambda p: p.spec())
    def test_pickle_round_trip(self, plan):
        clone = pickle.loads(pickle.dumps(plan))
        assert clone == plan
        assert clone.fingerprint() == plan.fingerprint()

    def test_payload_is_versioned_and_stable(self):
        payload = json.loads(composed_plan(4, 8).to_json())
        assert payload["version"] == 1
        assert [entry["stage"] for entry in payload["stages"]] == [
            "segment", "coarsen", "scan", "rescore", "stitch",
        ]
        assert payload["stages"][1] == {
            "stage": "coarsen", "factor": 8, "refine_margin": None,
        }

    def test_fingerprint_ignores_reason_but_not_structure(self):
        bare = multiscale_plan(8)
        reasoned = multiscale_plan(8, reason="picked by auto_plan")
        assert bare.fingerprint() == reasoned.fingerprint()
        assert bare.to_json() != reasoned.to_json()
        # Composition order is identity: segmented coarse pass and
        # coarse-in-segment are different strategies.
        assert (
            multiscale_plan(8, n_segments=4).fingerprint()
            != composed_plan(4, 8).fingerprint()
        )
        # An explicit margin is part of the identity.
        assert multiscale_plan(8).fingerprint() != multiscale_plan(8, 64).fingerprint()

    def test_from_json_rejects_bad_payloads(self):
        with pytest.raises(ValueError, match="not a JSON plan"):
            SearchPlan.from_json("{nope")
        with pytest.raises(ValueError, match="version 1"):
            SearchPlan.from_json('{"version": 2, "stages": []}')
        with pytest.raises(ValueError, match="unknown plan stage tag"):
            SearchPlan.from_json(
                '{"version": 1, "reason": "", "stages": [{"stage": "warp"}]}'
            )


# --------------------------------------------------------------------- #
# Spec parsing


class TestParsePlanSpec:
    @pytest.mark.parametrize(
        "spec",
        ["plain", "segments=4", "coarse=8", "coarse=8,segments=4", "segments=4,coarse=8"],
    )
    def test_spec_round_trips(self, spec):
        assert parse_plan_spec(spec).spec() == spec

    def test_empty_and_whitespace_mean_plain(self):
        assert parse_plan_spec("").spec() == "plain"
        assert parse_plan_spec("  Plain  ").spec() == "plain"

    def test_rejects_unknown_and_duplicate_tokens(self):
        with pytest.raises(ValueError, match="unknown plan token"):
            parse_plan_spec("warp=2")
        with pytest.raises(ValueError, match="bad plan token"):
            parse_plan_spec("segments=two")
        with pytest.raises(ValueError, match="duplicate segments"):
            parse_plan_spec("segments=2,segments=3")
        with pytest.raises(ValueError, match="duplicate coarse"):
            parse_plan_spec("coarse=2,coarse=4")

    def test_resolve_plan_surfaces(self):
        cfg = _config()
        assert resolve_plan(None, cfg, 6000, 3, 1) is None
        assert resolve_plan("segments=2", cfg, 6000, 3, 1).spec() == "segments=2"
        already = composed_plan(2, 8)
        assert resolve_plan(already, cfg, 6000, 3, 1) is already
        assert resolve_plan("auto", cfg, 6000, 3, 1).spec() == "coarse=8"


# --------------------------------------------------------------------- #
# Wrapper/legacy byte-equality


class TestWrapperEquivalence:
    def _small_pair(self, n=900):
        rng = np.random.default_rng(2)
        x, y = rng.uniform(0, 1, n), rng.uniform(0, 1, n)
        seg = rng.uniform(0, 1, 80)
        x[200:280] = seg
        y[204:284] = seg + 0.01 * rng.normal(size=80)
        return x, y

    def test_plain_search_equals_plain_plan(self):
        x, y = self._small_pair()
        cfg = _config(sigma=0.3, s_min=8, s_max=60, td_max=6)
        engine = tycos_lmn(cfg)
        legacy = Tycos(cfg).search(x, y, n_segments=1, coarse_factor=1)
        planned = execute_plan(x, y, engine=engine, plan=plain_plan())
        assert _signature(planned) == _signature(legacy)
        assert planned.stats.plan == "plain"

    def test_segmented_search_equals_segment_plan(self):
        x, y = self._small_pair(n=1600)
        cfg = _config(sigma=0.3, s_min=8, s_max=60, td_max=6)
        legacy = Tycos(cfg).search(x, y, n_segments=4)
        planned = execute_plan(x, y, cfg, plan=segmented_plan(4))
        assert _signature(planned) == _signature(legacy)
        assert planned.stats.plan == "segments=4"
        assert planned.stats.segments == 4

    def test_multiscale_search_equals_coarsen_plan(self):
        x, y = _episode_pair()
        cfg = _config()
        legacy = Tycos(cfg).search(x, y, coarse_factor=8)
        planned = execute_plan(x, y, cfg, plan=multiscale_plan(8))
        assert _signature(planned) == _signature(legacy)
        assert planned.stats.plan == "coarse=8"
        assert planned.stats.coarse_windows_evaluated > 0
        assert planned.stats.cells_pruned > 0

    def test_config_driven_search_routes_through_same_plan(self):
        x, y = self._small_pair(n=1600)
        cfg = _config(sigma=0.3, s_min=8, s_max=60, td_max=6, n_segments=4)
        via_config = Tycos(cfg).search(x, y)
        via_plan = execute_plan(x, y, cfg, plan=plan_from_config(cfg))
        assert _signature(via_plan) == _signature(via_config)

    def test_shared_context_does_not_change_results(self):
        x, y = _episode_pair()
        cfg = _config()
        engine = Tycos(cfg)
        solo = execute_plan(x, y, engine=engine, plan=multiscale_plan(8))
        context = ExecutionContext()
        first = execute_plan(
            x, y, engine=engine, plan=multiscale_plan(8), context=context
        )
        second = execute_plan(
            x, y, engine=engine, plan=multiscale_plan(8), context=context
        )
        assert _signature(first) == _signature(solo)
        assert _signature(second) == _signature(solo)


# --------------------------------------------------------------------- #
# Composition


class TestComposedPlan:
    def test_composed_equals_sequential_definition(self):
        """segments=K,coarse=F is, by definition, the segment split whose
        every span runs its own coarse-to-fine search, stitched by the
        segmented search's stitcher."""
        x, y = _episode_pair()
        cfg = _config()
        engine = Tycos(cfg)
        composed = execute_plan(x, y, engine=engine, plan=composed_plan(4, 8))

        pair = PairView(x, y, jitter=cfg.jitter, seed=cfg.seed)
        spans = segment_spans(pair.n, 4, cfg.segment_overlap())
        seg_engine = _segment_engine(engine)
        per_segment = [
            execute_plan(
                pair.x[lo:hi], pair.y[lo:hi], engine=seg_engine, plan=multiscale_plan(8)
            )
            for lo, hi in spans
        ]
        reference = _stitch(engine, pair, spans, per_segment, started=0.0)
        assert _signature(composed) == _signature(reference)

    def test_composed_recovers_planted_episodes(self):
        episodes = ((900, 300, 5), (3100, 280, -7), (5000, 320, -3))
        x, y = _episode_pair(episodes=episodes)
        cfg = _config()
        result = execute_plan(x, y, cfg, plan=composed_plan(4, 8))
        for start, length, delay in episodes:
            assert any(
                r.window.delay == delay
                and r.window.start < start + length
                and r.window.end > start
                for r in result.windows
            ), f"episode at {start} (delay {delay}) not recovered"

    def test_segmented_coarse_pass_equals_legacy_combination(self):
        x, y = _episode_pair()
        cfg = _config()
        legacy = Tycos(cfg).search(x, y, coarse_factor=8, n_segments=4)
        planned = execute_plan(x, y, cfg, plan=multiscale_plan(8, n_segments=4))
        assert _signature(planned) == _signature(legacy)
        assert planned.stats.plan == "coarse=8,segments=4"


# --------------------------------------------------------------------- #
# Auto-selection


class TestAutoPlan:
    def test_short_series_gets_plain(self):
        plan = auto_plan(300, 10, 8, _config())
        assert plan.spec() == "plain"
        assert "no viable" in plan.reason

    def test_long_series_one_core_gets_coarse(self):
        plan = auto_plan(6000, 10, 1, _config())
        assert plan.spec() == "coarse=8"
        assert "core" in plan.reason

    def test_spare_cores_get_composed(self):
        plan = auto_plan(6000, 2, 4, _config())
        assert plan.spec() == "segments=4,coarse=8"
        assert "cannot fill" in plan.reason

    def test_saturated_pool_stays_coarse(self):
        # More pairs than cores: pair-level dispatch already fills the
        # machine, intra-pair segmentation would only add stitch cost.
        assert auto_plan(6000, 16, 4, _config()).spec() == "coarse=8"

    def test_config_coarse_factor_is_respected(self):
        assert auto_plan(6000, 10, 1, _config(coarse_factor=4)).spec() == "coarse=4"

    def test_segment_count_is_capped(self):
        plan = auto_plan(60000, 1, 32, _config())
        assert plan.spec() == "segments=8,coarse=8"


# --------------------------------------------------------------------- #
# Provenance: phases, metadata, explain


class TestProvenance:
    def test_phase_names_are_canonical(self):
        x, y = _episode_pair()
        cfg = _config()
        result = execute_plan(x, y, cfg, plan=composed_plan(2, 8))
        known = {phase.value for phase in Phase}
        assert set(result.stats.phase_seconds) <= known
        assert Phase.COARSE.value in result.stats.phase_seconds
        assert Phase.REFINE.value in result.stats.phase_seconds
        assert Phase.STITCH.value in result.stats.phase_seconds

    def test_ordered_phases_sorts_known_then_unknown(self):
        timings = {
            "stitch": 1.0,
            "lahc": 2.0,
            "coarse": 3.0,
            "zz_custom": 4.0,
            "aa_custom": 5.0,
        }
        assert ordered_phases(timings) == [
            "coarse", "lahc", "stitch", "aa_custom", "zz_custom",
        ]

    def test_scan_pairs_records_plan_metadata(self):
        rng = np.random.default_rng(7)
        n = 600
        base = rng.uniform(0, 1, n)
        series = {
            "a": base,
            "b": np.roll(base, 3) + 0.01 * rng.normal(size=n),
            "c": rng.uniform(0, 1, n),
        }
        cfg = _config(sigma=0.3, s_min=8, s_max=60, td_max=6)
        baseline = scan_pairs(series, cfg)
        assert "plan" not in baseline.metadata
        planned = scan_pairs(series, cfg, plan="segments=2")
        assert planned.metadata["plan"] == "segments=2"
        assert planned.metadata["plan_fingerprint"] == segmented_plan(2).fingerprint()
        assert [(f.source, f.target) for f in planned.findings if f.windows] == [
            (f.source, f.target) for f in baseline.findings if f.windows
        ]

    def test_explain_plan_renders_stages_and_fingerprint(self):
        cfg = _config()
        plan = composed_plan(4, 8, reason="spare cores")
        text = explain_plan(plan, cfg)
        assert f"fingerprint {plan.fingerprint()}" in text
        assert "segments=4,coarse=8" in text
        assert "shard the timeline into 4 spans" in text
        assert "1/8 resolution" in text
        assert "spare cores" in text


# --------------------------------------------------------------------- #
# CLI surfaces


class TestCliExplainPlan:
    def _write_csv(self, tmp_path, n=480):
        rng = np.random.default_rng(5)
        a = rng.uniform(0, 1, n)
        b = np.roll(a, 2) + 0.01 * rng.normal(size=n)
        path = tmp_path / "pair.csv"
        rows = ["a,b"] + [f"{a[i]:.6f},{b[i]:.6f}" for i in range(n)]
        path.write_text("\n".join(rows) + "\n")
        return str(path)

    def test_tycos_search_explain_plan(self, tmp_path, capsys):
        from repro.analysis.csvio import main

        csv_path = self._write_csv(tmp_path)
        code = main(
            [csv_path, "--x", "a", "--y", "b", "--plan", "segments=2,coarse=4",
             "--explain-plan"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "plan: segments=2,coarse=4" in out
        assert "scan: LAHC restart loop" in out

    def test_tycos_search_explain_defaults_to_config_plan(self, tmp_path, capsys):
        from repro.analysis.csvio import main

        csv_path = self._write_csv(tmp_path)
        code = main([csv_path, "--x", "a", "--y", "b", "--explain-plan"])
        out = capsys.readouterr().out
        assert code == 0
        assert "plan: plain" in out

    def test_tycos_scan_explain_plan(self, tmp_path, capsys):
        from repro.analysis.cascade import main

        csv_path = self._write_csv(tmp_path)
        code = main([csv_path, "--plan", "coarse=8", "--explain-plan"])
        out = capsys.readouterr().out
        assert code == 0
        assert "plan: coarse=8" in out
        assert "rescore: refine surviving coarse cells" in out

    def test_tycos_search_runs_explicit_plan(self, tmp_path, capsys):
        from repro.analysis.csvio import main

        csv_path = self._write_csv(tmp_path)
        code = main(
            [csv_path, "--x", "a", "--y", "b", "--s-min", "8", "--s-max", "60",
             "--td-max", "6", "--sigma", "0.3", "--plan", "segments=2"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "correlated windows" in out

"""Tests for window consolidation."""

import numpy as np
import pytest

from repro.analysis.consolidate import consolidate_windows
from repro.core.config import TycosConfig
from repro.core.results import WindowResult
from repro.core.tycos import tycos_lmn
from repro.core.window import TimeDelayWindow


def _res(start, end, delay=4, nmi=0.7):
    return WindowResult(window=TimeDelayWindow(start, end, delay), mi=nmi, nmi=nmi)


class TestConsolidateWindows:
    def test_adjacent_same_delay_merged(self):
        fragments = [_res(10, 30), _res(31, 50), _res(48, 70)]
        merged = consolidate_windows(fragments)
        assert len(merged) == 1
        assert merged[0].window == TimeDelayWindow(10, 70, delay=4)

    def test_different_delays_kept_apart(self):
        fragments = [_res(10, 30, delay=4), _res(31, 50, delay=20)]
        merged = consolidate_windows(fragments, delay_tol=2)
        assert len(merged) == 2

    def test_delay_tolerance(self):
        fragments = [_res(10, 30, delay=4), _res(31, 50, delay=6)]
        assert len(consolidate_windows(fragments, delay_tol=2)) == 1
        assert len(consolidate_windows(fragments, delay_tol=1)) == 2

    def test_gap_tolerance(self):
        fragments = [_res(10, 30), _res(36, 50)]
        assert len(consolidate_windows(fragments, gap_tol=0)) == 2
        assert len(consolidate_windows(fragments, gap_tol=5)) == 1

    def test_strongest_fragment_sets_delay(self):
        fragments = [_res(10, 30, delay=4, nmi=0.5), _res(31, 50, delay=5, nmi=0.9)]
        merged = consolidate_windows(fragments, delay_tol=2)
        assert merged[0].window.delay == 5

    def test_rescoring_on_series(self, rng):
        n = 200
        x = rng.uniform(0, 1, n)
        y = rng.uniform(0, 1, n)
        seg = rng.uniform(0, 1, 80)
        x[50:130] = seg
        y[54:134] = seg + 0.01 * rng.normal(size=80)
        fragments = [_res(50, 89, delay=4), _res(90, 129, delay=4)]
        merged = consolidate_windows(fragments, x=x, y=y)
        assert len(merged) == 1
        # Re-scored on the full extent of a strong relation: high nmi.
        assert merged[0].nmi > 0.8

    def test_end_to_end_reduces_fragmentation(self, rng):
        n = 500
        x = rng.uniform(0, 1, n)
        y = rng.uniform(0, 1, n)
        seg = rng.uniform(0, 1, 150)
        x[150:300] = seg
        y[154:304] = seg + 0.01 * rng.normal(size=150)
        cfg = TycosConfig(
            sigma=0.5, s_min=20, s_max=200, td_max=6,
            init_delay_step=1, significance_permutations=10, seed=0,
        )
        result = tycos_lmn(cfg).search(x, y)
        merged = consolidate_windows(result.windows, x=x, y=y)
        assert 1 <= len(merged) <= len(result.windows)

    def test_empty_input(self):
        assert consolidate_windows([]) == []

    def test_rejects_half_series(self, rng):
        with pytest.raises(ValueError, match="both x and y"):
            consolidate_windows([_res(0, 10)], x=rng.normal(size=20))

    def test_rejects_negative_tolerances(self):
        with pytest.raises(ValueError, match=">= 0"):
            consolidate_windows([_res(0, 10)], delay_tol=-1)

"""Tests for the process-pool pairwise scanner.

The contract under test: for any worker count, transport, and chunking,
``scan_pairs(..., n_jobs=N)`` returns a report byte-identical to the
serial scan -- findings, skipped pairs, and failures, each in submission
order -- and one poisoned pair never aborts the scan.
"""

import numpy as np
import pytest

from repro.analysis.pairwise import PairFailure, scan_pairs
from repro.analysis.parallel import resolve_n_jobs, scan_pairs_parallel
from repro.core.config import TycosConfig


def _config(**kwargs):
    defaults = dict(sigma=0.3, s_min=8, s_max=40, td_max=6, jitter=1e-6, seed=1)
    defaults.update(kwargs)
    return TycosConfig(**defaults)


def _snapshot(report):
    return (report.findings, report.skipped, report.failures)


@pytest.fixture(scope="module")
def collection():
    rng = np.random.default_rng(77)
    n = 240
    base = np.cumsum(rng.normal(size=n))
    return {
        "a": base + rng.normal(scale=0.1, size=n),
        "b": np.roll(base, 4) + rng.normal(scale=0.1, size=n),
        "c": rng.normal(size=n),
        "d": rng.normal(size=n),
    }


@pytest.fixture(scope="module")
def serial_report(collection):
    return scan_pairs(collection, _config(), prefilter_threshold=0.05)


class TestParallelDeterminism:
    def test_two_workers_match_serial(self, collection, serial_report):
        parallel = scan_pairs(collection, _config(), prefilter_threshold=0.05, n_jobs=2)
        assert _snapshot(parallel) == _snapshot(serial_report)

    def test_pickle_transport_matches_serial(self, collection, serial_report):
        parallel = scan_pairs_parallel(
            collection,
            _config(),
            prefilter_threshold=0.05,
            n_jobs=2,
            use_shared_memory=False,
            force_parallel=True,
        )
        assert _snapshot(parallel) == _snapshot(serial_report)

    def test_single_pair_chunks_match_serial(self, collection, serial_report):
        parallel = scan_pairs_parallel(
            collection,
            _config(),
            prefilter_threshold=0.05,
            n_jobs=2,
            chunk_size=1,
            force_parallel=True,
        )
        assert _snapshot(parallel) == _snapshot(serial_report)

    def test_explicit_pair_order_is_preserved(self, collection):
        pairs = [("d", "c"), ("a", "b"), ("b", "c")]
        serial = scan_pairs(collection, _config(), pairs=pairs)
        parallel = scan_pairs(collection, _config(), pairs=pairs, n_jobs=2)
        assert [(f.source, f.target) for f in serial.findings] == pairs
        assert _snapshot(parallel) == _snapshot(serial)


class TestFailureContainment:
    @pytest.fixture(scope="class")
    def poisoned(self):
        rng = np.random.default_rng(5)
        n = 240
        base = np.cumsum(rng.normal(size=n))
        return {
            "good": base + rng.normal(scale=0.1, size=n),
            "alsogood": np.roll(base, 3) + rng.normal(scale=0.1, size=n),
            "bad": np.full(n, np.nan),
        }

    def test_serial_scan_survives_a_poisoned_pair(self, poisoned):
        report = scan_pairs(poisoned, _config())
        assert len(report.findings) == 1  # (good, alsogood)
        assert len(report.failures) == 2  # every pair touching "bad"
        assert all(isinstance(f, PairFailure) for f in report.failures)
        assert all("finite" in f.error for f in report.failures)

    def test_parallel_failures_match_serial(self, poisoned):
        serial = scan_pairs(poisoned, _config())
        parallel = scan_pairs(poisoned, _config(), n_jobs=2)
        assert _snapshot(parallel) == _snapshot(serial)

    def test_failures_are_reported_in_text(self, poisoned):
        report = scan_pairs(poisoned, _config())
        assert "2 pairs failed" in report.to_text()

    def test_unknown_names_still_raise_upfront(self, poisoned):
        with pytest.raises(KeyError, match="unknown series"):
            scan_pairs(poisoned, _config(), pairs=[("good", "zz")], n_jobs=2)


class TestNJobsHandling:
    def test_resolve_all_cores(self):
        import os

        assert resolve_n_jobs(-1) == max(1, os.cpu_count() or 1)

    def test_resolve_rejects_zero_and_negatives(self):
        with pytest.raises(ValueError, match="n_jobs"):
            resolve_n_jobs(0)
        with pytest.raises(ValueError, match="n_jobs"):
            resolve_n_jobs(-2)

    def test_n_jobs_one_is_the_serial_path(self, collection, serial_report):
        report = scan_pairs(collection, _config(), prefilter_threshold=0.05, n_jobs=1)
        assert _snapshot(report) == _snapshot(serial_report)

    def test_empty_pair_list(self, collection):
        report = scan_pairs(collection, _config(), pairs=[], n_jobs=2)
        assert report.findings == [] and report.skipped == [] and report.failures == []

    def test_mismatched_lengths_rejected(self):
        series = {"a": np.zeros(100), "b": np.zeros(99)}
        with pytest.raises(ValueError, match="share a length"):
            scan_pairs_parallel(series, _config(), n_jobs=2)

    def test_workers_clamped_to_pair_count(self, collection, monkeypatch):
        """Asking for more workers than pairs must not spawn idle workers."""
        import repro.analysis.parallel as parallel_mod

        recorded = []
        real_executor = parallel_mod.ProcessPoolExecutor

        class RecordingExecutor(real_executor):  # type: ignore[valid-type, misc]
            def __init__(self, *args, **kwargs):
                recorded.append(kwargs["max_workers"])
                super().__init__(*args, **kwargs)

        monkeypatch.setattr(parallel_mod, "ProcessPoolExecutor", RecordingExecutor)
        pairs = [("a", "b"), ("c", "d")]
        report = scan_pairs_parallel(
            collection,
            _config(),
            prefilter_threshold=0.05,
            pairs=pairs,
            n_jobs=6,
            force_parallel=True,
        )
        assert recorded == [2]
        serial = scan_pairs(collection, _config(), prefilter_threshold=0.05, pairs=pairs)
        assert _snapshot(report) == _snapshot(serial)

    def test_single_pair_with_many_workers_runs_serially(self, collection, monkeypatch):
        """One pair clamps to one worker, which is the in-process serial path."""
        import repro.analysis.parallel as parallel_mod

        def fail(*args, **kwargs):  # pragma: no cover - must never run
            raise AssertionError("a process pool was spawned for a single pair")

        monkeypatch.setattr(parallel_mod, "ProcessPoolExecutor", fail)
        pairs = [("a", "b")]
        report = scan_pairs_parallel(
            collection, _config(), prefilter_threshold=0.05, pairs=pairs, n_jobs=4
        )
        serial = scan_pairs(collection, _config(), prefilter_threshold=0.05, pairs=pairs)
        assert _snapshot(report) == _snapshot(serial)


class TestOneCoreSerialFallback:
    """On a 1-core host a pool only adds dispatch overhead, so parallel
    requests are served serially -- loudly (a logged warning plus a report
    note), identically (same findings), and overridably (force_parallel)."""

    def _one_core(self, monkeypatch):
        import repro.analysis.parallel as parallel_mod

        monkeypatch.setattr(parallel_mod.os, "cpu_count", lambda: 1)

    def test_effective_workers_falls_back_on_one_core(self, monkeypatch):
        from repro.analysis.parallel import effective_workers

        self._one_core(monkeypatch)
        assert effective_workers(4, 10) == (1, True)

    def test_effective_workers_single_task_is_not_a_fallback(self, monkeypatch):
        """Clamping to one task is ordinary sizing, not the 1-core fallback."""
        from repro.analysis.parallel import effective_workers

        self._one_core(monkeypatch)
        assert effective_workers(4, 1) == (1, False)

    def test_force_parallel_overrides_one_core(self, monkeypatch):
        from repro.analysis.parallel import effective_workers

        self._one_core(monkeypatch)
        assert effective_workers(4, 10, force_parallel=True) == (4, False)

    def test_fallback_scan_matches_serial_and_is_noted(
        self, collection, serial_report, monkeypatch, caplog
    ):
        self._one_core(monkeypatch)
        with caplog.at_level("WARNING", logger="repro.analysis.parallel"):
            report = scan_pairs_parallel(
                collection, _config(), prefilter_threshold=0.05, n_jobs=2
            )
        assert _snapshot(report) == _snapshot(serial_report)
        assert any("1-core host" in note for note in report.notes)
        assert "(note:" in report.to_text()
        assert any("1-core host" in rec.message for rec in caplog.records)

"""Tests for the coarse-to-fine multiscale search.

The contract under test: ``coarse_factor=1`` reproduces the plain search
byte-exactly; with a real factor on the seeded bench-style workload the
search recovers 100% of the plain search's findings at bit-identical
scores while evaluating fewer full-resolution windows; and the stats
ledger (coarse evaluations, refined cells, pruned tiles, phase walls)
accounts for both stages.
"""

import numpy as np
import pytest

from repro.analysis.multiscale import _cell_scan_hook, search_multiscale
from repro.core.config import TycosConfig
from repro.core.pyramid import RefinementCell
from repro.core.tycos import Tycos, tycos_lm, tycos_lmn


def _ar1(rng, n, phi=0.9):
    """A smooth AR(1) series: the structure PAA aggregation preserves."""
    shocks = rng.normal(size=n)
    out = np.empty(n)
    acc = 0.0
    for i in range(n):
        acc = phi * acc + shocks[i]
        out[i] = acc
    return out


def _episode_pair(n=8000, seed=11, episodes=((1200, 300, 5), (4200, 280, -7), (6800, 320, -3))):
    """Independent AR(1) pair with planted delayed-copy episodes.

    The same shape as the tracked benchmark workload
    (``benchmarks/run_bench.py``, multiscale section): long smooth
    episodes a coarse level can locate, quiet stretches it can prune.
    """
    rng = np.random.default_rng(seed)
    x = _ar1(rng, n)
    y = _ar1(rng, n)
    for start, length, delay in episodes:
        y[start + delay : start + delay + length] = (
            x[start : start + length] + 0.2 * rng.normal(size=length)
        )
    return x, y


def _config(**kwargs):
    defaults = dict(
        sigma=0.75,
        s_min=32,
        s_max=96,
        td_max=8,
        jitter=1e-6,
        seed=3,
        init_delay_step=1,
        coarse_sigma_ratio=0.85,
    )
    defaults.update(kwargs)
    return TycosConfig(**defaults)


def _signature(result):
    return [(r.window.key(), r.mi, r.nmi) for r in result.windows]


class TestFactorOneBypass:
    def test_factor_one_reproduces_plain_search_byte_exactly(self):
        rng = np.random.default_rng(2)
        n = 700
        x, y = rng.uniform(0, 1, n), rng.uniform(0, 1, n)
        seg = rng.uniform(0, 1, 80)
        x[200:280] = seg
        y[204:284] = seg + 0.01 * rng.normal(size=80)
        cfg = _config(sigma=0.3, s_min=8, s_max=60, td_max=6, significance_permutations=5)
        engine = tycos_lmn(cfg)
        plain = engine.search(x, y)
        via_search = Tycos(cfg).search(x, y, coarse_factor=1)
        direct = search_multiscale(x, y, engine=engine, coarse_factor=1)
        assert _signature(via_search) == _signature(plain)
        assert _signature(direct) == _signature(plain)
        assert direct.stats.windows_evaluated == plain.stats.windows_evaluated
        assert direct.stats.coarse_windows_evaluated == 0

    def test_config_coarse_factor_dispatches_from_search(self):
        x, y = _episode_pair(n=2000, episodes=((600, 250, 5),))
        cfg = _config(coarse_factor=8)
        result = Tycos(cfg, use_noise=False).search(x, y)
        assert result.stats.coarse_windows_evaluated > 0


class TestRecallParity:
    """The headline guarantee on the bench-style workload: every plain
    finding is recovered with bit-identical scores, at every factor."""

    @pytest.fixture(scope="class")
    def pair(self):
        return _episode_pair()

    @pytest.fixture(scope="class")
    def plain(self, pair):
        return tycos_lmn(_config()).search(*pair)

    @pytest.mark.parametrize("factor", [2, 4, 8])
    def test_default_margin_recovers_every_plain_window(self, pair, plain, factor):
        engine = tycos_lmn(_config())
        ms = search_multiscale(*pair, engine=engine, coarse_factor=factor)
        plain_scores = {r.window.key(): (r.mi, r.nmi) for r in plain.windows}
        ms_scores = {r.window.key(): (r.mi, r.nmi) for r in ms.windows}
        missing = sorted(set(plain_scores) - set(ms_scores))
        assert not missing, f"factor {factor} lost plain findings: {missing}"
        for key, scores in plain_scores.items():
            assert ms_scores[key] == scores  # bit-identical, not approx
        ratio = plain.stats.full_windows_evaluated / max(
            1, ms.stats.full_windows_evaluated
        )
        print(
            f"\nfactor={factor}: {plain.stats.full_windows_evaluated} -> "
            f"{ms.stats.full_windows_evaluated} full-resolution evaluations "
            f"({ratio:.2f}x), {ms.stats.cells_pruned} tiles pruned"
        )

    def test_factor_8_actually_prunes(self, pair, plain):
        ms = search_multiscale(*pair, engine=tycos_lmn(_config()), coarse_factor=8)
        assert ms.stats.cells_pruned > 0
        assert ms.stats.full_windows_evaluated < plain.stats.full_windows_evaluated

    def test_lm_variant_parity_and_pruning(self, pair):
        """The plain-seeded variant carries the structural parity argument
        (quiet-region restarts advance by exactly s_min) and the largest
        pruning upside (no noise theory to skip quiet stretches)."""
        engine = tycos_lm(_config())
        plain = engine.search(*pair)
        ms = search_multiscale(*pair, engine=engine, coarse_factor=8)
        assert {r.window.key() for r in plain.windows} == {
            r.window.key() for r in ms.windows
        }
        assert {(r.mi, r.nmi) for r in plain.windows} == {
            (r.mi, r.nmi) for r in ms.windows
        }
        ratio = plain.stats.full_windows_evaluated / max(
            1, ms.stats.full_windows_evaluated
        )
        print(f"\nLM factor=8 full-evaluation ratio: {ratio:.2f}x")
        assert ratio >= 2.0


class TestStatsLedger:
    def test_ledger_accounts_for_both_stages(self):
        x, y = _episode_pair(n=3000, episodes=((800, 250, 5), (2100, 240, -3)))
        ms = search_multiscale(x, y, engine=tycos_lmn(_config()), coarse_factor=8)
        s = ms.stats
        assert s.coarse_windows_evaluated > 0
        assert s.refined_cells >= 1
        assert s.full_windows_evaluated > 0
        assert s.windows_evaluated == s.full_windows_evaluated + s.coarse_windows_evaluated
        assert "coarse" in s.phase_seconds and "refine" in s.phase_seconds
        assert all(v >= 0.0 for v in s.phase_seconds.values())

    def test_short_series_falls_back_to_exhaustive(self):
        rng = np.random.default_rng(9)
        x, y = rng.normal(size=60), rng.normal(size=60)
        cfg = _config(sigma=0.3, s_min=8, s_max=40, td_max=4)
        plain = Tycos(cfg, use_noise=False).search(x, y)
        ms = search_multiscale(x, y, engine=Tycos(cfg, use_noise=False), coarse_factor=8)
        assert _signature(ms) == _signature(plain)
        assert ms.stats.coarse_windows_evaluated == 0

    def test_validation(self):
        x = np.zeros(100)
        with pytest.raises(ValueError, match="coarse_factor"):
            search_multiscale(x, x, _config(), coarse_factor=0)
        with pytest.raises(ValueError, match="refine_margin"):
            search_multiscale(x, x, _config(), coarse_factor=2, refine_margin=-1)
        with pytest.raises(ValueError, match="config or an engine"):
            search_multiscale(x, x)


class TestScanHook:
    """The restart filter: phase-preserving jumps over pruned gaps."""

    def test_positions_inside_a_cell_pass_through(self):
        hook = _cell_scan_hook([RefinementCell(100, 300, -2, 2)], s_min=16)
        assert hook(150) == 150

    def test_gap_jump_preserves_scan_phase(self):
        hook = _cell_scan_hook([RefinementCell(500, 900, -2, 2)], s_min=16)
        for scan_from in (0, 3, 16, 77):
            landed = hook(scan_from)
            assert landed >= 500
            assert landed % 16 == scan_from % 16  # exhaustive search's stride
            assert landed - 16 < 500  # first in-cell stride position

    def test_scan_past_last_cell_ends(self):
        hook = _cell_scan_hook([RefinementCell(100, 300, -2, 2)], s_min=16)
        assert hook(300) is None
        assert hook(1000) is None

    def test_tiny_cell_overshoot_continues_to_next_cell(self):
        cells = [RefinementCell(100, 104, 0, 0), RefinementCell(400, 600, 0, 0)]
        hook = _cell_scan_hook(cells, s_min=64)
        landed = hook(48)
        assert landed >= 400 and landed % 64 == 48

    def test_no_cells_means_no_scan(self):
        hook = _cell_scan_hook([], s_min=16)
        assert hook(0) is None

"""Tests for the memory-mapped series store.

The contract under test: a store round-trips a collection exactly
(float64, bit-for-bit), attaches read-only without copies, validates
its manifest before trusting it, and serves pool workers through the
path-only transport with reports byte-identical to every other path.
"""

import json

import numpy as np
import pytest

from repro.analysis.pairwise import scan_pairs
from repro.analysis.screen_state import ScreenGeometry, batched_screen_scores
from repro.analysis.store import (
    DATA_FILENAME,
    MANIFEST_FILENAME,
    SCREEN_DATA_FILENAME,
    SCREEN_MANIFEST_FILENAME,
    STORE_SCHEMA,
    SeriesStore,
)
from repro.core.config import TycosConfig


@pytest.fixture
def collection(rng):
    n = 240
    base = np.cumsum(rng.normal(size=n))
    return {
        "a": base + rng.normal(scale=0.1, size=n),
        "b": np.roll(base, 4) + rng.normal(scale=0.1, size=n),
        "c": rng.normal(size=n),
    }


class TestRoundTrip:
    def test_write_open_round_trips_exactly(self, tmp_path, collection):
        store = SeriesStore.write(tmp_path / "store", collection)
        assert store.names == list(collection)
        assert store.length == 240
        assert len(store) == 3
        for name, values in collection.items():
            assert name in store
            assert np.array_equal(store[name], values)

    def test_reopen_matches(self, tmp_path, collection):
        SeriesStore.write(tmp_path / "store", collection)
        reopened = SeriesStore.open(tmp_path / "store")
        for name, values in collection.items():
            assert np.array_equal(reopened[name], values)

    def test_series_mapping_shape(self, tmp_path, collection):
        store = SeriesStore.write(tmp_path / "store", collection)
        series = store.series()
        assert list(series) == list(collection)
        assert list(iter(store)) == list(collection)
        for name in collection:
            assert np.array_equal(series[name], collection[name])

    def test_views_are_read_only(self, tmp_path, collection):
        store = SeriesStore.write(tmp_path / "store", collection)
        view = store["a"]
        with pytest.raises(ValueError):
            view[0] = 1.0
        with pytest.raises(ValueError):
            store.series()["b"][3] = 2.0

    def test_int_input_converted_to_float64(self, tmp_path):
        store = SeriesStore.write(tmp_path / "store", {"i": np.arange(10)})
        assert store["i"].dtype == np.float64
        assert np.array_equal(store["i"], np.arange(10.0))

    def test_unknown_name_raises_keyerror(self, tmp_path, collection):
        store = SeriesStore.write(tmp_path / "store", collection)
        with pytest.raises(KeyError, match="zzz"):
            store["zzz"]


class TestWriteValidation:
    def test_rejects_empty_collection(self, tmp_path):
        with pytest.raises(ValueError, match="empty"):
            SeriesStore.write(tmp_path / "store", {})

    def test_rejects_mismatched_lengths(self, tmp_path, rng):
        series = {"a": rng.normal(size=10), "b": rng.normal(size=12)}
        with pytest.raises(ValueError, match="share a length"):
            SeriesStore.write(tmp_path / "store", series)

    def test_rejects_zero_length_series(self, tmp_path):
        with pytest.raises(ValueError, match="zero-length"):
            SeriesStore.write(tmp_path / "store", {"a": np.empty(0)})


class TestManifestValidation:
    def _write(self, tmp_path, collection):
        SeriesStore.write(tmp_path / "store", collection)
        return tmp_path / "store"

    def _patch_manifest(self, directory, **changes):
        path = directory / MANIFEST_FILENAME
        manifest = json.loads(path.read_text())
        manifest.update(changes)
        path.write_text(json.dumps(manifest))

    def test_missing_manifest(self, tmp_path, collection):
        directory = self._write(tmp_path, collection)
        (directory / MANIFEST_FILENAME).unlink()
        with pytest.raises(FileNotFoundError, match="not a series store"):
            SeriesStore.open(directory)

    def test_missing_data_file(self, tmp_path, collection):
        directory = self._write(tmp_path, collection)
        (directory / DATA_FILENAME).unlink()
        with pytest.raises(FileNotFoundError, match="not a series store"):
            SeriesStore.open(directory)

    def test_malformed_json(self, tmp_path, collection):
        directory = self._write(tmp_path, collection)
        (directory / MANIFEST_FILENAME).write_text("{not json")
        with pytest.raises(ValueError, match="malformed manifest"):
            SeriesStore.open(directory)

    def test_unknown_schema(self, tmp_path, collection):
        directory = self._write(tmp_path, collection)
        self._patch_manifest(directory, schema="tycos-store/99")
        with pytest.raises(ValueError, match="unknown store schema"):
            SeriesStore.open(directory)

    def test_unsupported_dtype(self, tmp_path, collection):
        directory = self._write(tmp_path, collection)
        self._patch_manifest(directory, dtype="float32")
        with pytest.raises(ValueError, match="unsupported dtype"):
            SeriesStore.open(directory)

    def test_duplicate_names(self, tmp_path, collection):
        directory = self._write(tmp_path, collection)
        self._patch_manifest(directory, series=["a", "a", "b"])
        with pytest.raises(ValueError, match="repeats series names"):
            SeriesStore.open(directory)

    def test_size_mismatch(self, tmp_path, collection):
        directory = self._write(tmp_path, collection)
        self._patch_manifest(directory, length=9999)
        with pytest.raises(ValueError, match="does not match manifest"):
            SeriesStore.open(directory)

    def test_schema_constant_is_declared(self, tmp_path, collection):
        directory = self._write(tmp_path, collection)
        manifest = json.loads((directory / MANIFEST_FILENAME).read_text())
        assert manifest["schema"] == STORE_SCHEMA


class TestPoolAttach:
    """Pool workers attach a store by path: the report must be
    byte-identical to the serial scan over the in-memory collection."""

    def test_store_transport_matches_serial(self, tmp_path, collection):
        from repro.analysis.parallel import scan_pairs_parallel

        config = TycosConfig(sigma=0.3, s_min=8, s_max=40, td_max=6, jitter=1e-6, seed=1)
        store = SeriesStore.write(tmp_path / "store", collection)
        serial = scan_pairs(collection, config)
        pooled = scan_pairs_parallel(
            store.series(),
            config,
            n_jobs=2,
            force_parallel=True,
            store_path=store.path,
        )
        assert (pooled.findings, pooled.skipped, pooled.failures) == (
            serial.findings,
            serial.skipped,
            serial.failures,
        )

    def test_store_views_search_like_arrays(self, tmp_path, collection):
        config = TycosConfig(sigma=0.3, s_min=8, s_max=40, td_max=6, jitter=1e-6, seed=1)
        store = SeriesStore.write(tmp_path / "store", collection)
        from_store = scan_pairs(store.series(), config)
        from_memory = scan_pairs(collection, config)
        assert from_store.findings == from_memory.findings


class TestScreenCache:
    """The screen-state cache: built once, attached zero-copy after, and
    invalidated by the series fingerprint -- never served stale."""

    _GEOMETRY = ScreenGeometry(length=240, window=64, td_max=4)

    def _scores(self, states):
        names = list(states)
        pairs = [(i, j) for i in range(len(names)) for j in range(i + 1, len(names))]
        return batched_screen_scores([states[n] for n in names], pairs, self._GEOMETRY)

    def test_first_call_writes_the_cache(self, tmp_path, collection):
        store = SeriesStore.write(tmp_path / "store", collection)
        store.screen_states(self._GEOMETRY)
        assert (store.path / SCREEN_DATA_FILENAME).is_file()
        assert json.loads((store.path / SCREEN_MANIFEST_FILENAME).read_text())[
            "fingerprint"
        ] == store.fingerprint()

    def test_cached_states_score_identically(self, tmp_path, collection):
        store = SeriesStore.write(tmp_path / "store", collection)
        fresh = self._scores(store.screen_states(self._GEOMETRY))  # builds + writes
        reopened = SeriesStore.open(store.path)
        cached = self._scores(reopened.screen_states(self._GEOMETRY))  # attaches
        assert cached == fresh

    def test_rewritten_data_invalidates_the_cache(self, tmp_path, collection):
        directory = tmp_path / "store"
        store = SeriesStore.write(directory, collection)
        store.screen_states(self._GEOMETRY)
        stale = (directory / SCREEN_DATA_FILENAME).read_bytes()
        changed = {name: values + 1.0 for name, values in collection.items()}
        rewritten = SeriesStore.write(directory, changed)
        states = rewritten.screen_states(self._GEOMETRY)
        assert (directory / SCREEN_DATA_FILENAME).read_bytes() != stale
        expected = SeriesStore.open(directory).screen_states(self._GEOMETRY)
        assert self._scores(states) == self._scores(expected)

    def test_write_false_leaves_no_files(self, tmp_path, collection):
        store = SeriesStore.write(tmp_path / "store", collection)
        store.screen_states(self._GEOMETRY, write=False)
        assert not (store.path / SCREEN_DATA_FILENAME).exists()
        assert not (store.path / SCREEN_MANIFEST_FILENAME).exists()

    def test_unwritable_cache_serves_in_memory(self, tmp_path, collection, monkeypatch):
        store = SeriesStore.write(tmp_path / "store", collection)

        def refuse(states, geometry):
            raise OSError("read-only directory")

        monkeypatch.setattr(store, "_write_screen_cache", refuse)
        states = store.screen_states(self._GEOMETRY)
        assert not (store.path / SCREEN_DATA_FILENAME).exists()
        assert list(states) == store.names
        assert self._scores(states) == self._scores(
            SeriesStore.open(store.path).screen_states(self._GEOMETRY, write=False)
        )

    def test_corrupt_manifest_is_rebuilt(self, tmp_path, collection):
        store = SeriesStore.write(tmp_path / "store", collection)
        first = self._scores(store.screen_states(self._GEOMETRY))
        (store.path / SCREEN_MANIFEST_FILENAME).write_text("not json")
        again = SeriesStore.open(store.path).screen_states(self._GEOMETRY)
        assert self._scores(again) == first

    def test_geometry_length_must_match_store(self, tmp_path, collection):
        store = SeriesStore.write(tmp_path / "store", collection)
        with pytest.raises(ValueError, match="does not match store length"):
            store.screen_states(ScreenGeometry(length=99, window=10, td_max=1))

    def test_abstaining_geometry_is_not_cached(self, tmp_path, collection):
        store = SeriesStore.write(tmp_path / "store", collection)
        states = store.screen_states(ScreenGeometry(length=240, window=999, td_max=1))
        assert list(states) == store.names
        assert not (store.path / SCREEN_DATA_FILENAME).exists()

"""Tests for the segmented intra-pair search and its deterministic stitch.

The contract under test: for any fixed ``n_segments`` the process-pool
path reproduces the sequential reference stitcher bit-exactly (same
windows, same MI/NMI floats, same order), and ``n_segments=1`` reproduces
the classic whole-series search exactly.
"""

import numpy as np
import pytest

from repro.analysis.segmented import search_segmented
from repro.core.config import TycosConfig
from repro.core.segmentation import segment_spans
from repro.core.tycos import Tycos
from repro.core.window import TimeDelayWindow
from repro.experiments.similarity import detects


def _config(**kwargs):
    defaults = dict(
        sigma=0.3,
        s_min=8,
        s_max=60,
        td_max=10,
        jitter=1e-6,
        init_delay_step=1,
        significance_permutations=10,
        seed=3,
    )
    defaults.update(kwargs)
    return TycosConfig(**defaults)


def _coupled_pair(rng, n=900):
    """Noise with several delayed-copy episodes scattered along the pair."""
    x = rng.uniform(0, 1, n)
    y = rng.uniform(0, 1, n)
    for start, m, delay in ((60, 70, 4), (330, 90, -3), (640, 80, 6)):
        seg = rng.uniform(0, 1, m)
        x[start : start + m] = seg
        y[start + delay : start + delay + m] = seg + 0.01 * rng.normal(size=m)
    return x, y


def _signature(result):
    """Everything the byte-identical contract covers, in order."""
    return [(r.window.key(), r.mi, r.nmi) for r in result.windows]


class TestSingleSegmentEquivalence:
    def test_n_segments_1_matches_plain_search(self, rng):
        x, y = _coupled_pair(rng)
        cfg = _config()
        plain = Tycos(cfg).search(x, y)
        seg = search_segmented(x, y, cfg, n_segments=1)
        assert _signature(seg) == _signature(plain)
        assert seg.stats.segments == 1
        assert seg.stats.stitch_dedups == 0
        assert seg.stats.stitch_rescores == 0


class TestSequentialParallelEquivalence:
    @pytest.mark.parametrize("n_segments", [2, 4, 7])
    def test_parallel_matches_sequential_reference(self, rng, n_segments):
        x, y = _coupled_pair(rng)
        cfg = _config()
        reference = search_segmented(x, y, cfg, n_segments=n_segments, n_jobs=1)
        parallel = search_segmented(
            x, y, cfg, n_segments=n_segments, n_jobs=2, force_parallel=True
        )
        assert _signature(parallel) == _signature(reference)
        assert parallel.stats.segments == reference.stats.segments
        assert parallel.stats.stitch_dedups == reference.stats.stitch_dedups
        assert parallel.stats.stitch_rescores == reference.stats.stitch_rescores

    def test_pickle_transport_matches_shared_memory(self, rng):
        x, y = _coupled_pair(rng)
        cfg = _config()
        shm = search_segmented(x, y, cfg, n_segments=2, n_jobs=2, force_parallel=True)
        pickled = search_segmented(
            x,
            y,
            cfg,
            n_segments=2,
            n_jobs=2,
            use_shared_memory=False,
            force_parallel=True,
        )
        assert _signature(pickled) == _signature(shm)

    def test_one_core_fallback_matches_reference_and_sets_flag(self, rng, monkeypatch):
        import repro.analysis.parallel as parallel_mod

        x, y = _coupled_pair(rng)
        cfg = _config()
        reference = search_segmented(x, y, cfg, n_segments=3, n_jobs=1)
        monkeypatch.setattr(parallel_mod.os, "cpu_count", lambda: 1)
        fallback = search_segmented(x, y, cfg, n_segments=3, n_jobs=2)
        assert _signature(fallback) == _signature(reference)
        assert fallback.stats.serial_fallback is True
        assert reference.stats.serial_fallback is False


class TestBoundaryContainment:
    def test_window_straddling_segment_edge_is_found(self, rng):
        """A planted relation astride the seam proves the containment lemma.

        With n=800 and two segments the spans are (0, 453) and (348, 800)
        (overlap zone [348, 453)); the relation planted at x[370:441] /
        y[373:444] straddles the midpoint 400 and is whole only thanks to
        the overlap.
        """
        cfg = TycosConfig(
            sigma=0.5,
            s_min=20,
            s_max=80,
            td_max=5,
            jitter=1e-6,
            init_delay_step=1,
            significance_permutations=10,
            seed=0,
        )
        n = 800
        spans = segment_spans(n, 2, cfg.segment_overlap())
        assert spans == [(0, 453), (348, 800)]
        x = rng.uniform(0, 1, n)
        y = rng.uniform(0, 1, n)
        seg = rng.uniform(0, 1, 71)
        x[370:441] = seg
        y[373:444] = seg + 0.01 * rng.normal(size=71)
        result = search_segmented(x, y, cfg, n_segments=2)
        found = [r.window for r in result.windows]
        assert detects(found, TimeDelayWindow(370, 440, delay=3))


class TestStitchAccounting:
    def test_stats_track_segments_and_stitch_work(self, rng):
        x, y = _coupled_pair(rng)
        result = search_segmented(x, y, _config(), n_segments=4)
        assert result.stats.segments == 4
        assert result.stats.stitch_rescores >= result.stats.stitch_dedups >= 0
        assert result.stats.windows_evaluated > 0
        assert result.stats.restarts > 0

    def test_short_series_runs_fewer_segments(self, rng):
        cfg = _config()
        n = cfg.segment_overlap() - 5  # shorter than one overlap: single span
        x = rng.uniform(0, 1, n)
        y = rng.uniform(0, 1, n)
        result = search_segmented(x, y, cfg, n_segments=8)
        assert result.stats.segments == 1

    def test_rescored_windows_have_finite_scores(self, rng):
        x, y = _coupled_pair(rng)
        result = search_segmented(x, y, _config(), n_segments=4)
        for r in result.windows:
            assert np.isfinite(r.mi)
            assert np.isfinite(r.nmi)


class TestEntryPoints:
    def test_tycos_search_delegates_on_n_segments(self, rng):
        x, y = _coupled_pair(rng)
        cfg = _config()
        direct = search_segmented(x, y, cfg, n_segments=3)
        via_engine = Tycos(cfg).search(x, y, n_segments=3)
        assert _signature(via_engine) == _signature(direct)
        assert via_engine.stats.segments == direct.stats.segments

    def test_config_driven_segmentation(self, rng):
        x, y = _coupled_pair(rng)
        cfg = _config(n_segments=3)
        explicit = search_segmented(x, y, _config(), n_segments=3)
        implicit = Tycos(cfg).search(x, y)
        assert _signature(implicit) == _signature(explicit)

    def test_rejects_bad_segment_count(self, rng):
        x = rng.uniform(0, 1, 200)
        y = rng.uniform(0, 1, 200)
        with pytest.raises(ValueError, match="n_segments"):
            Tycos(_config()).search(x, y, n_segments=0)
        with pytest.raises(ValueError, match="n_segments"):
            search_segmented(x, y, _config(), n_segments=-2)

    def test_requires_config_or_engine(self, rng):
        x = rng.uniform(0, 1, 200)
        y = rng.uniform(0, 1, 200)
        with pytest.raises(ValueError, match="config or an engine"):
            search_segmented(x, y)

    def test_engine_variant_flags_inherited(self, rng):
        """A non-default engine's flags survive segmentation untouched."""
        x, y = _coupled_pair(rng)
        cfg = _config()
        engine = Tycos(cfg, use_noise=False, use_incremental=False)
        reference = engine.search(x, y)
        seg = search_segmented(x, y, engine=engine, n_segments=1)
        assert _signature(seg) == _signature(reference)

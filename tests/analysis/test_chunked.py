"""Tests for the chunked big-series search."""

import pytest

from repro.analysis.chunked import chunk_pair, search_chunked
from repro.core.config import TycosConfig
from repro.core.tycos import Tycos
from repro.core.window import TimeDelayWindow
from repro.experiments.similarity import detects


def _config(**kwargs):
    defaults = dict(
        sigma=0.5,
        s_min=20,
        s_max=80,
        td_max=5,
        init_delay_step=1,
        significance_permutations=10,
        seed=0,
    )
    defaults.update(kwargs)
    return TycosConfig(**defaults)


def _long_pair(rng, n=1200):
    """Two relations: one mid-chunk, one straddling a chunk boundary."""
    x = rng.uniform(0, 1, n)
    y = rng.uniform(0, 1, n)
    for start in (150, 570):  # 570..670 straddles the 600 boundary below
        seg = rng.uniform(0, 1, 100)
        x[start : start + 100] = seg
        y[start + 3 : start + 103] = seg + 0.01 * rng.normal(size=100)
    return x, y


class TestChunkPair:
    def test_chunks_cover_series(self, rng):
        x = rng.normal(size=1000)
        y = rng.normal(size=1000)
        chunks = list(chunk_pair(x, y, chunk=300, overlap=50))
        assert chunks[0][0] == 0
        assert chunks[-1][0] + chunks[-1][1].size == 1000
        # Consecutive chunks overlap by exactly `overlap`.
        for (o1, c1, _), (o2, __, ___) in zip(chunks, chunks[1:]):
            assert o2 == o1 + c1.size - 50

    def test_rejects_bad_overlap(self, rng):
        with pytest.raises(ValueError, match="exceed overlap"):
            list(chunk_pair(rng.normal(size=10), rng.normal(size=10), chunk=5, overlap=5))

    def test_single_chunk_when_series_short(self, rng):
        x = rng.normal(size=100)
        chunks = list(chunk_pair(x, x, chunk=300, overlap=50))
        assert len(chunks) == 1


class TestSearchChunked:
    def test_finds_relations_including_boundary_straddler(self, rng):
        x, y = _long_pair(rng)
        cfg = _config()
        overlap = cfg.s_max + cfg.td_max
        result = search_chunked(chunk_pair(x, y, chunk=600, overlap=overlap), cfg)
        found = [r.window for r in result.windows]
        assert detects(found, TimeDelayWindow(150, 249, delay=3))
        assert detects(found, TimeDelayWindow(570, 669, delay=3))
        assert result.chunks >= 2

    def test_matches_unchunked_search(self, rng):
        x, y = _long_pair(rng)
        cfg = _config()
        whole = Tycos(cfg).search(x, y)
        overlap = cfg.s_max + cfg.td_max
        chunked = search_chunked(chunk_pair(x, y, chunk=600, overlap=overlap), cfg)
        whole_regions = [r.window for r in whole.windows]
        for r in chunked.windows:
            # Every chunked window corresponds to a region the global
            # search also flags (the converse can differ at restarts).
            assert any(r.window.overlap_fraction(w) > 0 for w in whole_regions)

    def test_overlap_duplicates_resolved(self, rng):
        x, y = _long_pair(rng)
        cfg = _config()
        result = search_chunked(chunk_pair(x, y, chunk=600, overlap=cfg.s_max + cfg.td_max), cfg)
        windows = [r.window for r in result.windows]
        for i, a in enumerate(windows):
            for b in windows[i + 1 :]:
                assert not a.contains(b) and not b.contains(a)

    def test_short_chunks_skipped(self, rng):
        cfg = _config()
        chunks = [(0, rng.normal(size=5), rng.normal(size=5))]
        result = search_chunked(iter(chunks), cfg)
        assert len(result) == 0

    def test_mismatched_chunk_arrays_rejected(self, rng):
        cfg = _config()
        chunks = [(0, rng.normal(size=50), rng.normal(size=49))]
        with pytest.raises(ValueError, match="equal length"):
            search_chunked(iter(chunks), cfg)

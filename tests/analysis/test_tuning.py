"""Tests for the sigma tuning utilities."""

import numpy as np
import pytest

from repro.analysis.tuning import SigmaSweep, SigmaSweepPoint, sigma_sweep, suggest_sigma
from repro.core.config import TycosConfig


def _sweep_from_counts(counts):
    sigmas = np.linspace(0.1, 0.6, len(counts))
    return SigmaSweep(
        points=[
            SigmaSweepPoint(sigma=float(s), windows=int(c), mean_nmi=0.5, runtime_seconds=0.1)
            for s, c in zip(sigmas, counts)
        ]
    )


class TestSuggestSigma:
    def test_knee_of_plateauing_curve(self):
        # Counts collapse 50 -> 12 -> 10 -> 10: the cheapest sigma already
        # within tolerance of the strictest count is the second point.
        sweep = _sweep_from_counts([50, 12, 10, 10])
        sigma, _ = suggest_sigma(sweep)
        assert sigma == pytest.approx(sweep.points[1].sigma)

    def test_steadily_halving_curve_picks_near_the_end(self):
        sweep = _sweep_from_counts([64, 32, 16, 8])
        sigma, _ = suggest_sigma(sweep, stability=0.25)
        assert sigma == pytest.approx(sweep.points[-1].sigma)

    def test_gentle_decline_does_not_stop_at_start(self):
        # 18 -> 14 -> 9 -> 8 -> 6 -> 5: the weak tail must be cut; the
        # suggestion lands in the stable back half, never at the first point.
        sweep = _sweep_from_counts([18, 14, 9, 8, 6, 5])
        sigma, _ = suggest_sigma(sweep)
        assert sigma >= sweep.points[3].sigma

    def test_all_zero_curve(self):
        sweep = _sweep_from_counts([0, 0])
        sigma, _ = suggest_sigma(sweep)
        assert sigma == pytest.approx(sweep.points[0].sigma)

    def test_empty_sweep_rejected(self):
        with pytest.raises(ValueError, match="empty sweep"):
            suggest_sigma(SigmaSweep())

    def test_single_point(self):
        sweep = _sweep_from_counts([5])
        sigma, _ = suggest_sigma(sweep)
        assert sigma == pytest.approx(sweep.points[0].sigma)


class TestSigmaSweep:
    def test_counts_monotone_on_real_search(self, rng):
        x = rng.uniform(0, 1, 400)
        y = rng.uniform(0, 1, 400)
        seg = rng.uniform(0, 1, 120)
        x[150:270] = seg
        y[150:270] = seg + 0.01 * rng.normal(size=120)
        config = TycosConfig(sigma=0.3, s_min=20, s_max=160, td_max=2, seed=0)
        sweep = sigma_sweep(x, y, config, sigmas=(0.2, 0.5, 0.9))
        counts = sweep.counts()
        assert counts[0] >= counts[-1]
        assert len(sweep.points) == 3

    def test_subsample_limits_work(self, rng):
        x = rng.uniform(0, 1, 500)
        y = rng.uniform(0, 1, 500)
        config = TycosConfig(sigma=0.3, s_min=20, s_max=80, td_max=1, seed=0)
        sweep = sigma_sweep(x, y, config, sigmas=(0.5,), subsample=120)
        assert sweep.points[0].windows >= 0  # ran on the truncated pair

    def test_unsorted_sigmas_rejected(self, rng):
        config = TycosConfig(sigma=0.3, s_min=20, s_max=80, td_max=1)
        with pytest.raises(ValueError, match="ascending"):
            sigma_sweep(rng.normal(size=100), rng.normal(size=100), config, sigmas=(0.5, 0.2))

    def test_rendering(self):
        text = _sweep_from_counts([5, 3]).to_text()
        assert "Sigma sweep" in text

"""Tests for the all-pairs prescreen cascade.

The contract under test -- the recall gate the bench also enforces: a
cascade scan's surviving findings are byte-identical to the unscreened
``scan_pairs`` reference, every truly correlated pair survives the
screens on the tracked workload, the per-stage counters account for
every screened pair, and ``screen_margin=inf`` turns the cascade into
the plain scan exactly.
"""

import numpy as np
import pytest

from repro.analysis.cascade import (
    cascade_scan,
    coarse_nmi_score,
    fft_screen_score,
    main,
)
from repro.analysis.pairwise import prefilter_score, scan_pairs
from repro.core.config import TycosConfig


def _config(**kwargs):
    # sigma=0.5 / s_min=24 / 10 permutations keep finite-sample KSG noise
    # below sigma on the white-noise pairs, so the unscreened reference's
    # correlated set is the planted couplings, not estimator flukes --
    # the precondition for asserting that pruned pairs lose nothing.
    defaults = dict(
        sigma=0.5, s_min=24, s_max=48, td_max=6, jitter=1e-6, seed=1,
        significance_permutations=10,
    )
    defaults.update(kwargs)
    return TycosConfig(**defaults)


def _snapshot(report):
    return (report.findings, report.skipped, report.failures)


@pytest.fixture(scope="module")
def collection():
    """The tracked 8-series workload: 4 coupled, 4 independent noise."""
    rng = np.random.default_rng(77)
    n = 240
    base = np.cumsum(rng.normal(size=n))
    series = {}
    for i in range(4):
        series[f"coupled{i}"] = np.roll(base, i * 3) + rng.normal(scale=0.15, size=n)
    for i in range(4):
        series[f"noise{i}"] = rng.normal(size=n)
    return series


@pytest.fixture(scope="module")
def unscreened(collection):
    return scan_pairs(collection, _config())


class TestRecallParity:
    def test_surviving_findings_byte_identical(self, collection, unscreened):
        report = cascade_scan(collection, _config(), screen_window=120)
        reference = {(f.source, f.target): f for f in unscreened.findings}
        assert report.findings  # the screens must not flatten the workload
        for finding in report.findings:
            assert finding == reference[(finding.source, finding.target)]

    def test_correlated_pairs_survive(self, collection, unscreened):
        report = cascade_scan(collection, _config(), screen_window=120)
        surviving = {(f.source, f.target) for f in report.findings}
        for finding in unscreened.correlated():
            assert (finding.source, finding.target) in surviving

    def test_margin_inf_is_byte_equal_to_plain_scan(self, collection, unscreened):
        report = cascade_scan(collection, _config(), screen_margin=float("inf"))
        assert _snapshot(report) == _snapshot(unscreened)
        assert report.pairs_searched == report.pairs_screened
        assert report.pairs_pruned_fft == 0
        assert report.pairs_pruned_nmi == 0

    def test_noise_pairs_are_pruned(self, collection):
        report = cascade_scan(collection, _config(), screen_window=120)
        assert report.pairs_pruned_fft > 0
        pruned = set(report.skipped)
        assert ("noise0", "noise1") in pruned


class TestCounterAccounting:
    def test_counters_account_for_every_pair(self, collection):
        report = cascade_scan(collection, _config(), screen_window=120)
        assert report.pairs_screened == 28  # C(8, 2)
        assert (
            report.pairs_pruned_fft + report.pairs_pruned_nmi + report.pairs_searched
            == report.pairs_screened
        )
        assert report.pairs_searched == len(report.findings) + len(report.failures)
        assert len(report.skipped) == report.pairs_pruned_fft + report.pairs_pruned_nmi

    def test_plain_scan_leaves_counters_at_zero(self, unscreened):
        assert unscreened.pairs_screened == 0
        assert unscreened.pairs_searched == 0

    def test_ledger_rendered_in_report_text(self, collection):
        report = cascade_scan(collection, _config(), screen_window=120)
        text = report.to_text()
        assert f"{report.pairs_screened} pairs screened" in text
        assert f"{report.pairs_pruned_fft} pruned by the FFT screen" in text

    def test_explicit_pairs_and_margin_zero(self, collection):
        pairs = [("noise0", "noise1"), ("coupled0", "coupled1")]
        report = cascade_scan(
            collection, _config(), pairs=pairs, screen_margin=0.0, screen_window=120
        )
        assert report.pairs_screened == 2
        assert report.skipped == [("noise0", "noise1")]
        assert [(f.source, f.target) for f in report.findings] == [("coupled0", "coupled1")]

    def test_rejects_negative_margin(self, collection):
        with pytest.raises(ValueError, match="screen_margin"):
            cascade_scan(collection, _config(), screen_margin=-0.1)

    def test_rejects_unknown_pair(self, collection):
        with pytest.raises(KeyError, match="zzz"):
            cascade_scan(collection, _config(), pairs=[("zzz", "noise0")])


class TestTopK:
    def test_top_k_ranks_strongest_first(self, collection):
        report = cascade_scan(collection, _config(), screen_window=120)
        top = report.top(2)
        assert len(top) == 2
        assert top[0].best_nmi >= top[1].best_nmi
        assert top == report.correlated()[:2]

    def test_top_zero_is_empty(self, unscreened):
        assert unscreened.top(0) == []

    def test_top_rejects_negative(self, unscreened):
        with pytest.raises(ValueError, match=">= 0"):
            unscreened.top(-1)


class TestScreens:
    def test_coupled_pair_scores_high(self, collection):
        score = fft_screen_score(
            collection["coupled0"], collection["coupled1"], window=120, td_max=6
        )
        assert score > 0.9

    def test_noise_pair_scores_low(self, collection):
        score = fft_screen_score(
            collection["noise0"], collection["noise1"], window=120, td_max=6
        )
        assert score < 0.6

    def test_anticorrelated_pair_scores_high(self, rng):
        x = np.cumsum(rng.normal(size=300))
        score = fft_screen_score(x, -x + rng.normal(scale=0.05, size=300), 100, 0)
        assert score > 0.9

    def test_short_series_abstain(self, rng):
        # No window fits and no MASS probe runs: the screen must return
        # inf (pass), never a prunable 0.
        score = fft_screen_score(rng.normal(size=5), rng.normal(size=5), 50, 0)
        assert score == float("inf")

    def test_short_series_are_never_pruned(self, rng):
        series = {"a": rng.normal(size=6), "b": rng.normal(size=6)}
        config = _config(s_min=6, s_max=6, td_max=0)
        report = cascade_scan(series, config, screen_window=50)
        assert report.skipped == []
        assert report.pairs_searched == 1

    def test_prefilter_score_wraps_coarse_nmi(self, rng):
        x = np.cumsum(rng.normal(size=400))
        y = np.roll(x, 3) + rng.normal(scale=0.1, size=400)
        assert prefilter_score(x, y, td_max=4) == coarse_nmi_score(x, y, td_max=4)


class TestCli:
    @pytest.fixture
    def csv_file(self, tmp_path, rng):
        n = 240
        base = np.cumsum(rng.normal(size=n))
        columns = {
            "a": base + rng.normal(scale=0.1, size=n),
            "b": np.roll(base, 4) + rng.normal(scale=0.1, size=n),
            "c": rng.normal(size=n),
            "d": rng.normal(size=n),
        }
        path = tmp_path / "data.csv"
        with path.open("w") as handle:
            handle.write(",".join(columns) + "\n")
            for row in zip(*columns.values()):
                handle.write(",".join(f"{v:.6f}" for v in row) + "\n")
        return path

    _FAST = ["--s-min", "8", "--s-max", "40", "--td-max", "6",
             "--permutations", "0", "--screen-window", "120"]

    def test_screened_scan(self, csv_file, capsys):
        assert main([str(csv_file)] + self._FAST) == 0
        out = capsys.readouterr().out
        assert "pairs screened" in out
        assert "a -> b" in out

    def test_top_k_listing(self, csv_file, capsys):
        assert main([str(csv_file), "--top-k", "1"] + self._FAST) == 0
        out = capsys.readouterr().out
        assert "top 1 pairs:" in out

    def test_no_screen_mode(self, csv_file, capsys):
        assert main([str(csv_file), "--no-screen"] + self._FAST) == 0
        out = capsys.readouterr().out
        assert "pairs screened" not in out

    def test_store_pack_and_rescan(self, csv_file, tmp_path, capsys):
        store_dir = tmp_path / "packed.store"
        assert main([str(csv_file), "--store", str(store_dir)] + self._FAST) == 0
        first = capsys.readouterr().out
        # The packed store is itself a valid scan input.
        assert main([str(store_dir)] + self._FAST) == 0
        second = capsys.readouterr().out
        assert first == second

    def test_store_flag_rejected_for_store_input(self, csv_file, tmp_path, capsys):
        store_dir = tmp_path / "packed.store"
        assert main([str(csv_file), "--store", str(store_dir)] + self._FAST) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit):
            main([str(store_dir), "--store", str(tmp_path / "other")] + self._FAST)

"""Tests for the batched collection-level stage-1 screen.

The contract under test -- the TY121 bit-exactness gate of
``repro.analysis.screen_state``: every score produced by
``batched_screen_scores`` is bit-identical to the per-pair reference
``repro.analysis.cascade.fft_screen_score`` on the same pair, at every
block size, for odd collection sizes, through the pack/unpack cache
format, and in the abstaining short-series geometries.
"""

import numpy as np
import pytest

from repro.analysis.cascade import cascade_scan, fft_screen_score
from repro.analysis.screen_state import (
    ScreenGeometry,
    batched_screen_scores,
    build_screen_state,
    build_screen_states,
    pack_screen_state,
    screen_state_width,
    unpack_screen_state,
)
from repro.core.config import TycosConfig


def _collection(count, n, seed=31):
    """A mixed collection: coupled pairs, noise, and degenerate series."""
    rng = np.random.default_rng(seed)
    base = np.cumsum(rng.normal(size=n))
    series = {}
    for i in range(count):
        kind = i % 4
        if kind == 0:
            series[f"s{i}"] = np.roll(base, i) + rng.normal(scale=0.1, size=n)
        elif kind == 1:
            series[f"s{i}"] = rng.normal(size=n)
        elif kind == 2:
            series[f"s{i}"] = -base + rng.normal(scale=0.05, size=n)
        else:
            series[f"s{i}"] = np.ones(n)  # zero-variance: degenerate probes
    return series


def _all_pairs(names):
    return [(i, j) for i in range(len(names)) for j in range(i + 1, len(names))]


def _reference_scores(series, names, pairs, geometry):
    return [
        fft_screen_score(
            series[names[i]],
            series[names[j]],
            geometry.window,
            geometry.td_max,
            geometry.mass_probes,
        )
        for i, j in pairs
    ]


class TestBitExactness:
    """The gate: batched scores == per-pair fft_screen_score, bit for bit."""

    @pytest.mark.parametrize("count", [6, 7])  # even and odd collections
    def test_all_pairs_match_reference(self, count):
        series = _collection(count, n=160)
        names = list(series)
        geometry = ScreenGeometry(length=160, window=48, td_max=5)
        states = [build_screen_state(series[name], geometry) for name in names]
        pairs = _all_pairs(names)
        got = batched_screen_scores(states, pairs, geometry)
        want = _reference_scores(series, names, pairs, geometry)
        assert got == want

    @pytest.mark.parametrize("block", [1, 3, 7, 100])
    def test_block_size_never_changes_scores(self, block):
        # Block sizes straddling the boundary (the 21-pair workload splits
        # unevenly at 3 and 7, and 100 covers everything in one block)
        # must all produce the identical score list.
        series = _collection(7, n=140)
        names = list(series)
        geometry = ScreenGeometry(length=140, window=40, td_max=4)
        states = [build_screen_state(series[name], geometry) for name in names]
        pairs = _all_pairs(names)
        whole = batched_screen_scores(states, pairs, geometry)
        blocked = []
        for start in range(0, len(pairs), block):
            blocked.extend(
                batched_screen_scores(states, pairs[start : start + block], geometry)
            )
        assert blocked == whole
        assert whole == _reference_scores(series, names, pairs, geometry)

    def test_degenerate_series_in_a_block(self):
        # All-constant series exercise both the sigma_ok=False window mask
        # and the degenerate-query constant-profile branch.
        n = 120
        rng = np.random.default_rng(5)
        series = {
            "flat": np.ones(n),
            "zero": np.zeros(n),
            "noise": rng.normal(size=n),
        }
        names = list(series)
        geometry = ScreenGeometry(length=n, window=32, td_max=3)
        states = [build_screen_state(series[name], geometry) for name in names]
        pairs = _all_pairs(names)
        got = batched_screen_scores(states, pairs, geometry)
        assert got == _reference_scores(series, names, pairs, geometry)

    def test_no_mass_probes_is_pcc_only(self):
        series = _collection(4, n=100)
        names = list(series)
        geometry = ScreenGeometry(length=100, window=30, td_max=2, mass_probes=0)
        states = [build_screen_state(series[name], geometry) for name in names]
        pairs = _all_pairs(names)
        got = batched_screen_scores(states, pairs, geometry)
        assert got == _reference_scores(series, names, pairs, geometry)


class TestAbstention:
    def test_short_series_abstain_with_inf(self):
        # Series shorter than the window: the reference returns inf for
        # every pair, and so must the whole batched block.
        series = {"a": np.arange(5.0), "b": np.arange(5.0)[::-1], "c": np.ones(5)}
        geometry = ScreenGeometry(length=5, window=50, td_max=2)
        assert geometry.abstains
        states = build_screen_states(series, geometry)
        pairs = [(0, 1), (0, 2), (1, 2)]
        got = batched_screen_scores(list(states.values()), pairs, geometry)
        assert got == [float("inf")] * 3
        assert got == _reference_scores(series, list(series), pairs, geometry)

    def test_window_below_two_abstains(self):
        geometry = ScreenGeometry(length=50, window=1, td_max=2)
        assert geometry.abstains
        states = build_screen_states({"a": np.ones(50), "b": np.ones(50)}, geometry)
        got = batched_screen_scores(list(states.values()), [(0, 1)], geometry)
        assert got == [float("inf")]

    def test_empty_pair_block(self):
        geometry = ScreenGeometry(length=50, window=10, td_max=1)
        assert batched_screen_scores([], [], geometry) == []


class TestPackedFormat:
    def test_pack_unpack_round_trips_scores(self):
        series = _collection(5, n=130)
        names = list(series)
        geometry = ScreenGeometry(length=130, window=36, td_max=3)
        width = screen_state_width(geometry)
        fresh = [build_screen_state(series[name], geometry) for name in names]
        matrix = np.zeros((len(names), width), dtype=np.float64)
        for row, state in enumerate(fresh):
            pack_screen_state(state, geometry, matrix[row])
        unpacked = [unpack_screen_state(matrix[row], geometry) for row in range(len(names))]
        pairs = _all_pairs(names)
        assert batched_screen_scores(unpacked, pairs, geometry) == batched_screen_scores(
            fresh, pairs, geometry
        )

    def test_packed_fields_round_trip_bitwise(self):
        geometry = ScreenGeometry(length=90, window=20, td_max=2)
        state = build_screen_state(
            np.cumsum(np.random.default_rng(8).normal(size=90)), geometry
        )
        row = np.zeros(screen_state_width(geometry))
        pack_screen_state(state, geometry, row)
        back = unpack_screen_state(row, geometry)
        assert np.array_equal(back.xs, state.xs)
        assert np.array_equal(back.spectrum, state.spectrum)
        assert np.array_equal(back.query_spectra, state.query_spectra)
        assert np.array_equal(back.query_degenerate, state.query_degenerate)
        assert np.array_equal(back.sigma_ok, state.sigma_ok)
        assert np.array_equal(back.msig_safe, state.msig_safe)

    def test_abstaining_geometry_has_zero_width(self):
        assert screen_state_width(ScreenGeometry(length=5, window=50, td_max=2)) == 0


class TestGeometryValidation:
    def test_rejects_bad_lengths(self):
        with pytest.raises(ValueError, match="length"):
            ScreenGeometry(length=0, window=10, td_max=1)
        with pytest.raises(ValueError, match="td_max"):
            ScreenGeometry(length=10, window=5, td_max=-1)
        with pytest.raises(ValueError, match="mass_probes"):
            ScreenGeometry(length=10, window=5, td_max=1, mass_probes=-1)

    def test_rejects_mismatched_series_length(self):
        geometry = ScreenGeometry(length=100, window=10, td_max=1)
        with pytest.raises(ValueError, match="does not match"):
            build_screen_state(np.ones(99), geometry)


class TestCascadeIntegration:
    """The batched stage 1 slots into cascade_scan without changing it."""

    def _config(self):
        return TycosConfig(
            sigma=0.5, s_min=24, s_max=48, td_max=6, jitter=1e-6, seed=1,
            significance_permutations=5,
        )

    def test_block_size_never_changes_the_report(self):
        series = _collection(6, n=240, seed=9)
        reports = [
            cascade_scan(series, self._config(), screen_window=120, screen_block=block)
            for block in (1, 4, 256)
        ]
        first = reports[0]
        for report in reports[1:]:
            assert report.findings == first.findings
            assert report.skipped == first.skipped
            assert report.pairs_pruned_fft == first.pairs_pruned_fft
            assert report.pairs_pruned_nmi == first.pairs_pruned_nmi

    def test_pooled_screen_matches_serial(self):
        series = _collection(6, n=240, seed=9)
        serial = cascade_scan(series, self._config(), screen_window=120)
        pooled = cascade_scan(
            series,
            self._config(),
            screen_window=120,
            screen_block=4,
            n_jobs=2,
            force_parallel=True,
        )
        assert pooled.findings == serial.findings
        assert pooled.skipped == serial.skipped
        assert pooled.pairs_pruned_fft == serial.pairs_pruned_fft

    def test_phase_seconds_recorded(self):
        series = _collection(4, n=240, seed=9)
        report = cascade_scan(series, self._config(), screen_window=120)
        assert set(report.phase_seconds) == {"screen", "search"}
        assert all(v >= 0.0 for v in report.phase_seconds.values())
        assert "phase screen" not in report.to_text()
        assert "phase screen" in report.to_text(include_timings=True)

    def test_rejects_bad_screen_block(self):
        series = _collection(4, n=240, seed=9)
        with pytest.raises(ValueError, match="screen_block"):
            cascade_scan(series, self._config(), screen_block=0)

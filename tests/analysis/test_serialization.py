"""Tests for JSON result serialization."""

import json

import pytest

from repro.analysis.serialization import (
    FORMAT_VERSION,
    config_from_dict,
    config_to_dict,
    load_result,
    result_from_dict,
    result_to_dict,
    save_result,
)
from repro.core.config import TycosConfig
from repro.core.results import WindowResult
from repro.core.tycos import SearchStats, TycosResult
from repro.core.window import TimeDelayWindow


def _sample_result():
    return TycosResult(
        windows=[
            WindowResult(window=TimeDelayWindow(10, 40, delay=5), mi=1.2, nmi=0.8),
            WindowResult(window=TimeDelayWindow(100, 160, delay=-3), mi=0.7, nmi=0.55),
        ],
        stats=SearchStats(
            windows_evaluated=1234,
            restarts=7,
            noise_prunes=12,
            runtime_seconds=3.25,
        ),
    )


class TestResultRoundTrip:
    def test_dict_round_trip(self):
        original = _sample_result()
        restored = result_from_dict(result_to_dict(original))
        assert [r.window for r in restored.windows] == [r.window for r in original.windows]
        assert [r.mi for r in restored.windows] == [r.mi for r in original.windows]
        assert restored.stats.windows_evaluated == 1234
        assert restored.stats.runtime_seconds == pytest.approx(3.25)

    def test_file_round_trip(self, tmp_path):
        original = _sample_result()
        path = tmp_path / "result.json"
        save_result(original, path, config=TycosConfig(sigma=0.4))
        restored = load_result(path)
        assert len(restored.windows) == 2
        payload = json.loads(path.read_text())
        assert payload["format_version"] == FORMAT_VERSION
        assert payload["config"]["sigma"] == 0.4

    def test_json_is_plain_types(self):
        payload = result_to_dict(_sample_result())
        json.dumps(payload)  # must not raise

    def test_version_mismatch_rejected(self):
        payload = result_to_dict(_sample_result())
        payload["format_version"] = 999
        with pytest.raises(ValueError, match="format_version"):
            result_from_dict(payload)

    def test_empty_result(self):
        restored = result_from_dict(result_to_dict(TycosResult()))
        assert restored.windows == []


class TestConfigRoundTrip:
    def test_round_trip_preserves_fields(self):
        config = TycosConfig(
            sigma=0.35, s_min=24, s_max=300, td_max=17, jitter=1e-4,
            significance_permutations=9, init_delay_step=3,
        )
        restored = config_from_dict(config_to_dict(config))
        assert restored == config

    def test_unknown_fields_rejected(self):
        payload = config_to_dict(TycosConfig())
        payload["fancy_mode"] = True
        with pytest.raises(ValueError, match="unknown config fields"):
            config_from_dict(payload)

    def test_end_to_end_with_real_search(self, tmp_path, rng):
        x = rng.uniform(0, 1, 200)
        y = x + 0.01 * rng.normal(size=200)
        config = TycosConfig(sigma=0.4, s_min=20, s_max=100, td_max=2, seed=0)
        from repro.core.tycos import tycos_lmn

        result = tycos_lmn(config).search(x, y)
        path = tmp_path / "search.json"
        save_result(result, path, config=config)
        restored = load_result(path)
        assert [r.window for r in restored.windows] == [r.window for r in result.windows]
"""Tests for CSV ingestion and the tycos-search CLI."""

import pytest

from repro.analysis.csvio import main, read_csv_series


@pytest.fixture
def csv_file(tmp_path, rng):
    """A CSV with a lag-3 coupled pair (a, b) and a noise column."""
    n = 300
    seg = rng.uniform(0, 1, 100)
    a = rng.uniform(0, 1, n)
    b = rng.uniform(0, 1, n)
    a[80:180] = seg
    b[83:183] = seg + 0.01 * rng.normal(size=100)
    noise = rng.uniform(0, 1, n)
    path = tmp_path / "data.csv"
    with path.open("w") as handle:
        handle.write("a,b,noise\n")
        for row in zip(a, b, noise):
            handle.write(",".join(f"{v:.6f}" for v in row) + "\n")
    return path


class TestReadCsv:
    def test_reads_all_columns(self, csv_file):
        series = read_csv_series(csv_file)
        assert set(series) == {"a", "b", "noise"}
        assert series["a"].size == 300

    def test_reads_subset(self, csv_file):
        series = read_csv_series(csv_file, columns=["b"])
        assert set(series) == {"b"}

    def test_unknown_column(self, csv_file):
        with pytest.raises(ValueError, match="unknown columns"):
            read_csv_series(csv_file, columns=["zz"])

    def test_empty_file(self, tmp_path):
        empty = tmp_path / "empty.csv"
        empty.write_text("")
        with pytest.raises(ValueError, match="empty file"):
            read_csv_series(empty)

    def test_non_numeric_cell(self, tmp_path):
        bad = tmp_path / "bad.csv"
        bad.write_text("a,b\n1.0,2.0\nx,3.0\n")
        with pytest.raises(ValueError, match="not numeric"):
            read_csv_series(bad)

    def test_missing_cell(self, tmp_path):
        bad = tmp_path / "short_row.csv"
        bad.write_text("a,b\n1.0,2.0\n3.0\n")
        with pytest.raises(ValueError, match="not numeric"):
            read_csv_series(bad)


class TestCli:
    def test_single_pair_mode(self, csv_file, capsys):
        code = main([
            str(csv_file), "--x", "a", "--y", "b",
            "--sigma", "0.45", "--s-min", "20", "--s-max", "120",
            "--td-max", "5", "--delay-step", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "correlated windows" in out
        assert "delay=+3" in out

    def test_all_pairs_mode(self, csv_file, capsys):
        code = main([
            str(csv_file), "--all-pairs",
            "--sigma", "0.45", "--s-min", "20", "--s-max", "120",
            "--td-max", "5", "--delay-step", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "a -> b" in out

    def test_single_pair_segmented(self, csv_file, capsys):
        code = main([
            str(csv_file), "--x", "a", "--y", "b",
            "--sigma", "0.45", "--s-min", "20", "--s-max", "60",
            "--td-max", "5", "--delay-step", "1", "--n-segments", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "over 2 segments" in out
        assert "delay=+3" in out

    def test_requires_pair_or_all(self, csv_file):
        with pytest.raises(SystemExit):
            main([str(csv_file)])

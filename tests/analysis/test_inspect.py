"""Tests for window inspection."""

import numpy as np
import pytest

from repro.analysis.inspect import ascii_scatter, inspect_window
from repro.core.window import TimeDelayWindow


class TestAsciiScatter:
    def test_dimensions(self, rng):
        plot = ascii_scatter(rng.normal(size=100), rng.normal(size=100), width=30, height=10)
        lines = plot.splitlines()
        assert len(lines) == 12  # 10 rows + 2 borders
        assert all(len(line) == 32 for line in lines)

    def test_diagonal_relation_renders_diagonally(self):
        x = np.linspace(0, 1, 200)
        plot = ascii_scatter(x, x, width=20, height=20)
        lines = plot.splitlines()[1:-1]  # strip borders
        # Top row (largest y) has marks on the right, bottom row on the left.
        top = lines[0]
        bottom = lines[-1]
        assert top.rstrip("|").rstrip().endswith(("#", "*", ":", "."))
        assert bottom[1:].lstrip("|").startswith(("#", "*", ":", "."))

    def test_constant_input(self):
        plot = ascii_scatter(np.ones(10), np.ones(10))
        assert "#" in plot  # all mass in one cell

    def test_rejects_bad_dims(self, rng):
        with pytest.raises(ValueError, match=">= 2"):
            ascii_scatter(rng.normal(size=10), rng.normal(size=10), width=1)

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            ascii_scatter(np.empty(0), np.empty(0))


class TestInspectWindow:
    def test_nonlinear_signature(self, rng):
        # Quadratic dependence: high nmi, near-zero Pearson.
        n = 300
        x = rng.uniform(-1, 1, n)
        y = x * x + 0.01 * rng.normal(size=n)
        window = TimeDelayWindow(0, n - 1)
        inspection = inspect_window(x, y, window)
        assert inspection.nmi > 0.4
        assert abs(inspection.pearson) < 0.3
        assert "non-linear" in inspection.to_text()

    def test_linear_signature(self, rng):
        n = 300
        x = rng.uniform(0, 1, n)
        y = 2 * x + 0.01 * rng.normal(size=n)
        inspection = inspect_window(x, y, TimeDelayWindow(0, n - 1))
        assert inspection.pearson > 0.95
        assert "linear-ish" in inspection.to_text()

    def test_delayed_window_extraction(self, rng):
        n = 200
        x = rng.uniform(0, 1, n)
        y = np.empty(n)
        y[5:] = x[:-5]
        y[:5] = rng.uniform(0, 1, 5)
        inspection = inspect_window(x, y, TimeDelayWindow(20, 150, delay=5))
        assert inspection.nmi > 0.5

    def test_estimators_agree_in_ballpark(self, correlated_gaussian):
        x, y = correlated_gaussian
        inspection = inspect_window(x, y, TimeDelayWindow(0, x.size - 1))
        assert inspection.ksg_mi == pytest.approx(inspection.histogram_mi, abs=0.25)

"""Tests for the exact brute-force baseline."""

import numpy as np
import pytest

from repro.core.brute_force import brute_force_search
from repro.core.config import TycosConfig
from repro.core.search_space import exact_count
from repro.core.window import TimeDelayWindow
from repro.experiments.similarity import detects


def _config(**kwargs):
    defaults = dict(sigma=0.5, s_min=10, s_max=24, td_max=3, significance_permutations=0)
    defaults.update(kwargs)
    return TycosConfig(**defaults)


def _planted(seed=0, n=160, start=60, m=40, delay=2):
    rng = np.random.default_rng(seed)
    x = rng.uniform(0, 1, n)
    y = rng.uniform(0, 1, n)
    seg = rng.uniform(0, 1, m)
    x[start : start + m] = seg
    y[start + delay : start + delay + m] = seg + 0.01 * rng.normal(size=m)
    return x, y


class TestBruteForce:
    def test_evaluates_entire_search_space(self):
        x, y = _planted()
        cfg = _config()
        res = brute_force_search(x, y, cfg, aggregate=False)
        assert res.stats.windows_evaluated == exact_count(len(x), cfg.s_min, cfg.s_max, cfg.td_max)

    def test_finds_planted_window(self):
        x, y = _planted()
        res = brute_force_search(x, y, _config(), aggregate=True)
        truth = TimeDelayWindow(60, 99, delay=2)
        assert detects([r.window for r in res.windows], truth)

    def test_incremental_and_batch_paths_agree(self):
        x, y = _planted(n=120)
        cfg = _config()
        fast = brute_force_search(x, y, cfg, use_incremental=True, aggregate=False)
        slow = brute_force_search(x, y, cfg, use_incremental=False, aggregate=False)
        assert [r.window for r in fast.windows] == [r.window for r in slow.windows]
        for a, b in zip(fast.windows, slow.windows):
            assert a.mi == pytest.approx(b.mi, abs=1e-12)

    def test_all_raw_windows_above_sigma(self):
        x, y = _planted()
        cfg = _config()
        res = brute_force_search(x, y, cfg, aggregate=False)
        for r in res.windows:
            assert r.nmi >= cfg.sigma or r.mi / max(r.nmi, 1e-9) >= 0  # nmi clamped
            assert r.window.is_feasible(len(x), cfg.s_min, cfg.s_max, cfg.td_max)

    def test_aggregation_merges_overlaps(self):
        x, y = _planted()
        raw = brute_force_search(x, y, _config(), aggregate=False)
        merged = brute_force_search(x, y, _config(), aggregate=True)
        assert len(merged.windows) <= max(1, len(raw.windows))
        windows = [r.window for r in merged.windows]
        for i, a in enumerate(windows):
            for b in windows[i + 1 :]:
                assert not a.overlaps(b)

    def test_nothing_found_on_strong_threshold(self):
        rng = np.random.default_rng(5)
        x = rng.uniform(0, 1, 100)
        y = rng.uniform(0, 1, 100)
        res = brute_force_search(x, y, _config(sigma=0.95), aggregate=True)
        assert len(res.windows) == 0

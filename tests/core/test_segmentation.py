"""Tests for the timeline segmentation geometry.

The load-bearing property is the containment lemma: with spans
overlapping by at least ``s_max + td_max``, every feasible window's
footprint (its X interval unioned with its shifted Y interval) lies
fully inside at least one span, so a per-span search never loses a
window to a boundary.
"""

import numpy as np
import pytest

from repro.core.config import TycosConfig
from repro.core.segmentation import overlap_zones, segment_spans, span_containing


class TestSegmentSpans:
    def test_single_segment_is_the_whole_timeline(self):
        assert segment_spans(1000, 1, 50) == [(0, 1000)]

    def test_short_series_collapses_to_one_span(self):
        assert segment_spans(40, 4, 50) == [(0, 40)]

    def test_cover_and_overlap(self):
        for n, k, overlap in [(1000, 2, 54), (1000, 4, 54), (997, 7, 31), (5000, 16, 300)]:
            spans = segment_spans(n, k, overlap)
            assert 1 <= len(spans) <= k
            assert spans[0][0] == 0
            assert spans[-1][1] == n
            for (lo, hi) in spans:
                assert 0 <= lo < hi <= n
            for (lo_a, hi_a), (lo_b, hi_b) in zip(spans, spans[1:]):
                assert lo_b > lo_a  # strictly advancing
                assert hi_a - lo_b >= min(overlap, n - lo_b)  # consecutive overlap

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError, match="n must be"):
            segment_spans(0, 2, 10)
        with pytest.raises(ValueError, match="n_segments"):
            segment_spans(100, 0, 10)
        with pytest.raises(ValueError, match="overlap"):
            segment_spans(100, 2, 0)


class TestContainmentLemma:
    def test_every_short_interval_is_contained(self, rng):
        """Any interval no longer than the overlap fits in some span."""
        for _ in range(25):
            n = int(rng.integers(50, 3000))
            k = int(rng.integers(1, 9))
            overlap = int(rng.integers(1, max(2, n // 2)))
            spans = segment_spans(n, k, overlap)
            for _ in range(40):
                length = int(rng.integers(1, overlap + 1))
                a = int(rng.integers(0, n - length + 1))
                assert span_containing(spans, a, a + length - 1) >= 0, (
                    f"[{a}, {a + length - 1}] lost by spans {spans} "
                    f"(n={n}, k={k}, overlap={overlap})"
                )

    def test_every_feasible_window_footprint_is_contained(self, rng):
        """The lemma instantiated with a config's window geometry."""
        config = TycosConfig(sigma=0.3, s_min=8, s_max=60, td_max=10)
        n = 1200
        spans = segment_spans(n, 5, config.segment_overlap())
        for _ in range(200):
            size = int(rng.integers(config.s_min, config.s_max + 1))
            delay = int(rng.integers(-config.td_max, config.td_max + 1))
            start = int(rng.integers(max(0, -delay), n - size + 1 - max(0, delay)))
            end = start + size - 1
            foot_lo = min(start, start + delay)
            foot_hi = max(end, end + delay)
            assert span_containing(spans, foot_lo, foot_hi) >= 0

    def test_span_containing_misses_long_intervals(self):
        spans = segment_spans(1000, 4, 54)
        assert span_containing(spans, 0, 999) == -1


class TestOverlapZones:
    def test_zones_are_the_pairwise_intersections(self):
        spans = segment_spans(1000, 4, 54)
        zones = overlap_zones(spans)
        assert len(zones) == len(spans) - 1
        for (lo_a, hi_a), (lo_b, _hi_b) in zip(spans, spans[1:]):
            assert (lo_b, hi_a) in zones

    def test_single_span_has_no_zones(self):
        assert overlap_zones([(0, 100)]) == []

    def test_zones_partition_only_shared_samples(self):
        """An index is in a zone iff at least two spans cover it."""
        spans = segment_spans(600, 5, 40)
        zones = overlap_zones(spans)
        coverage = np.zeros(600, dtype=int)
        for lo, hi in spans:
            coverage[lo:hi] += 1
        in_zone = np.zeros(600, dtype=bool)
        for lo, hi in zones:
            in_zone[lo:hi] = True
        assert np.array_equal(in_zone, coverage >= 2)


class TestConfigKnobs:
    def test_segment_overlap_formula(self):
        config = TycosConfig(s_min=8, s_max=60, td_max=10)
        assert config.segment_overlap() == 60 + 10 + 8
        assert config.scaled(segment_margin=0).segment_overlap() == 70
        assert config.scaled(segment_margin=25).segment_overlap() == 95

    def test_validation(self):
        with pytest.raises(ValueError, match="n_segments"):
            TycosConfig(n_segments=0)
        with pytest.raises(ValueError, match="segment_margin"):
            TycosConfig(segment_margin=-1)

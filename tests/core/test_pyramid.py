"""Tests for the PAA pyramid: exact aggregation and exact coordinates.

The contract under test: ``paa_downsample`` computes plain block means
(nothing fancier), and the coordinate mapping -- cell spans, window
footprints, delay bands, refinement cells -- satisfies the containment
lemma for every factor and for lengths not divisible by the factor.
"""

import numpy as np
import pytest

from repro.core.config import TycosConfig
from repro.core.pyramid import (
    PyramidLevel,
    build_level,
    build_pyramid,
    cell_span,
    coarse_config,
    coarse_length,
    delay_band,
    footprint,
    paa_downsample,
    refinement_cell,
)
from repro.core.window import PairView, TimeDelayWindow


class TestPaaDownsample:
    def test_exact_block_means(self):
        values = np.arange(12, dtype=np.float64)
        out = paa_downsample(values, 4)
        np.testing.assert_array_equal(out, [1.5, 5.5, 9.5])

    def test_partial_tail_block_averages_only_existing_samples(self):
        values = np.array([2.0, 4.0, 6.0, 10.0, 20.0])
        out = paa_downsample(values, 3)
        np.testing.assert_array_equal(out, [4.0, 15.0])

    def test_matches_reference_mean_loop(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=101)
        for factor in (2, 3, 4, 7, 8):
            out = paa_downsample(values, factor)
            reference = np.array(
                [
                    values[i * factor : (i + 1) * factor].mean()
                    for i in range(coarse_length(values.size, factor))
                ]
            )
            np.testing.assert_array_equal(out, reference)

    def test_factor_one_is_an_identity_copy(self):
        values = np.random.default_rng(1).normal(size=37)
        out = paa_downsample(values, 1)
        np.testing.assert_array_equal(out, values)
        out[0] = 123.0
        assert values[0] != 123.0  # a copy, not a view

    def test_rejects_empty_and_bad_factor(self):
        with pytest.raises(ValueError):
            paa_downsample(np.array([]), 2)
        with pytest.raises(ValueError):
            paa_downsample(np.ones(4), 0)


class TestCoordinateMapping:
    @pytest.mark.parametrize("factor", [2, 4, 8])
    @pytest.mark.parametrize("n", [96, 97, 101, 103])
    def test_cell_span_round_trip(self, factor, n):
        """Every sample belongs to exactly one cell, and that cell's span
        contains it -- the t -> t // factor round trip across non-divisible
        lengths."""
        covered = []
        for index in range(coarse_length(n, factor)):
            lo, hi = cell_span(index, factor, n)
            assert lo <= hi < n
            for t in range(lo, hi + 1):
                assert t // factor == index
            covered.extend(range(lo, hi + 1))
        assert covered == list(range(n))

    def test_cell_span_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            cell_span(25, 4, 100)

    @pytest.mark.parametrize("factor", [2, 4, 8])
    def test_footprint_contains_original_window(self, factor):
        """Containment lemma, X side: the footprint of a window's coarse
        image contains the window's X interval."""
        n = 103
        rng = np.random.default_rng(7)
        for _ in range(200):
            start = int(rng.integers(0, n - 12))
            end = int(rng.integers(start + 4, min(n, start + 40)))
            coarse = TimeDelayWindow(
                start=start // factor, end=end // factor, delay=0
            )
            lo, hi = footprint(coarse, factor, n)
            assert lo <= start and end <= hi

    @pytest.mark.parametrize("factor", [2, 4, 8])
    def test_delay_band_contains_every_preimage(self, factor):
        """Containment lemma, delay side: every tau maps to a coarse image
        whose band contains tau."""
        td_max = 10
        for tau in range(-td_max, td_max + 1):
            images = {
                c
                for c in range(-td_max, td_max + 1)
                if abs(c * factor - tau) <= factor - 1
            }
            assert images, f"tau={tau} has no coarse image at factor {factor}"
            for c in images:
                lo, hi = delay_band(c, factor, td_max)
                assert lo <= tau <= hi

    def test_delay_band_rejects_unreachable_coarse_delay(self):
        with pytest.raises(ValueError):
            delay_band(5, 4, td_max=3)

    @pytest.mark.parametrize("factor", [2, 4, 8])
    def test_refinement_cell_contains_window_and_delay(self, factor):
        n = 500
        td_max = 8
        w = TimeDelayWindow(start=200, end=260, delay=-5)
        coarse = TimeDelayWindow(
            start=w.start // factor, end=w.end // factor, delay=-(5 // factor)
        )
        cell = refinement_cell(coarse, factor, n, td_max, margin=0)
        assert cell.lo <= w.start and w.end < cell.hi
        assert 0 <= cell.lo and cell.hi <= n

    def test_refinement_cell_margin_clips_to_series(self):
        cell = refinement_cell(
            TimeDelayWindow(start=0, end=2, delay=0), 4, 20, td_max=4, margin=100
        )
        assert (cell.lo, cell.hi) == (0, 20)

    def test_cells_merge_to_union(self):
        a = refinement_cell(TimeDelayWindow(0, 3, 0), 4, 200, td_max=4, margin=2)
        b = refinement_cell(TimeDelayWindow(2, 6, 1), 4, 200, td_max=4, margin=2)
        union = a.merge(b)
        assert union.lo == min(a.lo, b.lo) and union.hi == max(a.hi, b.hi)
        assert union.delay_lo == min(a.delay_lo, b.delay_lo)
        assert union.delay_hi == max(a.delay_hi, b.delay_hi)


class TestBuildLevel:
    def test_level_downsamples_both_series_identically(self):
        rng = np.random.default_rng(3)
        x, y = rng.normal(size=101), rng.normal(size=101)
        pair = PairView(x, y, jitter=0.0, seed=0)
        level = build_level(pair, 4)
        assert isinstance(level, PyramidLevel)
        np.testing.assert_array_equal(level.x, paa_downsample(pair.x, 4))
        np.testing.assert_array_equal(level.y, paa_downsample(pair.y, 4))
        assert level.n == coarse_length(101, 4)
        assert level.base_n == 101

    def test_pyramid_preserves_factor_order(self):
        rng = np.random.default_rng(4)
        pair = PairView(rng.normal(size=64), rng.normal(size=64), jitter=0.0, seed=0)
        levels = build_pyramid(pair, [8, 2, 4])
        assert [lvl.factor for lvl in levels] == [8, 2, 4]
        assert [lvl.n for lvl in levels] == [8, 32, 16]


class TestCoarseConfig:
    def _config(self, **kwargs):
        defaults = dict(
            sigma=0.8, s_min=32, s_max=96, td_max=8, jitter=1e-6, seed=1,
            significance_permutations=10,
        )
        defaults.update(kwargs)
        return TycosConfig(**defaults)

    def test_factor_one_returns_config_unchanged(self):
        cfg = self._config()
        assert coarse_config(cfg, 1) is cfg

    def test_geometry_scales_and_gates_relax(self):
        cfg = self._config(coarse_sigma_ratio=0.5)
        c = coarse_config(cfg, 8)
        assert c.sigma == pytest.approx(0.4)
        assert c.s_min >= cfg.k + 2
        assert c.s_max >= c.s_min
        assert c.td_max == 1
        assert c.jitter == 0.0
        assert c.significance_permutations == 0
        assert c.coarse_factor == 1 and c.n_segments == 1

    def test_coarse_s_min_never_collapses_below_floor(self):
        """A tiny s_min / factor quotient must not let the coarse pass
        search statistically meaningless windows."""
        cfg = self._config(s_min=16, s_max=64)
        c = coarse_config(cfg, 8)
        assert c.s_min == 12

    def test_user_delay_band_maps_outward(self):
        cfg = self._config(delay_band=(-5, 3))
        c = coarse_config(cfg, 4)
        lo, hi = c.delay_band
        # Every coarse image of every tau in [-5, 3] must fall in the band.
        for tau in range(-5, 4):
            for img in range(-c.td_max, c.td_max + 1):
                if abs(img * 4 - tau) <= 3:
                    assert lo <= img <= hi

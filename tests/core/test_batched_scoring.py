"""Tests for batched neighborhood scoring and the capped scorer memo.

The batched path's contract is *exact* equality: ``score_many`` /
``value_many`` must produce the same floats, the same cache contents, and
the same bookkeeping counters as the scalar path, for both scorer
classes -- only the amount of redundant kernel work may differ.
"""

import numpy as np
import pytest

from repro.core.config import TycosConfig
from repro.core.thresholds import BatchScorer, IncrementalScorer
from repro.core.tycos import Tycos
from repro.core.window import PairView, TimeDelayWindow


def _coupled_pair(n=400, lag=7, seed=9):
    rng = np.random.default_rng(seed)
    base = np.cumsum(rng.normal(size=n))
    x = base + rng.normal(scale=0.1, size=n)
    y = np.roll(base, lag) + rng.normal(scale=0.1, size=n)
    return x, y


def _ring(rng, n, count, delay, td_max):
    """A batch of same-delay windows shaped like a delta-neighbor ring."""
    windows = []
    for _ in range(count):
        size = int(rng.integers(8, 40))
        start = int(rng.integers(td_max, n - size - td_max))
        windows.append(TimeDelayWindow(start=start, end=start + size - 1, delay=delay))
    return windows


class TestScoreManyEquality:
    @pytest.mark.parametrize("scorer_cls", [BatchScorer, IncrementalScorer])
    def test_batched_floats_equal_scalar_floats(self, scorer_cls):
        x, y = _coupled_pair()
        config = TycosConfig(s_min=8, s_max=60, td_max=6)
        pair = PairView(x, y)
        rng = np.random.default_rng(3)
        windows = _ring(rng, pair.n, 12, delay=2, td_max=6) + _ring(
            rng, pair.n, 12, delay=-3, td_max=6
        )

        scalar = scorer_cls(PairView(x, y), config)
        expected = [scalar.score(w) for w in windows]
        batched = scorer_cls(pair, config)
        got = batched.score_many(windows)

        assert got == expected  # exact float equality, not approximate
        assert batched.evaluations == scalar.evaluations
        assert batched.cache_hits == scalar.cache_hits

    def test_value_many_equals_scalar_values(self):
        x, y = _coupled_pair()
        config = TycosConfig(s_min=8, s_max=60, td_max=6)
        rng = np.random.default_rng(4)
        windows = _ring(rng, len(x), 10, delay=1, td_max=6)
        scalar = BatchScorer(PairView(x, y), config)
        batched = BatchScorer(PairView(x, y), config)
        assert batched.value_many(windows) == [scalar.value(w) for w in windows]

    def test_duplicates_in_one_batch_hit_the_cache(self):
        x, y = _coupled_pair()
        config = TycosConfig(s_min=8, s_max=60, td_max=6)
        scorer = BatchScorer(PairView(x, y), config)
        w = TimeDelayWindow(start=50, end=80, delay=2)
        scores = scorer.score_many([w, w, w])
        assert scores[0] == scores[1] == scores[2]
        assert scorer.evaluations == 1
        assert scorer.cache_hits == 2

    def test_batch_propagates_scalar_path_errors(self):
        x, y = _coupled_pair()
        config = TycosConfig(s_min=8, s_max=60, td_max=6)
        scorer = BatchScorer(PairView(x, y), config)
        infeasible = TimeDelayWindow(start=0, end=30, delay=-5)  # y range < 0
        with pytest.raises(IndexError):
            scorer.score_many([infeasible])


class TestEngineEquivalence:
    @pytest.mark.parametrize("use_incremental", [False, True])
    def test_search_identical_with_and_without_batching(self, use_incremental):
        x, y = _coupled_pair(n=320)
        config = TycosConfig(sigma=0.3, s_min=8, s_max=48, td_max=8, jitter=1e-6, seed=2)
        plain = Tycos(config, use_incremental=use_incremental, batched_scoring=False).search(x, y)
        batched = Tycos(config, use_incremental=use_incremental, batched_scoring=True).search(x, y)
        assert [r.window for r in plain.windows] == [r.window for r in batched.windows]
        assert [r.mi for r in plain.windows] == [r.mi for r in batched.windows]
        assert plain.stats.windows_evaluated == batched.stats.windows_evaluated
        assert plain.stats.cache_hits == batched.stats.cache_hits
        assert plain.stats.accepted_moves == batched.stats.accepted_moves


class TestCappedMemo:
    def test_capacity_bounds_the_table(self):
        x, y = _coupled_pair()
        config = TycosConfig(s_min=8, s_max=60, td_max=6, cache_capacity=5)
        scorer = BatchScorer(PairView(x, y), config)
        for start in range(20, 60):
            scorer.score(TimeDelayWindow(start=start, end=start + 20, delay=0))
        assert len(scorer._cache) == 5

    def test_lru_evicts_oldest_first(self):
        x, y = _coupled_pair()
        config = TycosConfig(s_min=8, s_max=60, td_max=6, cache_capacity=2)
        scorer = BatchScorer(PairView(x, y), config)
        w1 = TimeDelayWindow(start=20, end=40, delay=0)
        w2 = TimeDelayWindow(start=30, end=50, delay=0)
        w3 = TimeDelayWindow(start=40, end=60, delay=0)
        scorer.score(w1)
        scorer.score(w2)
        scorer.score(w1)  # refresh w1: w2 becomes the eviction candidate
        scorer.score(w3)  # evicts w2
        evaluations = scorer.evaluations
        scorer.score(w1)
        assert scorer.evaluations == evaluations  # still cached
        scorer.score(w2)
        assert scorer.evaluations == evaluations + 1  # was evicted

    def test_config_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError, match="cache_capacity"):
            TycosConfig(cache_capacity=0)


class TestTopKStats:
    def test_topk_reports_incremental_engine_stats(self):
        # Windows must exceed IncrementalScorer.min_engine_size for the
        # sliding engine (whose counters these stats mirror) to engage.
        x, y = _coupled_pair(n=600)
        config = TycosConfig(sigma=0.3, s_min=100, s_max=160, td_max=8, jitter=1e-6, seed=2)
        result = Tycos(config, use_incremental=True).search_topk(x, y, k_top=3)
        assert result.stats.mi_full_searches > 0
        plain = Tycos(config.scaled(s_min=8, s_max=48), use_incremental=False).search_topk(
            x, y, k_top=3
        )
        assert plain.stats.mi_full_searches == 0
        assert plain.stats.mi_incremental_updates == 0

"""Tests for the search space (Lemma 1 / Eq. 4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.search_space import enumerate_feasible, exact_count, paper_count


class TestPaperCount:
    def test_lemma1_worked_example(self):
        # The paper: n=9000, s in [20, 400], td_max=20 -> 136,870,440 windows.
        assert paper_count(9000, 20, 400, 20) == 136_870_440

    def test_zero_when_series_too_short(self):
        assert paper_count(5, 10, 20, 3) == 0


class TestExactCount:
    def test_matches_enumeration_small(self):
        for n, s_min, s_max, td in [(20, 3, 8, 2), (15, 2, 15, 4), (10, 5, 5, 0)]:
            enumerated = sum(1 for _ in enumerate_feasible(n, s_min, s_max, td))
            assert exact_count(n, s_min, s_max, td) == enumerated

    def test_exact_never_exceeds_paper_formula(self):
        # Eq. (4) over-counts by ignoring boundary effects.
        for n, s_min, s_max, td in [(50, 5, 20, 4), (100, 10, 40, 8)]:
            assert exact_count(n, s_min, s_max, td) <= paper_count(n, s_min, s_max, td) + n

    @given(
        st.integers(min_value=5, max_value=40),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=0, max_value=4),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_count_matches_enumeration(self, n, s_min, td):
        s_max = min(n, s_min + 7)
        enumerated = sum(1 for _ in enumerate_feasible(n, s_min, s_max, td))
        assert exact_count(n, s_min, s_max, td) == enumerated


class TestEnumeration:
    def test_all_enumerated_windows_are_feasible(self):
        n, s_min, s_max, td = 25, 3, 10, 3
        for w in enumerate_feasible(n, s_min, s_max, td):
            assert w.is_feasible(n, s_min, s_max, td), w

    def test_no_duplicates(self):
        windows = list(enumerate_feasible(30, 4, 12, 2))
        assert len(windows) == len(set(windows))

    def test_zero_delay_only_when_td_zero(self):
        for w in enumerate_feasible(20, 3, 6, 0):
            assert w.delay == 0

    def test_rejects_bad_s_min(self):
        with pytest.raises(ValueError, match="s_min"):
            list(enumerate_feasible(10, 0, 5, 1))

    def test_scan_order(self):
        windows = list(enumerate_feasible(12, 3, 5, 1))
        keys = [(w.start, w.size, w.delay) for w in windows]
        assert keys == sorted(keys)

"""Tests for TycosConfig validation and derived values."""

import pytest

from repro.core.config import ENERGY_CONFIG, SMARTCITY_CONFIG, TycosConfig


class TestValidation:
    def test_defaults_valid(self):
        cfg = TycosConfig()
        assert cfg.sigma > 0
        assert cfg.s_min >= cfg.k + 2

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            (dict(sigma=0.0), "sigma"),
            (dict(sigma=-1.0), "sigma"),
            (dict(epsilon_ratio=1.0), "epsilon_ratio"),
            (dict(epsilon_ratio=-0.1), "epsilon_ratio"),
            (dict(k=0), "k must"),
            (dict(s_min=4, k=4), "s_min"),
            (dict(s_max=5, s_min=10), "s_max"),
            (dict(td_max=-1), "td_max"),
            (dict(delta=0), "delta"),
            (dict(history_length=0), "history_length"),
            (dict(max_idle=0), "max_idle"),
            (dict(jitter=-0.1), "jitter"),
            (dict(significance_permutations=-1), "significance_permutations"),
            (dict(init_delay_step=0), "init_delay_step"),
        ],
    )
    def test_rejects_invalid(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            TycosConfig(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(s_min=6, k=4),  # exactly k + 2 is the smallest legal window
            dict(s_max=8, s_min=8),  # degenerate single-size search space
            dict(td_max=0),  # aligned-only search is valid
            dict(epsilon_ratio=0.0),  # noise pruning disabled
            dict(sigma=1.0),
            dict(jitter=0.0),
            dict(significance_permutations=0),
            dict(init_delay_step=1),
        ],
    )
    def test_accepts_boundary_values(self, kwargs):
        TycosConfig(**kwargs)  # must not raise

    def test_s_min_bound_tracks_k(self):
        # The s_min >= k + 2 bound is relative to k, not a constant.
        TycosConfig(s_min=10, k=8)
        with pytest.raises(ValueError, match="s_min"):
            TycosConfig(s_min=9, k=8)

    def test_scaled_revalidates(self):
        cfg = TycosConfig()
        with pytest.raises(ValueError, match="s_max"):
            cfg.scaled(s_max=cfg.s_min - 1)


class TestDerived:
    def test_epsilon(self):
        cfg = TycosConfig(sigma=0.4, epsilon_ratio=0.25)
        assert cfg.epsilon == pytest.approx(0.1)

    def test_scaled_replaces_fields(self):
        cfg = TycosConfig(sigma=0.3)
        other = cfg.scaled(sigma=0.5, td_max=99)
        assert other.sigma == 0.5
        assert other.td_max == 99
        assert cfg.sigma == 0.3  # frozen original untouched

    def test_delay_grid_contains_extremes_and_zero(self):
        cfg = TycosConfig(td_max=20, init_delay_step=7)
        grid = cfg.delay_grid()
        assert 0 in grid and 20 in grid and -20 in grid
        assert grid == sorted(grid)
        assert 7 in grid and -7 in grid and 14 in grid

    def test_delay_grid_dense(self):
        cfg = TycosConfig(td_max=5, init_delay_step=1)
        assert cfg.delay_grid() == list(range(-5, 6))

    def test_delay_grid_zero_td(self):
        assert TycosConfig(td_max=0).delay_grid() == [0]


class TestPresets:
    def test_presets_follow_table2_shape(self):
        # Table 2: energy sigma=0.3, smart city sigma=0.2; both eps=sigma/4.
        assert ENERGY_CONFIG.sigma == pytest.approx(0.3)
        assert SMARTCITY_CONFIG.sigma == pytest.approx(0.2)
        assert ENERGY_CONFIG.epsilon_ratio == 0.25
        assert SMARTCITY_CONFIG.epsilon_ratio == 0.25
        # Energy searches a longer window/delay span than smart city,
        # mirroring the minute vs 5-minute resolutions of Table 2.
        assert ENERGY_CONFIG.s_max > SMARTCITY_CONFIG.s_max
        assert ENERGY_CONFIG.td_max > SMARTCITY_CONFIG.td_max
